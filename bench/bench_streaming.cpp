// Streaming-perception benchmark (mvs::rt): what does a deadline budget
// cost, and what does city-scale correlation gating buy?
//
// Four sections, all on the deterministic virtual clock (bit-identical
// across machines and thread counts for a fixed config):
//
//   1. Deadline-budget sweep: run the paced runtime under the drop policy
//      at budgets from harsh to infinite and record STREAMING recall —
//      emitted tracks scored against the world at emission time, the
//      streaming-perception metric — plus drop/miss rates and lag. The
//      curve must be monotone: more budget can only help.
//
// All sections run with paired detector RNG (common random numbers,
// PipelineConfig::paired_rng): detector noise is keyed by (seed, camera,
// frame), so two runs that process the same frame draw the same noise no
// matter how many frames were dropped before it. Without this, a single
// drop reseeds every later frame's noise and the budget sweep measures
// realization variance (several points of recall) instead of the
// information lost to dropping.
//   2. Late-policy comparison at the paper's 100 ms rule: drop vs
//      supersede vs finish-late on the same scenario.
//   3. City-grid rows: a 50-camera sparse grid with and without ReXCam-
//      style learned correlation gating (the acceptance row: gating must
//      cut simulated GPU busy time by >= --city-cut while losing at most
//      --recall-band streaming recall), plus a 100-camera gated row.
//   4. rt-of-one guard: finish-late + infinite budget must reproduce the
//      unpaced pipeline bit-identically (recall and per-frame stats).
//
// Acceptance (exit status; CI runs a smoke-sized variant where the gate is
// advisory and only the JSON schema is enforced):
//   - budget-sweep streaming recall non-decreasing in the budget;
//   - city gating busy cut >= --city-cut at <= --recall-band recall loss;
//   - rt-of-one identity holds.
//
// Usage:
//   bench_streaming [--scenario S2] [--frames 150] [--seed 42] [--iou 0.6]
//                   [--jitter-ms 15] [--overhead-ms 5] [--period-ms 300]
//                   [--policy-period-ms 150]
//                   [--city-cams 50] [--city2-cams 100] [--city-frames 150]
//                   [--city-rate 0.01] [--city-period-ms 0] [--gate-hold 20]
//                   [--city-cut 0.20] [--recall-band 0.01] [--no-city]
//                   [--json out.json]

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "rt/runner.hpp"
#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "sim/scenario.hpp"
#include "util/args.hpp"
#include "util/bench_info.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace mvs;

struct Row {
  std::string label;
  double deadline_ms = 0.0;
  runtime::LatePolicy policy = runtime::LatePolicy::kDrop;
  rt::RtResult r;
};

rt::RtResult run_paced(const std::string& scenario,
                       const runtime::PipelineConfig& cfg,
                       const runtime::RtConfig& rtc, int frames) {
  rt::RtRunner runner(scenario, cfg, rtc);
  return runner.run(frames);
}

double rate(long n, long total) {
  return total > 0 ? static_cast<double>(n) / static_cast<double>(total)
                   : 0.0;
}

void add_table_row(util::Table& table, const Row& row) {
  const rt::RtCounters& c = row.r.counters;
  table.add_row({row.label,
                 row.deadline_ms > 0.0 ? util::Table::fmt(row.deadline_ms, 0)
                                       : "inf",
                 runtime::to_string(row.policy),
                 util::Table::fmt(row.r.streaming_recall, 3),
                 util::Table::fmt(row.r.object_recall, 3),
                 util::Table::fmt(rate(c.dropped, c.arrived), 3),
                 util::Table::fmt(rate(c.superseded, c.arrived), 3),
                 util::Table::fmt(rate(c.deadline_miss, c.arrived), 3),
                 util::Table::fmt(row.r.mean_lag_ms, 1),
                 util::Table::fmt(c.gpu_busy_ms, 0)});
}

util::Json::Object row_json(const Row& row) {
  const rt::RtCounters& c = row.r.counters;
  util::Json::Object o;
  o["label"] = util::Json(row.label);
  o["deadline_ms"] = util::Json(row.deadline_ms);
  o["late_policy"] = util::Json(runtime::to_string(row.policy));
  o["streaming_recall"] = util::Json(row.r.streaming_recall);
  o["object_recall"] = util::Json(row.r.object_recall);
  o["arrived"] = util::Json(static_cast<double>(c.arrived));
  o["processed"] = util::Json(static_cast<double>(c.processed));
  o["drop_rate"] = util::Json(rate(c.dropped, c.arrived));
  o["supersede_rate"] = util::Json(rate(c.superseded, c.arrived));
  o["miss_rate"] = util::Json(rate(c.deadline_miss, c.arrived));
  o["mean_lag_ms"] = util::Json(row.r.mean_lag_ms);
  o["max_lag_ms"] = util::Json(row.r.max_lag_ms);
  o["gpu_busy_ms"] = util::Json(c.gpu_busy_ms);
  o["makespan_ms"] = util::Json(row.r.makespan_ms);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args =
      util::Args::parse(argc, argv, {"no-city", "no-flash", "no-night"});
  const std::string scenario = args.get_or("scenario", "S2");
  const int frames = args.int_or("frames", 150);
  const auto seed = static_cast<std::uint64_t>(args.int_or("seed", 42));
  const double jitter_ms = args.number_or("jitter-ms", 15.0);
  const double overhead_ms = args.number_or("overhead-ms", 5.0);
  // The sweep arrival period must clear even the SLOWEST frame service time
  // (key frames run a full inspection, ~3x a regular frame) so no backlog
  // ever forms: with a backlog, dropping stale queued frames lets the
  // processor jump to fresher input and IMPROVES streaming recall (the
  // Li et al. result), which is the opposite of what a budget sweep is
  // trying to isolate. With a feasible period a drop is pure information
  // loss and the curve is monotone in the budget.
  const double period_ms = args.number_or("period-ms", 300.0);
  // City poles are paced slower than the S-scenarios (500 ms: the 2 fps of
  // a municipal analytics deployment) so both gated and ungated rows keep
  // up and the GPU-busy comparison is not confounded by queueing.
  const double city_period_ms = args.number_or("city-period-ms", 500.0);
  const int city_cams = args.int_or("city-cams", 50);
  const int city2_cams = args.int_or("city2-cams", 100);
  const int city_frames = args.int_or("city-frames", 150);
  const double city_cut = args.number_or("city-cut", 0.20);
  const double recall_band = args.number_or("recall-band", 0.01);
  const double city_rate = args.number_or("city-rate", 0.01);
  const int gate_hold = args.int_or("gate-hold", 20);
  // Entry cameras are learned from FRESH arrivals only, and at 0.01
  // arrivals/s/stream those are rare: the training split must span a few
  // hundred sim-seconds for every stream's entry camera to be observed.
  // Training frames carry ground truth only (nothing is rendered), so the
  // long split costs simulation stepping, not inference.
  const int city_training = args.int_or("city-training", 4000);
  const bool run_city = !args.has("no-city");
  if (frames < 1 || city_frames < 1 || city_cams < 1 || city2_cams < 1) {
    std::fprintf(stderr, "--frames/--city-frames/--city-cams must be >= 1\n");
    return 2;
  }

  // Match threshold for the streaming scorer (and the offline recall it is
  // compared against). The default is stricter than the pipeline-wide 0.4:
  // at 0.4 a two-frame-stale box still matches its object and the staleness
  // cost of a dropped frame is lost in tracking-luck noise; at 0.6 staleness
  // is the dominant term and the budget sweep isolates what a drop costs.
  const double sweep_iou = args.number_or("iou", 0.6);

  runtime::PipelineConfig cfg;
  cfg.seed = seed;
  cfg.paired_rng = true;
  cfg.recall_iou = sweep_iou;

  runtime::RtConfig base_rt;
  base_rt.paced = true;
  base_rt.frame_period_ms = period_ms;
  base_rt.arrival_jitter_ms = jitter_ms;
  base_rt.fixed_overhead_ms = overhead_ms;

  // ---- deadline-budget sweep (drop policy) -------------------------------
  const double budgets[] = {40.0, 60.0, 80.0, 100.0, 150.0, 250.0, 0.0};
  util::Table table({"row", "budget", "policy", "s_recall", "o_recall",
                     "drop", "sup", "miss", "lag_ms", "busy_ms"});
  util::Json::Array sweep;
  std::vector<double> curve;
  for (const double budget : budgets) {
    runtime::RtConfig rtc = base_rt;
    rtc.deadline_ms = budget;
    rtc.late_policy = runtime::LatePolicy::kDrop;
    Row row{"budget", budget, rtc.late_policy,
            run_paced(scenario, cfg, rtc, frames)};
    add_table_row(table, row);
    sweep.push_back(util::Json(row_json(row)));
    curve.push_back(row.r.streaming_recall);
  }
  bool monotone = true;
  for (std::size_t i = 1; i < curve.size(); ++i)
    if (curve[i] + 1e-12 < curve[i - 1]) monotone = false;

  // ---- late-policy comparison at the 100 ms rule -------------------------
  // Run where the policies actually engage: a period near the mean service
  // time, so key frames cause transient backlogs and frames are stale at
  // dequeue. (At the sweep's feasible period nothing is ever late and the
  // three policies are indistinguishable.) This is also where the drop-helps
  // effect shows: finish-late grinds through the backlog and scores WORSE
  // than dropping stale frames.
  const double policy_period_ms = args.number_or("policy-period-ms", 150.0);
  util::Json::Array policies;
  for (const runtime::LatePolicy policy :
       {runtime::LatePolicy::kDrop, runtime::LatePolicy::kSupersede,
        runtime::LatePolicy::kFinishLate}) {
    runtime::RtConfig rtc = base_rt;
    rtc.frame_period_ms = policy_period_ms;
    rtc.deadline_ms = 100.0;
    rtc.late_policy = policy;
    Row row{"policy", 100.0, policy, run_paced(scenario, cfg, rtc, frames)};
    add_table_row(table, row);
    policies.push_back(util::Json(row_json(row)));
  }

  // ---- rt-of-one guard ---------------------------------------------------
  // Finish-late with an infinite budget processes every frame in capture
  // order, so the paced run must reproduce the unpaced pipeline exactly:
  // same aggregate recall, same per-frame simulated inference and recall.
  bool rt_of_one = true;
  {
    runtime::RtConfig rtc = base_rt;
    rtc.deadline_ms = 0.0;
    rtc.late_policy = runtime::LatePolicy::kFinishLate;
    rt::RtRunner runner(scenario, cfg, rtc);
    const rt::RtResult paced = runner.run(frames);
    runtime::Pipeline plain(scenario, cfg);
    const runtime::PipelineResult unpaced = plain.run(frames);
    rt_of_one = paced.object_recall == unpaced.object_recall &&
                paced.counters.processed ==
                    static_cast<long>(unpaced.frames.size());
    const runtime::PipelineResult paced_frames = runner.pipeline().result();
    if (paced_frames.frames.size() != unpaced.frames.size()) rt_of_one = false;
    for (std::size_t i = 0;
         rt_of_one && i < unpaced.frames.size(); ++i) {
      const runtime::FrameStats& a = paced_frames.frames[i];
      const runtime::FrameStats& b = unpaced.frames[i];
      if (a.slowest_infer_ms != b.slowest_infer_ms ||
          a.frame_recall != b.frame_recall)
        rt_of_one = false;
    }
  }

  // ---- city-grid gating rows ---------------------------------------------
  // 50-camera sparse grid, balb-ind (no O(C^2) central stage), finish-late
  // with an infinite budget so the gated and ungated runs process the SAME
  // frames and the GPU-busy comparison is unconfounded by drops. The gate's
  // value shows up directly: cold cameras skip detection and the key-frame
  // full inspection, which dominates at this scale.
  util::Json::Array city;
  double city_busy_cut = 0.0;
  double city_recall_loss = 0.0;
  bool city_pass = true;
  if (run_city) {
    // Sparse grid: most cameras empty most of the time — the regime the
    // gate is for. Pacing does not change SIMULATED time (each frame
    // advances 1/fps = 100 ms of world time), so the flash crowd and the
    // day/night flip are timed to land inside the city_frames/10 seconds
    // of simulation the run covers.
    const double sim_seconds = city_frames / 10.0;
    sim::CityConfig cc;
    cc.cameras = city_cams;
    cc.rate_per_s = city_rate;
    if (!args.has("no-flash")) {
      cc.flash_at_s = 0.25 * sim_seconds;
      cc.flash_duration_s = 0.25 * sim_seconds;
      cc.flash_multiplier = 4.0;
    }
    if (!args.has("no-night")) {
      cc.day_night = true;
      cc.night_period_s = 0.4 * sim_seconds;
    }
    const std::string city_name = sim::city_scenario_name(cc);

    runtime::PipelineConfig ccfg;
    ccfg.seed = seed;
    ccfg.paired_rng = true;
    ccfg.policy = runtime::Policy::kBalbInd;
    ccfg.training_frames = city_training;

    runtime::RtConfig rtc = base_rt;
    rtc.frame_period_ms = city_period_ms;
    rtc.deadline_ms = 0.0;
    rtc.late_policy = runtime::LatePolicy::kFinishLate;

    Row plain{"city" + std::to_string(city_cams) + "-ungated", 0.0,
              rtc.late_policy, run_paced(city_name, ccfg, rtc, city_frames)};
    add_table_row(table, plain);

    runtime::PipelineConfig gcfg = ccfg;
    gcfg.frame_policy.correlation_gate = true;
    gcfg.frame_policy.gate_hold = gate_hold;
    Row gated{"city" + std::to_string(city_cams) + "-gated", 0.0,
              rtc.late_policy, run_paced(city_name, gcfg, rtc, city_frames)};
    add_table_row(table, gated);

    city_busy_cut =
        plain.r.counters.gpu_busy_ms > 0.0
            ? 1.0 - gated.r.counters.gpu_busy_ms / plain.r.counters.gpu_busy_ms
            : 0.0;
    city_recall_loss = plain.r.streaming_recall - gated.r.streaming_recall;
    city_pass = city_busy_cut >= city_cut && city_recall_loss <= recall_band;

    util::Json::Object plain_row = row_json(plain);
    plain_row["cameras"] = util::Json(city_cams);
    plain_row["gated"] = util::Json(false);
    city.push_back(util::Json(std::move(plain_row)));
    util::Json::Object gated_row = row_json(gated);
    gated_row["cameras"] = util::Json(city_cams);
    gated_row["gated"] = util::Json(true);
    city.push_back(util::Json(std::move(gated_row)));

    // 100-camera gated row: the same configuration at double the grid, to
    // show the paced runtime and the gate hold up at the larger scale.
    sim::CityConfig c2 = cc;
    c2.cameras = city2_cams;
    Row big{"city" + std::to_string(city2_cams) + "-gated", 0.0,
            rtc.late_policy,
            run_paced(sim::city_scenario_name(c2), gcfg, rtc, city_frames)};
    add_table_row(table, big);
    util::Json::Object big_row = row_json(big);
    big_row["cameras"] = util::Json(city2_cams);
    big_row["gated"] = util::Json(true);
    city.push_back(util::Json(std::move(big_row)));
  }

  const bool ok = monotone && rt_of_one && (!run_city || city_pass);

  std::printf("scenario=%s frames=%d jitter=%.1fms overhead=%.1fms\n",
              scenario.c_str(), frames, jitter_ms, overhead_ms);
  std::printf("%s", table.to_string().c_str());
  std::printf("budget curve monotone: %s\n", monotone ? "yes" : "NO");
  std::printf("rt-of-one identity:    %s\n", rt_of_one ? "yes" : "NO");
  if (run_city)
    std::printf(
        "city gating: busy cut %.1f%% (need >= %.0f%%), streaming recall "
        "loss %.4f (band %.3f) -> %s\n",
        100.0 * city_busy_cut, 100.0 * city_cut, city_recall_loss,
        recall_band, city_pass ? "pass" : "FAIL");
  std::printf("acceptance: %s\n", ok ? "pass" : "FAIL");

  const std::string json_path = args.get_or("json", "");
  if (!json_path.empty()) {
    util::Json::Object body;
    body["scenario"] = util::Json(scenario);
    body["frames"] = util::Json(frames);
    body["arrival_jitter_ms"] = util::Json(jitter_ms);
    body["fixed_overhead_ms"] = util::Json(overhead_ms);
    body["paired_rng"] = util::Json(true);
    body["frame_period_ms"] = util::Json(period_ms);
    body["policy_period_ms"] = util::Json(policy_period_ms);
    body["iou"] = util::Json(sweep_iou);
    body["budget_sweep"] = util::Json(std::move(sweep));
    body["monotone"] = util::Json(monotone);
    body["late_policies"] = util::Json(std::move(policies));
    body["rt_of_one_identical"] = util::Json(rt_of_one);
    if (run_city) {
      body["city"] = util::Json(std::move(city));
      body["city_busy_cut"] = util::Json(city_busy_cut);
      body["city_recall_loss"] = util::Json(city_recall_loss);
      body["required_busy_cut"] = util::Json(city_cut);
      body["recall_band"] = util::Json(recall_band);
      body["city_pass"] = util::Json(city_pass);
    }
    body["pass"] = util::Json(ok);

    util::Json::Object doc;
    doc["env"] = util::bench_env_json();
    doc["streaming"] = util::Json(std::move(body));
    std::ofstream out(json_path);
    out << util::Json(std::move(doc)).dump() << '\n';
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}

// Figure 13 reproduction: average per-frame detector inference time on the
// slowest camera, for Full / BALB-Ind / SP / BALB on S1-S3 (key frames
// averaged into the horizon, as the paper does).
// Expected shape (paper): BALB-Ind saves ~50% over Full by slicing+batching;
// complete BALB multiplies that to 2.45-6.85x total speedup (largest on the
// sparse, high-overlap S2; smallest on the low-overlap, busy S3); BALB
// consistently beats SP.

#include <cstdio>

#include "runtime/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;
  constexpr int kFrames = 200;

  const runtime::Policy policies[] = {
      runtime::Policy::kFull, runtime::Policy::kBalbInd,
      runtime::Policy::kStaticPartition, runtime::Policy::kBalb};

  std::printf("== Figure 13: per-frame inference latency on the slowest "
              "camera (ms) ==\n\n");
  util::Table table({"scenario", "Full", "BALB-Ind", "SP", "BALB",
                     "BALB speedup", "SP/BALB"});

  for (const char* scenario : {"S1", "S2", "S3"}) {
    std::vector<double> latency;
    for (runtime::Policy policy : policies) {
      runtime::PipelineConfig cfg;
      cfg.policy = policy;
      cfg.horizon_frames = 10;
      cfg.training_frames = 200;
      cfg.seed = 101;
      runtime::Pipeline pipeline(scenario, cfg);
      latency.push_back(pipeline.run(kFrames).mean_slowest_infer_ms());
    }
    table.add_row({scenario, util::Table::fmt(latency[0], 1),
                   util::Table::fmt(latency[1], 1),
                   util::Table::fmt(latency[2], 1),
                   util::Table::fmt(latency[3], 1),
                   util::Table::fmt(latency[0] / latency[3], 2) + "x",
                   util::Table::fmt(latency[2] / latency[3], 2) + "x"});
  }
  std::printf("%s\n'BALB speedup' is vs Full-frame inspection (paper: 6.85x "
              "S1, 6.18x S2, 2.45x S3\non their Jetson testbed); 'SP/BALB' "
              "is the gain over static partitioning\n(paper: 1.88x mean).\n",
              table.to_string().c_str());
  return 0;
}

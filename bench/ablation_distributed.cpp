// Ablation C: value of the distributed stage under object churn, extending
// the BALB vs BALB-Cen gap of Fig. 12. Sweeps the scheduling horizon on the
// busy S3 scenario: the longer the horizon, the more mid-horizon arrivals
// BALB-Cen misses, while the distributed stage keeps adopting them.

#include <cstdio>

#include "runtime/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;

  std::printf("== Ablation: distributed stage under object churn (S3) ==\n\n");
  util::Table table({"T (frames)", "BALB recall", "BALB-Cen recall",
                     "recall gap"});

  for (int horizon : {5, 10, 20, 40}) {
    double recall[2] = {0.0, 0.0};
    int idx = 0;
    for (runtime::Policy policy :
         {runtime::Policy::kBalb, runtime::Policy::kBalbCen}) {
      runtime::PipelineConfig cfg;
      cfg.policy = policy;
      cfg.horizon_frames = horizon;
      cfg.training_frames = 200;
      cfg.seed = 55;
      runtime::Pipeline pipeline("S3", cfg);
      recall[idx++] = pipeline.run(160).object_recall;
    }
    table.add_row({std::to_string(horizon), util::Table::fmt(recall[0], 3),
                   util::Table::fmt(recall[1], 3),
                   util::Table::fmt(recall[0] - recall[1], 3)});
  }
  std::printf("%s\nThe distributed stage's communication-free adoption of new "
              "objects grows\nmore valuable as key frames become rarer.\n",
              table.to_string().c_str());
  return 0;
}

// Extension ablations (paper Sec. V future work, implemented in
// core/extensions.hpp and core/offload.hpp):
//   (1) Redundant K-coverage BALB: latency cost of tracking every shared
//       object from K cameras (occlusion insurance).
//   (2) Quality-aware BALB: mean tracking quality vs system latency across
//       the latency-slack knob.
//   (3) Centralized view selection: uplink cost of greedy set-cover view
//       upload vs uploading every camera, on simulated S1 frames.

#include <cstdio>
#include <map>

#include "core/central_balb.hpp"
#include "core/extensions.hpp"
#include "core/offload.hpp"
#include "sim/dataset.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mvs;

/// MVS instance built from one simulated S1 frame (real coverage sets).
core::MvsProblem problem_from_frame(const sim::MultiFrame& frame,
                                    const sim::Scenario& scenario) {
  core::MvsProblem problem;
  for (const auto& cam : scenario.cameras) problem.cameras.push_back(cam.device);
  const geom::SizeClassSet sizes;
  std::map<std::uint64_t, core::ObjectSpec> by_id;
  for (std::size_t c = 0; c < frame.per_camera.size(); ++c) {
    for (const auto& gt : frame.per_camera[c]) {
      core::ObjectSpec& spec = by_id[gt.id];
      if (spec.size_class.empty())
        spec.size_class.assign(problem.cameras.size(), 0);
      spec.key = gt.id;
      spec.coverage.push_back(static_cast<int>(c));
      spec.size_class[c] = sizes.quantize(gt.box);
    }
  }
  for (auto& [id, spec] : by_id) problem.objects.push_back(spec);
  return problem;
}

}  // namespace

int main() {
  sim::ScenarioPlayer player(sim::make_s1(9), 90.0);
  std::vector<sim::MultiFrame> frames;
  for (int i = 0; i < 20; ++i) {
    // One probe frame every 2 seconds.
    sim::MultiFrame f;
    for (int skip = 0; skip < 20; ++skip) f = player.next();
    frames.push_back(std::move(f));
  }

  // (1) K-coverage latency cost.
  {
    util::Table table({"K", "system latency (ms)", "mean trackers/object"});
    for (int k : {1, 2, 3}) {
      util::RunningStats latency, redundancy;
      for (const sim::MultiFrame& frame : frames) {
        const core::MvsProblem p = problem_from_frame(frame, player.scenario());
        if (p.objects.empty()) continue;
        const core::Assignment a = core::redundant_balb(p, {k});
        latency.add(a.system_latency());
        std::size_t trackers = 0;
        for (std::size_t j = 0; j < p.object_count(); ++j)
          for (std::size_t i = 0; i < p.camera_count(); ++i)
            trackers += a.x[i][j];
        redundancy.add(static_cast<double>(trackers) /
                       static_cast<double>(p.object_count()));
      }
      table.add_row({std::to_string(k), util::Table::fmt(latency.mean(), 1),
                     util::Table::fmt(redundancy.mean(), 2)});
    }
    std::printf("== Extension 1: redundant K-coverage BALB (S1 frames) ==\n%s\n",
                table.to_string().c_str());
  }

  // (2) Quality-efficiency tradeoff: quality = inverse normalized distance.
  {
    util::Table table({"latency slack", "mean quality", "system latency (ms)"});
    for (double slack : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      util::RunningStats quality_stats, latency_stats;
      for (const sim::MultiFrame& frame : frames) {
        const core::MvsProblem p = problem_from_frame(frame, player.scenario());
        if (p.objects.empty()) continue;
        // Quality: 1 / (1 + distance/30m) for the observing camera.
        std::vector<std::vector<double>> quality(
            p.object_count(), std::vector<double>(p.camera_count(), 0.0));
        std::size_t j = 0;
        std::map<std::uint64_t, std::size_t> index;
        for (const auto& spec : p.objects) index[spec.key] = j++;
        for (std::size_t c = 0; c < frame.per_camera.size(); ++c)
          for (const auto& gt : frame.per_camera[c])
            quality[index[gt.id]][c] = 1.0 / (1.0 + gt.distance_m / 30.0);

        const core::Assignment a =
            core::quality_aware_balb(p, quality, {slack});
        quality_stats.add(core::mean_assignment_quality(p, a, quality));
        latency_stats.add(a.system_latency());
      }
      table.add_row({util::Table::fmt(slack, 2),
                     util::Table::fmt(quality_stats.mean(), 3),
                     util::Table::fmt(latency_stats.mean(), 1)});
    }
    std::printf("== Extension 2: quality-efficiency tradeoff ==\n%s\n",
                table.to_string().c_str());
  }

  // (3) Centralized view selection vs upload-everything.
  {
    util::Table table({"strategy", "mean uplink cost (ms)", "views uploaded"});
    util::RunningStats greedy_cost, all_cost, greedy_views;
    for (const sim::MultiFrame& frame : frames) {
      core::ViewSelectionProblem p;
      for (const auto& cam : frame.per_camera) {
        std::vector<std::uint64_t> ids;
        for (const auto& gt : cam) ids.push_back(gt.id);
        p.objects_per_camera.push_back(std::move(ids));
        // 1280x704 YUV frame at 0.15 bpp over a 20 Mbps uplink.
        p.upload_cost.push_back(1280.0 * 704.0 * 0.15 / (20e6) * 1e3);
      }
      const auto selection = core::select_views_greedy(p);
      greedy_cost.add(selection.total_cost);
      greedy_views.add(static_cast<double>(selection.cameras.size()));
      double everything = 0.0;
      for (double c : p.upload_cost) everything += c;
      all_cost.add(everything);
    }
    table.add_row({"upload all views", util::Table::fmt(all_cost.mean(), 1),
                   std::to_string(frames.front().per_camera.size())});
    table.add_row({"greedy set cover", util::Table::fmt(greedy_cost.mean(), 1),
                   util::Table::fmt(greedy_views.mean(), 1)});
    std::printf("== Extension 3: centralized view selection (S1) ==\n%s\n",
                table.to_string().c_str());
  }
  return 0;
}

// Ablation A (design choice called out in DESIGN.md): what do the two
// batching-related mechanisms buy?
//   (a) GPU task batching at EXECUTION time (the paper's Sec. II headline
//       mechanism): same-size regions run together instead of serially.
//   (b) Batch AWARENESS in the central-stage DECISION rule (Algorithm 1
//       lines 4-8): ride incomplete batches instead of opening new ones.
// Metric: maximum regular-frame inspection latency across cameras (the
// full-frame key-frame cost is identical for every variant and would mask
// the effect).

#include <algorithm>
#include <cstdio>

#include "core/central_balb.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace mvs;

/// Max per-camera regular-frame latency with greedy batching.
double batched_max(const core::MvsProblem& p, const core::Assignment& a) {
  const auto lat = core::regular_frame_latencies(p, a);
  return *std::max_element(lat.begin(), lat.end());
}

/// Max per-camera regular-frame latency when every region runs serially
/// (batch of one) — what a batching-free executor would pay.
double serial_max(const core::MvsProblem& p, const core::Assignment& a) {
  double worst = 0.0;
  for (std::size_t i = 0; i < p.camera_count(); ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < p.object_count(); ++j) {
      if (!a.x[i][j]) continue;
      total += p.cameras[i].actual_batch_latency_ms(
          p.objects[j].size_class[i], 1);
    }
    worst = std::max(worst, total);
  }
  return worst;
}

}  // namespace

int main() {
  std::printf("== Ablation: GPU batching & batch-aware scheduling ==\n\n");
  util::Table table({"objects", "p(shared)", "aware+batched (ms)",
                     "blind+batched (ms)", "aware+serial (ms)",
                     "batching saves", "awareness saves"});

  util::Rng rng(7);
  for (const int n : {5, 10, 20, 40, 80}) {
    for (const double shared : {0.3, 0.7}) {
      double aware_total = 0.0, blind_total = 0.0, serial_total = 0.0;
      constexpr int kInstances = 20;
      for (int inst = 0; inst < kInstances; ++inst) {
        core::MvsProblem p;
        p.cameras = {gpu::jetson_xavier(), gpu::jetson_tx2(),
                     gpu::jetson_nano()};
        for (int j = 0; j < n; ++j) {
          core::ObjectSpec obj;
          obj.key = static_cast<std::uint64_t>(j);
          if (rng.bernoulli(shared)) {
            for (int c = 0; c < 3; ++c)
              if (rng.bernoulli(0.7)) obj.coverage.push_back(c);
          }
          if (obj.coverage.empty())
            obj.coverage.push_back(rng.uniform_int(0, 2));
          const geom::SizeClassId size = rng.uniform_int(0, 2);
          obj.size_class.assign(3, size);
          p.objects.push_back(std::move(obj));
        }
        core::CentralBalbOptions aware;
        core::CentralBalbOptions blind;
        blind.batch_aware = false;
        const core::Assignment a_aware = core::central_balb(p, aware);
        const core::Assignment a_blind = core::central_balb(p, blind);
        aware_total += batched_max(p, a_aware);
        blind_total += batched_max(p, a_blind);
        serial_total += serial_max(p, a_aware);
      }
      const double aware_ms = aware_total / kInstances;
      const double blind_ms = blind_total / kInstances;
      const double serial_ms = serial_total / kInstances;
      table.add_row(
          {std::to_string(n), util::Table::fmt(shared, 1),
           util::Table::fmt(aware_ms, 1), util::Table::fmt(blind_ms, 1),
           util::Table::fmt(serial_ms, 1),
           util::Table::fmt(100.0 * (1.0 - aware_ms / serial_ms), 1) + "%",
           util::Table::fmt(100.0 * (1.0 - aware_ms / blind_ms), 1) + "%"});
    }
  }
  std::printf("%s\nExecution-time batching is the dominant saving (the "
              "paper's ~2x BALB-Ind\ngain); decision-rule awareness adds a "
              "smaller margin by keeping same-size\nobjects together when "
              "coverage sets allow it.\n",
              table.to_string().c_str());
  return 0;
}

// Figure 2 reproduction: temporal variation of object workload across
// cameras. Samples the number of visible objects per camera once every
// 2 seconds over the S1 intersection scenario, as the paper does for its
// five AIC21 cameras. Expect: strong fluctuation with the traffic-light
// period, and different cameras peaking at different times.

#include <cstdio>

#include "sim/dataset.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;

  sim::ScenarioPlayer player(sim::make_s1(1), 90.0);
  const std::size_t cameras = player.camera_count();

  std::printf("== Figure 2: object workload per camera over time (S1) ==\n\n");
  std::vector<std::string> header{"t (s)"};
  for (std::size_t c = 0; c < cameras; ++c)
    header.push_back("cam" + std::to_string(c + 1));
  util::Table table(header);

  std::vector<util::RunningStats> stats(cameras);
  // 120 seconds at 10 FPS, sampled every 2 s (every 20th frame).
  for (int sample = 0; sample < 60; ++sample) {
    sim::MultiFrame frame;
    for (int skip = 0; skip < 20; ++skip) frame = player.next();
    std::vector<std::string> row{util::Table::fmt(2.0 * (sample + 1), 0)};
    for (std::size_t c = 0; c < cameras; ++c) {
      row.push_back(std::to_string(frame.per_camera[c].size()));
      stats[c].add(static_cast<double>(frame.per_camera[c].size()));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());

  util::Table summary({"camera", "mean", "min", "max", "stddev"});
  for (std::size_t c = 0; c < cameras; ++c) {
    summary.add_row({"cam" + std::to_string(c + 1),
                     util::Table::fmt(stats[c].mean(), 2),
                     util::Table::fmt(stats[c].min(), 0),
                     util::Table::fmt(stats[c].max(), 0),
                     util::Table::fmt(stats[c].stddev(), 2)});
  }
  std::printf("%s\nBoth absolute and relative workload vary substantially "
              "over time,\nmotivating dynamic (not static) object-to-camera "
              "assignment.\n",
              summary.to_string().c_str());
  return 0;
}

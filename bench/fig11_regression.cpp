// Figure 11 reproduction: cross-camera association *regression* — mean
// absolute error (pixels, over the 4 box coordinates) of the KNN mapping
// against homography, linear regression and RANSAC on S1-S3.
// Expected shape (paper): KNN lowest (or tied-lowest) MAE everywhere;
// homography much worse because a plane-induced transform cannot model 3-D
// box extent under 90/180-degree view changes.

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>

#include "assoc/association.hpp"
#include "ml/homography.hpp"
#include "ml/knn.hpp"
#include "ml/linear_model.hpp"
#include "ml/ransac.hpp"
#include "sim/dataset.hpp"
#include "util/table.hpp"

namespace {

using mvs::ml::VectorRegressor;

struct ModelSpec {
  const char* name;
  std::function<std::unique_ptr<VectorRegressor>()> make;
};

}  // namespace

int main() {
  using namespace mvs;

  const ModelSpec models[] = {
      {"KNN", [] { return std::make_unique<ml::KnnRegressor>(5); }},
      {"Homography", [] { return std::make_unique<ml::HomographyRegressor>(); }},
      {"Linear", [] { return std::make_unique<ml::LinearRegression>(); }},
      {"RANSAC", [] { return std::make_unique<ml::RansacRegressor>(); }},
  };

  std::printf("== Figure 11: association regression, MAE (pixels) ==\n\n");
  util::Table table({"scenario", "model", "MAE (px)", "test pairs"});

  for (const char* scenario : {"S1", "S2", "S3"}) {
    sim::ScenarioPlayer player(sim::make_scenario(scenario, 17), 60.0);
    const auto train = player.take(250);
    const auto test = player.take(250);
    const std::size_t m = player.camera_count();
    const auto& cams = player.scenario().cameras;

    for (const ModelSpec& spec : models) {
      double abs_error = 0.0;
      std::size_t terms = 0;
      std::size_t pairs = 0;
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          if (i == j) continue;
          const auto wi = static_cast<double>(cams[i].model.width());
          const auto hi = static_cast<double>(cams[i].model.height());
          const auto wj = static_cast<double>(cams[j].model.width());
          const auto hj = static_cast<double>(cams[j].model.height());
          const assoc::PairDataset train_ds =
              assoc::build_pair_dataset(train, i, j, wi, hi, wj, hj);
          const assoc::PairDataset test_ds =
              assoc::build_pair_dataset(test, i, j, wi, hi, wj, hj);
          if (train_ds.x_pos.size() < 20 || test_ds.x_pos.empty()) continue;

          auto model = spec.make();
          model->fit(train_ds.x_pos, train_ds.y_pos);
          for (std::size_t k = 0; k < test_ds.x_pos.size(); ++k) {
            const ml::Feature pred = model->predict(test_ds.x_pos[k]);
            const ml::Feature& truth = test_ds.y_pos[k];
            // De-normalize: cx/w scale by frame width, cy/h by height.
            abs_error += std::abs(pred[0] - truth[0]) * wj;
            abs_error += std::abs(pred[1] - truth[1]) * hj;
            abs_error += std::abs(pred[2] - truth[2]) * wj;
            abs_error += std::abs(pred[3] - truth[3]) * hj;
            terms += 4;
            ++pairs;
          }
        }
      }
      table.add_row({scenario, spec.name,
                     util::Table::fmt(terms ? abs_error / terms : 0.0, 1),
                     std::to_string(pairs)});
    }
  }
  std::printf("%s\nHomography fails because bounding boxes are shaped by 3-D "
              "object extent,\nnot only ground-plane position; the "
              "data-driven KNN lookup absorbs that.\n",
              table.to_string().c_str());
  return 0;
}

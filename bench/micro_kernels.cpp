// Microbenchmarks (google-benchmark) for the kernels on the per-frame
// critical path: Hungarian matching, KNN queries, optical flow, the central
// BALB stage, greedy batch planning, and message serialization.

#include <benchmark/benchmark.h>

#include "core/central_balb.hpp"
#include "gpu/batch_planner.hpp"
#include "matching/hungarian.hpp"
#include "ml/kdtree.hpp"
#include "ml/knn.hpp"
#include "net/messages.hpp"
#include "util/rng.hpp"
#include "vision/optical_flow.hpp"
#include "vision/renderer.hpp"

namespace {

using namespace mvs;

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<double> cost(n * n);
  for (double& v : cost) v = rng.uniform(0, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::solve_assignment(cost, n, n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_KnnQuery(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<ml::Feature> xs;
  std::vector<int> ys;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back({rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()});
    ys.push_back(rng.bernoulli(0.5) ? 1 : 0);
  }
  ml::KnnClassifier knn(5);
  knn.fit(xs, ys);
  const ml::Feature q = {0.5, 0.5, 0.1, 0.1};
  for (auto _ : state) benchmark::DoNotOptimize(knn.predict(q));
}
BENCHMARK(BM_KnnQuery)->Arg(500)->Arg(2000)->Arg(8000);

void BM_KdTreeVsBrute(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool use_tree = state.range(1) != 0;
  util::Rng rng(6);
  std::vector<ml::Feature> xs;
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back({rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()});
  const ml::KdTree tree(xs);
  const ml::Feature q = {0.5, 0.5, 0.1, 0.1};
  for (auto _ : state) {
    if (use_tree)
      benchmark::DoNotOptimize(tree.nearest(q, 5));
    else
      benchmark::DoNotOptimize(ml::k_nearest(xs, q, 5));
  }
}
BENCHMARK(BM_KdTreeVsBrute)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({16000, 0})
    ->Args({16000, 1});

void BM_Renderer(benchmark::State& state) {
  vision::Renderer::Config rc;
  rc.width = static_cast<int>(state.range(0));
  rc.height = rc.width * 9 / 16;
  const vision::Renderer renderer(rc);
  const geom::BBox box{rc.width / 3.0, rc.height / 3.0, 30, 20};
  long frame = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(renderer.render({{1, box}}, frame++, 7));
}
BENCHMARK(BM_Renderer)->Arg(320)->Arg(640)->Unit(benchmark::kMillisecond);

void BM_RendererInto(benchmark::State& state) {
  vision::Renderer::Config rc;
  rc.width = static_cast<int>(state.range(0));
  rc.height = rc.width * 9 / 16;
  const vision::Renderer renderer(rc);
  const geom::BBox box{rc.width / 3.0, rc.height / 3.0, 30, 20};
  vision::Image out;
  long frame = 0;
  for (auto _ : state) {
    renderer.render_into({{1, box}}, frame++, 7, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RendererInto)->Arg(320)->Arg(640)->Unit(benchmark::kMillisecond);

void BM_Downsample(benchmark::State& state) {
  vision::Renderer::Config rc;
  rc.width = static_cast<int>(state.range(0));
  rc.height = rc.width * 9 / 16;
  const vision::Renderer renderer(rc);
  const vision::Image img = renderer.render({}, 0, 7);
  for (auto _ : state) benchmark::DoNotOptimize(img.downsampled());
}
BENCHMARK(BM_Downsample)->Arg(320)->Arg(640);

void BM_DownsampleInto(benchmark::State& state) {
  vision::Renderer::Config rc;
  rc.width = static_cast<int>(state.range(0));
  rc.height = rc.width * 9 / 16;
  const vision::Renderer renderer(rc);
  const vision::Image img = renderer.render({}, 0, 7);
  vision::Image out;
  for (auto _ : state) {
    img.downsample_into(out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DownsampleInto)->Arg(320)->Arg(640);

void BM_PaddedSad(benchmark::State& state) {
  vision::Renderer::Config rc;
  rc.width = 320;
  rc.height = 180;
  const vision::Renderer renderer(rc);
  const geom::BBox box{100, 60, 30, 20};
  const vision::Image a = renderer.render({{1, box}}, 0, 7);
  const vision::Image b = renderer.render({{1, box.shifted({3, 1})}}, 1, 7);
  vision::PaddedImage pa, pb;
  pa.assign(a, 16);
  pb.assign(b, 16);
  const int bs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::uint32_t total = 0;
    for (int y = 0; y + bs <= rc.height; y += bs)
      for (int x = 0; x + bs <= rc.width; x += bs)
        total += vision::padded_block_sad(pa, x, y, pb, x + 2, y + 1, bs);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PaddedSad)->Arg(8)->Arg(16);

void BM_OpticalFlow(benchmark::State& state) {
  vision::Renderer::Config rc;
  rc.width = static_cast<int>(state.range(0));
  rc.height = rc.width * 9 / 16;
  const vision::Renderer renderer(rc);
  const geom::BBox box{rc.width / 3.0, rc.height / 3.0, 30, 20};
  const vision::Image a = renderer.render({{1, box}}, 0, 7);
  const vision::Image b = renderer.render({{1, box.shifted({3, 1})}}, 1, 7);
  const vision::OpticalFlow flow;
  for (auto _ : state) benchmark::DoNotOptimize(flow.compute(a, b));
}
BENCHMARK(BM_OpticalFlow)->Arg(160)->Arg(320)->Arg(640)
    ->Unit(benchmark::kMillisecond);

void BM_OpticalFlowIncremental(benchmark::State& state) {
  // Steady-state pipeline path: render into the scratch frame, compute flow
  // against the cached previous pyramid, advance. One pyramid build per
  // frame and zero steady-state allocation.
  vision::Renderer::Config rc;
  rc.width = static_cast<int>(state.range(0));
  rc.height = rc.width * 9 / 16;
  const vision::Renderer renderer(rc);
  const geom::BBox box{rc.width / 3.0, rc.height / 3.0, 30, 20};
  const vision::OpticalFlow flow;
  vision::FlowScratch scratch;
  vision::FlowField field;
  renderer.render_into({{1, box}}, 0, 7, scratch.cur_frame());
  flow.rebase(scratch);
  long frame = 1;
  for (auto _ : state) {
    renderer.render_into({{1, box.shifted({3.0 * (frame % 2), 1})}}, frame, 7,
                         scratch.cur_frame());
    flow.compute(scratch, field);
    scratch.advance();
    benchmark::DoNotOptimize(field);
    ++frame;
  }
}
BENCHMARK(BM_OpticalFlowIncremental)->Arg(160)->Arg(320)->Arg(640)
    ->Unit(benchmark::kMillisecond);

void BM_CentralBalb(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(3);
  core::MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_xavier(), gpu::jetson_tx2(),
               gpu::jetson_tx2(), gpu::jetson_nano()};
  for (int j = 0; j < n; ++j) {
    core::ObjectSpec obj;
    obj.key = static_cast<std::uint64_t>(j);
    for (int c = 0; c < 5; ++c)
      if (rng.bernoulli(0.4)) obj.coverage.push_back(c);
    if (obj.coverage.empty()) obj.coverage.push_back(rng.uniform_int(0, 4));
    obj.size_class.assign(5, rng.uniform_int(0, 3));
    p.objects.push_back(std::move(obj));
  }
  for (auto _ : state) benchmark::DoNotOptimize(core::central_balb(p));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CentralBalb)->Arg(10)->Arg(50)->Arg(200)->Arg(1000)->Complexity();

void BM_BatchPlanner(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<geom::SizeClassId> tasks(static_cast<std::size_t>(state.range(0)));
  for (auto& t : tasks) t = rng.uniform_int(0, 3);
  const gpu::DeviceProfile device = gpu::jetson_tx2();
  for (auto _ : state)
    benchmark::DoNotOptimize(gpu::plan_batches(tasks, device));
}
BENCHMARK(BM_BatchPlanner)->Arg(16)->Arg(128);

void BM_DetectionListEncode(benchmark::State& state) {
  util::Rng rng(5);
  net::DetectionListMsg msg;
  msg.camera_id = 1;
  for (int i = 0; i < state.range(0); ++i) {
    detect::Detection d;
    d.box = {rng.uniform(0, 1000), rng.uniform(0, 600), 40, 30};
    d.score = 0.9;
    msg.detections.push_back(d);
  }
  for (auto _ : state) {
    const auto bytes = msg.encode();
    benchmark::DoNotOptimize(net::DetectionListMsg::decode(bytes));
  }
}
BENCHMARK(BM_DetectionListEncode)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();

#pragma once
// Shared fleet scale-sweep harness (bench_fleet --scale and bench_report).
//
// Hosts `sessions` synthetic-load sessions (fleet::SyntheticSource-backed —
// no vision stack, so 10k sessions admit in milliseconds) on a serving
// plane of `shards` shards and times admission and steady-state serving.
// Everything but the wall-clock columns is deterministic for a given
// (sessions, shards, ticks, seed).

#include <cstdint>
#include <memory>
#include <string>

#include "fleet/fleet_api.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace mvs::bench {

struct ScalePoint {
  int sessions = 0;
  int shards = 0;
  int ticks = 0;
  double admit_ms = 0.0;        ///< wall clock to admit the whole roster
  double run_ms = 0.0;          ///< wall clock for run(ticks)
  double ticks_per_sec = 0.0;   ///< serving throughput
  long frames = 0;              ///< session-frames served
  long shared_batches = 0;      ///< Σ shard-local merged batches
  long cross_batches_saved = 0; ///< second merge level's additional saving
  double cross_busy_saved_ms = 0.0;
  double total_queue_ms = 0.0;  ///< device-pool queueing (drains with shards)
  double mean_occupancy = 0.0;
  long migrations = 0;
};

/// Run one (sessions, shards) scale point. Sessions are synthetic copies of
/// `scenario` with consecutive seeds; rebalancing scans every 20 ticks.
inline ScalePoint run_scale_point(const std::string& scenario, int sessions,
                                  int shards, int ticks, std::uint64_t seed,
                                  int threads = 0) {
  fleet::FleetConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.rebalance_interval = 20;
  const std::unique_ptr<fleet::FleetApi> fleet = fleet::make_fleet(cfg);

  ScalePoint point;
  point.sessions = sessions;
  point.shards = shards;
  point.ticks = ticks;

  util::Stopwatch admit_watch;
  for (int s = 0; s < sessions; ++s) {
    fleet::SessionSpec spec;
    spec.name = scenario + "#" + std::to_string(s);
    spec.scenario = scenario;
    spec.synthetic = true;
    spec.pipeline.seed = seed + static_cast<std::uint64_t>(s);
    fleet->admit(spec);
  }
  point.admit_ms = admit_watch.elapsed_ms();

  util::Stopwatch run_watch;
  fleet->run(ticks);
  point.run_ms = run_watch.elapsed_ms();
  point.ticks_per_sec = point.run_ms > 0.0
                            ? 1000.0 * static_cast<double>(ticks) / point.run_ms
                            : 0.0;

  const fleet::FleetSnapshot snap = fleet->snapshot();
  for (const fleet::SessionSnapshot& s : snap.sessions)
    point.frames += s.frames;
  point.shared_batches = snap.shared_batches;
  point.cross_batches_saved = snap.cross_batches_saved;
  point.cross_busy_saved_ms = snap.cross_busy_saved_ms;
  point.total_queue_ms = snap.total_queue_ms;
  point.mean_occupancy = snap.mean_occupancy;
  point.migrations = snap.migrations;
  return point;
}

inline util::Json scale_point_json(const ScalePoint& p) {
  util::Json::Object o;
  o["sessions"] = util::Json(p.sessions);
  o["shards"] = util::Json(p.shards);
  o["ticks"] = util::Json(p.ticks);
  o["admit_ms"] = util::Json(p.admit_ms);
  o["run_ms"] = util::Json(p.run_ms);
  o["ticks_per_sec"] = util::Json(p.ticks_per_sec);
  o["frames"] = util::Json(static_cast<double>(p.frames));
  o["shared_batches"] = util::Json(static_cast<double>(p.shared_batches));
  o["cross_batches_saved"] =
      util::Json(static_cast<double>(p.cross_batches_saved));
  o["cross_busy_saved_ms"] = util::Json(p.cross_busy_saved_ms);
  o["total_queue_ms"] = util::Json(p.total_queue_ms);
  o["mean_occupancy"] = util::Json(p.mean_occupancy);
  o["migrations"] = util::Json(static_cast<double>(p.migrations));
  return util::Json(std::move(o));
}

}  // namespace mvs::bench

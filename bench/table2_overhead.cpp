// Table II reproduction: per-frame scheduling-framework overhead breakdown
// (measured wall-clock): central stage (association + central BALB,
// amortized over the horizon), tracking (optical flow + projection +
// slicing, max across cameras), distributed BALB, and batching (batch
// planning + input-tensor assembly). Network transfer is modeled from
// serialized bytes and reported separately.
// Expected shape (paper): tracking and batching dominate; distributed BALB
// is negligible (<0.25 ms); central stage small because it is amortized.

#include <cstdio>

#include "runtime/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;

  std::printf("== Table II: per-frame overhead breakdown (ms, wall-clock) ==\n\n");
  util::Table table({"scenario", "central stage", "tracking",
                     "distributed BALB", "batching", "total", "comm (model)"});

  for (const char* scenario : {"S1", "S2", "S3"}) {
    runtime::PipelineConfig cfg;
    cfg.policy = runtime::Policy::kBalb;
    cfg.horizon_frames = 10;
    cfg.training_frames = 200;
    cfg.seed = 101;
    runtime::Pipeline pipeline(scenario, cfg);
    const auto result = pipeline.run(200);
    const double central = result.mean_central_ms();
    const double tracking = result.mean_tracking_ms();
    const double distributed = result.mean_distributed_ms();
    const double batching = result.mean_batching_ms();
    table.add_row({scenario, util::Table::fmt(central, 2),
                   util::Table::fmt(tracking, 2),
                   util::Table::fmt(distributed, 3),
                   util::Table::fmt(batching, 2),
                   util::Table::fmt(central + tracking + distributed + batching, 2),
                   util::Table::fmt(result.mean_comm_ms(), 2)});
  }
  std::printf("%s\nPaper reference (their Jetson testbed): central 1.1-2.6 ms,"
              " tracking 11.6-21.4 ms,\ndistributed 0.08-0.22 ms, batching "
              "7.5-19.9 ms, total 29.1-35.8 ms per frame.\n",
              table.to_string().c_str());
  return 0;
}

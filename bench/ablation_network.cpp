// Network ablation: how much do imperfect links cost the scheduler?
//
// Part 1 — loss/jitter sweep (S3, BALB vs BALB-Cen): packet loss delays or
// drops key-frame uplinks, shrinking the central plan; jitter stretches the
// cycle and triggers honest spurious retransmissions. BALB's distributed
// stage should absorb most of the damage that cripples the
// centralized-only variant.
//
// Part 2 — mid-run camera dropout (S1, BALB): one camera goes dark for a
// window of the run. The acceptance bound: recall degradation must stay
// below the dropped camera's solo-coverage share — the fraction of
// ground-truth observations only that camera sees — because BALB re-plans
// over the survivors, so only solo-covered objects can actually be lost.

#include <cstdio>
#include <map>
#include <set>

#include "runtime/pipeline.hpp"
#include "sim/dataset.hpp"
#include "util/table.hpp"

namespace {

using namespace mvs;

runtime::PipelineResult run_once(const std::string& scenario,
                                 runtime::Policy policy,
                                 net::TransportKind transport,
                                 const netsim::FaultConfig& faults,
                                 int frames) {
  runtime::PipelineConfig cfg;
  cfg.policy = policy;
  cfg.horizon_frames = 10;
  cfg.training_frames = 150;
  cfg.seed = 11;
  cfg.transport = transport;
  cfg.faults = faults;
  runtime::Pipeline pipeline(scenario, cfg);
  return pipeline.run(frames);
}

/// Fraction of ground-truth observations (frame, object) over the
/// evaluation window that are visible ONLY from `camera`. Replays the same
/// scenario stream the pipeline consumes (same seed, warmup and training
/// split).
double solo_coverage_share(const std::string& scenario, int camera,
                           int training_frames, int eval_frames) {
  sim::ScenarioPlayer player(sim::make_scenario(scenario, /*seed=*/11),
                             /*warmup_s=*/45.0);
  (void)player.take(training_frames);
  long solo = 0, total = 0;
  for (int f = 0; f < eval_frames; ++f) {
    const sim::MultiFrame mf = player.next();
    std::map<std::uint64_t, std::set<int>> seen_by;
    for (std::size_t c = 0; c < mf.per_camera.size(); ++c)
      for (const detect::GroundTruthObject& obj : mf.per_camera[c])
        seen_by[obj.id].insert(static_cast<int>(c));
    for (const auto& [id, cams] : seen_by) {
      ++total;
      solo += (cams.size() == 1 && cams.count(camera) > 0);
    }
  }
  return total > 0 ? static_cast<double>(solo) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace

int main() {
  constexpr int kFrames = 100;

  std::printf("== Ablation: network loss / jitter (S3, %d frames) ==\n\n",
              kFrames);
  util::Table sweep({"loss", "jitter_ms", "policy", "recall", "comm_ms",
                     "queue_ms", "retries", "drops"});
  for (const double loss : {0.0, 0.05, 0.15, 0.3}) {
    for (const double jitter : {0.0, 3.0}) {
      for (const auto policy :
           {runtime::Policy::kBalb, runtime::Policy::kBalbCen}) {
        netsim::FaultConfig faults;
        faults.loss_rate = loss;
        faults.jitter_ms = jitter;
        const auto result = run_once("S3", policy, net::TransportKind::kLossy,
                                     faults, kFrames);
        sweep.add_row({util::Table::fmt(loss, 2), util::Table::fmt(jitter, 1),
                       runtime::to_string(policy),
                       util::Table::fmt(result.object_recall, 3),
                       util::Table::fmt(result.mean_comm_ms(), 3),
                       util::Table::fmt(result.mean_queue_ms(), 3),
                       std::to_string(result.total_retries()),
                       std::to_string(result.total_dropped_msgs())});
      }
    }
  }
  std::printf("%s\n", sweep.to_string().c_str());

  std::printf("== Ablation: mid-run camera dropout (S1, BALB, %d frames) ==\n\n",
              kFrames);
  const netsim::FaultConfig no_faults;
  const auto baseline = run_once("S1", runtime::Policy::kBalb,
                                 net::TransportKind::kLossy, no_faults,
                                 kFrames);
  util::Table drop_table({"dropped cam", "window", "recall", "baseline",
                          "degradation", "solo share", "within bound"});
  bool all_within_bound = true;
  for (const int cam : {0, 2, 4}) {
    netsim::FaultConfig faults;
    faults.dropouts.push_back({cam, /*from=*/20, /*to=*/70});
    const auto result = run_once("S1", runtime::Policy::kBalb,
                                 net::TransportKind::kLossy, faults, kFrames);
    const double degradation = baseline.object_recall - result.object_recall;
    // The whole-run bound: the camera is dark for half the run, so its
    // whole-run solo share (computed over all evaluation frames) upper
    // bounds what the dropout can cost.
    const double solo = solo_coverage_share("S1", cam, 150, kFrames);
    const bool within = degradation < solo;
    all_within_bound = all_within_bound && within;
    drop_table.add_row({std::to_string(cam), "[20, 70)",
                        util::Table::fmt(result.object_recall, 3),
                        util::Table::fmt(baseline.object_recall, 3),
                        util::Table::fmt(degradation, 3),
                        util::Table::fmt(solo, 3), within ? "yes" : "NO"});
  }
  std::printf("%s\n", drop_table.to_string().c_str());
  std::printf("degradation < solo-coverage share for every camera: %s\n",
              all_within_bound ? "yes" : "NO");
  return all_within_bound ? 0 : 1;
}

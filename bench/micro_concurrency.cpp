// Concurrency micro-benchmarks for the lock-free hot path (DESIGN.md §11):
//   - ns per enqueue through the bounded MPMC ring under 2p/2c contention,
//     against the embedded mutex+condvar baseline queue it replaced
//   - ns per MVS_SPAN scope, enabled (SPSC ring record) and disabled
//   - ns per warm util::Pool acquire/release round trip
//   - steady-state pipeline ticks per second on the serving configuration
//
// Usage:
//   micro_concurrency [--reps 5] [--ops 50000] [--json out.json]
//
// Each metric is the median over --reps runs. The measurement loops live in
// bench/concurrency_measure.hpp so tools/bench_report times the same code.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "concurrency_measure.hpp"
#include "util/args.hpp"
#include "util/bench_info.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace mvs;
  const util::Args args = util::Args::parse(argc, argv);
  const int reps = args.int_or("reps", 5);
  benchcc::QueueContention contention;
  contention.ops_per_producer = args.int_or("ops", 50000);

  std::vector<double> ring, mutexq, span, span_off, pool, tps;
  for (int rep = 0; rep < reps; ++rep) {
    ring.push_back(benchcc::ring_enqueue_ns(contention));
    mutexq.push_back(benchcc::mutex_enqueue_ns(contention));
    span.push_back(benchcc::span_ns());
    span_off.push_back(benchcc::span_disabled_ns());
    pool.push_back(benchcc::pool_pair_ns());
    tps.push_back(benchcc::ticks_per_sec());
  }
  const double ring_ns = util::median(ring);
  const double mutex_ns = util::median(mutexq);
  const double span_ns = util::median(span);
  const double span_off_ns = util::median(span_off);
  const double pool_ns = util::median(pool);
  const double ticks = util::median(tps);
  const double speedup = ring_ns > 0.0 ? mutex_ns / ring_ns : 0.0;

  std::printf("reps=%d ops_per_producer=%ld producers=%d consumers=%d\n", reps,
              contention.ops_per_producer, contention.producers,
              contention.consumers);
  std::printf("ring_enqueue_ns=%.1f mutex_enqueue_ns=%.1f speedup=%.1fx\n",
              ring_ns, mutex_ns, speedup);
  std::printf("span_ns=%.1f span_disabled_ns=%.2f pool_pair_ns=%.1f\n",
              span_ns, span_off_ns, pool_ns);
  std::printf("pipeline_ticks_per_sec=%.1f\n", ticks);

  const std::string json_path = args.get_or("json", "");
  if (!json_path.empty()) {
    util::Json::Object result;
    result["reps"] = util::Json(reps);
    result["ops_per_producer"] =
        util::Json(static_cast<int>(contention.ops_per_producer));
    result["producers"] = util::Json(contention.producers);
    result["consumers"] = util::Json(contention.consumers);
    result["ring_enqueue_ns"] = util::Json(ring_ns);
    result["mutex_enqueue_ns"] = util::Json(mutex_ns);
    result["enqueue_speedup"] = util::Json(speedup);
    result["span_ns"] = util::Json(span_ns);
    result["span_disabled_ns"] = util::Json(span_off_ns);
    result["pool_pair_ns"] = util::Json(pool_ns);
    result["pipeline_ticks_per_sec"] = util::Json(ticks);

    util::Json::Object doc;
    doc["env"] = util::bench_env_json();
    doc["concurrency"] = util::Json(std::move(result));
    std::ofstream out(json_path);
    out << util::Json(std::move(doc)).dump() << '\n';
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

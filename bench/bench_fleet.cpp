// Fleet throughput-scaling benchmark: host 1..N identical sessions on one
// mvs::fleet serving plane and measure wall-clock serving throughput plus the
// cross-session batching advantage over N isolated deployments (the paper's
// single-deployment setting, reported by the arbiter as the isolated
// counterfactual of the SAME work).
//
// Usage:
//   bench_fleet [--scenario S2] [--sessions 4] [--ticks 40] [--slo-ms 0]
//               [--dispatch rr|weighted] [--threads 0] [--seed 42]
//               [--dispatch-overhead-ms 0] [--overhead-sweep-ms 2]
//               [--json out.json]
//   bench_fleet --scale [--scale-sessions 1000,4000,10000]
//               [--scale-shards 1,2,4,8] [--ticks 20] [--json out.json]
//
// Sweeps session counts 1..--sessions. Session construction (association
// training) happens outside the timed region; run(ticks) is timed. Batch and
// busy-time counters are deterministic for a given (scenario, seed, ticks);
// only the wall-clock columns vary run to run.
//
// --scale switches to the sharded-plane scaling sweep: synthetic-load
// sessions (no vision stack) hosted on ShardedFleet planes of each listed
// shard count, reporting ticks/sec, the second merge level's cross-shard
// batch savings, and device-pool queue drain (bench/fleet_scale.hpp).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <memory>

#include "bench/fleet_scale.hpp"
#include "fleet/fleet_api.hpp"
#include "util/args.hpp"
#include "util/bench_info.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mvs;
  const util::Args args = util::Args::parse(argc, argv, {"scale"});
  const std::string scenario = args.get_or("scenario", "S2");
  const int max_sessions = args.int_or("sessions", 4);
  const int ticks = args.int_or("ticks", 40);
  const auto seed = static_cast<std::uint64_t>(args.int_or("seed", 42));

  fleet::FleetConfig cfg;
  cfg.slo_ms = args.number_or("slo-ms", 0.0);
  cfg.threads = args.int_or("threads", 0);
  const auto dispatch = fleet::parse_dispatch(args.get_or("dispatch", "rr"));
  if (!dispatch) {
    std::fprintf(stderr, "unknown dispatch policy '%s'\n",
                 args.get_or("dispatch", "rr").c_str());
    return 1;
  }
  cfg.dispatch = *dispatch;
  cfg.dispatch_overhead_ms = args.number_or("dispatch-overhead-ms", 0.0);
  const double sweep_overhead_ms = args.number_or("overhead-sweep-ms", 2.0);
  if (max_sessions < 1 || ticks < 1) {
    std::fprintf(stderr, "--sessions and --ticks must be >= 1\n");
    return 1;
  }

  // Sharded-plane scaling sweep (synthetic sessions; see fleet_scale.hpp).
  if (args.has("scale")) {
    const auto parse_int_list = [](const std::string& spec,
                                   std::vector<int>* out) {
      std::size_t at = 0;
      while (at < spec.size()) {
        std::size_t comma = spec.find(',', at);
        if (comma == std::string::npos) comma = spec.size();
        try {
          out->push_back(std::stoi(spec.substr(at, comma - at)));
        } catch (...) {
          return false;
        }
        at = comma + 1;
      }
      return !out->empty();
    };
    std::vector<int> session_counts, shard_counts;
    if (!parse_int_list(args.get_or("scale-sessions", "1000"),
                        &session_counts) ||
        !parse_int_list(args.get_or("scale-shards", "1,2,4,8"),
                        &shard_counts)) {
      std::fprintf(stderr, "bad --scale-sessions / --scale-shards list\n");
      return 1;
    }
    const int scale_ticks = args.int_or("ticks", 20);

    util::Table scale_table({"sessions", "shards", "admit_ms", "run_ms",
                             "ticks/s", "frames", "batches", "x-saved",
                             "x-saved_ms", "queue_ms", "migrations"});
    util::Json::Array scale_json;
    for (const int n : session_counts) {
      for (const int k : shard_counts) {
        const bench::ScalePoint p = bench::run_scale_point(
            scenario, n, k, scale_ticks, seed, cfg.threads);
        scale_table.add_row(
            {std::to_string(p.sessions), std::to_string(p.shards),
             util::Table::fmt(p.admit_ms, 1), util::Table::fmt(p.run_ms, 1),
             util::Table::fmt(p.ticks_per_sec, 1), std::to_string(p.frames),
             std::to_string(p.shared_batches),
             std::to_string(p.cross_batches_saved),
             util::Table::fmt(p.cross_busy_saved_ms, 1),
             util::Table::fmt(p.total_queue_ms, 1),
             std::to_string(p.migrations)});
        scale_json.push_back(bench::scale_point_json(p));
      }
    }
    std::printf("scenario=%s ticks=%d synthetic scale sweep\n",
                scenario.c_str(), scale_ticks);
    std::printf("%s", scale_table.to_string().c_str());

    const std::string json_path = args.get_or("json", "");
    if (!json_path.empty()) {
      util::Json::Object body;
      body["scenario"] = util::Json(scenario);
      body["ticks"] = util::Json(scale_ticks);
      body["scale"] = util::Json(std::move(scale_json));
      util::Json::Object doc;
      doc["env"] = util::bench_env_json();
      doc["fleet"] = util::Json(std::move(body));
      std::ofstream out(json_path);
      out << util::Json(std::move(doc)).dump() << '\n';
      std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
  }

  util::Table table({"sessions", "cameras", "frames", "run_ms", "frames/s",
                     "batches", "batches_iso", "saved%", "busy_ms", "busy_iso",
                     "occupancy", "p95_ms"});
  util::Json::Array sweep;

  for (int n = 1; n <= max_sessions; ++n) {
    const std::unique_ptr<fleet::FleetApi> fleet = fleet::make_fleet(cfg);
    std::vector<fleet::SessionHandle> handles;
    for (int s = 0; s < n; ++s) {
      fleet::SessionSpec spec;
      spec.name = scenario + "#" + std::to_string(s);
      spec.scenario = scenario;
      spec.pipeline.seed = seed + static_cast<std::uint64_t>(s);
      const fleet::AdmitResult admit = fleet->admit(spec);
      if (!admit.admitted) {
        std::fprintf(stderr, "session %d rejected at slo=%.1f ms\n", s,
                     cfg.slo_ms);
        return 1;
      }
      handles.push_back(admit.handle);
    }

    util::Stopwatch watch;
    fleet->run(ticks);
    const double run_ms = watch.elapsed_ms();

    const fleet::FleetSnapshot snap = fleet->snapshot();
    long frames = 0;
    int cameras = 0;
    double p95 = 0.0;
    for (const fleet::SessionSnapshot& s : snap.sessions) {
      frames += s.frames;
      p95 = std::max(p95, s.p95_ms);
    }
    for (const fleet::SessionHandle h : handles) {
      const runtime::PipelineResult r = fleet->result(h);
      cameras += static_cast<int>(
          r.frames.empty() ? 0 : r.frames.front().camera_infer_ms.size());
    }
    const double fps =
        run_ms > 0.0 ? 1000.0 * static_cast<double>(frames) / run_ms : 0.0;
    const double saved =
        snap.isolated_batches > 0
            ? 100.0 *
                  static_cast<double>(snap.isolated_batches -
                                      snap.shared_batches) /
                  static_cast<double>(snap.isolated_batches)
            : 0.0;

    table.add_row({std::to_string(n), std::to_string(cameras),
                   std::to_string(frames), util::Table::fmt(run_ms, 1),
                   util::Table::fmt(fps, 1),
                   std::to_string(snap.shared_batches),
                   std::to_string(snap.isolated_batches),
                   util::Table::fmt(saved, 1),
                   util::Table::fmt(snap.shared_busy_ms, 1),
                   util::Table::fmt(snap.isolated_busy_ms, 1),
                   util::Table::fmt(snap.mean_occupancy, 2),
                   util::Table::fmt(p95, 1)});

    util::Json::Object point;
    point["sessions"] = util::Json(n);
    point["cameras"] = util::Json(cameras);
    point["frames"] = util::Json(static_cast<double>(frames));
    point["run_ms"] = util::Json(run_ms);
    point["frames_per_sec"] = util::Json(fps);
    point["shared_batches"] = util::Json(static_cast<double>(snap.shared_batches));
    point["isolated_batches"] =
        util::Json(static_cast<double>(snap.isolated_batches));
    point["batch_savings_pct"] = util::Json(saved);
    point["shared_busy_ms"] = util::Json(snap.shared_busy_ms);
    point["isolated_busy_ms"] = util::Json(snap.isolated_busy_ms);
    point["mean_occupancy"] = util::Json(snap.mean_occupancy);
    point["p95_ms"] = util::Json(p95);
    sweep.push_back(util::Json(std::move(point)));
  }

  // Elastic device-pool sweep: at the largest session count, grow every
  // accelerator class pool 1..3 devices and watch the queueing delay drain
  // (Fleet::scale_devices; the arbiter list-schedules merged batches over
  // each pool). Each width runs twice: with the ideal overhead-free
  // dispatcher and with a fixed per-batch dispatch cost
  // (--overhead-sweep-ms) serialized through one dispatcher per class —
  // the overheaded rows stop scaling linearly with pool width, which is
  // what real accelerator pools do.
  util::Table elastic_table({"devices/class", "overhead_ms", "p95_ms",
                             "queue_ms", "busy_ms", "occupancy"});
  util::Json::Array elastic;
  for (int multiplier = 1; multiplier <= 3; ++multiplier) {
    for (const double overhead : {0.0, sweep_overhead_ms}) {
      fleet::FleetConfig run_cfg = cfg;
      run_cfg.dispatch_overhead_ms = overhead;
      const std::unique_ptr<fleet::FleetApi> fleet = fleet::make_fleet(run_cfg);
      for (int s = 0; s < max_sessions; ++s) {
        fleet::SessionSpec spec;
        spec.name = scenario + "#" + std::to_string(s);
        spec.scenario = scenario;
        spec.pipeline.seed = seed + static_cast<std::uint64_t>(s);
        if (!fleet->admit(spec).admitted) {
          std::fprintf(stderr, "session %d rejected at slo=%.1f ms\n", s,
                       cfg.slo_ms);
          return 1;
        }
      }
      for (const auto& [name, count] : fleet->snapshot().device_pools)
        fleet->scale_devices(name, multiplier - count);
      fleet->run(ticks);

      const fleet::FleetSnapshot snap = fleet->snapshot();
      double p95 = 0.0;
      for (const fleet::SessionSnapshot& s : snap.sessions)
        p95 = std::max(p95, s.p95_ms);
      elastic_table.add_row({std::to_string(multiplier),
                             util::Table::fmt(overhead, 1),
                             util::Table::fmt(p95, 1),
                             util::Table::fmt(snap.total_queue_ms, 1),
                             util::Table::fmt(snap.shared_busy_ms, 1),
                             util::Table::fmt(snap.mean_occupancy, 2)});
      util::Json::Object point;
      point["devices_per_class"] = util::Json(multiplier);
      point["dispatch_overhead_ms"] = util::Json(overhead);
      point["sessions"] = util::Json(max_sessions);
      point["p95_ms"] = util::Json(p95);
      point["total_queue_ms"] = util::Json(snap.total_queue_ms);
      point["shared_busy_ms"] = util::Json(snap.shared_busy_ms);
      point["mean_occupancy"] = util::Json(snap.mean_occupancy);
      elastic.push_back(util::Json(std::move(point)));
    }
  }

  std::printf("scenario=%s ticks=%d dispatch=%s slo_ms=%.1f\n",
              scenario.c_str(), ticks, fleet::to_string(cfg.dispatch),
              cfg.slo_ms);
  std::printf("%s", table.to_string().c_str());
  std::printf("elastic pools at %d sessions:\n%s", max_sessions,
              elastic_table.to_string().c_str());

  const std::string json_path = args.get_or("json", "");
  if (!json_path.empty()) {
    util::Json::Object body;
    body["scenario"] = util::Json(scenario);
    body["ticks"] = util::Json(ticks);
    body["dispatch"] = util::Json(fleet::to_string(cfg.dispatch));
    body["slo_ms"] = util::Json(cfg.slo_ms);
    body["sweep"] = util::Json(std::move(sweep));
    body["elastic"] = util::Json(std::move(elastic));

    util::Json::Object doc;
    doc["env"] = util::bench_env_json();
    doc["fleet"] = util::Json(std::move(body));
    std::ofstream out(json_path);
    out << util::Json(std::move(doc)).dump() << '\n';
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

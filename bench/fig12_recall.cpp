// Figure 12 reproduction: object recall of Full / BALB-Ind / BALB-Cen /
// BALB / SP on scenarios S1-S3.
// Expected shape (paper): Full is the recall upper bound; BALB-Ind nearly
// matches it (tracking-based slicing costs almost nothing); complete BALB
// stays close; BALB-Cen degrades on busy S3 (no distributed stage to adopt
// mid-horizon arrivals); SP trails BALB.

#include <cstdio>

#include "runtime/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;
  constexpr int kFrames = 200;

  const runtime::Policy policies[] = {
      runtime::Policy::kFull, runtime::Policy::kBalbInd,
      runtime::Policy::kBalbCen, runtime::Policy::kBalb,
      runtime::Policy::kStaticPartition};

  std::printf("== Figure 12: object recall by scheduling policy ==\n");
  std::printf("(hardware per Table I -- S1: 2x Xavier + 2x TX2 + 1x Nano, "
              "S2: Xavier + Nano, S3: Xavier + TX2 + Nano)\n\n");
  util::Table table({"scenario", "Full", "BALB-Ind", "BALB-Cen", "BALB", "SP"});

  for (const char* scenario : {"S1", "S2", "S3"}) {
    std::vector<std::string> row{scenario};
    for (runtime::Policy policy : policies) {
      runtime::PipelineConfig cfg;
      cfg.policy = policy;
      cfg.horizon_frames = 10;
      cfg.training_frames = 200;
      cfg.seed = 101;
      runtime::Pipeline pipeline(scenario, cfg);
      const auto result = pipeline.run(kFrames);
      row.push_back(util::Table::fmt(result.object_recall, 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\nFull-frame inspection is the recall upper bound; the "
              "complete BALB stays\nclose while BALB-Cen drops on busy S3 "
              "(mid-horizon arrivals are only\npicked up at the next key "
              "frame without the distributed stage).\n",
              table.to_string().c_str());
  return 0;
}

// Observability overhead micro-bench: proves the null-sink claim (disabled
// instrumentation = one branch on one atomic flag) and measures the
// end-to-end cost of obs on the pipeline hot path.
//
// Three parts:
//   1. macro ns/op — tight loops over MVS_COUNT / MVS_HIST / MVS_SPAN with
//      instrumentation disabled vs enabled, plus the critical-path
//      attribution record path (critical_path().record + recorder()
//      .note_frame behind the attribution gate): the disabled cost must be
//      one relaxed atomic load + branch (~2.5 ns, DESIGN.md §14);
//   2. pipeline A/B — bench_pipeline's timed region (fresh Pipeline per rep,
//      run(frames) timed) with obs off vs on; the off-median must stay
//      within 1% of the committed BENCH_pipeline.json baseline, which CI
//      checks as a non-fatal report step;
//   3. paced attribution A/B — the rt::RtRunner timed region (the
//      attribution producer) with attribution off vs on, obs disabled
//      throughout.
//
// Usage:
//   bench_obs [--frames 60] [--reps 3] [--iters 2000000] [--json out.json]

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "rt/runner.hpp"
#include "runtime/pipeline.hpp"
#include "util/args.hpp"
#include "util/bench_info.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace {

volatile long long g_sink = 0;  // defeats dead-code elimination

double count_ns_per_op(long iters) {
  mvs::util::Stopwatch watch;
  for (long i = 0; i < iters; ++i) {
    MVS_COUNT("bench.counter", 1);
    g_sink = g_sink + 1;
  }
  return watch.elapsed_ms() * 1e6 / static_cast<double>(iters);
}

double hist_ns_per_op(long iters) {
  mvs::util::Stopwatch watch;
  for (long i = 0; i < iters; ++i) {
    MVS_HIST("bench.hist", static_cast<double>(i & 1023));
    g_sink = g_sink + 1;
  }
  return watch.elapsed_ms() * 1e6 / static_cast<double>(iters);
}

double span_ns_per_op(long iters) {
  mvs::util::Stopwatch watch;
  for (long i = 0; i < iters; ++i) {
    MVS_SPAN("bench.span");
    g_sink = g_sink + 1;
  }
  return watch.elapsed_ms() * 1e6 / static_cast<double>(iters);
}

// The attribution hot path exactly as the producers run it: gate check,
// stack-filled FrameAttribution, CriticalPath record + recorder append.
double attr_ns_per_op(long iters) {
  mvs::util::Stopwatch watch;
  for (long i = 0; i < iters; ++i) {
    if (mvs::obs::attribution_enabled()) {
      mvs::obs::FrameAttribution fa;
      fa.id = mvs::obs::causal_id(0, static_cast<std::uint64_t>(i));
      fa.total_ms = static_cast<double>(i & 255);
      fa.segment_ms[static_cast<std::size_t>(mvs::obs::Segment::kGpu)] =
          fa.total_ms;
      mvs::obs::critical_path().record(fa);
      mvs::obs::recorder().note_frame(fa);
    }
    g_sink = g_sink + 1;
  }
  return watch.elapsed_ms() * 1e6 / static_cast<double>(iters);
}

double pipeline_median_ms(const std::string& scenario,
                          const mvs::runtime::PipelineConfig& cfg, int frames,
                          int reps) {
  std::vector<double> run_ms;
  for (int rep = 0; rep < reps; ++rep) {
    mvs::runtime::Pipeline pipeline(scenario, cfg);
    mvs::util::Stopwatch watch;
    (void)pipeline.run(frames);
    run_ms.push_back(watch.elapsed_ms());
  }
  return mvs::util::median(run_ms);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvs;
  const util::Args args = util::Args::parse(argc, argv);
  const std::string scenario = args.get_or("scenario", "S2");
  const int frames = args.int_or("frames", 60);
  const int reps = args.int_or("reps", 3);
  const long iters = static_cast<long>(args.number_or("iters", 2e6));

  // --- part 1: per-macro cost, disabled vs enabled ---
  obs::set_enabled(false);
  obs::reset();
  const double off_count = count_ns_per_op(iters);
  const double off_hist = hist_ns_per_op(iters);
  const double off_span = span_ns_per_op(iters);
  const double off_attr = attr_ns_per_op(iters);
  obs::set_enabled(true);
  const double on_count = count_ns_per_op(iters);
  const double on_hist = hist_ns_per_op(iters);
  const double on_span = span_ns_per_op(iters);
  obs::set_enabled(false);
  obs::set_attribution_enabled(true);
  const double on_attr = attr_ns_per_op(iters);
  obs::set_attribution_enabled(false);
  obs::reset();

  std::printf("macro ns/op (%ld iters)      disabled   enabled\n", iters);
  std::printf("  MVS_COUNT                  %8.2f  %8.2f\n", off_count, on_count);
  std::printf("  MVS_HIST                   %8.2f  %8.2f\n", off_hist, on_hist);
  std::printf("  MVS_SPAN                   %8.2f  %8.2f\n", off_span, on_span);
  std::printf("  attribution record         %8.2f  %8.2f\n", off_attr, on_attr);

  // --- part 2: pipeline A/B ---
  runtime::PipelineConfig cfg;
  cfg.policy = runtime::Policy::kBalb;
  cfg.seed = 42;
  const double pipe_off = pipeline_median_ms(scenario, cfg, frames, reps);
  obs::set_enabled(true);
  const double pipe_on = pipeline_median_ms(scenario, cfg, frames, reps);
  obs::set_enabled(false);
  obs::reset();
  const double overhead_pct =
      pipe_off > 0.0 ? 100.0 * (pipe_on - pipe_off) / pipe_off : 0.0;

  std::printf("pipeline %s x%d frames (median of %d reps):\n", scenario.c_str(),
              frames, reps);
  std::printf("  obs off %.2f ms | obs on %.2f ms | overhead %.2f%%\n",
              pipe_off, pipe_on, overhead_pct);

  // --- part 3: paced attribution A/B ---
  runtime::RtConfig rtc;
  const auto paced_median_ms = [&] {
    std::vector<double> run_ms;
    for (int rep = 0; rep < reps; ++rep) {
      rt::RtRunner runner(scenario, cfg, rtc);
      util::Stopwatch watch;
      (void)runner.run(frames);
      run_ms.push_back(watch.elapsed_ms());
    }
    return util::median(std::move(run_ms));
  };
  const double paced_off = paced_median_ms();
  obs::set_attribution_enabled(true);
  const double paced_attr = paced_median_ms();
  obs::set_attribution_enabled(false);
  obs::reset();
  const double attr_overhead_pct =
      paced_off > 0.0 ? 100.0 * (paced_attr - paced_off) / paced_off : 0.0;
  std::printf("paced %s x%d frames (median of %d reps):\n", scenario.c_str(),
              frames, reps);
  std::printf("  attribution off %.2f ms | on %.2f ms | overhead %.2f%%\n",
              paced_off, paced_attr, attr_overhead_pct);

  const std::string json_path = args.get_or("json", "");
  if (!json_path.empty()) {
    util::Json::Object result;
    result["iters"] = util::Json(static_cast<double>(iters));
    result["count_ns_disabled"] = util::Json(off_count);
    result["count_ns_enabled"] = util::Json(on_count);
    result["hist_ns_disabled"] = util::Json(off_hist);
    result["hist_ns_enabled"] = util::Json(on_hist);
    result["span_ns_disabled"] = util::Json(off_span);
    result["span_ns_enabled"] = util::Json(on_span);
    result["attr_ns_disabled"] = util::Json(off_attr);
    result["attr_ns_enabled"] = util::Json(on_attr);
    result["pipeline_off_ms"] = util::Json(pipe_off);
    result["pipeline_on_ms"] = util::Json(pipe_on);
    result["pipeline_overhead_pct"] = util::Json(overhead_pct);
    result["paced_off_ms"] = util::Json(paced_off);
    result["paced_attr_ms"] = util::Json(paced_attr);
    result["attr_overhead_pct"] = util::Json(attr_overhead_pct);
    util::Json::Object doc;
    doc["env"] = util::bench_env_json();
    doc["obs"] = util::Json(std::move(result));
    std::ofstream out(json_path);
    out << util::Json(std::move(doc)).dump() << '\n';
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// Ablation B: the object visit order in Algorithm 1. The paper sorts by
// ascending coverage-set size (least flexible first, ties toward larger
// sizes). Compares that order against descending and input order on random
// instances, including the gap to the exhaustive optimum on small instances.

#include <cstdio>

#include "core/baselines.hpp"
#include "core/central_balb.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

mvs::core::MvsProblem random_instance(mvs::util::Rng& rng, int n) {
  using namespace mvs;
  core::MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_tx2(), gpu::jetson_nano()};
  for (int j = 0; j < n; ++j) {
    core::ObjectSpec obj;
    obj.key = static_cast<std::uint64_t>(j);
    for (int c = 0; c < 3; ++c)
      if (rng.bernoulli(0.55)) obj.coverage.push_back(c);
    if (obj.coverage.empty()) obj.coverage.push_back(rng.uniform_int(0, 2));
    obj.size_class.assign(3, rng.uniform_int(0, 3));
    p.objects.push_back(std::move(obj));
  }
  return p;
}

}  // namespace

int main() {
  using namespace mvs;

  std::printf("== Ablation: object ordering in Algorithm 1 ==\n\n");

  // Part 1: against the exhaustive optimum (small instances).
  {
    util::Rng rng(3);
    util::RunningStats asc, desc, input;
    for (int trial = 0; trial < 60; ++trial) {
      const core::MvsProblem p = random_instance(rng, 7);
      const double best =
          core::recomputed_system_latency(p, core::optimal_bruteforce(p));
      auto ratio = [&](core::CentralBalbOptions::Order order) {
        core::CentralBalbOptions options;
        options.order = order;
        return core::recomputed_system_latency(p,
                                               core::central_balb(p, options)) /
               best;
      };
      asc.add(ratio(core::CentralBalbOptions::Order::kCoverageAscending));
      desc.add(ratio(core::CentralBalbOptions::Order::kCoverageDescending));
      input.add(ratio(core::CentralBalbOptions::Order::kInputOrder));
    }
    util::Table table({"order", "mean ratio to optimum", "worst ratio"});
    table.add_row({"coverage ascending (paper)", util::Table::fmt(asc.mean(), 4),
                   util::Table::fmt(asc.max(), 3)});
    table.add_row({"coverage descending", util::Table::fmt(desc.mean(), 4),
                   util::Table::fmt(desc.max(), 3)});
    table.add_row({"input order", util::Table::fmt(input.mean(), 4),
                   util::Table::fmt(input.max(), 3)});
    std::printf("Small instances (7 objects, vs brute force):\n%s\n",
                table.to_string().c_str());
  }

  // Part 2: relative comparison on larger instances.
  {
    util::Rng rng(4);
    util::Table table({"objects", "ascending (ms)", "descending (ms)",
                       "input (ms)"});
    for (const int n : {20, 50, 100}) {
      util::RunningStats asc, desc, input;
      for (int trial = 0; trial < 30; ++trial) {
        const core::MvsProblem p = random_instance(rng, n);
        auto value = [&](core::CentralBalbOptions::Order order) {
          core::CentralBalbOptions options;
          options.order = order;
          return core::recomputed_system_latency(
              p, core::central_balb(p, options));
        };
        asc.add(value(core::CentralBalbOptions::Order::kCoverageAscending));
        desc.add(value(core::CentralBalbOptions::Order::kCoverageDescending));
        input.add(value(core::CentralBalbOptions::Order::kInputOrder));
      }
      table.add_row({std::to_string(n), util::Table::fmt(asc.mean(), 1),
                     util::Table::fmt(desc.mean(), 1),
                     util::Table::fmt(input.mean(), 1)});
    }
    std::printf("Larger instances (mean over 30 random instances):\n%s\n",
                table.to_string().c_str());
  }
  std::printf("Assigning the least-flexible objects first avoids painting the "
              "scheduler\ninto a corner, as the paper's single-pass design "
              "assumes.\n");
  return 0;
}

// Figure 10 reproduction: cross-camera association *classification* —
// precision and recall of the KNN model against SVM, logistic regression and
// decision tree on scenarios S1-S3. Train on the first half of each
// scenario's frames, test on the second half, aggregated over all ordered
// camera pairs. Expected shape (paper): KNN best or near-best precision in
// every scenario; S3 hardest.

#include <cstdio>
#include <functional>
#include <memory>

#include "assoc/association.hpp"
#include "metrics/metrics.hpp"
#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"
#include "sim/dataset.hpp"
#include "util/table.hpp"

namespace {

using mvs::ml::BinaryClassifier;

struct ModelSpec {
  const char* name;
  std::function<std::unique_ptr<BinaryClassifier>()> make;
};

}  // namespace

int main() {
  using namespace mvs;

  const ModelSpec models[] = {
      {"KNN", [] { return std::make_unique<ml::KnnClassifier>(5); }},
      {"SVM", [] { return std::make_unique<ml::LinearSvm>(); }},
      {"Logistic", [] { return std::make_unique<ml::LogisticRegression>(); }},
      {"DecisionTree", [] { return std::make_unique<ml::DecisionTree>(); }},
      // Beyond the paper's four baselines; reported for completeness.
      {"RandomForest*", [] { return std::make_unique<ml::RandomForest>(); }},
  };

  std::printf("== Figure 10: association classification, precision/recall ==\n\n");
  util::Table table({"scenario", "model", "precision", "recall", "f1",
                     "test samples"});

  for (const char* scenario : {"S1", "S2", "S3"}) {
    sim::ScenarioPlayer player(sim::make_scenario(scenario, 17), 60.0);
    const auto train = player.take(250);
    const auto test = player.take(250);
    const std::size_t m = player.camera_count();
    const auto& cams = player.scenario().cameras;

    for (const ModelSpec& spec : models) {
      metrics::BinaryMetrics agg;
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          if (i == j) continue;
          const auto wi = static_cast<double>(cams[i].model.width());
          const auto hi = static_cast<double>(cams[i].model.height());
          const auto wj = static_cast<double>(cams[j].model.width());
          const auto hj = static_cast<double>(cams[j].model.height());
          const assoc::PairDataset train_ds =
              assoc::build_pair_dataset(train, i, j, wi, hi, wj, hj);
          const assoc::PairDataset test_ds =
              assoc::build_pair_dataset(test, i, j, wi, hi, wj, hj);
          if (train_ds.x.size() < 20 || test_ds.x.empty()) continue;
          // Degenerate labels (all one class) break SGD models; skip pair.
          std::size_t pos = 0;
          for (int p : train_ds.present) pos += static_cast<std::size_t>(p);
          if (pos == 0 || pos == train_ds.present.size()) continue;

          auto model = spec.make();
          model->fit(train_ds.x, train_ds.present);
          for (std::size_t k = 0; k < test_ds.x.size(); ++k)
            agg.add(model->predict(test_ds.x[k]), test_ds.present[k] == 1);
        }
      }
      table.add_row({scenario, spec.name,
                     util::Table::fmt(agg.precision(), 3),
                     util::Table::fmt(agg.recall(), 3),
                     util::Table::fmt(agg.f1(), 3),
                     std::to_string(agg.total())});
    }
  }
  std::printf("%s\nPrecision matters more than recall here: a false positive "
              "merges two\ndistinct objects and drops one of them from "
              "tracking.\n",
              table.to_string().c_str());
  return 0;
}

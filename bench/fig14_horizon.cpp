// Figure 14 reproduction: impact of the scheduling-horizon length T on
// object recall and inference time (complete BALB, scenario S1).
// Expected shape (paper): longer horizons amortize the key-frame cost over
// more frames (inference time falls) but recall degrades as tracking and
// correlation-model error accumulate; T = 10 is the sweet spot.

#include <cstdio>

#include "runtime/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;

  std::printf("== Figure 14: scheduling horizon length vs recall and "
              "latency (BALB, S1) ==\n\n");
  util::Table table({"T (frames)", "object recall",
                     "slowest cam (ms/frame)"});

  for (int horizon : {2, 5, 10, 20, 40}) {
    runtime::PipelineConfig cfg;
    cfg.policy = runtime::Policy::kBalb;
    cfg.horizon_frames = horizon;
    cfg.training_frames = 200;
    cfg.seed = 101;
    runtime::Pipeline pipeline("S1", cfg);
    const auto result = pipeline.run(200);
    table.add_row({std::to_string(horizon),
                   util::Table::fmt(result.object_recall, 3),
                   util::Table::fmt(result.mean_slowest_infer_ms(), 1)});
  }
  std::printf("%s\nLonger horizons amortize the full-frame key inspection but "
              "accumulate\ntracking drift; T = 10 (one key frame per second) "
              "balances the two.\n",
              table.to_string().c_str());
  return 0;
}

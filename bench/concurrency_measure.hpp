#pragma once
// Shared micro-measurements for the lock-free / zero-allocation hot path,
// used by bench/micro_concurrency.cpp (standalone, --json) and
// tools/bench_report.cpp (BENCH_concurrency.json refresh). Header-only so
// both binaries time exactly the same loops.
//
// The mutex-queue baseline is embedded verbatim (classic bounded
// mutex+condvar queue — what util::ThreadPool used before the MPMC ring),
// so the headline ns/enqueue speedup is self-contained and needs no old
// checkout to reproduce.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/pipeline.hpp"
#include "util/mpmc_queue.hpp"
#include "util/pool.hpp"
#include "util/stopwatch.hpp"

namespace mvs::benchcc {

/// Pre-ring ThreadPool queue, kept as the contended baseline: one mutex
/// around a deque, condvars for both full and empty transitions.
class MutexBoundedQueue {
 public:
  explicit MutexBoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(int v) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_; });
    items_.push_back(v);
    lock.unlock();
    not_empty_.notify_one();
  }

  int pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty(); });
    const int v = items_.front();
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

 private:
  std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<int> items_;
  std::size_t capacity_;
};

/// Contention shape for the queue comparison: many submitters funneling
/// into few drainers, the fleet's regime (every session submits camera
/// tasks, a small worker pool drains them) and the same shape as the
/// ThreadPoolStress tests. Totals are split into fixed per-consumer shares
/// so both sides pop exactly what was pushed with no extra shared counter.
struct QueueContention {
  int producers = 8;
  int consumers = 2;
  long ops_per_producer = 50000;
};

/// Bounded spin then yield — the portable backoff for a full/empty ring:
/// cheap pause while the condition may flip on another core, a scheduler
/// hand-off once it clearly needs a peer thread to run (essential when
/// hardware threads are oversubscribed).
inline void spin_backoff(int& spins) {
  if (++spins < 64) {
    util::cpu_relax();
  } else {
    spins = 0;
    std::this_thread::yield();
  }
}

/// Contended enqueue cost of the Vyukov MPMC ring (ns per enqueue), at the
/// thread pool's capacity (1024 slots).
inline double ring_enqueue_ns(const QueueContention& c = {}) {
  util::MpmcQueue<int> q(1024);
  const long total = c.ops_per_producer * c.producers;
  const long share = total / c.consumers;
  util::Stopwatch watch;
  std::vector<std::thread> threads;
  for (int p = 0; p < c.producers; ++p)
    threads.emplace_back([&] {
      int spins = 0;
      for (long i = 0; i < c.ops_per_producer; ++i)
        while (!q.try_push(static_cast<int>(i))) spin_backoff(spins);
    });
  for (int cth = 0; cth < c.consumers; ++cth)
    threads.emplace_back([&, cth] {
      const long mine = share + (cth == 0 ? total - share * c.consumers : 0);
      int v = 0;
      int spins = 0;
      for (long i = 0; i < mine; ++i)
        while (!q.try_pop(v)) spin_backoff(spins);
    });
  for (std::thread& t : threads) t.join();
  return 1e6 * watch.elapsed_ms() / static_cast<double>(total);
}

/// Same contention shape and capacity over the mutex+condvar baseline.
inline double mutex_enqueue_ns(const QueueContention& c = {}) {
  MutexBoundedQueue q(1024);
  const long total = c.ops_per_producer * c.producers;
  const long share = total / c.consumers;
  util::Stopwatch watch;
  std::vector<std::thread> threads;
  for (int p = 0; p < c.producers; ++p)
    threads.emplace_back([&] {
      for (long i = 0; i < c.ops_per_producer; ++i)
        q.push(static_cast<int>(i));
    });
  for (int cth = 0; cth < c.consumers; ++cth)
    threads.emplace_back([&, cth] {
      const long mine = share + (cth == 0 ? total - share * c.consumers : 0);
      for (long i = 0; i < mine; ++i) (void)q.pop();
    });
  for (std::thread& t : threads) t.join();
  return 1e6 * watch.elapsed_ms() / static_cast<double>(total);
}

/// Cost of one MVS_SPAN scope with tracing enabled (SPSC ring record) —
/// includes the two steady_clock reads the span itself performs.
inline double span_ns(long iters = 200000) {
  obs::reset();
  obs::set_enabled(true);
  for (long i = 0; i < 10000; ++i) {
    MVS_SPAN("bench.warm");
  }
  util::Stopwatch watch;
  for (long i = 0; i < iters; ++i) {
    MVS_SPAN("bench.span");
  }
  const double ns = 1e6 * watch.elapsed_ms() / static_cast<double>(iters);
  obs::set_enabled(false);
  obs::reset();
  return ns;
}

/// Cost of an MVS_SPAN site with tracing disabled (one relaxed atomic load).
inline double span_disabled_ns(long iters = 2000000) {
  obs::set_enabled(false);
  util::Stopwatch watch;
  for (long i = 0; i < iters; ++i) {
    MVS_SPAN("bench.off");
  }
  return 1e6 * watch.elapsed_ms() / static_cast<double>(iters);
}

/// Warm acquire+release round trip through util::Pool (two lock-free ring
/// hops; never reaches operator new once warm).
inline double pool_pair_ns(long iters = 1000000) {
  util::Pool<std::vector<double>> pool;
  for (int i = 0; i < 8; ++i) {
    std::vector<double>* v = pool.acquire();
    v->resize(64);
    pool.release(v);
  }
  util::Stopwatch watch;
  for (long i = 0; i < iters; ++i) pool.release(pool.acquire());
  return 1e6 * watch.elapsed_ms() / static_cast<double>(iters);
}

/// End-to-end steady-state throughput: warm regular ticks per second on the
/// serving configuration (keep_history off, allocation-free path).
inline double ticks_per_sec(int warm = 30, int ticks = 120) {
  runtime::PipelineConfig cfg;
  cfg.threads = 4;
  cfg.keep_history = false;
  runtime::Pipeline pipe("S2", cfg);
  for (int i = 0; i < warm; ++i) pipe.run_frame_ref();
  util::Stopwatch watch;
  for (int i = 0; i < ticks; ++i) pipe.run_frame_ref();
  const double ms = watch.elapsed_ms();
  return ms > 0.0 ? 1000.0 * ticks / ms : 0.0;
}

}  // namespace mvs::benchcc

// Detect-or-track policy ablation (mvs::policy): what does skipping
// detection on quiet frames buy, and what does it cost?
//
// Protocol:
//   1. Run the FIXED policy (detect every regular frame — the pre-policy
//      pipeline) once per seed while recording the per-camera feature trace
//      with counterfactual labels (label 1 = the detection changed something
//      the tracker would have gotten wrong).
//   2. Train the logistic and decision-tree scorers on the pooled traces
//      (policy::train_model, strided holdout).
//   3. Re-run the same scenario/seeds under heuristic / learned-logistic /
//      learned-tree policies and compare mean object recall, total simulated
//      GPU busy time, and the p99 of the per-frame slowest-camera latency.
//
// Methodology notes:
//   - Every run (fixed included) uses PipelineConfig::paired_rng — common
//     random numbers. The simulated detector is stochastic; with sequential
//     per-camera streams, skipping ONE inspection shifts every later draw
//     and single-run recall swings by +-0.15, drowning the policy effect.
//     Per-frame (seed, camera, frame) re-seeding makes two runs that differ
//     only in WHICH frames they inspect draw identical outcomes whenever
//     they inspect the same thing, so the comparison is paired.
//   - Results are averaged over --seeds consecutive seeds; recall is the
//     mean, GPU busy the total, and the slowest-camera p99 is pooled.
//
// Acceptance (exit status; CI runs this as a smoke test):
//   - heuristic cuts total GPU busy by >= 25% vs fixed while keeping mean
//     recall within kRecallBand of the fixed baseline;
//   - each learned policy's GPU cut at least matches the heuristic's
//     (small tolerance) inside the same recall band.
//
// Usage:
//   ablation_policy [--scenario S2] [--frames 120] [--seed 42] [--seeds 5]
//                   [--trace policy_features.jsonl] [--json out.json]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "policy/policy.hpp"
#include "policy/train.hpp"
#include "runtime/pipeline.hpp"
#include "util/args.hpp"
#include "util/bench_info.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mvs;

constexpr double kRecallBand = 0.03;  ///< max mean recall drop vs fixed
constexpr double kBusyCut = 0.25;     ///< required heuristic GPU-busy cut
constexpr double kLearnedSlack = 0.05;  ///< learned may trail heuristic by this

struct RunPoint {
  std::string name;
  double recall = 0.0;        ///< mean object recall over seeds
  double busy_ms = 0.0;       ///< total simulated GPU busy over all seeds
  double busy_cut = 0.0;      ///< fraction saved vs fixed
  double p99_slowest_ms = 0.0;  ///< pooled over seeds
  double mean_slowest_ms = 0.0;
};

/// Run `cfg` at seeds base..base+seeds-1 and aggregate. When `trace_base`
/// is non-empty, seed k records its feature trace to "<trace_base>.<seed>".
RunPoint measure(const std::string& name, const std::string& scenario,
                 int frames, int seeds, std::uint64_t base_seed,
                 runtime::PipelineConfig cfg,
                 const std::string& trace_base = "") {
  RunPoint p;
  p.name = name;
  util::SampleSet slowest;
  double mean_slowest_acc = 0.0;
  for (int k = 0; k < seeds; ++k) {
    cfg.seed = base_seed + static_cast<std::uint64_t>(k);
    if (!trace_base.empty())
      cfg.frame_policy.feature_trace =
          trace_base + "." + std::to_string(cfg.seed);
    runtime::Pipeline pipeline(scenario, cfg);
    const runtime::PipelineResult result = pipeline.run(frames);
    p.recall += result.object_recall;
    for (const runtime::FrameStats& f : result.frames) {
      for (const double ms : f.camera_infer_ms) p.busy_ms += ms;
      slowest.add(f.slowest_infer_ms);
    }
    mean_slowest_acc += result.mean_slowest_infer_ms();
  }
  p.recall /= static_cast<double>(seeds);
  p.p99_slowest_ms = slowest.count() ? slowest.percentile(99.0) : 0.0;
  p.mean_slowest_ms = mean_slowest_acc / static_cast<double>(seeds);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args = util::Args::parse(argc, argv);
  const std::string scenario = args.get_or("scenario", "S2");
  const int frames = args.int_or("frames", 120);
  const int seeds = args.int_or("seeds", 5);
  const auto seed = static_cast<std::uint64_t>(args.int_or("seed", 42));
  const std::string trace_path =
      args.get_or("trace", "policy_features.jsonl");
  if (frames < 1 || seeds < 1) {
    std::fprintf(stderr, "--frames and --seeds must be >= 1\n");
    return 2;
  }

  runtime::PipelineConfig base;
  base.paired_rng = true;  // common random numbers; see header comment

  // 1. Fixed baseline at every seed, recording labeled feature traces.
  const RunPoint fixed = measure("fixed", scenario, frames, seeds, seed, base,
                                 trace_path);

  // 2. Train both learned scorers on the pooled traces.
  std::string error;
  std::vector<policy::TrainSample> samples;
  for (int k = 0; k < seeds; ++k) {
    const std::string path =
        trace_path + "." + std::to_string(seed + static_cast<std::uint64_t>(k));
    std::ifstream in(path);
    const auto part = policy::load_feature_trace(in, &error);
    if (!part) {
      std::fprintf(stderr, "trace load failed (%s): %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    samples.insert(samples.end(), part->begin(), part->end());
  }
  std::optional<policy::TrainReport> logistic =
      policy::train_model(samples, policy::ModelType::kLogistic, &error);
  if (!logistic) std::fprintf(stderr, "logistic: %s\n", error.c_str());
  std::optional<policy::TrainReport> tree =
      policy::train_model(samples, policy::ModelType::kTree, &error);
  if (!tree) std::fprintf(stderr, "tree: %s\n", error.c_str());

  // 3. The competing policies on the identical scenario/seeds.
  std::vector<RunPoint> runs{fixed};
  {
    runtime::PipelineConfig cfg = base;
    cfg.frame_policy.kind = policy::PolicyKind::kHeuristic;
    runs.push_back(measure("heuristic", scenario, frames, seeds, seed, cfg));
  }
  if (logistic) {
    runtime::PipelineConfig cfg = base;
    cfg.frame_policy.kind = policy::PolicyKind::kLearned;
    cfg.frame_policy.model_json = policy::dump_model(logistic->model);
    runs.push_back(
        measure("learned-logistic", scenario, frames, seeds, seed, cfg));
  }
  if (tree) {
    runtime::PipelineConfig cfg = base;
    cfg.frame_policy.kind = policy::PolicyKind::kLearned;
    cfg.frame_policy.model_json = policy::dump_model(tree->model);
    runs.push_back(
        measure("learned-tree", scenario, frames, seeds, seed, cfg));
  }

  for (RunPoint& p : runs)
    p.busy_cut =
        fixed.busy_ms > 0.0 ? 1.0 - p.busy_ms / fixed.busy_ms : 0.0;

  util::Table table({"policy", "recall", "drop", "gpu_busy_ms", "cut%",
                     "p99_slowest_ms", "mean_slowest_ms"});
  for (const RunPoint& p : runs)
    table.add_row({p.name, util::Table::fmt(p.recall, 3),
                   util::Table::fmt(fixed.recall - p.recall, 3),
                   util::Table::fmt(p.busy_ms, 1),
                   util::Table::fmt(100.0 * p.busy_cut, 1),
                   util::Table::fmt(p.p99_slowest_ms, 1),
                   util::Table::fmt(p.mean_slowest_ms, 1)});
  std::printf(
      "== Ablation: detect-or-track policy (%s, %d frames x %d seeds) ==\n\n",
      scenario.c_str(), frames, seeds);
  std::printf("%s\n", table.to_string().c_str());

  // Acceptance checks.
  bool ok = true;
  double heuristic_cut = 0.0;
  std::ostringstream verdicts;
  for (const RunPoint& p : runs) {
    if (p.name == "fixed") continue;
    const bool in_band = fixed.recall - p.recall <= kRecallBand;
    bool enough = true;
    if (p.name == "heuristic") {
      heuristic_cut = p.busy_cut;
      enough = p.busy_cut >= kBusyCut;
    } else {
      enough = p.busy_cut >= heuristic_cut - kLearnedSlack;
    }
    ok = ok && in_band && enough;
    verdicts << "  " << p.name << ": recall band "
             << (in_band ? "ok" : "VIOLATED") << ", gpu cut "
             << (enough ? "ok" : "INSUFFICIENT") << "\n";
  }
  std::printf("%s", verdicts.str().c_str());
  std::printf("acceptance: %s\n", ok ? "pass" : "FAIL");

  const std::string json_path = args.get_or("json", "");
  if (!json_path.empty()) {
    util::Json::Array points;
    for (const RunPoint& p : runs) {
      util::Json::Object o;
      o["policy"] = util::Json(p.name);
      o["recall"] = util::Json(p.recall);
      o["recall_drop"] = util::Json(fixed.recall - p.recall);
      o["gpu_busy_ms"] = util::Json(p.busy_ms);
      o["busy_cut"] = util::Json(p.busy_cut);
      o["p99_slowest_ms"] = util::Json(p.p99_slowest_ms);
      o["mean_slowest_ms"] = util::Json(p.mean_slowest_ms);
      points.push_back(util::Json(std::move(o)));
    }
    util::Json::Object body;
    body["scenario"] = util::Json(scenario);
    body["frames"] = util::Json(frames);
    body["seeds"] = util::Json(seeds);
    body["recall_band"] = util::Json(kRecallBand);
    body["required_busy_cut"] = util::Json(kBusyCut);
    body["pass"] = util::Json(ok);
    if (logistic) {
      util::Json::Object t;
      t["accuracy"] = util::Json(logistic->accuracy);
      t["precision"] = util::Json(logistic->precision);
      t["recall"] = util::Json(logistic->recall);
      t["train_samples"] =
          util::Json(static_cast<double>(logistic->train_samples));
      t["positive_rate"] = util::Json(logistic->positive_rate);
      body["logistic_holdout"] = util::Json(std::move(t));
    }
    if (tree) {
      util::Json::Object t;
      t["accuracy"] = util::Json(tree->accuracy);
      t["precision"] = util::Json(tree->precision);
      t["recall"] = util::Json(tree->recall);
      t["train_samples"] =
          util::Json(static_cast<double>(tree->train_samples));
      t["positive_rate"] = util::Json(tree->positive_rate);
      body["tree_holdout"] = util::Json(std::move(t));
    }
    body["runs"] = util::Json(std::move(points));

    util::Json::Object doc;
    doc["env"] = util::bench_env_json();
    doc["policy_ablation"] = util::Json(std::move(body));
    std::ofstream out(json_path);
    out << util::Json(std::move(doc)).dump() << '\n';
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}

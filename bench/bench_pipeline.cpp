// End-to-end pipeline throughput benchmark (frames processed per second of
// wall-clock time). Complements bench/micro_kernels: the micro suite times
// isolated kernels, this measures the whole key-frame / regular-frame loop —
// rendering, optical flow, slicing, batching and the scheduler together.
//
// Usage:
//   bench_pipeline [--scenario S2] [--policy balb] [--frames 120]
//                  [--reps 5] [--threads 0] [--json out.json]
//
// Each rep constructs a fresh Pipeline (so association training is included
// in setup, not in the timed region) and times run(frames). The median over
// reps is reported; with --json the result is written with the machine/git
// envelope from util::bench_env_json() for regression tracking.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "util/args.hpp"
#include "util/bench_info.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace mvs;
  const util::Args args = util::Args::parse(argc, argv);
  const std::string scenario = args.get_or("scenario", "S2");
  const std::string policy_name = args.get_or("policy", "balb");
  const int frames = args.int_or("frames", 120);
  const int reps = args.int_or("reps", 5);

  const auto policy = runtime::parse_policy(policy_name);
  if (!policy) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 1;
  }

  runtime::PipelineConfig cfg;
  cfg.policy = *policy;
  cfg.threads = args.int_or("threads", 0);
  cfg.seed = static_cast<std::uint64_t>(args.int_or("seed", 42));

  std::vector<double> run_ms;
  double recall = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    runtime::Pipeline pipeline(scenario, cfg);
    util::Stopwatch watch;
    const runtime::PipelineResult result = pipeline.run(frames);
    run_ms.push_back(watch.elapsed_ms());
    recall = result.object_recall;
  }
  const double median_ms = util::median(run_ms);
  const double fps = median_ms > 0.0 ? 1000.0 * frames / median_ms : 0.0;

  std::printf("scenario=%s policy=%s frames=%d reps=%d\n", scenario.c_str(),
              policy_name.c_str(), frames, reps);
  std::printf("median_run_ms=%.2f frames_per_sec=%.2f recall=%.3f\n",
              median_ms, fps, recall);

  const std::string json_path = args.get_or("json", "");
  if (!json_path.empty()) {
    util::Json::Object result;
    result["scenario"] = util::Json(scenario);
    result["policy"] = util::Json(policy_name);
    result["frames"] = util::Json(frames);
    result["reps"] = util::Json(reps);
    result["median_run_ms"] = util::Json(median_ms);
    result["frames_per_sec"] = util::Json(fps);
    result["object_recall"] = util::Json(recall);

    util::Json::Object doc;
    doc["env"] = util::bench_env_json();
    doc["pipeline"] = util::Json(std::move(result));
    std::ofstream out(json_path);
    out << util::Json(std::move(doc)).dump() << '\n';
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// Perf-regression report generator. Times the vision hot-path kernels, an
// end-to-end pipeline run, a fleet session-scaling sweep, and the
// concurrency micro-benchmarks, then writes BENCH_vision.json,
// BENCH_pipeline.json, BENCH_fleet.json and BENCH_concurrency.json
// (median-of-N timings wrapped in the machine/git envelope from
// util::bench_env_json()).
// Commit the refreshed files alongside performance-sensitive changes so
// regressions show up in review.
//
// Usage:
//   bench_report [--reps 7] [--frames 60] [--width 320] [--out-dir .]
//                [--fleet-sessions 4] [--fleet-ticks 40]
//   bench_report --metrics-json metrics.json   # report-only: print the
//                per-stage latency breakdown from an mvs::obs metrics
//                snapshot (e.g. mvsched_cli --metrics-json output), plus
//                the critical-path attribution table when the snapshot
//                carries one
//   bench_report --streaming-json BENCH_streaming.json   # report-only:
//                pretty-print a bench_streaming artifact (budget sweep,
//                late policies, city gating rows, acceptance verdicts)
//   bench_report --postmortem-json postmortem-0.json   # report-only:
//                validate an mvs-postmortem-v1 flight-recorder dump and
//                print its dominant-segment breakdown + recent events
//
// The timed pipeline reps run with observability DISABLED (the committed
// BENCH_pipeline.json baseline is the null-sink number); one extra
// instrumented rep afterwards feeds the per-stage breakdown table and the
// "stages" object in BENCH_pipeline.json.
//
// The fleet sweep's batch/busy counters are deterministic for the fixed
// seed; only its wall-clock throughput column is machine-dependent.
//
// The vision report includes the speedup of the optimized OpticalFlow against
// an embedded copy of the pre-optimization kernel (double-accumulating SAD
// over at_clamped reads, pyramids rebuilt per call), so the headline number
// is self-contained: no need to check out an old revision to reproduce it.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/concurrency_measure.hpp"
#include "bench/fleet_scale.hpp"
#include "fleet/fleet_api.hpp"
#include "obs/obs.hpp"
#include "rt/runner.hpp"
#include "runtime/pipeline.hpp"
#include "util/args.hpp"
#include "util/bench_info.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "vision/optical_flow.hpp"
#include "vision/renderer.hpp"

namespace {

using namespace mvs;
using vision::FlowField;
using vision::Image;
using vision::OpticalFlow;

// Pre-optimization optical flow, kept verbatim as the speedup baseline.
double reference_block_sad(const Image& a, int ax, int ay, const Image& b,
                           int bx, int by, int size) {
  double sad = 0.0;
  for (int dy = 0; dy < size; ++dy)
    for (int dx = 0; dx < size; ++dx)
      sad += std::abs(static_cast<int>(a.at_clamped(ax + dx, ay + dy)) -
                      static_cast<int>(b.at_clamped(bx + dx, by + dy)));
  return sad;
}

FlowField reference_flow(const OpticalFlow::Config& cfg, const Image& prev,
                         const Image& cur) {
  std::vector<Image> pa{prev}, pb{cur};
  for (int l = 1; l < cfg.pyramid_levels; ++l) {
    if (pa.back().width() < 2 * cfg.block_size ||
        pa.back().height() < 2 * cfg.block_size)
      break;
    pa.push_back(pa.back().downsampled());
    pb.push_back(pb.back().downsampled());
  }
  const int levels = static_cast<int>(pa.size());

  FlowField field;
  field.block_size = cfg.block_size;
  field.cols = std::max(1, prev.width() / cfg.block_size);
  field.rows = std::max(1, prev.height() / cfg.block_size);
  field.flow.assign(static_cast<std::size_t>(field.cols) *
                        static_cast<std::size_t>(field.rows),
                    {0.0, 0.0});
  field.residual.assign(field.flow.size(), 0.0);

  std::vector<geom::Vec2> coarse;
  int ccols = 0, crows = 0;
  for (int l = levels - 1; l >= 0; --l) {
    const Image& ia = pa[static_cast<std::size_t>(l)];
    const Image& ib = pb[static_cast<std::size_t>(l)];
    const int cols = std::max(1, ia.width() / cfg.block_size);
    const int rows = std::max(1, ia.height() / cfg.block_size);
    std::vector<geom::Vec2> est(static_cast<std::size_t>(cols) *
                                static_cast<std::size_t>(rows));
    std::vector<double> res(est.size(), 0.0);

    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const int bx = c * cfg.block_size;
        const int by = r * cfg.block_size;
        geom::Vec2 seed{0.0, 0.0};
        if (!coarse.empty()) {
          const int pc = std::min(c / 2, ccols - 1);
          const int pr = std::min(r / 2, crows - 1);
          const geom::Vec2& s =
              coarse[static_cast<std::size_t>(pr) *
                         static_cast<std::size_t>(ccols) +
                     static_cast<std::size_t>(pc)];
          seed = {s.x * 2.0, s.y * 2.0};
        }
        const int sx = static_cast<int>(std::lround(seed.x));
        const int sy = static_cast<int>(std::lround(seed.y));

        double best = std::numeric_limits<double>::infinity();
        int best_dx = sx, best_dy = sy;
        for (int dy = sy - cfg.search_radius; dy <= sy + cfg.search_radius;
             ++dy) {
          for (int dx = sx - cfg.search_radius; dx <= sx + cfg.search_radius;
               ++dx) {
            const double sad = reference_block_sad(ia, bx, by, ib, bx + dx,
                                                   by + dy, cfg.block_size);
            const double penalty = 0.1 * (std::abs(dx) + std::abs(dy));
            if (sad + penalty < best) {
              best = sad + penalty;
              best_dx = dx;
              best_dy = dy;
            }
          }
        }
        est[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
            static_cast<std::size_t>(c)] = {static_cast<double>(best_dx),
                                            static_cast<double>(best_dy)};
        res[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
            static_cast<std::size_t>(c)] =
            best / static_cast<double>(cfg.block_size * cfg.block_size);
      }
    }
    coarse = std::move(est);
    ccols = cols;
    crows = rows;
    if (l == 0) {
      field.cols = cols;
      field.rows = rows;
      field.flow = coarse;
      field.residual = std::move(res);
    }
  }
  return field;
}

volatile std::uint32_t g_sad_sink = 0;  ///< keeps the SAD loop observable

/// Median wall-clock ms of `reps` calls to `fn`.
template <typename Fn>
double time_median_ms(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    util::Stopwatch watch;
    fn();
    samples.push_back(watch.elapsed_ms());
  }
  return util::median(std::move(samples));
}

/// Per-stage latency breakdown from an mvs::obs metrics snapshot: prints a
/// stage/count/p50/p95/p99 table over every histogram and returns the same
/// rows as the "stages" object for BENCH_pipeline.json.
util::Json::Object print_stage_breakdown(const util::Json& metrics) {
  util::Json::Object stages;
  const util::Json* hists = metrics.find("histograms");
  if (!hists || !hists->is_object()) {
    std::printf("  (no \"histograms\" object in metrics snapshot)\n");
    return stages;
  }
  util::Table table({"stage", "count", "p50_ms", "p95_ms", "p99_ms"});
  for (const auto& [name, h] : hists->as_object()) {
    if (!h.is_object()) continue;
    const double count = h.number_or("count", 0.0);
    const double p50 = h.number_or("p50", 0.0);
    const double p95 = h.number_or("p95", 0.0);
    const double p99 = h.number_or("p99", 0.0);
    table.add_row({name, util::Table::fmt(count, 0), util::Table::fmt(p50, 3),
                   util::Table::fmt(p95, 3), util::Table::fmt(p99, 3)});
    util::Json::Object stage;
    stage["count"] = util::Json(count);
    stage["p50"] = util::Json(p50);
    stage["p95"] = util::Json(p95);
    stage["p99"] = util::Json(p99);
    stages.emplace(name, util::Json(std::move(stage)));
  }
  std::printf("%s", table.to_string().c_str());
  return stages;
}

/// Critical-path attribution table from the "attribution" block of an
/// obs::export_json() snapshot (or a postmortem document): per-segment
/// latency percentiles + dominant-frame share. No-op when absent.
void print_attribution_table(const util::Json& doc) {
  const util::Json* attr = doc.find("attribution");
  if (!attr || !attr->is_object()) return;
  const double frames = attr->number_or("frames", 0.0);
  std::printf("critical-path attribution (%0.f frames, %.0f misses, "
              "conservation err %.3g ms):\n",
              frames, attr->number_or("deadline_misses", 0.0),
              attr->number_or("max_conservation_error_ms", 0.0));
  const util::Json* segs = attr->find("segments");
  if (!segs || !segs->is_object()) return;
  util::Table table({"segment", "count", "sum_ms", "p50_ms", "p95_ms",
                     "p99_ms", "dominant", "dom_frac"});
  for (const auto& [name, s] : segs->as_object()) {
    if (!s.is_object()) continue;
    table.add_row({name, util::Table::fmt(s.number_or("count", 0), 0),
                   util::Table::fmt(s.number_or("sum_ms", 0), 1),
                   util::Table::fmt(s.number_or("p50", 0), 3),
                   util::Table::fmt(s.number_or("p95", 0), 3),
                   util::Table::fmt(s.number_or("p99", 0), 3),
                   util::Table::fmt(s.number_or("dominant_frames", 0), 0),
                   util::Table::fmt(s.number_or("dominant_frac", 0), 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("dominant segment      : %s\n",
              attr->string_or("dominant", "?").c_str());
}

/// Report-only view of a flight-recorder postmortem: schema-validate the
/// document, then print why it fired, the miss density over the recorded
/// ring, the attribution table and the tail of the event log. Returns false
/// (exit 1) on any schema violation so CI can gate on it.
bool print_postmortem_report(const util::Json& doc) {
  const std::string schema = doc.string_or("schema", "");
  if (schema != "mvs-postmortem-v1") {
    std::fprintf(stderr, "bad postmortem schema: \"%s\" (want "
                 "mvs-postmortem-v1)\n", schema.c_str());
    return false;
  }
  const util::Json* frames = doc.find("frames");
  const util::Json* events = doc.find("events");
  const util::Json* attr = doc.find("attribution");
  if (!frames || !frames->is_array() || !events || !events->is_array() ||
      !attr || !attr->is_object()) {
    std::fprintf(stderr,
                 "postmortem missing frames/events/attribution blocks\n");
    return false;
  }
  long misses = 0;
  for (const util::Json& f : frames->as_array()) {
    if (!f.is_object() || !f.find("segments") || !f.find("total_ms")) {
      std::fprintf(stderr, "malformed frame entry in postmortem\n");
      return false;
    }
    if (f.bool_or("deadline_miss", false)) ++misses;
  }
  std::printf("reason                : %s\n",
              doc.string_or("reason", "?").c_str());
  const double shard = doc.number_or("shard", -1.0);
  if (shard >= 0.0) std::printf("shard                 : %.0f\n", shard);
  std::printf("frames seen / kept    : %.0f / %zu (%ld misses in ring)\n",
              doc.number_or("frames_seen", 0.0), frames->as_array().size(),
              misses);
  print_attribution_table(doc);
  const auto& evs = events->as_array();
  const std::size_t tail = std::min<std::size_t>(evs.size(), 10);
  if (tail > 0) std::printf("last %zu events:\n", tail);
  for (std::size_t i = evs.size() - tail; i < evs.size(); ++i) {
    const util::Json& e = evs[i];
    std::printf("  tick %-8.0f %-20s session %-5.0f value %.3f\n",
                e.number_or("tick", 0.0),
                e.string_or("type", "?").c_str(),
                e.number_or("session", -1.0), e.number_or("value", 0.0));
  }
  return true;
}

/// Report-only view of a bench_streaming artifact: one table over the
/// budget sweep, the late-policy comparison and the city gating rows, then
/// the acceptance verdicts. Returns false on a schema mismatch.
bool print_streaming_report(const util::Json& doc) {
  const util::Json* s = doc.find("streaming");
  if (!s || !s->is_object()) {
    std::fprintf(stderr, "no \"streaming\" object in artifact\n");
    return false;
  }
  util::Table table({"row", "budget", "policy", "s_recall", "o_recall",
                     "drop", "miss", "lag_ms", "busy_ms"});
  const auto add_rows = [&table](const util::Json* rows, const char* label) {
    if (!rows || !rows->is_array()) return;
    for (const util::Json& r : rows->as_array()) {
      if (!r.is_object()) continue;
      const double budget = r.number_or("deadline_ms", 0.0);
      std::string name = r.string_or("label", label);
      table.add_row({name,
                     budget > 0.0 ? util::Table::fmt(budget, 0) : "inf",
                     r.string_or("late_policy", "?"),
                     util::Table::fmt(r.number_or("streaming_recall", 0), 3),
                     util::Table::fmt(r.number_or("object_recall", 0), 3),
                     util::Table::fmt(r.number_or("drop_rate", 0), 3),
                     util::Table::fmt(r.number_or("miss_rate", 0), 3),
                     util::Table::fmt(r.number_or("mean_lag_ms", 0), 1),
                     util::Table::fmt(r.number_or("gpu_busy_ms", 0), 0)});
    }
  };
  add_rows(s->find("budget_sweep"), "budget");
  add_rows(s->find("late_policies"), "policy");
  add_rows(s->find("city"), "city");
  std::printf("%s", table.to_string().c_str());
  std::printf("monotone budget curve : %s\n",
              s->bool_or("monotone", false) ? "yes" : "NO");
  std::printf("rt-of-one identity    : %s\n",
              s->bool_or("rt_of_one_identical", false) ? "yes" : "NO");
  if (s->find("city_pass"))
    std::printf("city gating           : busy cut %.1f%% at %.4f recall "
                "loss -> %s\n",
                100.0 * s->number_or("city_busy_cut", 0.0),
                s->number_or("city_recall_loss", 0.0),
                s->bool_or("city_pass", false) ? "pass" : "FAIL");
  std::printf("acceptance            : %s\n",
              s->bool_or("pass", false) ? "pass" : "FAIL");
  return true;
}

void write_report(const std::string& path, const char* section,
                  util::Json::Object body) {
  util::Json::Object doc;
  doc["env"] = util::bench_env_json();
  doc[section] = util::Json(std::move(body));
  std::ofstream out(path);
  out << util::Json(std::move(doc)).dump() << '\n';
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args = util::Args::parse(argc, argv);

  // Report-only mode: ingest a metrics snapshot (e.g. mvsched_cli
  // --metrics-json output) and print the per-stage breakdown.
  const std::string metrics_path = args.get_or("metrics-json", "");
  if (!metrics_path.empty()) {
    std::ifstream in(metrics_path);
    if (!in) {
      std::fprintf(stderr, "cannot read --metrics-json file: %s\n",
                   metrics_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const std::optional<util::Json> doc =
        util::Json::parse(text.str(), &error);
    if (!doc) {
      std::fprintf(stderr, "malformed metrics JSON %s: %s\n",
                   metrics_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("per-stage latency breakdown (%s):\n", metrics_path.c_str());
    (void)print_stage_breakdown(*doc);
    print_attribution_table(*doc);
    return 0;
  }

  // Report-only mode: validate + pretty-print a flight-recorder postmortem.
  const std::string postmortem_path = args.get_or("postmortem-json", "");
  if (!postmortem_path.empty()) {
    std::ifstream in(postmortem_path);
    if (!in) {
      std::fprintf(stderr, "cannot read --postmortem-json file: %s\n",
                   postmortem_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const std::optional<util::Json> doc =
        util::Json::parse(text.str(), &error);
    if (!doc) {
      std::fprintf(stderr, "malformed postmortem JSON %s: %s\n",
                   postmortem_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("flight-recorder postmortem (%s):\n", postmortem_path.c_str());
    return print_postmortem_report(*doc) ? 0 : 1;
  }

  // Report-only mode: pretty-print a bench_streaming artifact.
  const std::string streaming_path = args.get_or("streaming-json", "");
  if (!streaming_path.empty()) {
    std::ifstream in(streaming_path);
    if (!in) {
      std::fprintf(stderr, "cannot read --streaming-json file: %s\n",
                   streaming_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const std::optional<util::Json> doc =
        util::Json::parse(text.str(), &error);
    if (!doc) {
      std::fprintf(stderr, "malformed streaming JSON %s: %s\n",
                   streaming_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("streaming-perception report (%s):\n", streaming_path.c_str());
    return print_streaming_report(*doc) ? 0 : 1;
  }

  const int reps = args.int_or("reps", 7);
  const int frames = args.int_or("frames", 60);
  const int width = args.int_or("width", 320);
  const std::string out_dir = args.get_or("out-dir", ".");

  // ---- vision kernels ----------------------------------------------------
  vision::Renderer::Config rc;
  rc.width = width;
  rc.height = width * 9 / 16;
  const vision::Renderer renderer(rc);
  const geom::BBox box{rc.width / 3.0, rc.height / 3.0, 30, 20};
  const Image a = renderer.render({{1, box}}, 0, 7);
  const Image b = renderer.render({{1, box.shifted({3, 1})}}, 1, 7);
  const OpticalFlow flow;

  Image render_out;
  const double renderer_ms = time_median_ms(reps, [&] {
    renderer.render_into({{1, box}}, 2, 7, render_out);
  });

  vision::PaddedImage pa, pb;
  pa.assign(a, 16);
  pb.assign(b, 16);
  const double sad_ms = time_median_ms(reps, [&] {
    std::uint32_t total = 0;
    for (int y = 0; y + 16 <= rc.height; y += 16)
      for (int x = 0; x + 16 <= rc.width; x += 16)
        total += vision::padded_block_sad(pa, x, y, pb, x + 2, y + 1, 16);
    g_sad_sink = total;
  });

  FlowField field;
  const double flow_ms =
      time_median_ms(reps, [&] { field = flow.compute(a, b); });

  vision::FlowScratch scratch;
  scratch.cur_frame() = a;
  flow.rebase(scratch);
  scratch.cur_frame() = b;
  const double flow_incr_ms = time_median_ms(reps, [&] {
    flow.compute(scratch, field);
  });

  const double flow_ref_ms = time_median_ms(
      reps, [&] { field = reference_flow(flow.config(), a, b); });

  util::Json::Object vis;
  vis["width"] = util::Json(rc.width);
  vis["height"] = util::Json(rc.height);
  vis["reps"] = util::Json(reps);
  vis["renderer_into_ms"] = util::Json(renderer_ms);
  vis["padded_sad_frame_ms"] = util::Json(sad_ms);
  vis["flow_compute_ms"] = util::Json(flow_ms);
  vis["flow_incremental_ms"] = util::Json(flow_incr_ms);
  vis["flow_reference_ms"] = util::Json(flow_ref_ms);
  vis["speedup_vs_reference"] =
      util::Json(flow_ms > 0.0 ? flow_ref_ms / flow_ms : 0.0);
  write_report(out_dir + "/BENCH_vision.json", "vision", std::move(vis));

  // ---- end-to-end pipeline ----------------------------------------------
  runtime::PipelineConfig cfg;
  std::vector<double> run_ms;
  double recall = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    runtime::Pipeline pipeline("S2", cfg);
    util::Stopwatch watch;
    const runtime::PipelineResult result = pipeline.run(frames);
    run_ms.push_back(watch.elapsed_ms());
    recall = result.object_recall;
  }
  const double median_ms = util::median(run_ms);

  // One instrumented rep feeds the per-stage breakdown; the timed reps above
  // ran with the null sink, so median_run_ms matches the committed baseline.
  obs::reset();
  obs::set_enabled(true);
  {
    runtime::Pipeline pipeline("S2", cfg);
    (void)pipeline.run(frames);
  }
  obs::set_enabled(false);
  std::string obs_error;
  const std::optional<util::Json> obs_doc =
      util::Json::parse(obs::metrics().to_json(), &obs_error);
  obs::reset();

  util::Json::Object pipe;
  pipe["scenario"] = util::Json("S2");
  pipe["policy"] = util::Json(runtime::to_string(cfg.policy));
  pipe["frames"] = util::Json(frames);
  pipe["reps"] = util::Json(reps);
  pipe["median_run_ms"] = util::Json(median_ms);
  pipe["frames_per_sec"] =
      util::Json(median_ms > 0.0 ? 1000.0 * frames / median_ms : 0.0);
  pipe["object_recall"] = util::Json(recall);
  if (obs_doc) {
    std::printf("per-stage latency breakdown (1 instrumented rep):\n");
    pipe["stages"] = util::Json(print_stage_breakdown(*obs_doc));
  }

  // Critical-path attribution A/B: the paced runtime is the attribution
  // producer, so the overhead is measured there (the unpaced pipeline never
  // records attributions). Off-median first, then attribution-only on —
  // obs stays disabled throughout, so the delta is the attribution cost.
  runtime::RtConfig rtc;
  const auto paced_rep = [&] {
    rt::RtRunner runner("S2", cfg, rtc);
    (void)runner.run(frames);
  };
  obs::reset();
  const double paced_ms = time_median_ms(reps, paced_rep);
  obs::set_attribution_enabled(true);
  const double paced_attr_ms = time_median_ms(reps, paced_rep);
  obs::set_attribution_enabled(false);
  obs::reset();
  const double attr_overhead_pct =
      paced_ms > 0.0 ? 100.0 * (paced_attr_ms - paced_ms) / paced_ms : 0.0;
  std::printf("paced attribution A/B: off %.2f ms | on %.2f ms | overhead "
              "%.2f%%\n", paced_ms, paced_attr_ms, attr_overhead_pct);
  pipe["paced_run_ms"] = util::Json(paced_ms);
  pipe["paced_attr_run_ms"] = util::Json(paced_attr_ms);
  pipe["attr_overhead_pct"] = util::Json(attr_overhead_pct);
  write_report(out_dir + "/BENCH_pipeline.json", "pipeline", std::move(pipe));

  // ---- fleet session scaling --------------------------------------------
  // Sweep 1..N identical S2 sessions on one fleet. Cross-session batching
  // must beat N isolated deployments: fewer batches and less GPU busy time
  // for the same work (the arbiter reports the isolated counterfactual).
  const int fleet_sessions = args.int_or("fleet-sessions", 4);
  const int fleet_ticks = args.int_or("fleet-ticks", 40);
  const int fleet_reps = std::max(1, std::min(3, reps));

  util::Json::Array sweep;
  for (int n = 1; n <= fleet_sessions; ++n) {
    std::vector<double> samples;
    fleet::FleetSnapshot snap;
    long frames = 0;
    for (int rep = 0; rep < fleet_reps; ++rep) {
      const std::unique_ptr<fleet::FleetApi> fleet = fleet::make_fleet({});
      for (int s = 0; s < n; ++s) {
        fleet::SessionSpec spec;
        spec.name = "S2#" + std::to_string(s);
        spec.pipeline.seed = 42 + static_cast<std::uint64_t>(s);
        fleet->admit(spec);
      }
      util::Stopwatch watch;
      fleet->run(fleet_ticks);
      samples.push_back(watch.elapsed_ms());
      snap = fleet->snapshot();
      frames = 0;
      for (const fleet::SessionSnapshot& s : snap.sessions)
        frames += s.frames;
    }
    const double fleet_ms = util::median(std::move(samples));

    util::Json::Object point;
    point["sessions"] = util::Json(n);
    point["frames"] = util::Json(static_cast<double>(frames));
    point["median_run_ms"] = util::Json(fleet_ms);
    point["frames_per_sec"] = util::Json(
        fleet_ms > 0.0 ? 1000.0 * static_cast<double>(frames) / fleet_ms
                       : 0.0);
    point["shared_batches"] =
        util::Json(static_cast<double>(snap.shared_batches));
    point["isolated_batches"] =
        util::Json(static_cast<double>(snap.isolated_batches));
    point["batch_savings_pct"] = util::Json(
        snap.isolated_batches > 0
            ? 100.0 *
                  static_cast<double>(snap.isolated_batches -
                                      snap.shared_batches) /
                  static_cast<double>(snap.isolated_batches)
            : 0.0);
    point["shared_busy_ms"] = util::Json(snap.shared_busy_ms);
    point["isolated_busy_ms"] = util::Json(snap.isolated_busy_ms);
    point["mean_occupancy"] = util::Json(snap.mean_occupancy);
    sweep.push_back(util::Json(std::move(point)));
  }

  // ---- elastic device pools ---------------------------------------------
  // Hold the fleet at max sessions and grow every device pool 1x..3x: added
  // capacity must drain pool queueing delay without changing the attributed
  // busy time (attribution is pool-size independent).
  util::Json::Array elastic;
  for (int multiplier = 1; multiplier <= 3; ++multiplier) {
    std::vector<double> samples;
    fleet::FleetSnapshot snap;
    for (int rep = 0; rep < fleet_reps; ++rep) {
      const std::unique_ptr<fleet::FleetApi> fleet = fleet::make_fleet({});
      for (int s = 0; s < fleet_sessions; ++s) {
        fleet::SessionSpec spec;
        spec.name = "S2#" + std::to_string(s);
        spec.pipeline.seed = 42 + static_cast<std::uint64_t>(s);
        fleet->admit(spec);
      }
      for (const auto& [device_class, count] :
           fleet->snapshot().device_pools)
        fleet->scale_devices(device_class, multiplier - count);
      util::Stopwatch watch;
      fleet->run(fleet_ticks);
      samples.push_back(watch.elapsed_ms());
      snap = fleet->snapshot();
    }
    util::Json::Object point;
    point["devices_per_class"] = util::Json(multiplier);
    point["sessions"] = util::Json(fleet_sessions);
    point["median_run_ms"] = util::Json(util::median(std::move(samples)));
    point["total_queue_ms"] = util::Json(snap.total_queue_ms);
    point["shared_busy_ms"] = util::Json(snap.shared_busy_ms);
    point["mean_occupancy"] = util::Json(snap.mean_occupancy);
    elastic.push_back(util::Json(std::move(point)));
  }

  // ---- sharded-plane scaling ---------------------------------------------
  // Synthetic-load scale sweep over the ShardedFleet (bench/fleet_scale.hpp):
  // ticks/sec, cross-shard batch savings, and device-pool queue drain vs
  // shard count at 1k/4k/10k sessions. Deterministic except wall clock.
  const int scale_ticks = args.int_or("fleet-scale-ticks", 10);
  util::Json::Array scale;
  for (const int n : {1000, 4000, 10000}) {
    for (const int k : {1, 2, 4, 8}) {
      const bench::ScalePoint point =
          bench::run_scale_point("S2", n, k, scale_ticks, 42);
      std::printf("fleet scale: %5d sessions x %d shards -> %7.1f ticks/s, "
                  "x-saved %ld batches\n",
                  n, k, point.ticks_per_sec, point.cross_batches_saved);
      scale.push_back(bench::scale_point_json(point));
    }
  }

  // ---- fleet attribution A/B ---------------------------------------------
  // Same roster as the sweep's max point, with critical-path attribution
  // (and the flight recorder, no dump directory) off vs on.
  util::Json::Object fleet_attr;
  {
    const auto fleet_rep = [&] {
      const std::unique_ptr<fleet::FleetApi> fleet = fleet::make_fleet({});
      for (int s = 0; s < fleet_sessions; ++s) {
        fleet::SessionSpec spec;
        spec.name = "S2#" + std::to_string(s);
        spec.pipeline.seed = 42 + static_cast<std::uint64_t>(s);
        fleet->admit(spec);
      }
      fleet->run(fleet_ticks);
    };
    obs::reset();
    std::vector<double> off_samples, on_samples;
    for (int rep = 0; rep < fleet_reps; ++rep) {
      util::Stopwatch watch;
      fleet_rep();
      off_samples.push_back(watch.elapsed_ms());
    }
    obs::set_attribution_enabled(true);
    for (int rep = 0; rep < fleet_reps; ++rep) {
      util::Stopwatch watch;
      fleet_rep();
      on_samples.push_back(watch.elapsed_ms());
    }
    obs::set_attribution_enabled(false);
    obs::reset();
    const double off_ms = util::median(std::move(off_samples));
    const double on_ms = util::median(std::move(on_samples));
    const double pct =
        off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
    std::printf("fleet attribution A/B: off %.2f ms | on %.2f ms | overhead "
                "%.2f%%\n", off_ms, on_ms, pct);
    fleet_attr["sessions"] = util::Json(fleet_sessions);
    fleet_attr["run_ms"] = util::Json(off_ms);
    fleet_attr["attr_run_ms"] = util::Json(on_ms);
    fleet_attr["attr_overhead_pct"] = util::Json(pct);
  }

  util::Json::Object fl;
  fl["scenario"] = util::Json("S2");
  fl["ticks"] = util::Json(fleet_ticks);
  fl["reps"] = util::Json(fleet_reps);
  fl["sweep"] = util::Json(std::move(sweep));
  fl["elastic"] = util::Json(std::move(elastic));
  fl["attr"] = util::Json(std::move(fleet_attr));
  fl["scale_ticks"] = util::Json(scale_ticks);
  fl["scale"] = util::Json(std::move(scale));
  write_report(out_dir + "/BENCH_fleet.json", "fleet", std::move(fl));

  // ---- concurrency micro-benchmarks --------------------------------------
  // Same measurement loops as bench/micro_concurrency (shared header): MPMC
  // ring vs the embedded mutex-queue baseline, span record cost, pool round
  // trip, and steady-state serving throughput.
  const int cc_reps = std::max(1, std::min(3, reps));
  std::vector<double> ring, mutexq, span, span_off, pool, tps;
  for (int rep = 0; rep < cc_reps; ++rep) {
    ring.push_back(benchcc::ring_enqueue_ns());
    mutexq.push_back(benchcc::mutex_enqueue_ns());
    span.push_back(benchcc::span_ns());
    span_off.push_back(benchcc::span_disabled_ns());
    pool.push_back(benchcc::pool_pair_ns());
    tps.push_back(benchcc::ticks_per_sec());
  }
  const double ring_ns = util::median(std::move(ring));
  const double mutex_ns = util::median(std::move(mutexq));

  util::Json::Object cc;
  cc["reps"] = util::Json(cc_reps);
  cc["ring_enqueue_ns"] = util::Json(ring_ns);
  cc["mutex_enqueue_ns"] = util::Json(mutex_ns);
  cc["enqueue_speedup"] =
      util::Json(ring_ns > 0.0 ? mutex_ns / ring_ns : 0.0);
  cc["span_ns"] = util::Json(util::median(std::move(span)));
  cc["span_disabled_ns"] = util::Json(util::median(std::move(span_off)));
  cc["pool_pair_ns"] = util::Json(util::median(std::move(pool)));
  cc["pipeline_ticks_per_sec"] = util::Json(util::median(std::move(tps)));
  write_report(out_dir + "/BENCH_concurrency.json", "concurrency",
               std::move(cc));
  return 0;
}

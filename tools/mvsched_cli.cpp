// mvsched command-line runner: execute any scenario/policy combination from
// flags or a JSON config file and print per-run metrics (optionally a
// per-frame CSV for plotting).
//
// Usage:
//   mvsched_cli --scenario S1 --policy balb --frames 200 [--horizon 10]
//               [--seed 42] [--transport lossy] [--loss-rate 0.1] [--csv]
//   mvsched_cli --fleet --sessions 3 --slo-ms 120 --dispatch weighted
//               [--frames 100] [--fleet-json rollup.json]
//   mvsched_cli --config run.json
//   mvsched_cli --dump-config          # print a default config document
//   mvsched_cli --help

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "util/args.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

int usage(const char* prog, int exit_code) {
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "usage: %s [options] | --config file.json | --dump-config | --help\n"
      "\n"
      "run options:\n"
      "  --scenario S1|S2|S3     scenario to simulate (default S1)\n"
      "  --policy full|balb-ind|balb-cen|balb|sp\n"
      "                          scheduling policy (default balb)\n"
      "  --frames N              evaluation frames to run (default 200)\n"
      "  --horizon T             frames per scheduling horizon (default 10)\n"
      "  --seed S                RNG seed (default 42)\n"
      "  --threads N             worker threads (0 = hardware concurrency;\n"
      "                          results identical for any count)\n"
      "  --no-tile-flow          disable intra-frame optical-flow row tiling\n"
      "                          (A/B latency studies; output-identical)\n"
      "  --csv                   per-frame CSV on stdout instead of summary\n"
      "  --verbose               per-frame progress logging\n"
      "\n"
      "fleet serving (mvs::fleet):\n"
      "  --fleet                 host --sessions copies of the scenario in\n"
      "                          one multi-session fleet; --frames becomes\n"
      "                          the tick count (one frame per session/tick)\n"
      "  --sessions N            sessions to admit (default 2); session k\n"
      "                          uses seed --seed + k\n"
      "  --slo-ms X              per-tick GPU latency SLO driving admission\n"
      "                          control and dispatch deferral (0 = off)\n"
      "  --dispatch rr|weighted  dispatch order under SLO pressure\n"
      "                          (default rr)\n"
      "  --fleet-json FILE       write the fleet/session rollup JSON\n"
      "\n"
      "network simulation (mvs::netsim):\n"
      "  --transport ideal|lossy closed-form link model (default), or the\n"
      "                          discrete-event transport with queueing and\n"
      "                          fault injection; any fault flag below\n"
      "                          implies --transport lossy unless overridden\n"
      "  --loss-rate P           per-attempt message loss probability [0,1)\n"
      "  --jitter-ms J           mean exponential per-message jitter (ms)\n"
      "  --retry-timeout-ms T    sender retransmit timeout (default 8)\n"
      "  --max-retries R         retransmissions per message (default 3)\n"
      "  --drop-camera SPEC      camera dropout windows, evaluation-frame\n"
      "                          indexed: CAM:FROM[:TO][,CAM:FROM[:TO]...]\n"
      "                          (TO exclusive; omitted = never rejoins)\n",
      prog);
  return exit_code;
}

/// Parse "CAM:FROM[:TO]" dropout windows, comma-separated.
bool parse_dropouts(const std::string& spec,
                    std::vector<mvs::netsim::DropoutWindow>* out) {
  std::istringstream list(spec);
  std::string item;
  while (std::getline(list, item, ',')) {
    mvs::netsim::DropoutWindow w;
    char* end = nullptr;
    const char* s = item.c_str();
    w.camera = static_cast<int>(std::strtol(s, &end, 10));
    if (end == s || *end != ':') return false;
    s = end + 1;
    w.from_frame = std::strtol(s, &end, 10);
    if (end == s) return false;
    if (*end == ':') {
      s = end + 1;
      w.to_frame = std::strtol(s, &end, 10);
      if (end == s) return false;
    }
    if (*end != '\0' || w.camera < 0 || w.from_frame < 0) return false;
    out->push_back(w);
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvs;
  const util::Args args = util::Args::parse(
      argc, argv,
      {"csv", "verbose", "dump-config", "help", "no-tile-flow", "fleet"});

  if (args.has("help")) return usage(argv[0], 0);

  runtime::RunConfig run;
  if (args.has("dump-config")) {
    std::printf("%s\n", runtime::dump_run_config(run).c_str());
    return 0;
  }

  if (const auto path = args.get("config")) {
    std::ifstream in(*path);
    if (!in) {
      std::fprintf(stderr, "cannot open config file: %s\n", path->c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto parsed = runtime::parse_run_config(buffer.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "bad config: %s\n", error.c_str());
      return 1;
    }
    run = *parsed;
  }

  run.scenario = args.get_or("scenario", run.scenario);
  if (const auto name = args.get("policy")) {
    const auto policy = runtime::parse_policy(*name);
    if (!policy) {
      std::fprintf(stderr, "unknown policy: %s\n", name->c_str());
      return usage(argv[0], 2);
    }
    run.pipeline.policy = *policy;
  }
  run.frames = args.int_or("frames", run.frames);
  run.pipeline.horizon_frames =
      args.int_or("horizon", run.pipeline.horizon_frames);
  run.pipeline.seed = static_cast<std::uint64_t>(
      args.number_or("seed", static_cast<double>(run.pipeline.seed)));
  run.pipeline.threads = args.int_or("threads", run.pipeline.threads);
  if (run.pipeline.threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return usage(argv[0], 2);
  }
  if (args.has("no-tile-flow")) run.pipeline.tile_flow = false;
  run.pipeline.verbose = args.has("verbose");
  if (run.pipeline.verbose) util::set_log_level(util::LogLevel::kInfo);

  // Network-simulation flags. Setting any fault knob without an explicit
  // --transport switches to the lossy transport, since faults have no
  // effect on the ideal link.
  netsim::FaultConfig& faults = run.pipeline.faults;
  bool fault_flag_seen = false;
  if (args.has("loss-rate")) {
    faults.loss_rate = args.number_or("loss-rate", faults.loss_rate);
    fault_flag_seen = true;
  }
  if (args.has("jitter-ms")) {
    faults.jitter_ms = args.number_or("jitter-ms", faults.jitter_ms);
    fault_flag_seen = true;
  }
  if (args.has("retry-timeout-ms")) {
    faults.retry_timeout_ms =
        args.number_or("retry-timeout-ms", faults.retry_timeout_ms);
    fault_flag_seen = true;
  }
  if (args.has("max-retries")) {
    faults.max_retries = args.int_or("max-retries", faults.max_retries);
    fault_flag_seen = true;
  }
  if (const auto spec = args.get("drop-camera")) {
    if (!parse_dropouts(*spec, &faults.dropouts)) {
      std::fprintf(stderr, "bad --drop-camera spec: %s\n", spec->c_str());
      return usage(argv[0], 2);
    }
    fault_flag_seen = true;
  }
  if (const auto name = args.get("transport")) {
    const auto kind = net::parse_transport(*name);
    if (!kind) {
      std::fprintf(stderr, "unknown transport: %s\n", name->c_str());
      return usage(argv[0], 2);
    }
    run.pipeline.transport = *kind;
  } else if (fault_flag_seen) {
    run.pipeline.transport = net::TransportKind::kLossy;
  }
  if (faults.loss_rate < 0.0 || faults.loss_rate >= 1.0 ||
      faults.jitter_ms < 0.0 || faults.retry_timeout_ms <= 0.0 ||
      faults.max_retries < 0) {
    std::fprintf(stderr, "fault parameters out of range\n");
    return usage(argv[0], 2);
  }

  if (run.scenario != "S1" && run.scenario != "S2" && run.scenario != "S3")
    return usage(argv[0], 2);

  if (args.has("fleet")) {
    fleet::FleetConfig fc;
    fc.slo_ms = args.number_or("slo-ms", 0.0);
    fc.threads = run.pipeline.threads;
    const auto dispatch = fleet::parse_dispatch(args.get_or("dispatch", "rr"));
    if (!dispatch) {
      std::fprintf(stderr, "unknown dispatch policy: %s\n",
                   args.get_or("dispatch", "rr").c_str());
      return usage(argv[0], 2);
    }
    fc.dispatch = *dispatch;
    const int sessions = args.int_or("sessions", 2);
    if (sessions < 1) {
      std::fprintf(stderr, "--sessions must be >= 1\n");
      return usage(argv[0], 2);
    }

    fleet::Fleet fleet(fc);
    for (int s = 0; s < sessions; ++s) {
      fleet::SessionSpec spec;
      spec.name = run.scenario + "#" + std::to_string(s);
      spec.scenario = run.scenario;
      spec.pipeline = run.pipeline;
      spec.pipeline.seed = run.pipeline.seed + static_cast<std::uint64_t>(s);
      const fleet::AdmitResult admit = fleet.admit(spec);
      if (admit.admitted) {
        std::fprintf(stderr,
                     "admitted %s (projected %.1f ms%s%s)\n",
                     spec.name.c_str(), admit.projected_ms,
                     admit.masks_tightened ? ", masks tightened" : "",
                     admit.rate_halved ? ", rate halved" : "");
      } else {
        std::fprintf(stderr, "rejected %s: %s\n", spec.name.c_str(),
                     admit.reason.c_str());
      }
    }
    std::fprintf(stderr, "running fleet of %zu for %d ticks (slo=%.1f ms, "
                 "dispatch=%s)...\n",
                 fleet.session_count(), run.frames, fc.slo_ms,
                 fleet::to_string(fc.dispatch));
    fleet.run(run.frames);

    const fleet::FleetSnapshot snap = fleet.snapshot();
    util::Table table({"id", "name", "state", "stride", "frames", "deferred",
                       "p50_ms", "p95_ms", "p99_ms", "mean_ms", "iso_ms",
                       "slo_viol", "recall"});
    for (const fleet::SessionSnapshot& s : snap.sessions) {
      table.add_row({std::to_string(s.id), s.name, fleet::to_string(s.state),
                     std::to_string(s.stride), std::to_string(s.frames),
                     std::to_string(s.deferred_ticks),
                     util::Table::fmt(s.p50_ms, 1),
                     util::Table::fmt(s.p95_ms, 1),
                     util::Table::fmt(s.p99_ms, 1),
                     util::Table::fmt(s.mean_ms, 1),
                     util::Table::fmt(s.mean_isolated_ms, 1),
                     std::to_string(s.slo_violations),
                     util::Table::fmt(s.object_recall, 3)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("admitted %d | rejected %d | evicted %d\n", snap.admitted,
                snap.rejected, snap.evicted);
    std::printf("batches: shared %ld vs isolated %ld | busy %.1f vs %.1f ms\n",
                snap.shared_batches, snap.isolated_batches,
                snap.shared_busy_ms, snap.isolated_busy_ms);
    std::printf("occupancy %.2f | p95 tick busy %.1f ms | queue depth %.2f\n",
                snap.mean_occupancy, snap.p95_tick_busy_ms,
                snap.mean_queue_depth);
    if (const auto path = args.get("fleet-json")) {
      std::ofstream out(*path);
      out << snap.to_json() << '\n';
      std::fprintf(stderr, "wrote %s\n", path->c_str());
    }
    return 0;
  }

  std::fprintf(stderr,
               "running %s / %s for %d frames (T=%d, seed=%llu, "
               "transport=%s)...\n",
               run.scenario.c_str(), runtime::to_string(run.pipeline.policy),
               run.frames, run.pipeline.horizon_frames,
               static_cast<unsigned long long>(run.pipeline.seed),
               net::to_string(run.pipeline.transport));

  runtime::Pipeline pipeline(run.scenario, run.pipeline);
  const runtime::PipelineResult result = pipeline.run(run.frames);

  if (args.has("csv")) {
    util::Table csv({"frame", "key", "slowest_ms", "recall", "gt", "tracked",
                     "central_ms", "tracking_ms", "distributed_ms",
                     "batching_ms", "comm_ms", "queue_ms", "retries",
                     "dropped", "online"});
    for (const runtime::FrameStats& f : result.frames) {
      csv.add_row({std::to_string(f.frame), f.key_frame ? "1" : "0",
                   util::Table::fmt(f.slowest_infer_ms, 2),
                   util::Table::fmt(f.frame_recall, 3),
                   std::to_string(f.gt_objects),
                   std::to_string(f.tracked_objects),
                   util::Table::fmt(f.central_ms, 3),
                   util::Table::fmt(f.tracking_ms, 3),
                   util::Table::fmt(f.distributed_ms, 4),
                   util::Table::fmt(f.batching_ms, 3),
                   util::Table::fmt(f.comm_ms, 3),
                   util::Table::fmt(f.queue_ms, 3),
                   std::to_string(f.retries),
                   std::to_string(f.dropped_msgs),
                   std::to_string(f.cameras_online)});
    }
    std::printf("%s", csv.to_csv().c_str());
    return 0;
  }

  std::printf("scenario            : %s\n", result.scenario.c_str());
  std::printf("policy              : %s\n", runtime::to_string(result.policy));
  std::printf("transport           : %s\n",
              net::to_string(run.pipeline.transport));
  std::printf("frames              : %zu\n", result.frames.size());
  std::printf("object recall       : %.3f\n", result.object_recall);
  std::printf("slowest camera mean : %.1f ms/frame\n",
              result.mean_slowest_infer_ms());
  std::printf("overheads (ms/frame): central %.2f | tracking %.2f | "
              "distributed %.3f | batching %.2f | comm %.2f\n",
              result.mean_central_ms(), result.mean_tracking_ms(),
              result.mean_distributed_ms(), result.mean_batching_ms(),
              result.mean_comm_ms());
  if (run.pipeline.transport == net::TransportKind::kLossy)
    std::printf("network             : queue %.3f ms/frame | retries %ld | "
                "dropped msgs %ld\n",
                result.mean_queue_ms(), result.total_retries(),
                result.total_dropped_msgs());
  return 0;
}

// mvsched command-line runner: execute any scenario/policy combination from
// flags or a JSON config file and print per-run metrics (optionally a
// per-frame CSV for plotting).
//
// Usage:
//   mvsched_cli --scenario S1 --policy balb --frames 200 [--horizon 10]
//               [--seed 42] [--transport lossy] [--loss-rate 0.1] [--csv]
//   mvsched_cli --fleet --sessions 3 --slo-ms 120 --dispatch weighted
//               [--frames 100] [--fleet-json rollup.json]
//   mvsched_cli --config run.json
//   mvsched_cli --dump-config          # print a default config document
//   mvsched_cli --help

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet_api.hpp"
#include "obs/obs.hpp"
#include "rt/runner.hpp"
#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "sim/scenario.hpp"
#include "util/args.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

int usage(const char* prog, int exit_code) {
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "usage: %s [options] | --config file.json | --dump-config | --help\n"
      "\n"
      "run options:\n"
      "  --scenario NAME         scenario to simulate (default S1): S1, S2,\n"
      "                          S3, or an encoded city name (\"city:c=50,"
      "...\")\n"
      "  --policy full|balb-ind|balb-cen|balb|sp\n"
      "                          scheduling policy (default balb)\n"
      "  --frames N              evaluation frames to run (default 200)\n"
      "  --horizon T             frames per scheduling horizon (default 10)\n"
      "  --seed S                RNG seed (default 42)\n"
      "  --threads N             worker threads (0 = hardware concurrency;\n"
      "                          results identical for any count)\n"
      "  --no-tile-flow          disable intra-frame optical-flow row tiling\n"
      "                          (A/B latency studies; output-identical)\n"
      "  --paired-rng            common-random-numbers mode: re-seed each\n"
      "                          camera's RNG per frame (policy A/B studies)\n"
      "  --csv                   per-frame CSV on stdout instead of summary\n"
      "  --verbose               per-frame progress logging\n"
      "\n"
      "detect-or-track policy (mvs::policy):\n"
      "  --frame-policy MODE     fixed|heuristic|learned: per-camera per-\n"
      "                          frame detect-or-track decision (default\n"
      "                          fixed = detect every regular frame,\n"
      "                          bit-identical to the pre-policy pipeline)\n"
      "  --policy-model FILE     learned-policy model JSON (tools/\n"
      "                          policy_train output); implies learned\n"
      "  --policy-staleness N    force a detect after N frames without one\n"
      "                          (default 3; safety cap for both modes)\n"
      "  --policy-drift-px X     heuristic detect trigger: accumulated\n"
      "                          track drift in pixels (default 4)\n"
      "  --policy-threshold X    learned decision threshold override (0,1)\n"
      "  --policy-feature-trace FILE\n"
      "                          record per-camera policy features + labels\n"
      "                          as JSONL for tools/policy_train\n"
      "\n"
      "fleet serving (mvs::fleet):\n"
      "  --fleet                 host --sessions copies of the scenario in\n"
      "                          one multi-session fleet; --frames becomes\n"
      "                          the base-period count (a config file with a\n"
      "                          \"fleet\" block implies fleet mode)\n"
      "  --sessions N            sessions to admit (default 2); session k\n"
      "                          uses seed --seed + k; ignored when the\n"
      "                          config file lists sessions\n"
      "  --slo-ms X              per-tick GPU latency SLO driving admission\n"
      "                          control and dispatch deferral (0 = off)\n"
      "  --dispatch rr|weighted  dispatch order under SLO pressure\n"
      "                          (default rr)\n"
      "  --session-fps LIST      per-session native fps, comma-separated in\n"
      "                          session order (0 = fleet base rate); rates\n"
      "                          that do not divide grow the tick wheel\n"
      "  --session-loss-rate L   per-session transport loss probabilities,\n"
      "                          comma-separated (> 0 implies the lossy\n"
      "                          transport for that session only)\n"
      "  --scale-devices SPEC    grow/shrink accelerator pools after\n"
      "                          admission: CLASS:DELTA[,CLASS:DELTA...]\n"
      "  --readmit-interval N    ticks between re-admission scans that\n"
      "                          reverse the degrade ladder (default 10;\n"
      "                          0 = degradation is sticky)\n"
      "  --split-batches         allow the arbiter to split an over-full\n"
      "                          batch across two ticks to protect the SLO\n"
      "  --dispatch-overhead-ms X\n"
      "                          fixed per-batch dispatch cost charged by\n"
      "                          the device pools (default 0; makes wide\n"
      "                          pools scale sublinearly like real\n"
      "                          accelerators)\n"
      "  --shards N              shard the serving plane across N\n"
      "                          schedulers, each with its own arbiter and\n"
      "                          tick wheel (default 1; sessions place onto\n"
      "                          the least-loaded shard)\n"
      "  --rebalance-interval N  ticks between live-migration rebalance\n"
      "                          scans over the shards (default 0 = no\n"
      "                          background migration)\n"
      "  --synthetic             admit synthetic-load sessions (seeded task\n"
      "                          generators, no vision stack) — lets one\n"
      "                          process host thousands of sessions\n"
      "  --fleet-json FILE       write the fleet/session rollup JSON\n"
      "\n"
      "streaming perception (mvs::rt):\n"
      "  --paced                 run under the paced runtime: frames arrive\n"
      "                          on a virtual wall clock and carry deadline\n"
      "                          budgets; prints streaming metrics (any rt\n"
      "                          flag below implies --paced; standalone runs\n"
      "                          only, ignored with --fleet)\n"
      "  --frame-period-ms X     arrival period (default 0 = derive from\n"
      "                          the scenario's fps)\n"
      "  --deadline-ms X         per-frame budget past capture (default\n"
      "                          100, the streaming-perception rule;\n"
      "                          0 = infinite)\n"
      "  --late-policy MODE      drop|supersede|finish-late: what happens\n"
      "                          to a frame already past its budget\n"
      "                          (default supersede)\n"
      "  --arrival-jitter-ms X   mean exponential per-camera capture\n"
      "                          jitter (default 0)\n"
      "  --rt-overhead-ms X      fixed per-frame service overhead\n"
      "                          (default 0)\n"
      "\n"
      "city-scale scenarios (mvs::sim):\n"
      "  --city-grid N           synthesize an N-camera sparse city grid\n"
      "                          and use it as the scenario\n"
      "  --flash-crowd AT:DUR[:MULT]\n"
      "                          arrival-rate burst: MULT x (default 4)\n"
      "                          for DUR seconds starting AT seconds into\n"
      "                          the evaluation\n"
      "  --correlation-gate      learn ReXCam-style cross-camera\n"
      "                          correlations in training and skip\n"
      "                          detection on cold cameras\n"
      "  --gate-hold N           frames a camera stays hot after its\n"
      "                          trigger goes away (default 80)\n"
      "\n"
      "observability (mvs::obs):\n"
      "  --chrome-trace FILE     record spans and write Chrome trace-event\n"
      "                          JSON (open in chrome://tracing or Perfetto);\n"
      "                          implies instrumentation on\n"
      "  --metrics-json FILE     write the metrics registry snapshot\n"
      "                          (counters, gauges, p50/p95/p99 histograms);\n"
      "                          implies instrumentation on AND critical-\n"
      "                          path attribution (the export carries the\n"
      "                          attribution table)\n"
      "  --attribution           enable critical-path latency attribution\n"
      "                          (per-frame segment decomposition; zero-\n"
      "                          alloc, independent of the span/metrics\n"
      "                          instrumentation)\n"
      "  --postmortem-dir DIR    write deadline-miss flight-recorder\n"
      "                          postmortems (postmortem-<n>.json) into DIR\n"
      "                          on miss bursts / evictions; implies\n"
      "                          --attribution\n"
      "  --burn-budget X         SLO error budget in [0,1] driving the\n"
      "                          multi-window burn-rate monitor: the\n"
      "                          tolerated SLO-violation fraction (fleet\n"
      "                          per-session + per-shard; paced runs use it\n"
      "                          as the deadline-miss budget). 0 = off\n"
      "\n"
      "network simulation (mvs::netsim):\n"
      "  --transport ideal|lossy closed-form link model (default), or the\n"
      "                          discrete-event transport with queueing and\n"
      "                          fault injection; any fault flag below\n"
      "                          implies --transport lossy unless overridden\n"
      "  --loss-rate P           per-attempt message loss probability [0,1)\n"
      "  --jitter-ms J           mean exponential per-message jitter (ms)\n"
      "  --retry-timeout-ms T    sender retransmit timeout (default 8)\n"
      "  --max-retries R         retransmissions per message (default 3)\n"
      "  --drop-camera SPEC      camera dropout windows, evaluation-frame\n"
      "                          indexed: CAM:FROM[:TO][,CAM:FROM[:TO]...]\n"
      "                          (TO exclusive; omitted = never rejoins)\n",
      prog);
  return exit_code;
}

/// Parse "CAM:FROM[:TO]" dropout windows, comma-separated.
bool parse_dropouts(const std::string& spec,
                    std::vector<mvs::netsim::DropoutWindow>* out) {
  std::istringstream list(spec);
  std::string item;
  while (std::getline(list, item, ',')) {
    mvs::netsim::DropoutWindow w;
    char* end = nullptr;
    const char* s = item.c_str();
    w.camera = static_cast<int>(std::strtol(s, &end, 10));
    if (end == s || *end != ':') return false;
    s = end + 1;
    w.from_frame = std::strtol(s, &end, 10);
    if (end == s) return false;
    if (*end == ':') {
      s = end + 1;
      w.to_frame = std::strtol(s, &end, 10);
      if (end == s) return false;
    }
    if (*end != '\0' || w.camera < 0 || w.from_frame < 0) return false;
    out->push_back(w);
  }
  return !out->empty();
}

/// Parse "CLASS:DELTA" device-pool adjustments, comma-separated.
bool parse_device_scale(const std::string& spec,
                        std::vector<mvs::runtime::FleetDeviceScale>* out) {
  std::istringstream list(spec);
  std::string item;
  while (std::getline(list, item, ',')) {
    const auto colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0) return false;
    mvs::runtime::FleetDeviceScale ds;
    ds.device_class = item.substr(0, colon);
    char* end = nullptr;
    const char* s = item.c_str() + colon + 1;
    ds.delta = static_cast<int>(std::strtol(s, &end, 10));
    if (end == s || *end != '\0') return false;
    out->push_back(std::move(ds));
  }
  return !out->empty();
}

/// Parse "AT:DUR[:MULT]" flash-crowd bursts (seconds, seconds, rate
/// multiplier) into the city config.
bool parse_flash_crowd(const std::string& spec, mvs::sim::CityConfig* city) {
  char* end = nullptr;
  const char* s = spec.c_str();
  city->flash_at_s = std::strtod(s, &end);
  if (end == s || *end != ':') return false;
  s = end + 1;
  city->flash_duration_s = std::strtod(s, &end);
  if (end == s) return false;
  if (*end == ':') {
    s = end + 1;
    city->flash_multiplier = std::strtod(s, &end);
    if (end == s) return false;
  }
  return *end == '\0' && city->flash_at_s >= 0.0 &&
         city->flash_duration_s > 0.0 && city->flash_multiplier > 0.0;
}

/// Parse a comma-separated number list ("10,15,30").
bool parse_number_list(const std::string& spec, std::vector<double>* out) {
  std::istringstream list(spec);
  std::string item;
  while (std::getline(list, item, ',')) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0') return false;
    out->push_back(v);
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvs;
  const util::Args args = util::Args::parse(
      argc, argv,
      {"csv", "verbose", "dump-config", "help", "no-tile-flow", "fleet",
       "split-batches", "paired-rng", "paced", "correlation-gate",
       "synthetic", "attribution"});

  if (args.has("help")) return usage(argv[0], 0);

  runtime::RunConfig run;
  if (args.has("dump-config")) {
    std::printf("%s\n", runtime::dump_run_config(run).c_str());
    return 0;
  }

  if (const auto path = args.get("config")) {
    std::ifstream in(*path);
    if (!in) {
      std::fprintf(stderr, "cannot open config file: %s\n", path->c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto parsed = runtime::parse_run_config(buffer.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "bad config: %s\n", error.c_str());
      return 1;
    }
    run = *parsed;
  }

  // The scenario may be given positionally (`mvsched_cli S2 ...`) or via
  // --scenario; the explicit flag wins when both are present.
  if (args.positional().size() > 1) {
    std::fprintf(stderr, "unexpected argument: %s\n",
                 args.positional()[1].c_str());
    return usage(argv[0], 2);
  }
  if (!args.positional().empty()) run.scenario = args.positional().front();
  run.scenario = args.get_or("scenario", run.scenario);
  if (const auto name = args.get("policy")) {
    const auto policy = runtime::parse_policy(*name);
    if (!policy) {
      std::fprintf(stderr, "unknown policy: %s\n", name->c_str());
      return usage(argv[0], 2);
    }
    run.pipeline.policy = *policy;
  }
  run.frames = args.int_or("frames", run.frames);
  run.pipeline.horizon_frames =
      args.int_or("horizon", run.pipeline.horizon_frames);
  run.pipeline.seed = static_cast<std::uint64_t>(
      args.number_or("seed", static_cast<double>(run.pipeline.seed)));
  run.pipeline.threads = args.int_or("threads", run.pipeline.threads);
  if (run.pipeline.threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return usage(argv[0], 2);
  }
  if (args.has("no-tile-flow")) run.pipeline.tile_flow = false;
  if (args.has("paired-rng")) run.pipeline.paired_rng = true;
  run.pipeline.verbose = args.has("verbose");
  if (run.pipeline.verbose) util::set_log_level(util::LogLevel::kInfo);

  // Detect-or-track policy flags (CLI parity with the "policy" block).
  policy::PolicyConfig& fp = run.pipeline.frame_policy;
  if (const auto name = args.get("frame-policy")) {
    const auto kind = policy::parse_policy_kind(*name);
    if (!kind) {
      std::fprintf(stderr, "unknown frame policy: %s\n", name->c_str());
      return usage(argv[0], 2);
    }
    fp.kind = *kind;
  }
  if (const auto path = args.get("policy-model")) {
    fp.model_path = *path;
    if (!args.has("frame-policy")) fp.kind = policy::PolicyKind::kLearned;
  }
  fp.staleness_limit = args.int_or("policy-staleness", fp.staleness_limit);
  fp.drift_px = args.number_or("policy-drift-px", fp.drift_px);
  fp.threshold = args.number_or("policy-threshold", fp.threshold);
  fp.feature_trace = args.get_or("policy-feature-trace", fp.feature_trace);
  if (fp.staleness_limit < 0 || fp.drift_px <= 0.0 || fp.threshold < 0.0 ||
      fp.threshold >= 1.0) {
    std::fprintf(stderr, "policy parameters out of range\n");
    return usage(argv[0], 2);
  }
  if (fp.kind == policy::PolicyKind::kLearned && fp.model_path.empty() &&
      fp.model_json.empty()) {
    std::fprintf(stderr,
                 "--frame-policy learned requires --policy-model FILE\n");
    return usage(argv[0], 2);
  }

  // Network-simulation flags. Setting any fault knob without an explicit
  // --transport switches to the lossy transport, since faults have no
  // effect on the ideal link.
  netsim::FaultConfig& faults = run.pipeline.faults;
  bool fault_flag_seen = false;
  if (args.has("loss-rate")) {
    faults.loss_rate = args.number_or("loss-rate", faults.loss_rate);
    fault_flag_seen = true;
  }
  if (args.has("jitter-ms")) {
    faults.jitter_ms = args.number_or("jitter-ms", faults.jitter_ms);
    fault_flag_seen = true;
  }
  if (args.has("retry-timeout-ms")) {
    faults.retry_timeout_ms =
        args.number_or("retry-timeout-ms", faults.retry_timeout_ms);
    fault_flag_seen = true;
  }
  if (args.has("max-retries")) {
    faults.max_retries = args.int_or("max-retries", faults.max_retries);
    fault_flag_seen = true;
  }
  if (const auto spec = args.get("drop-camera")) {
    if (!parse_dropouts(*spec, &faults.dropouts)) {
      std::fprintf(stderr, "bad --drop-camera spec: %s\n", spec->c_str());
      return usage(argv[0], 2);
    }
    fault_flag_seen = true;
  }
  if (const auto name = args.get("transport")) {
    const auto kind = net::parse_transport(*name);
    if (!kind) {
      std::fprintf(stderr, "unknown transport: %s\n", name->c_str());
      return usage(argv[0], 2);
    }
    run.pipeline.transport = *kind;
  } else if (fault_flag_seen) {
    run.pipeline.transport = net::TransportKind::kLossy;
  }
  if (faults.loss_rate < 0.0 || faults.loss_rate >= 1.0 ||
      faults.jitter_ms < 0.0 || faults.retry_timeout_ms <= 0.0 ||
      faults.max_retries < 0) {
    std::fprintf(stderr, "fault parameters out of range\n");
    return usage(argv[0], 2);
  }

  // Streaming-perception pacing (mvs::rt): CLI parity with the "rt" config
  // block. Any rt knob implies --paced, so `--deadline-ms 80` alone does
  // what it looks like it does.
  runtime::RtConfig& rt = run.rt;
  if (args.has("paced")) rt.paced = true;
  if (args.has("frame-period-ms")) {
    rt.frame_period_ms = args.number_or("frame-period-ms", rt.frame_period_ms);
    rt.paced = true;
  }
  if (args.has("deadline-ms")) {
    rt.deadline_ms = args.number_or("deadline-ms", rt.deadline_ms);
    rt.paced = true;
  }
  if (args.has("arrival-jitter-ms")) {
    rt.arrival_jitter_ms =
        args.number_or("arrival-jitter-ms", rt.arrival_jitter_ms);
    rt.paced = true;
  }
  if (args.has("rt-overhead-ms")) {
    rt.fixed_overhead_ms =
        args.number_or("rt-overhead-ms", rt.fixed_overhead_ms);
    rt.paced = true;
  }
  if (const auto name = args.get("late-policy")) {
    const auto policy = runtime::parse_late_policy(*name);
    if (!policy) {
      std::fprintf(stderr, "unknown late policy: %s\n", name->c_str());
      return usage(argv[0], 2);
    }
    rt.late_policy = *policy;
    rt.paced = true;
  }
  if (args.has("burn-budget") && !args.has("fleet") && !run.fleet.has_value()) {
    rt.miss_budget = args.number_or("burn-budget", rt.miss_budget);
    rt.paced = true;
  }
  if (rt.frame_period_ms < 0.0 || rt.deadline_ms < 0.0 ||
      rt.arrival_jitter_ms < 0.0 || rt.fixed_overhead_ms < 0.0 ||
      rt.miss_budget < 0.0 || rt.miss_budget > 1.0) {
    std::fprintf(stderr, "rt parameters out of range\n");
    return usage(argv[0], 2);
  }

  // City-grid scenarios: --city-grid synthesizes the canonical encoded
  // "city:..." name (the same string a config file's "city" block produces),
  // starting from the current scenario when it is already a city.
  if (args.has("city-grid") || args.has("flash-crowd")) {
    sim::CityConfig cc;
    if (const auto existing = sim::parse_city_name(run.scenario))
      cc = *existing;
    cc.cameras = args.int_or("city-grid", cc.cameras);
    if (cc.cameras < 1 || cc.cameras > 1000) {
      std::fprintf(stderr, "--city-grid must be in [1, 1000]\n");
      return usage(argv[0], 2);
    }
    if (const auto spec = args.get("flash-crowd")) {
      if (!parse_flash_crowd(*spec, &cc)) {
        std::fprintf(stderr, "bad --flash-crowd spec: %s\n", spec->c_str());
        return usage(argv[0], 2);
      }
    }
    run.scenario = sim::city_scenario_name(cc);
  }
  if (args.has("correlation-gate")) fp.correlation_gate = true;
  fp.gate_hold = args.int_or("gate-hold", fp.gate_hold);
  if (fp.gate_hold < 0) {
    std::fprintf(stderr, "--gate-hold must be >= 0\n");
    return usage(argv[0], 2);
  }

  if (run.scenario != "S1" && run.scenario != "S2" && run.scenario != "S3" &&
      !sim::parse_city_name(run.scenario))
    return usage(argv[0], 2);

  // Observability: CLI flags override the config's "obs" block and imply
  // instrumentation on. Output files open up front so an unwritable path
  // fails fast (exit 2) instead of after a long run.
  if (const auto path = args.get("chrome-trace")) {
    run.obs.chrome_trace = *path;
    run.obs.enabled = true;
  }
  if (const auto path = args.get("metrics-json")) {
    run.obs.metrics_json = *path;
    run.obs.enabled = true;
  }
  if (args.has("attribution")) run.obs.attribution = true;
  if (const auto path = args.get("postmortem-dir"))
    run.obs.postmortem_dir = *path;
  // A metrics export carries the attribution table and a postmortem dir is
  // useless without frames to record — both imply attribution (mirrors the
  // config-file implication in runtime::parse_run_config).
  if (!run.obs.metrics_json.empty() || !run.obs.postmortem_dir.empty())
    run.obs.attribution = true;
  std::ofstream chrome_out, metrics_out;
  if (!run.obs.chrome_trace.empty()) {
    chrome_out.open(run.obs.chrome_trace, std::ios::out | std::ios::trunc);
    if (!chrome_out) {
      std::fprintf(stderr, "cannot write --chrome-trace file: %s\n",
                   run.obs.chrome_trace.c_str());
      return usage(argv[0], 2);
    }
  }
  if (!run.obs.metrics_json.empty()) {
    metrics_out.open(run.obs.metrics_json, std::ios::out | std::ios::trunc);
    if (!metrics_out) {
      std::fprintf(stderr, "cannot write --metrics-json file: %s\n",
                   run.obs.metrics_json.c_str());
      return usage(argv[0], 2);
    }
  }
  if (run.obs.enabled || run.obs.attribution) obs::reset();
  if (run.obs.enabled) obs::set_enabled(true);
  if (run.obs.attribution) {
    obs::set_attribution_enabled(true);
    obs::FlightRecorder::Config rc;
    rc.dir = run.obs.postmortem_dir;
    rc.miss_window = run.obs.postmortem_miss_window;
    rc.miss_threshold = run.obs.postmortem_miss_threshold;
    obs::recorder().configure(rc);
  }
  const auto write_obs_exports = [&] {
    if (chrome_out.is_open()) {
      chrome_out << obs::tracer().chrome_trace_json() << '\n';
      std::fprintf(stderr, "wrote %s\n", run.obs.chrome_trace.c_str());
    }
    if (metrics_out.is_open()) {
      metrics_out << obs::export_json() << '\n';
      std::fprintf(stderr, "wrote %s\n", run.obs.metrics_json.c_str());
    }
    if (run.obs.attribution && obs::recorder().dumps() > 0) {
      const std::string path = obs::recorder().last_dump_path();
      std::fprintf(stderr, "flight recorder: %lld postmortem dump%s%s%s\n",
                   obs::recorder().dumps(),
                   obs::recorder().dumps() == 1 ? "" : "s",
                   path.empty() ? "" : ", last ", path.c_str());
    }
  };

  // Fleet serving: --fleet, or a config file carrying a "fleet" block. All
  // knobs flow through runtime::FleetRunConfig so the CLI and the JSON
  // config stay in parity (fleet::make_fleet_config validates it).
  if (args.has("fleet") || run.fleet.has_value()) {
    runtime::FleetRunConfig frc =
        run.fleet ? *run.fleet : runtime::FleetRunConfig{};
    frc.slo_ms = args.number_or("slo-ms", frc.slo_ms);
    frc.dispatch = args.get_or("dispatch", frc.dispatch);
    frc.threads = args.int_or("threads", frc.threads);
    frc.readmit_interval =
        args.int_or("readmit-interval", frc.readmit_interval);
    if (args.has("split-batches")) frc.allow_split = true;
    frc.dispatch_overhead_ms =
        args.number_or("dispatch-overhead-ms", frc.dispatch_overhead_ms);
    if (frc.dispatch_overhead_ms < 0.0) {
      std::fprintf(stderr, "--dispatch-overhead-ms must be >= 0\n");
      return usage(argv[0], 2);
    }
    if (const auto spec = args.get("scale-devices")) {
      if (!parse_device_scale(*spec, &frc.device_scale)) {
        std::fprintf(stderr, "bad --scale-devices spec: %s\n", spec->c_str());
        return usage(argv[0], 2);
      }
    }
    if (frc.readmit_interval < 0) {
      std::fprintf(stderr, "--readmit-interval must be >= 0\n");
      return usage(argv[0], 2);
    }
    frc.burn_error_budget =
        args.number_or("burn-budget", frc.burn_error_budget);
    frc.shards = args.int_or("shards", frc.shards);
    frc.rebalance_interval =
        args.int_or("rebalance-interval", frc.rebalance_interval);
    if (frc.shards < 1 || frc.rebalance_interval < 0) {
      std::fprintf(stderr,
                   "--shards must be >= 1, --rebalance-interval >= 0\n");
      return usage(argv[0], 2);
    }

    // Session roster: the config file's list wins; otherwise synthesize
    // --sessions copies of the flag-selected scenario/pipeline.
    if (frc.sessions.empty()) {
      const int sessions = args.int_or("sessions", 2);
      if (sessions < 1) {
        std::fprintf(stderr, "--sessions must be >= 1\n");
        return usage(argv[0], 2);
      }
      for (int s = 0; s < sessions; ++s) {
        runtime::FleetSessionSpec spec;
        spec.name = run.scenario + "#" + std::to_string(s);
        spec.scenario = run.scenario;
        spec.synthetic = args.has("synthetic");
        spec.pipeline = run.pipeline;
        spec.pipeline.seed = run.pipeline.seed + static_cast<std::uint64_t>(s);
        frc.sessions.push_back(std::move(spec));
      }
    }
    if (const auto spec = args.get("session-fps")) {
      std::vector<double> rates;
      if (!parse_number_list(*spec, &rates) ||
          std::any_of(rates.begin(), rates.end(),
                      [](double r) { return r < 0.0; })) {
        std::fprintf(stderr, "bad --session-fps list: %s\n", spec->c_str());
        return usage(argv[0], 2);
      }
      for (std::size_t s = 0; s < rates.size() && s < frc.sessions.size(); ++s)
        frc.sessions[s].fps = static_cast<int>(rates[s]);
    }
    if (const auto spec = args.get("session-loss-rate")) {
      std::vector<double> rates;
      if (!parse_number_list(*spec, &rates) ||
          std::any_of(rates.begin(), rates.end(),
                      [](double r) { return r < 0.0 || r > 1.0; })) {
        std::fprintf(stderr, "bad --session-loss-rate list: %s\n",
                     spec->c_str());
        return usage(argv[0], 2);
      }
      for (std::size_t s = 0; s < rates.size() && s < frc.sessions.size();
           ++s) {
        if (rates[s] <= 0.0) continue;
        netsim::FaultConfig fc = frc.sessions[s].faults
                                     ? *frc.sessions[s].faults
                                     : netsim::FaultConfig{};
        fc.loss_rate = rates[s];
        frc.sessions[s].faults = fc;
      }
    }

    std::string error;
    const auto fc = fleet::make_fleet_config(frc, &error);
    if (!fc) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return usage(argv[0], 2);
    }

    // The CLI consumes the serving plane through FleetApi only: make_fleet
    // returns a single Fleet or a ShardedFleet, and nothing below cares.
    const std::unique_ptr<fleet::FleetApi> fleet = fleet::make_fleet(*fc);
    for (const fleet::SessionSpec& spec : frc.sessions) {
      const fleet::AdmitResult admit = fleet->admit(spec);
      if (admit.admitted) {
        std::fprintf(stderr,
                     "admitted %s -> shard %d (projected %.1f ms%s%s)\n",
                     spec.name.c_str(), admit.shard, admit.projected_ms,
                     admit.masks_tightened ? ", masks tightened" : "",
                     admit.rate_halved ? ", rate halved" : "");
      } else {
        std::fprintf(stderr, "rejected %s: %s\n", spec.name.c_str(),
                     admit.reason.c_str());
      }
    }
    for (const runtime::FleetDeviceScale& ds : frc.device_scale) {
      const int count = fleet->scale_devices(ds.device_class, ds.delta);
      std::fprintf(stderr, "scaled %s pool to %d device%s\n",
                   ds.device_class.c_str(), count, count == 1 ? "" : "s");
    }

    // --frames counts base frame periods; the wheel may tick faster when
    // heterogeneous rates were admitted.
    const int base_fps = std::max(
        1, static_cast<int>(std::lround(1000.0 / fc->frame_period_ms)));
    const int ticks = run.frames * (fleet->wheel_hz() / base_fps);
    std::fprintf(stderr, "running fleet of %zu for %d ticks (wheel %d Hz, "
                 "%d shard%s, slo=%.1f ms, dispatch=%s)...\n",
                 fleet->session_count(), ticks, fleet->wheel_hz(),
                 fc->shards, fc->shards == 1 ? "" : "s", fc->slo_ms,
                 fleet::to_string(fc->dispatch));
    fleet->run(ticks);

    const fleet::FleetSnapshot snap = fleet->snapshot();
    util::Table table({"handle", "shard", "name", "state", "fps", "stride",
                       "frames", "deferred", "p50_ms", "p95_ms", "p99_ms",
                       "mean_ms", "iso_ms", "queue_ms", "slo_viol",
                       "recall"});
    for (const fleet::SessionSnapshot& s : snap.sessions) {
      table.add_row({std::to_string(s.handle.id) + "." +
                         std::to_string(s.handle.gen),
                     std::to_string(s.shard), s.name,
                     fleet::to_string(s.state),
                     std::to_string(s.fps), std::to_string(s.stride),
                     std::to_string(s.frames),
                     std::to_string(s.deferred_ticks),
                     util::Table::fmt(s.p50_ms, 1),
                     util::Table::fmt(s.p95_ms, 1),
                     util::Table::fmt(s.p99_ms, 1),
                     util::Table::fmt(s.mean_ms, 1),
                     util::Table::fmt(s.mean_isolated_ms, 1),
                     util::Table::fmt(s.mean_queue_ms, 2),
                     std::to_string(s.slo_violations),
                     util::Table::fmt(s.object_recall, 3)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("admitted %d | rejected %d | evicted %d | readmitted %d\n",
                snap.admitted, snap.rejected, snap.evicted, snap.readmitted);
    if (snap.shards > 1)
      std::printf("shards %d | migrations %ld | cross-shard batches saved "
                  "%ld (%.1f ms)\n",
                  snap.shards, snap.migrations, snap.cross_batches_saved,
                  snap.cross_busy_saved_ms);
    std::printf("batches: shared %ld vs isolated %ld | busy %.1f vs %.1f ms "
                "| splits %ld\n",
                snap.shared_batches, snap.isolated_batches,
                snap.shared_busy_ms, snap.isolated_busy_ms,
                snap.batch_splits);
    std::printf("occupancy %.2f | p95 tick busy %.1f ms | queue depth %.2f "
                "| pool queueing %.1f ms\n",
                snap.mean_occupancy, snap.p95_tick_busy_ms,
                snap.mean_queue_depth, snap.total_queue_ms);
    if (fc->burn_error_budget > 0.0)
      std::printf("slo burn: %ld alert%s raised | %ld cleared | %d session%s "
                  "alerting\n",
                  snap.slo_alerts_raised,
                  snap.slo_alerts_raised == 1 ? "" : "s",
                  snap.slo_alerts_cleared, snap.alerting_sessions,
                  snap.alerting_sessions == 1 ? "" : "s");
    for (const auto& [name, count] : snap.device_pools)
      std::printf("device pool %s: %d\n", name.c_str(), count);
    if (snap.total_retries || snap.total_dropped_msgs)
      std::printf("transport: retries %ld | dropped msgs %ld\n",
                  snap.total_retries, snap.total_dropped_msgs);
    if (const auto path = args.get("fleet-json")) {
      std::ofstream out(*path);
      out << snap.to_json() << '\n';
      std::fprintf(stderr, "wrote %s\n", path->c_str());
    }
    write_obs_exports();
    return 0;
  }

  // Paced streaming run: frames arrive on the virtual wall clock, each with
  // a deadline budget; the summary reports streaming recall (emitted tracks
  // scored against the world at emission time) next to the classic offline
  // recall.
  if (run.rt.paced) {
    rt::RtRunner runner(run.scenario, run.pipeline, run.rt);
    std::fprintf(stderr,
                 "running paced %s / %s for %d frames (period=%.0f ms, "
                 "deadline=%s, late=%s)...\n",
                 run.scenario.c_str(),
                 runtime::to_string(run.pipeline.policy), run.frames,
                 runner.frame_period_ms(),
                 run.rt.deadline_ms > 0.0
                     ? (util::Table::fmt(run.rt.deadline_ms, 0) + " ms").c_str()
                     : "inf",
                 runtime::to_string(run.rt.late_policy));
    const rt::RtResult r = runner.run(run.frames);
    const rt::RtCounters& c = r.counters;
    std::printf("scenario            : %s\n", run.scenario.c_str());
    std::printf("policy              : %s | late policy %s\n",
                runtime::to_string(run.pipeline.policy),
                runtime::to_string(run.rt.late_policy));
    std::printf("frames              : %ld arrived | %ld processed | "
                "%ld dropped | %ld superseded | %ld missed deadline\n",
                c.arrived, c.processed, c.dropped, c.superseded,
                c.deadline_miss);
    std::printf("streaming recall    : %.3f (over %ld instants)\n",
                r.streaming_recall, r.instants);
    std::printf("object recall       : %.3f\n", r.object_recall);
    std::printf("emission lag        : mean %.1f ms | max %.1f ms\n",
                r.mean_lag_ms, r.max_lag_ms);
    std::printf("gpu busy            : %.0f ms over %.0f ms makespan\n",
                c.gpu_busy_ms, r.makespan_ms);
    if (run.rt.miss_budget > 0.0)
      std::printf("slo burn            : %ld alert%s raised | %salerting at "
                  "exit\n",
                  runner.slo_alerts(), runner.slo_alerts() == 1 ? "" : "s",
                  runner.alerting() ? "" : "not ");
    write_obs_exports();
    return 0;
  }

  std::fprintf(stderr,
               "running %s / %s for %d frames (T=%d, seed=%llu, "
               "transport=%s)...\n",
               run.scenario.c_str(), runtime::to_string(run.pipeline.policy),
               run.frames, run.pipeline.horizon_frames,
               static_cast<unsigned long long>(run.pipeline.seed),
               net::to_string(run.pipeline.transport));

  runtime::Pipeline pipeline(run.scenario, run.pipeline);
  const runtime::PipelineResult result = pipeline.run(run.frames);

  if (args.has("csv")) {
    util::Table csv({"frame", "key", "slowest_ms", "recall", "gt", "tracked",
                     "central_ms", "tracking_ms", "distributed_ms",
                     "batching_ms", "comm_ms", "queue_ms", "retries",
                     "dropped", "online"});
    for (const runtime::FrameStats& f : result.frames) {
      csv.add_row({std::to_string(f.frame), f.key_frame ? "1" : "0",
                   util::Table::fmt(f.slowest_infer_ms, 2),
                   util::Table::fmt(f.frame_recall, 3),
                   std::to_string(f.gt_objects),
                   std::to_string(f.tracked_objects),
                   util::Table::fmt(f.central_ms, 3),
                   util::Table::fmt(f.tracking_ms, 3),
                   util::Table::fmt(f.distributed_ms, 4),
                   util::Table::fmt(f.batching_ms, 3),
                   util::Table::fmt(f.comm_ms, 3),
                   util::Table::fmt(f.queue_ms, 3),
                   std::to_string(f.retries),
                   std::to_string(f.dropped_msgs),
                   std::to_string(f.cameras_online)});
    }
    std::printf("%s", csv.to_csv().c_str());
    write_obs_exports();
    return 0;
  }

  std::printf("scenario            : %s\n", result.scenario.c_str());
  std::printf("policy              : %s\n", runtime::to_string(result.policy));
  std::printf("transport           : %s\n",
              net::to_string(run.pipeline.transport));
  std::printf("frames              : %zu\n", result.frames.size());
  std::printf("object recall       : %.3f\n", result.object_recall);
  std::printf("slowest camera mean : %.1f ms/frame\n",
              result.mean_slowest_infer_ms());
  std::printf("overheads (ms/frame): central %.2f | tracking %.2f | "
              "distributed %.3f | batching %.2f | comm %.2f\n",
              result.mean_central_ms(), result.mean_tracking_ms(),
              result.mean_distributed_ms(), result.mean_batching_ms(),
              result.mean_comm_ms());
  if (run.pipeline.transport == net::TransportKind::kLossy)
    std::printf("network             : queue %.3f ms/frame | retries %ld | "
                "dropped msgs %ld\n",
                result.mean_queue_ms(), result.total_retries(),
                result.total_dropped_msgs());
  write_obs_exports();
  return 0;
}

// mvsched command-line runner: execute any scenario/policy combination from
// flags or a JSON config file and print per-run metrics (optionally a
// per-frame CSV for plotting).
//
// Usage:
//   mvsched_cli --scenario S1 --policy balb --frames 200 [--horizon 10]
//               [--seed 42] [--csv] [--verbose]
//   mvsched_cli --config run.json
//   mvsched_cli --dump-config          # print a default config document

#include <cstdio>
#include <fstream>
#include <sstream>

#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "util/args.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--scenario S1|S2|S3] [--policy "
               "full|balb-ind|balb-cen|balb|sp]\n"
               "          [--frames N] [--horizon T] [--seed S] [--csv]\n"
               "          [--verbose] | --config file.json | --dump-config\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvs;
  const util::Args args =
      util::Args::parse(argc, argv, {"csv", "verbose", "dump-config"});

  runtime::RunConfig run;
  if (args.has("dump-config")) {
    std::printf("%s\n", runtime::dump_run_config(run).c_str());
    return 0;
  }

  if (const auto path = args.get("config")) {
    std::ifstream in(*path);
    if (!in) {
      std::fprintf(stderr, "cannot open config file: %s\n", path->c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto parsed = runtime::parse_run_config(buffer.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "bad config: %s\n", error.c_str());
      return 1;
    }
    run = *parsed;
  }

  run.scenario = args.get_or("scenario", run.scenario);
  if (const auto name = args.get("policy")) {
    const auto policy = runtime::parse_policy(*name);
    if (!policy) {
      std::fprintf(stderr, "unknown policy: %s\n", name->c_str());
      return usage(argv[0]);
    }
    run.pipeline.policy = *policy;
  }
  run.frames = args.int_or("frames", run.frames);
  run.pipeline.horizon_frames =
      args.int_or("horizon", run.pipeline.horizon_frames);
  run.pipeline.seed = static_cast<std::uint64_t>(
      args.number_or("seed", static_cast<double>(run.pipeline.seed)));
  run.pipeline.verbose = args.has("verbose");
  if (run.pipeline.verbose) util::set_log_level(util::LogLevel::kInfo);

  if (run.scenario != "S1" && run.scenario != "S2" && run.scenario != "S3")
    return usage(argv[0]);

  std::fprintf(stderr, "running %s / %s for %d frames (T=%d, seed=%llu)...\n",
               run.scenario.c_str(), runtime::to_string(run.pipeline.policy),
               run.frames, run.pipeline.horizon_frames,
               static_cast<unsigned long long>(run.pipeline.seed));

  runtime::Pipeline pipeline(run.scenario, run.pipeline);
  const runtime::PipelineResult result = pipeline.run(run.frames);

  if (args.has("csv")) {
    util::Table csv({"frame", "key", "slowest_ms", "recall", "gt", "tracked",
                     "central_ms", "tracking_ms", "distributed_ms",
                     "batching_ms"});
    for (const runtime::FrameStats& f : result.frames) {
      csv.add_row({std::to_string(f.frame), f.key_frame ? "1" : "0",
                   util::Table::fmt(f.slowest_infer_ms, 2),
                   util::Table::fmt(f.frame_recall, 3),
                   std::to_string(f.gt_objects),
                   std::to_string(f.tracked_objects),
                   util::Table::fmt(f.central_ms, 3),
                   util::Table::fmt(f.tracking_ms, 3),
                   util::Table::fmt(f.distributed_ms, 4),
                   util::Table::fmt(f.batching_ms, 3)});
    }
    std::printf("%s", csv.to_csv().c_str());
    return 0;
  }

  std::printf("scenario            : %s\n", result.scenario.c_str());
  std::printf("policy              : %s\n", runtime::to_string(result.policy));
  std::printf("frames              : %zu\n", result.frames.size());
  std::printf("object recall       : %.3f\n", result.object_recall);
  std::printf("slowest camera mean : %.1f ms/frame\n",
              result.mean_slowest_infer_ms());
  std::printf("overheads (ms/frame): central %.2f | tracking %.2f | "
              "distributed %.3f | batching %.2f | comm %.2f\n",
              result.mean_central_ms(), result.mean_tracking_ms(),
              result.mean_distributed_ms(), result.mean_batching_ms(),
              result.mean_comm_ms());
  return 0;
}

// policy_train — fit a detect-or-track policy model from a recorded
// feature trace (mvs::policy).
//
// The pipeline records one JSONL row per (camera, detect frame) when run
// with a feature trace attached (--policy-feature-trace / the config's
// policy.feature_trace). Labels are counterfactual: under the fixed policy
// (always detect) a row is positive when the detection actually changed
// something — adoption, takeover, track removal, or a matched-box
// correction. This tool fits a logistic or decision-tree scorer on those
// rows (strided holdout for honest time-series evaluation) and writes the
// self-contained model JSON that `--frame-policy learned --policy-model`
// loads.
//
// Usage:
//   policy_train --trace features.jsonl --out model.json
//                [--type logistic|tree] [--threshold 0.5] [--quiet]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "policy/model.hpp"
#include "policy/train.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace mvs;
  const util::Args args =
      util::Args::parse(argc, argv, {"quiet", "help"});
  if (args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s --trace features.jsonl --out model.json\n"
                 "          [--type logistic|tree] [--threshold 0.5]"
                 " [--quiet]\n",
                 argv[0]);
    return 2;
  }
  const std::string trace_path = args.get_or("trace", "");
  const std::string out_path = args.get_or("out", "");
  if (trace_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "%s: --trace and --out are required (--help)\n",
                 argv[0]);
    return 2;
  }
  const std::string type_name = args.get_or("type", "logistic");
  policy::ModelType type;
  if (type_name == "logistic") {
    type = policy::ModelType::kLogistic;
  } else if (type_name == "tree") {
    type = policy::ModelType::kTree;
  } else {
    std::fprintf(stderr, "%s: unknown model type '%s'\n", argv[0],
                 type_name.c_str());
    return 2;
  }
  const double threshold = args.number_or("threshold", 0.5);
  if (threshold <= 0.0 || threshold >= 1.0) {
    std::fprintf(stderr, "%s: --threshold must be in (0, 1)\n", argv[0]);
    return 2;
  }

  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open trace %s\n", argv[0],
                 trace_path.c_str());
    return 1;
  }
  std::string error;
  const auto samples = policy::load_feature_trace(in, &error);
  if (!samples) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 1;
  }

  auto report = policy::train_model(*samples, type, &error);
  if (!report) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 1;
  }
  report->model.threshold = threshold;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "%s: cannot open output %s\n", argv[0],
                 out_path.c_str());
    return 1;
  }
  out << policy::dump_model(report->model) << '\n';

  if (!args.has("quiet")) {
    std::printf("model      : %s\n", policy::to_string(report->model.type));
    std::printf("samples    : %zu train / %zu eval (%.1f%% positive)\n",
                report->train_samples, report->eval_samples,
                100.0 * report->positive_rate);
    std::printf("holdout    : accuracy %.3f  precision %.3f  recall %.3f\n",
                report->accuracy, report->precision, report->recall);
    std::printf("threshold  : %.2f\n", report->model.threshold);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

// Quickstart: the smallest end-to-end use of the mvsched public API.
//
// Builds the S2 scenario (two cameras over a sparse roadside), runs the
// complete BALB pipeline for a few seconds of video, and prints the two
// numbers the paper optimizes: per-frame inference latency on the slowest
// camera, and object recall.
//
//   ./examples/quickstart

#include <cstdio>

#include "obs/obs.hpp"
#include "runtime/pipeline.hpp"

int main() {
  using namespace mvs;

  // Observability (mvs::obs): one atomic flag turns on span tracing and the
  // metrics registry; disabled it costs a single predicted branch.
  obs::reset();
  obs::set_enabled(true);

  runtime::PipelineConfig config;
  config.policy = runtime::Policy::kBalb;  // the paper's full system
  config.horizon_frames = 10;              // 1 key frame per second @10FPS
  config.training_frames = 150;            // association-model training split
  config.seed = 7;

  std::printf("Training cross-camera association models and running BALB "
              "on scenario S2...\n");
  runtime::Pipeline pipeline("S2", config);
  const runtime::PipelineResult result = pipeline.run(/*frames=*/100);

  std::printf("\nScenario %s, policy %s over %zu frames\n",
              result.scenario.c_str(), runtime::to_string(result.policy),
              result.frames.size());
  std::printf("  slowest-camera inference : %.1f ms/frame (mean)\n",
              result.mean_slowest_infer_ms());
  std::printf("  object recall            : %.3f\n", result.object_recall);
  std::printf("  scheduling overheads     : central %.2f ms, tracking %.2f ms,"
              " distributed %.3f ms, batching %.2f ms\n",
              result.mean_central_ms(), result.mean_tracking_ms(),
              result.mean_distributed_ms(), result.mean_batching_ms());

  // Streaming-histogram percentiles straight from the registry — no sample
  // buffers were kept to compute these.
  const obs::Histogram& infer = obs::metrics().histogram("pipeline.infer_ms");
  std::printf("  infer latency p50/p95   : %.1f / %.1f ms (%lld frames, "
              "%zu spans recorded)\n",
              infer.percentile(50.0), infer.percentile(95.0), infer.count(),
              obs::tracer().total_events());
  return 0;
}

// Intersection monitoring (scenario S1): five heterogeneous smart cameras
// around a signalized intersection — the paper's headline deployment.
//
// Runs Full-frame inspection and complete BALB over the same traffic,
// printing the per-frame workload trace (the Fig. 2 phenomenon: strong
// temporal variation driven by the traffic lights) and the resulting
// slowest-camera latency of each policy.
//
//   ./examples/intersection_monitor

#include <cstdio>

#include "runtime/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;

  constexpr int kFrames = 150;

  runtime::PipelineConfig base;
  base.horizon_frames = 10;
  base.training_frames = 200;
  base.seed = 11;

  std::printf("== S1: 5 cameras (2x Xavier, 2x TX2, 1x Nano) around a "
              "signalized intersection ==\n\n");

  runtime::PipelineConfig full_cfg = base;
  full_cfg.policy = runtime::Policy::kFull;
  runtime::Pipeline full("S1", full_cfg);
  const auto full_result = full.run(kFrames);

  runtime::PipelineConfig balb_cfg = base;
  balb_cfg.policy = runtime::Policy::kBalb;
  runtime::Pipeline balb("S1", balb_cfg);
  const auto balb_result = balb.run(kFrames);

  // Workload trace sampled every 2 seconds (every 20th frame @ 10 FPS).
  util::Table trace({"t (s)", "objects in scene", "tracked (BALB)",
                     "BALB slowest (ms)", "Full slowest (ms)"});
  // Offset by 5 so samples fall on regular frames, not on the key frames
  // whose latency is the full inspection for every policy.
  for (std::size_t f = 5; f < balb_result.frames.size(); f += 20) {
    trace.add_row({util::Table::fmt(static_cast<double>(f) / 10.0, 1),
                   std::to_string(balb_result.frames[f].gt_objects),
                   std::to_string(balb_result.frames[f].tracked_objects),
                   util::Table::fmt(balb_result.frames[f].slowest_infer_ms, 1),
                   util::Table::fmt(full_result.frames[f].slowest_infer_ms, 1)});
  }
  std::printf("%s\n", trace.to_string().c_str());

  const double speedup =
      full_result.mean_slowest_infer_ms() / balb_result.mean_slowest_infer_ms();
  std::printf("Full : %.1f ms/frame, recall %.3f\n",
              full_result.mean_slowest_infer_ms(), full_result.object_recall);
  std::printf("BALB : %.1f ms/frame, recall %.3f  ->  %.2fx speedup\n",
              balb_result.mean_slowest_infer_ms(), balb_result.object_recall,
              speedup);
  return 0;
}

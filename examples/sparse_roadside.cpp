// Sparse roadside surveillance (scenario S2): two cameras, very uneven
// hardware (Xavier vs Nano), sparse residential traffic.
//
// Sweeps all scheduling policies over identical traffic and prints the
// latency/recall trade-off table — the quickest way to see why
// load-and-resource-aware assignment beats both independent operation and
// static partitioning when devices are heterogeneous.
//
//   ./examples/sparse_roadside

#include <cstdio>

#include "runtime/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;

  constexpr int kFrames = 120;
  const runtime::Policy policies[] = {
      runtime::Policy::kFull, runtime::Policy::kBalbInd,
      runtime::Policy::kStaticPartition, runtime::Policy::kBalbCen,
      runtime::Policy::kBalb};

  std::printf("== S2: sparse roadside, Xavier + Nano ==\n\n");
  util::Table table({"policy", "slowest cam (ms/frame)", "object recall",
                     "speedup vs Full"});

  double full_latency = 0.0;
  for (runtime::Policy policy : policies) {
    runtime::PipelineConfig cfg;
    cfg.policy = policy;
    cfg.horizon_frames = 10;
    cfg.training_frames = 150;
    cfg.seed = 21;
    runtime::Pipeline pipeline("S2", cfg);
    const auto result = pipeline.run(kFrames);
    if (policy == runtime::Policy::kFull)
      full_latency = result.mean_slowest_infer_ms();
    table.add_row({runtime::to_string(policy),
                   util::Table::fmt(result.mean_slowest_infer_ms(), 1),
                   util::Table::fmt(result.object_recall, 3),
                   util::Table::fmt(
                       full_latency / result.mean_slowest_infer_ms(), 2)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

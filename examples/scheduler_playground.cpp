// Scheduler playground: using the core MVS/BALB API directly, without the
// simulator or the full pipeline — the entry point for embedding the
// scheduler into your own system.
//
// Builds a small heterogeneous MVS instance by hand, runs the central BALB
// stage, compares it against the exact brute-force optimum and the
// independent baseline, and prints the resulting assignment and batches.
//
//   ./examples/scheduler_playground

#include <cstdio>

#include "core/baselines.hpp"
#include "core/central_balb.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;

  // Three cameras: one fast, two slow. Size classes {64,128,256,512}.
  core::MvsProblem problem;
  problem.cameras = {gpu::jetson_xavier(), gpu::jetson_tx2(),
                     gpu::jetson_nano()};

  // Nine objects with mixed coverage: some exclusive, some shared.
  struct Spec {
    std::vector<int> coverage;
    geom::SizeClassId size;
  };
  const Spec specs[] = {
      {{0}, 1},      {{1}, 2},      {{2}, 0},          // exclusive
      {{0, 1}, 1},   {{0, 1}, 1},   {{1, 2}, 0},       // pairwise shared
      {{0, 1, 2}, 2}, {{0, 1, 2}, 1}, {{0, 1, 2}, 1},  // fully shared
  };
  for (std::size_t j = 0; j < std::size(specs); ++j) {
    core::ObjectSpec obj;
    obj.key = j;
    obj.coverage = specs[j].coverage;
    obj.size_class.assign(problem.cameras.size(), specs[j].size);
    problem.objects.push_back(obj);
  }

  const core::Assignment balb = core::central_balb(problem);
  const core::Assignment independent = core::independent_assignment(problem);
  const core::Assignment optimal = core::optimal_bruteforce(problem);

  util::Table table({"scheduler", "cam0 (ms)", "cam1 (ms)", "cam2 (ms)",
                     "system latency (ms)"});
  auto add = [&](const char* name, const core::Assignment& a) {
    table.add_row({name, util::Table::fmt(a.camera_latency[0], 1),
                   util::Table::fmt(a.camera_latency[1], 1),
                   util::Table::fmt(a.camera_latency[2], 1),
                   util::Table::fmt(a.system_latency(), 1)});
  };
  add("independent", independent);
  add("BALB central", balb);
  add("optimal (brute force)", optimal);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("BALB object-to-camera assignment (x_ij):\n");
  for (std::size_t i = 0; i < problem.cameras.size(); ++i) {
    std::printf("  %-7s tracks:", problem.cameras[i].name().c_str());
    for (std::size_t j = 0; j < problem.objects.size(); ++j)
      if (balb.x[i][j]) std::printf(" o%zu", j);
    std::printf("\n");
  }
  std::printf("\nDistributed-stage priority order (highest first):");
  for (int cam : balb.priority_order())
    std::printf(" %s", problem.cameras[static_cast<std::size_t>(cam)].name().c_str());
  std::printf("\n");
  return 0;
}

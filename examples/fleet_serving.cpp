// Fleet serving walkthrough: elastic capacity and adaptive QoS on a mixed
// fleet (mvs::fleet).
//
// Hosts three heterogeneous deployments — an intersection hub (S2), a busy
// fork-road camera pair (S1) running at 15 fps, and a far-edge roadside
// (S3) with a lossy uplink — under one GPU complex and a shared latency
// SLO, then walks the full elasticity loop:
//
//   1. admit        — the controller degrades the late arrival to fit
//   2. degrade      — the degraded session serves at reduced rate/masks
//   3. re-admit     — evicting a tenant frees capacity; the periodic scan
//                     reverses the degrade ladder (session_readmit events)
//   4. scale up     — growing a device pool drains queueing delay
//                     (device_scale events)
//
// The whole run is observed through mvs::obs: pass output paths to export a
// Chrome trace (chrome://tracing / Perfetto) and a metrics snapshot:
//
//   ./examples/fleet_serving [chrome_trace.json] [metrics.json]

#include <cstdio>
#include <fstream>
#include <memory>

#include "fleet/fleet_api.hpp"
#include "obs/obs.hpp"
#include "runtime/trace.hpp"

namespace {

void print_sessions(const mvs::fleet::FleetSnapshot& snap) {
  for (const mvs::fleet::SessionSnapshot& s : snap.sessions)
    std::printf("  [%llu.%u] %-10s %-7s fps=%-2d stride=%d tight=%d "
                "frames=%-3ld mean=%.1f ms queue=%.2f ms\n",
                static_cast<unsigned long long>(s.handle.id), s.handle.gen,
                s.name.c_str(), mvs::fleet::to_string(s.state), s.fps,
                s.stride, s.tight_masks ? 1 : 0, s.frames, s.mean_ms,
                s.mean_queue_ms);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvs;

  // Observability on for the whole walkthrough: every fleet tick, session
  // step, pipeline stage and GPU batch below lands in the span trace and
  // the metrics registry.
  obs::reset();
  obs::set_enabled(true);

  // Admission is split-aware: with allow_split on, the ceiling relaxes to
  // 1.2x the SLO (an over-full tick can shed half a batch to the next
  // slot), so the SLO here is set to push 'edge' onto the degrade ladder
  // even through that headroom.
  fleet::FleetConfig cfg;
  cfg.slo_ms = 520.0;             // shared per-tick GPU deadline
  cfg.dispatch = fleet::DispatchPolicy::kWeightedPriority;
  cfg.readmit_interval = 10;      // reverse-ladder scan every 10 ticks
  cfg.allow_split = true;         // SLO-protective batch splitting
  // The walkthrough drives the serving plane through FleetApi only — the
  // same code serves a ShardedFleet by setting cfg.shards > 1.
  const std::unique_ptr<fleet::FleetApi> fleet = fleet::make_fleet(cfg);

  runtime::TraceRecorder trace;
  fleet->attach_trace(&trace);

  // Session specs are self-contained (runtime::FleetSessionSpec): scenario,
  // pipeline, weight, native fps, SLO override, and a private fault profile
  // — no reaching into pipeline.faults.
  fleet::SessionSpec hub;
  hub.name = "hub";
  hub.scenario = "S2";
  hub.weight = 2.0;  // protected tenant: deferred last, split-shed last
  hub.pipeline.training_frames = 120;

  fleet::SessionSpec fork;
  fork.name = "fork";
  fork.scenario = "S1";
  fork.fps = 15;  // grows the 10 Hz tick wheel to 30 Hz
  fork.pipeline.training_frames = 120;

  fleet::SessionSpec edge;
  edge.name = "edge";
  edge.scenario = "S3";
  edge.slo_ms = 60.0;  // per-session violation accounting override
  edge.pipeline.training_frames = 120;
  netsim::FaultConfig uplink;
  uplink.loss_rate = 0.05;  // implies the lossy transport for this session
  edge.faults = uplink;

  std::printf("== 1. admission (SLO %.0f ms) ==\n", cfg.slo_ms);
  fleet::SessionHandle fork_handle;
  for (fleet::SessionSpec* spec : {&hub, &fork, &edge}) {
    const fleet::AdmitResult r = fleet->admit(*spec);
    if (!r.admitted) {
      std::printf("  %-5s REJECTED: %s\n", spec->name.c_str(),
                  r.reason.c_str());
      continue;
    }
    if (spec == &fork) fork_handle = r.handle;
    std::printf("  %-5s admitted: projected %.1f ms%s%s\n",
                spec->name.c_str(), r.projected_ms,
                r.masks_tightened ? " [masks tightened]" : "",
                r.rate_halved ? " [rate halved]" : "");
  }
  std::printf("  tick wheel now %d Hz\n", fleet->wheel_hz());

  // One wall-clock second = wheel_hz ticks.
  const int second = fleet->wheel_hz();

  std::printf("\n== 2. degraded serving (4 s) ==\n");
  fleet->run(4 * second);
  print_sessions(fleet->snapshot());

  std::printf("\n== 3. evict 'fork' -> re-admission scan restores 'edge' "
              "==\n");
  fleet->evict(fork_handle);
  fleet->run(4 * second);
  print_sessions(fleet->snapshot());
  std::printf("  session_readmit events: %ld\n",
              static_cast<long>(trace.count(runtime::TraceEventType::kSessionReadmit)));

  std::printf("\n== 4. scale up the busiest device pool ==\n");
  const fleet::FleetSnapshot before = fleet->snapshot();
  if (!before.device_pools.empty()) {
    const std::string& device_class = before.device_pools.front().first;
    const int count = fleet->scale_devices(device_class, +1);
    std::printf("  %s pool -> %d devices\n", device_class.c_str(), count);
  }
  fleet->run(2 * second);

  std::printf("\n== 5. handle hygiene: results outlive eviction, not "
              "release ==\n");
  const runtime::PipelineResult kept = fleet->result(fork_handle);
  std::printf("  evicted 'fork' still serves its result: %zu frames\n",
              kept.frames.size());
  fleet->release(fork_handle);
  fleet::FleetStatus stale = fleet::FleetStatus::kOk;
  fleet->result(fork_handle, &stale);
  std::printf("  after release() the old handle is typed-%s\n",
              fleet::to_string(stale));

  const fleet::FleetSnapshot snap = fleet->snapshot();
  print_sessions(snap);
  std::printf("\nfleet: ticks=%ld wheel=%d Hz admitted=%d evicted=%d "
              "readmitted=%d splits=%ld\n",
              snap.ticks, snap.wheel_hz, snap.admitted, snap.evicted,
              snap.readmitted, snap.batch_splits);
  std::printf("gpu: busy %.1f ms (isolated %.1f ms) | pool queueing %.1f ms "
              "| occupancy %.2f\n",
              snap.shared_busy_ms, snap.isolated_busy_ms, snap.total_queue_ms,
              snap.mean_occupancy);
  std::printf("transport: retries %ld | dropped msgs %ld\n",
              snap.total_retries, snap.total_dropped_msgs);
  std::printf("trace: device_scale=%ld batch_split=%ld\n",
              static_cast<long>(trace.count(runtime::TraceEventType::kDeviceScale)),
              static_cast<long>(trace.count(runtime::TraceEventType::kBatchSplit)));

  const auto p99 = [](const char* name) {
    return obs::metrics().histogram(name).percentile(99.0);
  };
  std::printf("obs: %zu spans | fleet.tick_busy_ms p99 %.1f | "
              "gpu.merged_busy_ms p99 %.1f\n",
              obs::tracer().total_events(), p99("fleet.tick_busy_ms"),
              p99("gpu.merged_busy_ms"));
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << obs::tracer().chrome_trace_json() << '\n';
    std::printf("wrote Chrome trace to %s (open in chrome://tracing)\n",
                argv[1]);
  }
  if (argc > 2) {
    std::ofstream out(argv[2]);
    out << obs::metrics().to_json() << '\n';
    std::printf("wrote metrics snapshot to %s\n", argv[2]);
  }
  return 0;
}

// Busy fork road (scenario S3): heavy traffic with frequent new-object
// arrivals between key frames.
//
// Demonstrates the value of the BALB *distributed* stage: with the central
// stage alone (BALB-Cen), objects arriving mid-horizon are not picked up
// until the next key frame and recall drops; the distributed stage adopts
// them at first appearance with zero communication.
//
//   ./examples/fork_road_busy

#include <cstdio>

#include "runtime/pipeline.hpp"
#include "runtime/trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace mvs;

  constexpr int kFrames = 150;
  std::printf("== S3: busy fork road, Xavier + TX2 + Nano ==\n\n");

  util::Table table({"policy", "object recall", "slowest cam (ms/frame)",
                     "adoptions", "takeovers"});
  for (runtime::Policy policy :
       {runtime::Policy::kBalbCen, runtime::Policy::kBalb}) {
    runtime::PipelineConfig cfg;
    cfg.policy = policy;
    cfg.horizon_frames = 10;
    cfg.training_frames = 250;
    cfg.seed = 33;
    runtime::Pipeline pipeline("S3", cfg);
    runtime::TraceRecorder trace;
    pipeline.attach_trace(&trace);
    const auto result = pipeline.run(kFrames);
    table.add_row(
        {runtime::to_string(policy), util::Table::fmt(result.object_recall, 3),
         util::Table::fmt(result.mean_slowest_infer_ms(), 1),
         std::to_string(trace.count(runtime::TraceEventType::kAdoptNew)),
         std::to_string(trace.count(runtime::TraceEventType::kTakeover))});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nThe distributed stage recovers the recall lost to "
              "mid-horizon arrivals\nwhile keeping the latency-balanced "
              "assignment of the central stage.\n");
  return 0;
}

#pragma once
// Paced streaming-perception runtime (mvs::rt).
//
// Wraps runtime::Pipeline's stepwise API in a VIRTUAL wall clock: frames
// are captured on a fixed per-camera clock, arrive after netsim-style
// jitter (netsim::ArrivalPacer), and queue for the single processor. Each
// frame carries a hard deadline budget past its capture (the streaming-
// perception "100 ms rule"); what happens to a frame that cannot meet it is
// the late policy (runtime::LatePolicy):
//
//   drop         a frame already older than its deadline at its would-be
//                start is not processed: it is charged as a miss, and the
//                pipeline coasts over it (skip_frame).
//   supersede    newest-wins: an arriving frame marks every still-queued,
//                unstarted regular frame superseded (resolved as a skip
//                when it reaches the head, preserving strict frame order);
//                the drop-at-start rule applies too.
//   finish-late  nothing is ever dropped; an emission landing past its
//                deadline still counts as a miss. With an infinite budget
//                (deadline_ms <= 0) this processes every frame in order and
//                is bit-identical to the unpaced pipeline.
//
// Key frames (the central-plan cadence) are never dropped or superseded —
// losing one would silently skip a whole horizon's re-plan.
//
// Service time is charged from SIMULATED quantities only — the slowest
// camera's inference, modeled transport comm + queueing, plus a fixed
// overhead knob. Measured wall-clock overheads (tracking_ms etc.) never
// enter the virtual clock, so schedules are bit-identical across runs,
// machines and thread counts.
//
// A StreamingScorer samples ground truth at every frame instant against
// the latest EMITTED result (see streaming_scorer.hpp).

#include <string>
#include <vector>

#include "fleet/burn.hpp"
#include "netsim/arrival.hpp"
#include "rt/streaming_scorer.hpp"
#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"

namespace mvs::util {
class ThreadPool;
}

namespace mvs::rt {

/// Pure deadline test shared by drop-at-start and miss accounting: an age
/// EXACTLY on the budget is on time (strict >); a nonpositive budget means
/// no deadline at all.
inline bool deadline_missed(double age_ms, double deadline_ms) {
  return deadline_ms > 0.0 && age_ms > deadline_ms;
}

/// Frame-conservation ledger: arrived == processed + dropped + superseded
/// once the run has been finish()ed.
struct RtCounters {
  long arrived = 0;
  long processed = 0;
  long dropped = 0;
  long superseded = 0;
  long deadline_miss = 0;     ///< processed-late + dropped frames
  double gpu_busy_ms = 0.0;   ///< sum of simulated per-camera inference time
};

/// What run()/finish() hand back.
struct RtResult {
  RtCounters counters;
  double streaming_recall = 0.0;  ///< emission-time matched (the headline)
  double object_recall = 0.0;     ///< classic capture-time recall (processed
                                  ///< frames only; what the unpaced runner
                                  ///< reports)
  double mean_lag_ms = 0.0;       ///< mean adopted-emission age at sample
  double max_lag_ms = 0.0;
  long instants = 0;
  double makespan_ms = 0.0;  ///< finish time of the last processed frame
};

/// One step() = one frame arrival (plus any queued work whose start time
/// precedes it). `key_frame_ran` flags whether a key frame was processed
/// during the step — the allocation guard exempts those ticks, exactly as
/// it does for the unpaced pipeline.
struct StepOutcome {
  long frame = -1;
  bool key_frame_ran = false;
};

class RtRunner {
 public:
  /// Builds the wrapped pipeline for `scenario_name` (same training-split
  /// handling as the unpaced runner). rt.frame_period_ms <= 0 derives the
  /// period from the scenario's fps.
  RtRunner(const std::string& scenario_name,
           const runtime::PipelineConfig& pipeline_config,
           const runtime::RtConfig& rt_config,
           util::ThreadPool* shared_pool = nullptr);

  RtRunner(const RtRunner&) = delete;
  RtRunner& operator=(const RtRunner&) = delete;

  /// Admit the next frame arrival, first running every queued frame whose
  /// start time precedes it.
  StepOutcome step();

  /// Drain the queue to completion (no further arrivals).
  void finish();

  /// step() x frames + finish().
  RtResult run(int frames);

  /// Snapshot of the result so far (valid any time; conservation holds
  /// after finish()).
  RtResult result() const;

  const RtCounters& counters() const { return counters_; }
  const StreamingScorer& scorer() const { return scorer_; }
  runtime::Pipeline& pipeline() { return pipeline_; }
  double frame_period_ms() const { return pacer_.period_ms(); }

  /// Optional scheduling trace (rt_drop / rt_supersede / rt_deadline_miss
  /// events, alongside the pipeline's own). Must outlive the runner.
  void attach_trace(runtime::TraceRecorder* trace);

  /// Deadline-miss burn-rate monitor (active when rt.miss_budget > 0; see
  /// DESIGN.md §14). Raise edges emit slo_alert_raise trace events.
  long slo_alerts() const { return slo_alerts_; }
  bool alerting() const { return miss_burn_.alerting(); }

 private:
  struct Pending {
    long frame = 0;
    double capture_ms = 0.0;
    double arrival_ms = 0.0;
    bool key = false;
    bool superseded = false;
  };

  bool deadline_finite() const { return rt_.deadline_ms > 0.0; }
  bool is_key(long frame) const;
  /// Run/resolve queued frames whose start time is <= t (or all of them).
  /// Returns whether a key frame was processed.
  bool drain_until(double t, bool drain_all);
  void resolve_skip(const Pending& p);
  /// Feed one frame outcome to the miss burn monitor; trace alert edges.
  void push_burn(bool miss, long frame);

  runtime::RtConfig rt_;
  runtime::Pipeline pipeline_;
  netsim::ArrivalPacer pacer_;
  StreamingScorer scorer_;
  RtCounters counters_;
  runtime::TraceRecorder* trace_ = nullptr;

  // Pending-arrival FIFO: head cursor + rewind-on-empty (capacity kept),
  // so the steady state never allocates.
  std::vector<Pending> queue_;
  std::size_t qhead_ = 0;

  long frames_enqueued_ = 0;
  double busy_until_ = 0.0;
  double last_finish_ms_ = 0.0;
  fleet::BurnMonitor miss_burn_;
  long slo_alerts_ = 0;
};

}  // namespace mvs::rt

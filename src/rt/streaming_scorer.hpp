#pragma once
// Streaming-perception scorer (Li et al., "Towards Streaming Perception").
//
// Classic (offline) recall compares frame f's output against frame f's
// ground truth — as if inference were free. Under a wall clock the output
// for frame f only EXISTS at its emission time, by which the world has
// moved on. The streaming scorer therefore samples the timeline at the
// frame instants t_f and, at each instant, scores the latest result the
// runtime had EMITTED by then (emit_ms <= t_f) against the ground truth AT
// t_f. Latency and accuracy collapse into one number: a slow pipeline is
// penalized because its freshest emission describes a stale world.
//
// Allocation discipline: emissions are pooled (retired entries recycle
// their per-camera box buffers), so the steady-state note/score cycle is
// allocation-free once warm — the paced runtime sits inside the repo's
// zero-allocation guard.

#include <cstddef>
#include <vector>

#include "detect/detection.hpp"
#include "geometry/bbox.hpp"
#include "metrics/metrics.hpp"
#include "util/stats.hpp"

namespace mvs::rt {

class StreamingScorer {
 public:
  /// `cameras` views per frame; `iou` is the match threshold fed to the
  /// underlying metrics::ObjectRecall.
  explicit StreamingScorer(std::size_t cameras, double iou = 0.4);

  /// Record that the runtime emitted `reported` (per-camera boxes) at
  /// virtual time `emit_ms`, describing the frame captured at `capture_ms`.
  /// Emissions must be noted in nondecreasing emit_ms order.
  void note_emission(double emit_ms, double capture_ms,
                     const std::vector<std::vector<geom::BBox>>& reported);

  /// Score the instant `t_ms` against `gt` (per-camera ground truth at that
  /// instant), using the latest emission with emit_ms <= t_ms; before any
  /// emission the runtime has reported nothing and every object is a miss.
  /// Instants must be scored in nondecreasing t_ms order. Returns the
  /// instant's recall sample.
  double score_instant(double t_ms,
                       const std::vector<std::vector<detect::GroundTruthObject>>& gt);

  /// Aggregate streaming recall over all scored instants (TP / GT).
  double streaming_recall() const { return recall_.recall(); }
  /// Age of the adopted emission at each scored instant (t - capture of the
  /// emission in effect); instants before the first emission contribute
  /// nothing here.
  const util::RunningStats& lag_ms() const { return lag_; }
  long instants() const { return instants_; }
  std::size_t emissions() const { return emissions_; }

 private:
  struct Emission {
    double emit_ms = 0.0;
    double capture_ms = 0.0;
    std::vector<std::vector<geom::BBox>> boxes;
  };

  void adopt(Emission& e);

  std::size_t cameras_;
  metrics::ObjectRecall recall_;
  util::RunningStats lag_;
  long instants_ = 0;
  std::size_t emissions_ = 0;

  // FIFO with a head cursor; fully drained -> clear() and rewind (capacity
  // kept). Retired Emission shells park in free_ for reuse.
  std::vector<Emission> queue_;
  std::size_t head_ = 0;
  std::vector<Emission> free_;
  Emission cur_;
  bool have_cur_ = false;
  /// Empty per-camera report used before the first emission is adopted.
  std::vector<std::vector<geom::BBox>> empty_;
};

}  // namespace mvs::rt

#include "rt/runner.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "sim/dataset.hpp"
#include "sim/scenario.hpp"

namespace mvs::rt {

RtRunner::RtRunner(const std::string& scenario_name,
                   const runtime::PipelineConfig& pipeline_config,
                   const runtime::RtConfig& rt_config,
                   util::ThreadPool* shared_pool)
    : rt_(rt_config),
      pipeline_(scenario_name, pipeline_config, shared_pool),
      pacer_(rt_config.frame_period_ms > 0.0
                 ? rt_config.frame_period_ms
                 : 1000.0 / std::max(1e-9, pipeline_.scenario().fps),
             rt_config.arrival_jitter_ms, pipeline_.camera_count(),
             pipeline_config.seed),
      scorer_(pipeline_.camera_count(), pipeline_config.recall_iou) {
  fleet::BurnConfig bc;
  bc.error_budget = rt_.miss_budget;
  miss_burn_.configure(bc);
}

void RtRunner::push_burn(bool miss, long frame) {
  if (rt_.miss_budget <= 0.0) return;
  const int edge = miss_burn_.push(miss);
  if (edge == 0) return;
  const auto type = edge > 0 ? runtime::TraceEventType::kSloAlertRaise
                             : runtime::TraceEventType::kSloAlertClear;
  if (edge > 0) ++slo_alerts_;
  if (trace_) trace_->record({frame, -1, type, 0, miss_burn_.fast_burn()});
  if (obs::attribution_enabled())
    obs::recorder().note_event(frame, runtime::to_string(type), -1,
                               miss_burn_.fast_burn());
}

void RtRunner::attach_trace(runtime::TraceRecorder* trace) {
  trace_ = trace;
  pipeline_.attach_trace(trace);
}

bool RtRunner::is_key(long frame) const {
  const int horizon = pipeline_.config().horizon_frames;
  return horizon > 0 && frame % horizon == 0;
}

void RtRunner::resolve_skip(const Pending& p) {
  // The pipeline coasts over the frame (cadence and dropout schedules stay
  // frame-indexed); the instant is still scored — against whatever the
  // runtime had emitted by then.
  pipeline_.skip_frame();
  scorer_.score_instant(p.capture_ms, pipeline_.current_frame().per_camera);
}

StepOutcome RtRunner::step() {
  StepOutcome out;
  const long f = frames_enqueued_++;
  const double capture = pacer_.capture_ms(f);
  const double arrival = pacer_.next_arrival();
  ++counters_.arrived;
  out.frame = f;
  out.key_frame_ran = drain_until(arrival, /*drain_all=*/false);

  if (rt_.late_policy == runtime::LatePolicy::kSupersede) {
    // Newest-wins: anything still queued when this frame lands is stale by
    // definition (the processor is busy past our arrival). Mark, don't
    // remove — the skip resolves in frame order at the queue head.
    for (std::size_t q = qhead_; q < queue_.size(); ++q) {
      Pending& p = queue_[q];
      if (p.key || p.superseded) continue;
      p.superseded = true;
      ++counters_.superseded;
      const double age = arrival - p.capture_ms;
      if (trace_)
        trace_->record(
            {p.frame, -1, runtime::TraceEventType::kRtSupersede, 0, age});
      if (obs::enabled())
        obs::metrics().histogram("rt.superseded").record(age);
      if (obs::attribution_enabled())
        obs::recorder().note_event(
            p.frame,
            runtime::to_string(runtime::TraceEventType::kRtSupersede), -1,
            age);
    }
  }

  queue_.push_back({f, capture, arrival, is_key(f), false});
  return out;
}

bool RtRunner::drain_until(double t, bool drain_all) {
  bool key_ran = false;
  while (qhead_ < queue_.size()) {
    Pending& p = queue_[qhead_];
    const double start = std::max(p.arrival_ms, busy_until_);
    if (!drain_all && start > t) break;

    if (p.superseded) {
      resolve_skip(p);
      ++qhead_;
      continue;
    }

    const double age_at_start = start - p.capture_ms;
    if (!p.key && rt_.late_policy != runtime::LatePolicy::kFinishLate &&
        deadline_missed(age_at_start, rt_.deadline_ms)) {
      // Already older than the budget before it would even start: drop it
      // and charge the miss now.
      ++counters_.dropped;
      ++counters_.deadline_miss;
      if (trace_)
        trace_->record({p.frame, -1, runtime::TraceEventType::kRtDrop, 0,
                        age_at_start});
      if (obs::enabled())
        obs::metrics().histogram("rt.deadline_miss").record(age_at_start);
      if (obs::attribution_enabled()) {
        // A dropped frame's whole life was waiting: capture->arrival and
        // arrival->would-be-start. Sums to age_at_start exactly, and its
        // miss flag feeds the flight recorder's burst window.
        obs::FrameAttribution fa;
        fa.id = obs::causal_id(0, static_cast<std::uint64_t>(p.frame));
        fa.total_ms = age_at_start;
        fa.segment_ms[static_cast<std::size_t>(obs::Segment::kCaptureWait)] =
            p.arrival_ms - p.capture_ms;
        fa.segment_ms[static_cast<std::size_t>(obs::Segment::kSchedQueue)] =
            start - p.arrival_ms;
        fa.deadline_miss = true;
        obs::critical_path().record(fa);
        obs::recorder().note_frame(fa);
        obs::recorder().note_event(
            p.frame, runtime::to_string(runtime::TraceEventType::kRtDrop), -1,
            age_at_start);
      }
      push_burn(true, p.frame);
      resolve_skip(p);
      ++qhead_;
      continue;
    }

    const runtime::FrameStats& st = pipeline_.run_frame_ref();
    key_ran = key_ran || st.key_frame;
    ++counters_.processed;
    for (double v : st.camera_infer_ms) counters_.gpu_busy_ms += v;
    // Virtual service time: simulated quantities only (never the measured
    // wall-clock overheads), so the schedule is deterministic.
    const double service = st.slowest_infer_ms + st.comm_ms + st.queue_ms +
                           rt_.fixed_overhead_ms;
    const double finish = start + service;
    busy_until_ = finish;
    last_finish_ms_ = finish;

    // Emit BEFORE scoring the instant: a zero-service frame with on-time
    // arrival emits exactly at its own capture instant and must be adopted
    // there (emit_ms <= t is inclusive).
    scorer_.note_emission(finish, p.capture_ms, pipeline_.last_reported());
    scorer_.score_instant(p.capture_ms, pipeline_.current_frame().per_camera);

    const double age = finish - p.capture_ms;
    const bool miss = deadline_missed(age, rt_.deadline_ms);
    if (miss) {
      ++counters_.deadline_miss;
      if (trace_)
        trace_->record(
            {p.frame, -1, runtime::TraceEventType::kRtDeadlineMiss, 0, age});
      if (obs::enabled())
        obs::metrics().histogram("rt.deadline_miss").record(age);
      if (obs::attribution_enabled())
        obs::recorder().note_event(
            p.frame,
            runtime::to_string(runtime::TraceEventType::kRtDeadlineMiss), -1,
            age);
    }
    if (obs::enabled()) obs::metrics().histogram("rt.lag_ms").record(age);
    if (obs::attribution_enabled()) {
      // The exact addends of `age` (virtual clock — tracking/batch-wait are
      // structurally zero here; see DESIGN.md §14): capture->arrival wait,
      // arrival->start scheduler queue, slowest-camera inference, modeled
      // transport comm + queueing, fixed emission overhead.
      obs::FrameAttribution fa;
      fa.id = obs::causal_id(0, static_cast<std::uint64_t>(p.frame));
      fa.total_ms = age;
      fa.segment_ms[static_cast<std::size_t>(obs::Segment::kCaptureWait)] =
          p.arrival_ms - p.capture_ms;
      fa.segment_ms[static_cast<std::size_t>(obs::Segment::kSchedQueue)] =
          start - p.arrival_ms;
      fa.segment_ms[static_cast<std::size_t>(obs::Segment::kGpu)] =
          st.slowest_infer_ms;
      fa.segment_ms[static_cast<std::size_t>(obs::Segment::kNet)] =
          st.comm_ms + st.queue_ms;
      fa.segment_ms[static_cast<std::size_t>(obs::Segment::kEmit)] =
          rt_.fixed_overhead_ms;
      fa.deadline_miss = miss;
      obs::critical_path().record(fa);
      obs::recorder().note_frame(fa);
    }
    push_burn(miss, p.frame);
    ++qhead_;
  }
  if (qhead_ == queue_.size() && qhead_ > 0) {
    queue_.clear();
    qhead_ = 0;
  }
  return key_ran;
}

void RtRunner::finish() { drain_until(0.0, /*drain_all=*/true); }

RtResult RtRunner::run(int frames) {
  for (int f = 0; f < frames; ++f) step();
  finish();
  return result();
}

RtResult RtRunner::result() const {
  RtResult r;
  r.counters = counters_;
  r.streaming_recall = scorer_.streaming_recall();
  r.object_recall = pipeline_.result().object_recall;
  const util::RunningStats& lag = scorer_.lag_ms();
  if (lag.count() > 0) {
    r.mean_lag_ms = lag.mean();
    r.max_lag_ms = lag.max();
  }
  r.instants = scorer_.instants();
  r.makespan_ms = last_finish_ms_;
  return r;
}

}  // namespace mvs::rt

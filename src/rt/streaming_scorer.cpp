#include "rt/streaming_scorer.hpp"

#include <utility>

namespace mvs::rt {

StreamingScorer::StreamingScorer(std::size_t cameras, double iou)
    : cameras_(cameras), recall_(iou), empty_(cameras) {}

void StreamingScorer::note_emission(
    double emit_ms, double capture_ms,
    const std::vector<std::vector<geom::BBox>>& reported) {
  Emission e;
  if (!free_.empty()) {
    e = std::move(free_.back());
    free_.pop_back();
  }
  e.emit_ms = emit_ms;
  e.capture_ms = capture_ms;
  e.boxes.resize(cameras_);
  for (std::size_t i = 0; i < cameras_; ++i) {
    e.boxes[i].clear();
    if (i < reported.size())
      e.boxes[i].insert(e.boxes[i].end(), reported[i].begin(),
                        reported[i].end());
  }
  queue_.push_back(std::move(e));
  ++emissions_;
}

void StreamingScorer::adopt(Emission& e) {
  // Swap rather than assign: the displaced current emission keeps its box
  // capacity and goes back to the pool through the queue slot.
  std::swap(cur_, e);
  have_cur_ = true;
}

double StreamingScorer::score_instant(
    double t_ms,
    const std::vector<std::vector<detect::GroundTruthObject>>& gt) {
  while (head_ < queue_.size() && queue_[head_].emit_ms <= t_ms) {
    adopt(queue_[head_]);
    free_.push_back(std::move(queue_[head_]));
    ++head_;
  }
  if (head_ == queue_.size() && head_ > 0) {
    queue_.clear();
    head_ = 0;
  }
  const double sample =
      recall_.add_frame(gt, have_cur_ ? cur_.boxes : empty_);
  if (have_cur_) lag_.add(t_ms - cur_.capture_ms);
  ++instants_;
  return sample;
}

}  // namespace mvs::rt

#include "linalg/solve.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mvs::linalg {

std::optional<std::vector<double>> solve(const Matrix& a,
                                         const std::vector<double>& b) {
  assert(a.rows() == a.cols());
  assert(b.size() == a.rows());
  const std::size_t n = a.rows();
  // Augmented working copy.
  std::vector<std::vector<double>> m(n, std::vector<double>(n + 1));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m[r][c] = a(r, c);
    m[r][n] = b[r];
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    if (std::abs(m[pivot][col]) < 1e-12) return std::nullopt;
    std::swap(m[col], m[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m[r][col] / m[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c <= n; ++c) m[r][c] -= f * m[col][c];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = m[ri][n];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= m[ri][c] * x[c];
    x[ri] = acc / m[ri][ri];
  }
  return x;
}

std::optional<std::vector<double>> least_squares(const Matrix& a,
                                                 const std::vector<double>& b,
                                                 double lambda) {
  assert(a.rows() == b.size());
  const Matrix at = a.transposed();
  Matrix ata = at * a;
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += lambda;
  std::vector<double> atb(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) atb[c] += a(r, c) * b[r];
  return solve(ata, atb);
}

EigenResult symmetric_eigen(const Matrix& input, int max_sweeps) {
  assert(input.rows() == input.cols());
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) off += a(r, c) * a(r, c);
    if (off < 1e-20) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) < 1e-15) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) < a(j, j); });

  EigenResult out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = a(order[i], order[i]);
    for (std::size_t k = 0; k < n; ++k) out.vectors(k, i) = v(k, order[i]);
  }
  return out;
}

std::vector<double> smallest_eigenvector(const Matrix& a) {
  const EigenResult e = symmetric_eigen(a);
  std::vector<double> vec(a.rows());
  for (std::size_t k = 0; k < a.rows(); ++k) vec[k] = e.vectors(k, 0);
  return vec;
}

}  // namespace mvs::linalg

#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>

namespace mvs::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    assert(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double k) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= k;
  return out;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

}  // namespace mvs::linalg

#pragma once
// Linear solvers: Gaussian elimination with partial pivoting, ridge-
// regularized least squares (normal equations), and a Jacobi rotation
// eigen-solver for symmetric matrices (used by the homography DLT).

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace mvs::linalg {

/// Solve A x = b for square A. Returns nullopt if A is (numerically)
/// singular.
std::optional<std::vector<double>> solve(const Matrix& a,
                                         const std::vector<double>& b);

/// Least-squares solve of A x = b (A has >= cols rows) via normal equations
/// with ridge term `lambda` for conditioning. Returns nullopt on failure.
std::optional<std::vector<double>> least_squares(const Matrix& a,
                                                 const std::vector<double>& b,
                                                 double lambda = 1e-9);

struct EigenResult {
  std::vector<double> values;  ///< ascending
  Matrix vectors;              ///< column i is the eigenvector of values[i]
};

/// Jacobi eigen-decomposition of a symmetric matrix.
EigenResult symmetric_eigen(const Matrix& a, int max_sweeps = 64);

/// Eigenvector of the smallest eigenvalue (the DLT null-space direction).
std::vector<double> smallest_eigenvector(const Matrix& a);

}  // namespace mvs::linalg

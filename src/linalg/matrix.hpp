#pragma once
// Small dense linear-algebra kernel backing the ML baselines (linear
// regression normal equations, homography DLT via a symmetric eigen-solver).
// Deliberately simple: row-major double matrices sized at runtime; the
// problems here are tiny (<= a few hundred rows, <= 9 columns).

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace mvs::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix scaled(double k) const;

  /// Frobenius norm.
  double norm() const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mvs::linalg

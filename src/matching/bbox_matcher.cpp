#include "matching/bbox_matcher.hpp"

namespace mvs::matching {

void match_boxes_into(const std::vector<geom::BBox>& a,
                      const std::vector<geom::BBox>& b, double min_iou,
                      BoxMatchScratch& scratch, BoxMatchResult& out) {
  out.matches.clear();
  out.unmatched_a.clear();
  out.unmatched_b.clear();
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  scratch.cost.assign(rows * cols, kForbiddenCost);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = geom::iou(a[r], b[c]);
      if (v >= min_iou) scratch.cost[r * cols + c] = 1.0 - v;  // maximize IoU
    }
  }
  solve_assignment_into(scratch.cost, rows, cols, scratch.solver,
                        scratch.assign);
  const AssignmentResult& res = scratch.assign;
  for (std::size_t r = 0; r < rows; ++r) {
    if (res.row_to_col[r] >= 0) {
      const int c = res.row_to_col[r];
      out.matches.push_back(
          {static_cast<int>(r), c, geom::iou(a[r], b[static_cast<std::size_t>(c)])});
    } else {
      out.unmatched_a.push_back(static_cast<int>(r));
    }
  }
  for (std::size_t c = 0; c < cols; ++c)
    if (res.col_to_row[c] < 0) out.unmatched_b.push_back(static_cast<int>(c));
}

BoxMatchResult match_boxes(const std::vector<geom::BBox>& a,
                           const std::vector<geom::BBox>& b, double min_iou) {
  BoxMatchScratch scratch;
  BoxMatchResult out;
  match_boxes_into(a, b, min_iou, scratch, out);
  return out;
}

}  // namespace mvs::matching

#include "matching/bbox_matcher.hpp"

namespace mvs::matching {

BoxMatchResult match_boxes(const std::vector<geom::BBox>& a,
                           const std::vector<geom::BBox>& b, double min_iou) {
  BoxMatchResult out;
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  std::vector<double> cost(rows * cols, kForbiddenCost);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = geom::iou(a[r], b[c]);
      if (v >= min_iou) cost[r * cols + c] = 1.0 - v;  // maximize IoU
    }
  }
  const AssignmentResult res = solve_assignment(cost, rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    if (res.row_to_col[r] >= 0) {
      const int c = res.row_to_col[r];
      out.matches.push_back(
          {static_cast<int>(r), c, geom::iou(a[r], b[static_cast<std::size_t>(c)])});
    } else {
      out.unmatched_a.push_back(static_cast<int>(r));
    }
  }
  for (std::size_t c = 0; c < cols; ++c)
    if (res.col_to_row[c] < 0) out.unmatched_b.push_back(static_cast<int>(c));
  return out;
}

}  // namespace mvs::matching

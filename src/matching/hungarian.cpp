#include "matching/hungarian.hpp"

#include <algorithm>
#include <cassert>

namespace mvs::matching {

namespace {

/// Classic potentials-based Kuhn-Munkres on a square n x n matrix.
/// Returns col_match: for each column (1-based internally), the matched row.
std::vector<int> kuhn_munkres_square(const std::vector<double>& a,
                                     std::size_t n) {
  // 1-based implementation (standard competitive-programming formulation).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = static_cast<int>(i);
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = static_cast<std::size_t>(p[j0]);
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = a[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = static_cast<int>(j0);
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[static_cast<std::size_t>(p[j])] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = static_cast<std::size_t>(way[j0]);
      p[j0] = p[j1];
      j0 = j1;
    } while (j0);
  }
  return p;  // p[j] = row matched to column j (1-based), p[0] unused
}

}  // namespace

AssignmentResult solve_assignment(const std::vector<double>& cost,
                                  std::size_t rows, std::size_t cols) {
  assert(cost.size() == rows * cols);
  AssignmentResult out;
  out.row_to_col.assign(rows, -1);
  out.col_to_row.assign(cols, -1);
  if (rows == 0 || cols == 0) return out;

  const std::size_t n = std::max(rows, cols);
  // Pad to square with forbidden cost; padded cells never yield real matches.
  std::vector<double> sq(n * n, kForbiddenCost);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) sq[r * n + c] = cost[r * cols + c];

  const std::vector<int> p = kuhn_munkres_square(sq, n);
  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t r = static_cast<std::size_t>(p[j]) - 1;
    const std::size_t c = j - 1;
    if (r >= rows || c >= cols) continue;
    const double cell = cost[r * cols + c];
    if (cell >= kForbiddenCost) continue;
    out.row_to_col[r] = static_cast<int>(c);
    out.col_to_row[c] = static_cast<int>(r);
    out.total_cost += cell;
  }
  return out;
}

AssignmentResult solve_assignment_greedy(const std::vector<double>& cost,
                                         std::size_t rows, std::size_t cols) {
  assert(cost.size() == rows * cols);
  AssignmentResult out;
  out.row_to_col.assign(rows, -1);
  out.col_to_row.assign(cols, -1);

  struct Entry {
    double c;
    std::size_t r, col;
  };
  std::vector<Entry> entries;
  entries.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (cost[r * cols + c] < kForbiddenCost)
        entries.push_back({cost[r * cols + c], r, c});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.c < b.c; });
  for (const Entry& e : entries) {
    if (out.row_to_col[e.r] != -1 || out.col_to_row[e.col] != -1) continue;
    out.row_to_col[e.r] = static_cast<int>(e.col);
    out.col_to_row[e.col] = static_cast<int>(e.r);
    out.total_cost += e.c;
  }
  return out;
}

}  // namespace mvs::matching

#include "matching/hungarian.hpp"

#include <algorithm>
#include <cassert>

namespace mvs::matching {

namespace {

/// Classic potentials-based Kuhn-Munkres on a square n x n matrix held in
/// scratch.sq. Fills scratch.p: for each column (1-based internally), the
/// matched row. All working vectors live in `scratch` so repeated solves
/// reuse their capacity.
void kuhn_munkres_square(AssignScratch& s, std::size_t n) {
  // 1-based implementation (standard competitive-programming formulation).
  const double kInf = std::numeric_limits<double>::infinity();
  const std::vector<double>& a = s.sq;
  s.u.assign(n + 1, 0.0);
  s.v.assign(n + 1, 0.0);
  s.p.assign(n + 1, 0);
  s.way.assign(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    s.p[0] = static_cast<int>(i);
    std::size_t j0 = 0;
    s.minv.assign(n + 1, kInf);
    s.used.assign(n + 1, 0);
    do {
      s.used[j0] = 1;
      const std::size_t i0 = static_cast<std::size_t>(s.p[j0]);
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (s.used[j]) continue;
        const double cur = a[(i0 - 1) * n + (j - 1)] - s.u[i0] - s.v[j];
        if (cur < s.minv[j]) {
          s.minv[j] = cur;
          s.way[j] = static_cast<int>(j0);
        }
        if (s.minv[j] < delta) {
          delta = s.minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (s.used[j]) {
          s.u[static_cast<std::size_t>(s.p[j])] += delta;
          s.v[j] -= delta;
        } else {
          s.minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (s.p[j0] != 0);
    do {
      const std::size_t j1 = static_cast<std::size_t>(s.way[j0]);
      s.p[j0] = s.p[j1];
      j0 = j1;
    } while (j0);
  }
  // s.p[j] = row matched to column j (1-based), s.p[0] unused
}

}  // namespace

void solve_assignment_into(const std::vector<double>& cost, std::size_t rows,
                           std::size_t cols, AssignScratch& scratch,
                           AssignmentResult& out) {
  assert(cost.size() == rows * cols);
  out.row_to_col.assign(rows, -1);
  out.col_to_row.assign(cols, -1);
  out.total_cost = 0.0;
  if (rows == 0 || cols == 0) return;

  const std::size_t n = std::max(rows, cols);
  // Pad to square with forbidden cost; padded cells never yield real matches.
  scratch.sq.assign(n * n, kForbiddenCost);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      scratch.sq[r * n + c] = cost[r * cols + c];

  kuhn_munkres_square(scratch, n);
  const std::vector<int>& p = scratch.p;
  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t r = static_cast<std::size_t>(p[j]) - 1;
    const std::size_t c = j - 1;
    if (r >= rows || c >= cols) continue;
    const double cell = cost[r * cols + c];
    if (cell >= kForbiddenCost) continue;
    out.row_to_col[r] = static_cast<int>(c);
    out.col_to_row[c] = static_cast<int>(r);
    out.total_cost += cell;
  }
}

AssignmentResult solve_assignment(const std::vector<double>& cost,
                                  std::size_t rows, std::size_t cols) {
  AssignScratch scratch;
  AssignmentResult out;
  solve_assignment_into(cost, rows, cols, scratch, out);
  return out;
}

AssignmentResult solve_assignment_greedy(const std::vector<double>& cost,
                                         std::size_t rows, std::size_t cols) {
  assert(cost.size() == rows * cols);
  AssignmentResult out;
  out.row_to_col.assign(rows, -1);
  out.col_to_row.assign(cols, -1);

  struct Entry {
    double c;
    std::size_t r, col;
  };
  std::vector<Entry> entries;
  entries.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (cost[r * cols + c] < kForbiddenCost)
        entries.push_back({cost[r * cols + c], r, c});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.c < b.c; });
  for (const Entry& e : entries) {
    if (out.row_to_col[e.r] != -1 || out.col_to_row[e.col] != -1) continue;
    out.row_to_col[e.r] = static_cast<int>(e.col);
    out.col_to_row[e.col] = static_cast<int>(e.r);
    out.total_cost += e.c;
  }
  return out;
}

}  // namespace mvs::matching

#pragma once
// Kuhn-Munkres (Hungarian) algorithm, O(n^3), for minimum-cost assignment.
//
// Used by (a) the optical-flow tracker to associate detections with track
// predictions and (b) the cross-camera association module to match predicted
// box locations against detections on the target camera (paper Sec. II-C).

#include <cstddef>
#include <limits>
#include <vector>

namespace mvs::matching {

/// A large-but-finite cost used to mark forbidden pairs; pairs assigned at
/// this cost are reported as unmatched.
inline constexpr double kForbiddenCost = 1e9;

struct AssignmentResult {
  /// row_to_col[r] = matched column for row r, or -1 if unmatched.
  std::vector<int> row_to_col;
  /// col_to_row[c] = matched row for column c, or -1 if unmatched.
  std::vector<int> col_to_row;
  /// Total cost of the real (non-forbidden) matches.
  double total_cost = 0.0;
};

/// Reusable working memory for solve_assignment_into. A caller that solves
/// many assignments (the tracker runs one per camera per frame) keeps one of
/// these alive so a warmed-up solve performs zero heap allocations — every
/// buffer is assign()ed back to size, which reuses capacity (DESIGN.md §11).
struct AssignScratch {
  std::vector<double> sq;    ///< padded square cost matrix
  std::vector<double> u, v;  ///< row/column potentials
  std::vector<double> minv;  ///< per-column slack of the alternating tree
  std::vector<int> p, way;
  std::vector<char> used;
};

/// Minimum-cost assignment over a (possibly rectangular) cost matrix given
/// row-major as cost[r * cols + c]. Rows/columns beyond the square part are
/// padded internally. Pairs whose cost is >= kForbiddenCost are never
/// reported as matched.
AssignmentResult solve_assignment(const std::vector<double>& cost,
                                  std::size_t rows, std::size_t cols);

/// solve_assignment with caller-owned scratch and output (allocation-free
/// once warm; bit-identical results).
void solve_assignment_into(const std::vector<double>& cost, std::size_t rows,
                           std::size_t cols, AssignScratch& scratch,
                           AssignmentResult& out);

/// Greedy baseline: repeatedly pick the globally cheapest remaining pair.
/// Used in tests/benches to sanity-check Hungarian optimality.
AssignmentResult solve_assignment_greedy(const std::vector<double>& cost,
                                         std::size_t rows, std::size_t cols);

}  // namespace mvs::matching

#pragma once
// IoU-based bipartite box matching built on the Hungarian solver.
// Maximizes total IoU subject to a minimum-IoU threshold per pair.

#include <vector>

#include "geometry/bbox.hpp"
#include "matching/hungarian.hpp"

namespace mvs::matching {

struct BoxMatch {
  int a = -1;        ///< index into the first box list
  int b = -1;        ///< index into the second box list
  double iou = 0.0;  ///< IoU of the matched pair
};

struct BoxMatchResult {
  std::vector<BoxMatch> matches;
  std::vector<int> unmatched_a;
  std::vector<int> unmatched_b;
};

/// Optimal (max total IoU) matching; pairs with IoU < min_iou are forbidden.
BoxMatchResult match_boxes(const std::vector<geom::BBox>& a,
                           const std::vector<geom::BBox>& b,
                           double min_iou = 0.1);

/// Reusable working memory for match_boxes_into: the cost matrix, the raw
/// assignment output, and the Hungarian solver's internals. One per caller
/// makes repeated matching allocation-free once warm (DESIGN.md §11).
struct BoxMatchScratch {
  std::vector<double> cost;
  AssignmentResult assign;
  AssignScratch solver;
};

/// match_boxes with caller-owned scratch and output (allocation-free once
/// warm; bit-identical results).
void match_boxes_into(const std::vector<geom::BBox>& a,
                      const std::vector<geom::BBox>& b, double min_iou,
                      BoxMatchScratch& scratch, BoxMatchResult& out);

}  // namespace mvs::matching

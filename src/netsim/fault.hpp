#pragma once
// Fault injection knobs for the simulated camera <-> scheduler network.
//
// Three independent fault classes, all sampled from a seeded mvs::util::Rng
// so any run is reproducible bit-for-bit:
//   - packet loss: each message transmission attempt is lost i.i.d. with
//     probability `loss_rate`; senders retransmit after `retry_timeout_ms`
//     of silence, up to `max_retries` extra attempts;
//   - jitter: every transmission attempt pays an extra exponentially
//     distributed propagation delay with mean `jitter_ms`;
//   - camera dropout: a camera is completely offline during configured
//     evaluation-frame windows (no detections, no uplinks, no downlinks);
//     it rejoins the schedule at the first key frame after the window.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mvs::netsim {

/// One camera-outage window, in evaluation-frame indices (the frame counter
/// the pipeline's run() loop uses, not the scenario's global frame index).
struct DropoutWindow {
  int camera = -1;
  long from_frame = 0;  ///< first frame the camera is offline (inclusive)
  long to_frame = -1;   ///< first frame it is back online; -1 = never
};

struct FaultConfig {
  double loss_rate = 0.0;         ///< per-attempt loss probability [0, 1)
  double jitter_ms = 0.0;         ///< mean of exponential per-attempt jitter
  double retry_timeout_ms = 8.0;  ///< sender retransmit timeout
  int max_retries = 3;            ///< retransmissions after the first attempt
  std::vector<DropoutWindow> dropouts;

  bool fault_free() const {
    return loss_rate <= 0.0 && jitter_ms <= 0.0 && dropouts.empty();
  }
};

/// Samples the per-message fault outcomes. Stateful (owns the RNG stream):
/// call sites must draw in a deterministic order — netsim::EventQueue's
/// (time, seq) dispatch order guarantees that.
class FaultModel {
 public:
  FaultModel() : FaultModel(FaultConfig{}, 0) {}
  FaultModel(FaultConfig cfg, std::uint64_t seed)
      : cfg_(std::move(cfg)), rng_(seed) {}

  /// Is this transmission attempt lost?
  bool lose() { return cfg_.loss_rate > 0.0 && rng_.bernoulli(cfg_.loss_rate); }

  /// Extra propagation delay for this transmission attempt.
  double jitter() {
    if (cfg_.jitter_ms <= 0.0) return 0.0;
    return rng_.exponential(1.0 / cfg_.jitter_ms);
  }

  /// Is `camera` connected at evaluation frame `frame`?
  bool camera_online(int camera, long frame) const {
    for (const DropoutWindow& w : cfg_.dropouts) {
      if (w.camera != camera) continue;
      if (frame >= w.from_frame && (w.to_frame < 0 || frame < w.to_frame))
        return false;
    }
    return true;
  }

  const FaultConfig& config() const { return cfg_; }

 private:
  FaultConfig cfg_;
  util::Rng rng_;
};

}  // namespace mvs::netsim

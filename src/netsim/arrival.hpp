#pragma once
// Virtual-clock frame-arrival pacing for the streaming-perception runtime
// (mvs::rt). Frames are captured on a fixed per-camera clock and reach the
// processor after an exponentially distributed network/ISP delay (the same
// jitter law netsim::FaultModel charges per message). The pipeline steps all
// cameras synchronously, so a multi-camera frame "arrives" when its SLOWEST
// camera's copy lands — the pacer therefore takes the max over per-camera
// jitter draws (barrier semantics).
//
// Everything is simulated time from a seeded RNG: no real clock is read, so
// arrival sequences are bit-identical across runs and thread counts.

#include <algorithm>
#include <cstdint>

#include "util/rng.hpp"

namespace mvs::netsim {

class ArrivalPacer {
 public:
  /// `period_ms` between captures; `jitter_ms` is the mean of the
  /// per-camera exponential capture->arrival delay (0 = arrivals exactly on
  /// the capture clock); `cameras` per frame (one jitter draw each).
  ArrivalPacer(double period_ms, double jitter_ms, std::size_t cameras,
               std::uint64_t seed)
      : period_ms_(period_ms),
        jitter_ms_(jitter_ms),
        cameras_(cameras),
        rng_(seed ^ 0xA881u) {}

  /// Capture time of frame f (virtual ms).
  double capture_ms(long frame) const {
    return static_cast<double>(frame) * period_ms_;
  }

  /// Arrival time of the next frame (monotone: frames are delivered in
  /// order, a frame overtaken by its successor waits for it).
  double next_arrival() {
    const double capture = capture_ms(frame_++);
    double jitter = 0.0;
    if (jitter_ms_ > 0.0) {
      for (std::size_t c = 0; c < cameras_; ++c)
        jitter = std::max(jitter, rng_.exponential(1.0 / jitter_ms_));
    }
    last_arrival_ = std::max(capture + jitter, last_arrival_);
    return last_arrival_;
  }

  long frames_emitted() const { return frame_; }
  double period_ms() const { return period_ms_; }

 private:
  double period_ms_ = 100.0;
  double jitter_ms_ = 0.0;
  std::size_t cameras_ = 1;
  util::Rng rng_;
  long frame_ = 0;
  double last_arrival_ = 0.0;
};

}  // namespace mvs::netsim

#include "netsim/sim_transport.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace mvs::netsim {

namespace {
double serialize_ms(std::size_t bytes, double mbps) {
  return static_cast<double>(bytes) * 8.0 / (mbps * 1e6) * 1e3;
}
}  // namespace

SimTransport::SimTransport(Config cfg, std::size_t cameras, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      cameras_(cameras),
      faults_(cfg_.faults, seed ^ 0x6E657453494DULL /* "netSIM" */) {}

bool SimTransport::camera_online(int camera, long frame) {
  return faults_.camera_online(camera, frame);
}

void SimTransport::send_uplink(long /*frame*/, int camera, std::size_t bytes) {
  pending_up_.push_back({camera, bytes});
}

void SimTransport::send_downlink(long /*frame*/, int camera,
                                 std::size_t bytes) {
  pending_down_.push_back({camera, bytes});
}

net::UplinkReport SimTransport::run_uplinks(long /*frame*/) {
  up_outcome_ = run_phase(pending_up_, /*uplink=*/true);
  up_resolved_ = true;
  net::UplinkReport report;
  report.elapsed_ms = up_outcome_.elapsed_ms;
  report.delivered = up_outcome_.delivered;
  return report;
}

net::CycleReport SimTransport::finish_cycle(long frame) {
  MVS_SPAN("net.cycle");
  const std::size_t msg_count = pending_up_.size() + pending_down_.size();
  if (!up_resolved_) (void)run_uplinks(frame);
  const PhaseOutcome down = run_phase(pending_down_, /*uplink=*/false);

  net::CycleReport report;
  report.comm_ms = up_outcome_.elapsed_ms + down.elapsed_ms;
  report.queue_ms = up_outcome_.queue_ms + down.queue_ms;
  report.retries = up_outcome_.retries + down.retries;
  report.dropped_msgs = up_outcome_.drops + down.drops;
  report.downlink_delivered = down.delivered;
  report.events = up_outcome_.events;
  for (net::MessageEvent e : down.events) {
    e.time_ms += up_outcome_.elapsed_ms;  // cycle-relative timeline
    report.events.push_back(e);
  }

  MVS_COUNT("net.cycles", 1);
  MVS_COUNT("net.messages", msg_count);
  MVS_COUNT("net.retries", report.retries);
  MVS_COUNT("net.drops", report.dropped_msgs);
  // Simulated (event-queue) times: deterministic, full fingerprint.
  MVS_HIST("net.cycle_ms", report.comm_ms);
  MVS_HIST("net.queue_ms", report.queue_ms);

  pending_up_.clear();
  pending_down_.clear();
  up_outcome_ = PhaseOutcome{};
  up_resolved_ = false;
  return report;
}

SimTransport::PhaseOutcome SimTransport::run_phase(
    const std::vector<Pending>& msgs, bool uplink) {
  PhaseOutcome out;
  out.delivered.assign(cameras_, 0);
  if (msgs.empty()) return out;

  const double mbps =
      uplink ? cfg_.link.uplink_mbps : cfg_.link.downlink_mbps;
  const double base_ms = cfg_.link.base_latency_ms;
  const double timeout_ms = cfg_.faults.retry_timeout_ms;
  const int max_retries = std::max(0, cfg_.faults.max_retries);

  struct MsgState {
    bool delivered = false;
    double done_ms = 0.0;     ///< serialization finished (ack time)
    double give_up_ms = 0.0;  ///< sender abandoned the message
    bool gave_up = false;
  };
  std::vector<MsgState> state(msgs.size());
  EventQueue queue;
  double busy_until = 0.0;  // the direction's FIFO bottleneck

  // Transmission attempt `attempt` of message `mi`, sent at the handler's
  // fire time. Declared as a std::function so handlers can re-arm it.
  std::function<void(std::size_t, int, double)> send =
      [&](std::size_t mi, int attempt, double t) {
        MsgState& st = state[mi];
        if (st.delivered && st.done_ms <= t) return;  // acked; stop sending
        const bool lost = faults_.lose();
        const double jitter = faults_.jitter();
        if (!lost) {
          const double arrival = t + base_ms + jitter;
          queue.schedule(arrival, [&, mi](double now) {
            const double wait = std::max(0.0, busy_until - now);
            const double done =
                std::max(now, busy_until) + serialize_ms(msgs[mi].bytes, mbps);
            busy_until = done;
            out.queue_ms += wait;
            MsgState& s = state[mi];
            if (!s.delivered) {
              s.delivered = true;
              s.done_ms = done;
            }
          });
        }
        // Sender-side timeout: retransmit (or give up) unless the ack —
        // modeled as instant at serialization completion — arrived in time.
        queue.schedule(t + timeout_ms, [&, mi, attempt](double now) {
          MsgState& s = state[mi];
          if (s.delivered && s.done_ms <= now) return;
          if (attempt < max_retries) {
            ++out.retries;
            out.events.push_back({net::MessageEvent::Kind::kRetry,
                                  msgs[mi].camera, uplink, now});
            send(mi, attempt + 1, now);
          } else if (!s.gave_up) {
            s.gave_up = true;
            s.give_up_ms = now;
          }
        });
      };

  for (std::size_t mi = 0; mi < msgs.size(); ++mi)
    queue.schedule(0.0, [&, mi](double now) { send(mi, 0, now); });
  queue.run_until_empty();

  for (std::size_t mi = 0; mi < msgs.size(); ++mi) {
    const MsgState& st = state[mi];
    if (st.delivered) {
      out.delivered[static_cast<std::size_t>(msgs[mi].camera)] = 1;
      out.elapsed_ms = std::max(out.elapsed_ms, st.done_ms);
    } else {
      ++out.drops;
      out.events.push_back({net::MessageEvent::Kind::kDrop, msgs[mi].camera,
                            uplink, st.give_up_ms});
      out.elapsed_ms = std::max(out.elapsed_ms, st.give_up_ms);
    }
  }
  return out;
}

}  // namespace mvs::netsim

#include "netsim/sim_transport.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace mvs::netsim {

namespace {
double serialize_ms(std::size_t bytes, double mbps) {
  return static_cast<double>(bytes) * 8.0 / (mbps * 1e6) * 1e3;
}
}  // namespace

SimTransport::SimTransport(Config cfg, std::size_t cameras, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      cameras_(cameras),
      faults_(cfg_.faults, seed ^ 0x6E657453494DULL /* "netSIM" */) {}

bool SimTransport::camera_online(int camera, long frame) {
  return faults_.camera_online(camera, frame);
}

void SimTransport::send_uplink(long /*frame*/, int camera, std::size_t bytes) {
  pending_up_.push_back({camera, bytes});
}

void SimTransport::send_downlink(long /*frame*/, int camera,
                                 std::size_t bytes) {
  pending_down_.push_back({camera, bytes});
}

net::UplinkReport SimTransport::run_uplinks(long /*frame*/) {
  run_phase(pending_up_, /*uplink=*/true, up_outcome_);
  up_resolved_ = true;
  net::UplinkReport report;
  report.elapsed_ms = up_outcome_.elapsed_ms;
  report.delivered = up_outcome_.delivered;
  return report;
}

net::CycleReport SimTransport::finish_cycle(long frame) {
  MVS_SPAN("net.cycle");
  const std::size_t msg_count = pending_up_.size() + pending_down_.size();
  if (!up_resolved_) (void)run_uplinks(frame);
  run_phase(pending_down_, /*uplink=*/false, down_outcome_);
  const PhaseOutcome& down = down_outcome_;

  net::CycleReport report;
  report.comm_ms = up_outcome_.elapsed_ms + down.elapsed_ms;
  report.queue_ms = up_outcome_.queue_ms + down.queue_ms;
  report.retries = up_outcome_.retries + down.retries;
  report.dropped_msgs = up_outcome_.drops + down.drops;
  report.downlink_delivered = down.delivered;
  report.events = up_outcome_.events;
  for (net::MessageEvent e : down.events) {
    e.time_ms += up_outcome_.elapsed_ms;  // cycle-relative timeline
    report.events.push_back(e);
  }

  MVS_COUNT("net.cycles", 1);
  MVS_COUNT("net.messages", msg_count);
  MVS_COUNT("net.retries", report.retries);
  MVS_COUNT("net.drops", report.dropped_msgs);
  // Simulated (event-queue) times: deterministic, full fingerprint.
  MVS_HIST("net.cycle_ms", report.comm_ms);
  MVS_HIST("net.queue_ms", report.queue_ms);

  pending_up_.clear();
  pending_down_.clear();
  up_outcome_.reset(cameras_);  // in place: capacity survives to next cycle
  up_resolved_ = false;
  return report;
}

// Transmission attempt `attempt` of message `mi` at time `t`.  Handlers
// re-arm further attempts by scheduling this again — the recursion of the
// old std::function formulation, flattened into member calls so each event
// captures only {this, mi, attempt}.
void SimTransport::attempt_send(std::size_t mi, int attempt, double t) {
  const MsgState& st = state_[mi];
  if (st.delivered && st.done_ms <= t) return;  // acked; stop sending
  const bool lost = faults_.lose();
  const double jitter = faults_.jitter();
  if (!lost) {
    const double arrival = t + phase_.base_ms + jitter;
    queue_.schedule(arrival,
                    [this, mi](double now) { handle_arrival(mi, now); });
  }
  // Sender-side timeout: retransmit (or give up) unless the ack — modeled
  // as instant at serialization completion — arrived in time.
  queue_.schedule(t + phase_.timeout_ms, [this, mi, attempt](double now) {
    handle_timeout(mi, attempt, now);
  });
}

void SimTransport::handle_arrival(std::size_t mi, double now) {
  const double wait = std::max(0.0, phase_.busy_until - now);
  const double done = std::max(now, phase_.busy_until) +
                      serialize_ms((*phase_.msgs)[mi].bytes, phase_.mbps);
  phase_.busy_until = done;
  phase_.out->queue_ms += wait;
  MsgState& s = state_[mi];
  if (!s.delivered) {
    s.delivered = true;
    s.done_ms = done;
  }
}

void SimTransport::handle_timeout(std::size_t mi, int attempt, double now) {
  MsgState& s = state_[mi];
  if (s.delivered && s.done_ms <= now) return;
  if (attempt < phase_.max_retries) {
    ++phase_.out->retries;
    phase_.out->events.push_back({net::MessageEvent::Kind::kRetry,
                                  (*phase_.msgs)[mi].camera, phase_.uplink,
                                  now});
    attempt_send(mi, attempt + 1, now);
  } else if (!s.gave_up) {
    s.gave_up = true;
    s.give_up_ms = now;
  }
}

void SimTransport::run_phase(const std::vector<Pending>& msgs, bool uplink,
                             PhaseOutcome& out) {
  out.reset(cameras_);
  if (msgs.empty()) return;

  phase_.msgs = &msgs;
  phase_.out = &out;
  phase_.uplink = uplink;
  phase_.mbps = uplink ? cfg_.link.uplink_mbps : cfg_.link.downlink_mbps;
  phase_.base_ms = cfg_.link.base_latency_ms;
  phase_.timeout_ms = cfg_.faults.retry_timeout_ms;
  phase_.max_retries = std::max(0, cfg_.faults.max_retries);
  phase_.busy_until = 0.0;

  state_.assign(msgs.size(), MsgState{});
  queue_.reset();
  for (std::size_t mi = 0; mi < msgs.size(); ++mi)
    queue_.schedule(0.0,
                    [this, mi](double now) { attempt_send(mi, 0, now); });
  queue_.run_until_empty();

  for (std::size_t mi = 0; mi < msgs.size(); ++mi) {
    const MsgState& st = state_[mi];
    if (st.delivered) {
      out.delivered[static_cast<std::size_t>(msgs[mi].camera)] = 1;
      out.elapsed_ms = std::max(out.elapsed_ms, st.done_ms);
    } else {
      ++out.drops;
      out.events.push_back({net::MessageEvent::Kind::kDrop, msgs[mi].camera,
                            uplink, st.give_up_ms});
      out.elapsed_ms = std::max(out.elapsed_ms, st.give_up_ms);
    }
  }
}

}  // namespace mvs::netsim

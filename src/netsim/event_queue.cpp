#include "netsim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace mvs::netsim {

void EventQueue::schedule(double time_ms, Handler fn) {
  Event e;
  e.time = time_ms < now_ ? now_ : time_ms;
  e.seq = next_seq_++;
  e.fn = std::move(fn);
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event e = std::move(heap_.back());
  heap_.pop_back();  // capacity retained for the next schedule()
  now_ = e.time;
  e.fn(now_);
  return true;
}

void EventQueue::run_until_empty() {
  while (run_one()) {
  }
}

void EventQueue::reset() {
  heap_.clear();  // keeps capacity
  next_seq_ = 0;
  now_ = 0.0;
}

}  // namespace mvs::netsim

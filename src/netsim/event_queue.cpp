#include "netsim/event_queue.hpp"

#include <utility>

namespace mvs::netsim {

void EventQueue::schedule(double time_ms, Handler fn) {
  Event e;
  e.time = time_ms < now_ ? now_ : time_ms;
  e.seq = next_seq_++;
  e.fn = std::move(fn);
  heap_.push(std::move(e));
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the element is popped before it runs.
  Event e = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = e.time;
  e.fn(now_);
  return true;
}

void EventQueue::run_until_empty() {
  while (run_one()) {
  }
}

void EventQueue::reset() {
  heap_ = {};
  next_seq_ = 0;
  now_ = 0.0;
}

}  // namespace mvs::netsim

#pragma once
// Discrete-event simulation core for mvs::netsim.
//
// A minimal single-clock event loop: handlers are scheduled at absolute
// simulated times (milliseconds) and dispatched in (time, insertion order) —
// the explicit sequence tie-break makes runs bit-for-bit reproducible
// regardless of heap internals, which the determinism guarantees of the
// lossy transport rely on. Handlers may schedule further events; times in
// the past are clamped to "now" so causality never runs backwards.
//
// Hot-path notes (DESIGN.md §11): handlers are util::InplaceFunction —
// stored inline in the event node, never heap-boxed — and the heap lives in
// a plain vector (std::push_heap/pop_heap) whose capacity survives reset(),
// so a warmed-up queue schedules and dispatches without allocating.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/inplace_function.hpp"

namespace mvs::netsim {

class EventQueue {
 public:
  /// Invoked with the simulated time the event fires at. 48 bytes of
  /// inline capture — enough for a {this, index, attempt} closure; bigger
  /// captures fail to compile rather than silently allocating.
  using Handler = util::InplaceFunction<void(double now_ms), 48>;

  /// Schedule `fn` at `time_ms` (clamped to the current time if earlier).
  void schedule(double time_ms, Handler fn);

  /// Dispatch the earliest pending event; false when the queue is empty.
  bool run_one();

  /// Dispatch events until none remain.
  void run_until_empty();

  double now_ms() const { return now_; }
  std::size_t pending() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Drop all pending events and reset the clock to zero. Keeps the event
  /// vector's capacity: a reused queue does not reallocate.
  void reset();

 private:
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  std::vector<Event> heap_;  ///< binary heap via std::push_heap/pop_heap
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace mvs::netsim

#pragma once
// Event-driven lossy camera <-> scheduler transport (net::Transport impl).
//
// Replaces the closed-form LinkModel arithmetic with a discrete-event
// simulation of the paper's deployment network:
//   - each direction is a FIFO bottleneck queue (the scheduler's ingress
//     NIC at the uplink rate, its egress NIC at the downlink rate);
//     messages pay a bandwidth-derived serialization delay and queue behind
//     earlier arrivals, so burst load produces real queueing delay;
//   - every transmission attempt pays the base link latency plus sampled
//     jitter and is lost with the configured probability; senders
//     retransmit after a silent retry timeout (acknowledgements are modeled
//     as reliable and instantaneous once a message finishes serialization);
//     a slow ack — e.g. a message stuck behind a deep queue — triggers
//     honest spurious retransmissions that add further load;
//   - a message whose retry budget runs out is dropped for good; the cycle
//     still completes, charging the sender's give-up time, and the report
//     tells the pipeline which cameras fell out of the plan.
//
// All randomness comes from one seeded mvs::util::Rng drawn in EventQueue
// dispatch order, so identical (config, seed) runs are bit-for-bit
// identical.
//
// Hot-path notes (DESIGN.md §11): the event queue, per-message state and
// phase outcomes are long-lived members whose capacity survives across
// cycles, and every event handler is a small {this, index, attempt} closure
// stored inline in the event node — a warmed-up transport runs a full cycle
// without heap allocation.

#include <cstdint>
#include <vector>

#include "net/transport.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/fault.hpp"

namespace mvs::netsim {

class SimTransport final : public net::Transport {
 public:
  struct Config {
    net::LinkModel::Config link{};  ///< bandwidths + base latency
    FaultConfig faults{};
  };

  SimTransport(Config cfg, std::size_t cameras, std::uint64_t seed);

  bool camera_online(int camera, long frame) override;
  void send_uplink(long frame, int camera, std::size_t bytes) override;
  net::UplinkReport run_uplinks(long frame) override;
  void send_downlink(long frame, int camera, std::size_t bytes) override;
  net::CycleReport finish_cycle(long frame) override;

  const Config& config() const { return cfg_; }

 private:
  struct Pending {
    int camera = -1;
    std::size_t bytes = 0;
  };
  struct PhaseOutcome {
    double elapsed_ms = 0.0;
    double queue_ms = 0.0;
    int retries = 0;
    int drops = 0;
    std::vector<char> delivered;
    std::vector<net::MessageEvent> events;

    /// Clear for a new phase, keeping vector capacity.
    void reset(std::size_t cameras) {
      elapsed_ms = 0.0;
      queue_ms = 0.0;
      retries = 0;
      drops = 0;
      delivered.assign(cameras, 0);
      events.clear();
    }
  };
  struct MsgState {
    bool delivered = false;
    double done_ms = 0.0;     ///< serialization finished (ack time)
    double give_up_ms = 0.0;  ///< sender abandoned the message
    bool gave_up = false;
  };
  /// Per-phase parameters shared by the event handlers (which capture only
  /// {this, message index, attempt} and read the rest from here).
  struct PhaseParams {
    const std::vector<Pending>* msgs = nullptr;
    PhaseOutcome* out = nullptr;
    bool uplink = false;
    double mbps = 1.0;
    double base_ms = 0.0;
    double timeout_ms = 0.0;
    int max_retries = 0;
    double busy_until = 0.0;  ///< the direction's FIFO bottleneck
  };

  /// Simulate one direction's messages from a common t=0 until every
  /// message is delivered or given up. `out` is reused across cycles.
  void run_phase(const std::vector<Pending>& msgs, bool uplink,
                 PhaseOutcome& out);
  // Event handlers (scheduled on queue_; see run_phase).
  void attempt_send(std::size_t mi, int attempt, double t);
  void handle_arrival(std::size_t mi, double now);
  void handle_timeout(std::size_t mi, int attempt, double now);

  Config cfg_;
  std::size_t cameras_ = 0;
  FaultModel faults_;
  std::vector<Pending> pending_up_, pending_down_;
  PhaseOutcome up_outcome_, down_outcome_;
  bool up_resolved_ = false;

  // Reused phase machinery (capacity survives across cycles).
  EventQueue queue_;
  std::vector<MsgState> state_;
  PhaseParams phase_;
};

}  // namespace mvs::netsim

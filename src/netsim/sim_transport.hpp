#pragma once
// Event-driven lossy camera <-> scheduler transport (net::Transport impl).
//
// Replaces the closed-form LinkModel arithmetic with a discrete-event
// simulation of the paper's deployment network:
//   - each direction is a FIFO bottleneck queue (the scheduler's ingress
//     NIC at the uplink rate, its egress NIC at the downlink rate);
//     messages pay a bandwidth-derived serialization delay and queue behind
//     earlier arrivals, so burst load produces real queueing delay;
//   - every transmission attempt pays the base link latency plus sampled
//     jitter and is lost with the configured probability; senders
//     retransmit after a silent retry timeout (acknowledgements are modeled
//     as reliable and instantaneous once a message finishes serialization);
//     a slow ack — e.g. a message stuck behind a deep queue — triggers
//     honest spurious retransmissions that add further load;
//   - a message whose retry budget runs out is dropped for good; the cycle
//     still completes, charging the sender's give-up time, and the report
//     tells the pipeline which cameras fell out of the plan.
//
// All randomness comes from one seeded mvs::util::Rng drawn in EventQueue
// dispatch order, so identical (config, seed) runs are bit-for-bit
// identical.

#include <cstdint>
#include <vector>

#include "net/transport.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/fault.hpp"

namespace mvs::netsim {

class SimTransport final : public net::Transport {
 public:
  struct Config {
    net::LinkModel::Config link{};  ///< bandwidths + base latency
    FaultConfig faults{};
  };

  SimTransport(Config cfg, std::size_t cameras, std::uint64_t seed);

  bool camera_online(int camera, long frame) override;
  void send_uplink(long frame, int camera, std::size_t bytes) override;
  net::UplinkReport run_uplinks(long frame) override;
  void send_downlink(long frame, int camera, std::size_t bytes) override;
  net::CycleReport finish_cycle(long frame) override;

  const Config& config() const { return cfg_; }

 private:
  struct Pending {
    int camera = -1;
    std::size_t bytes = 0;
  };
  struct PhaseOutcome {
    double elapsed_ms = 0.0;
    double queue_ms = 0.0;
    int retries = 0;
    int drops = 0;
    std::vector<char> delivered;
    std::vector<net::MessageEvent> events;
  };

  /// Simulate one direction's messages from a common t=0 until every
  /// message is delivered or given up.
  PhaseOutcome run_phase(const std::vector<Pending>& msgs, bool uplink);

  Config cfg_;
  std::size_t cameras_ = 0;
  FaultModel faults_;
  std::vector<Pending> pending_up_, pending_down_;
  PhaseOutcome up_outcome_;
  bool up_resolved_ = false;
};

}  // namespace mvs::netsim

#pragma once
// SORT baseline tracker (Bewley et al., ICIP'16): constant-velocity Kalman
// prediction + Hungarian IoU association. Included as the conventional
// tracking-by-detection comparator for the flow tracker and reused by tests
// as an independent implementation of track lifecycle management.

#include <memory>
#include <vector>

#include "detect/detection.hpp"
#include "matching/bbox_matcher.hpp"
#include "track/kalman.hpp"

namespace mvs::track {

struct SortTrack {
  long id = -1;
  geom::BBox box;
  int age = 0;
  int missed = 0;
  int hits = 0;
  std::uint64_t last_truth_id = detect::Detection::kFalsePositive;
};

class SortTracker {
 public:
  struct Config {
    double match_min_iou = 0.2;
    int max_missed = 3;
    int min_hits = 2;  ///< track is "confirmed" after this many matches
  };

  SortTracker() = default;
  explicit SortTracker(Config cfg) : cfg_(cfg) {}

  /// One tracking step: predict all tracks, associate `dets`, update
  /// lifecycle, auto-create tracks for unmatched detections (classic SORT
  /// behaviour — unlike FlowTracker, SORT owns the create decision).
  /// Returns the confirmed tracks after the step.
  std::vector<SortTrack> step(const std::vector<detect::Detection>& dets);

  std::size_t track_count() const { return entries_.size(); }

 private:
  struct Entry {
    SortTrack meta;
    KalmanBoxFilter filter;
  };

  Config cfg_{};
  std::vector<Entry> entries_;
  long next_id_ = 0;
};

}  // namespace mvs::track

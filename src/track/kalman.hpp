#pragma once
// SORT-style constant-velocity Kalman filter over bounding boxes.
// State: [cx, cy, area, aspect, vcx, vcy, varea]; aspect is assumed constant.
// Used by the SORT baseline tracker and available to the flow tracker as a
// fallback when optical flow is unreliable.

#include <array>

#include "geometry/bbox.hpp"

namespace mvs::track {

class KalmanBoxFilter {
 public:
  explicit KalmanBoxFilter(const geom::BBox& initial);

  /// Advance one frame; returns the predicted box.
  geom::BBox predict();

  /// Fuse a measurement box.
  void update(const geom::BBox& measurement);

  geom::BBox state_box() const;
  geom::Vec2 velocity() const { return {x_[4], x_[5]}; }

 private:
  static constexpr int kDim = 7;
  static constexpr int kMeas = 4;

  std::array<double, kDim> x_{};                ///< state mean
  std::array<std::array<double, kDim>, kDim> p_{};  ///< state covariance
};

}  // namespace mvs::track

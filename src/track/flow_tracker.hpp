#pragma once
// Optical-flow-based tracking-by-detection (paper Sec. II-B).
//
// Each tracked object carries a predicted box that is projected forward by
// the median optical flow inside it; partial-frame detections are then
// associated back to the predictions with Hungarian matching on IoU. The
// target size class of a track is fixed for a scheduling horizon (with
// downsizing if the object outgrows it), which is what makes GPU batching
// effective.

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/detection.hpp"
#include "geometry/size_class.hpp"
#include "matching/bbox_matcher.hpp"
#include "vision/optical_flow.hpp"

namespace mvs::track {

struct Track {
  long id = -1;                 ///< per-camera track identity
  std::uint64_t global_id = 0;  ///< cross-camera object id (set by scheduler)
  geom::BBox box;               ///< current best box estimate
  geom::SizeClassId size_class = 0;  ///< fixed within a scheduling horizon
  int age = 0;                  ///< frames since creation
  int missed = 0;               ///< consecutive frames without a match
  std::uint64_t last_truth_id = detect::Detection::kFalsePositive;
};

class FlowTracker {
 public:
  struct Config {
    double match_min_iou = 0.15;
    int max_missed = 2;  ///< drop a track after this many missed frames
  };

  FlowTracker() = default;
  FlowTracker(Config cfg, geom::SizeClassSet sizes)
      : cfg_(cfg), sizes_(std::move(sizes)) {}

  const std::vector<Track>& tracks() const { return tracks_; }
  std::vector<Track>& tracks() { return tracks_; }
  bool has_track(long id) const;
  const Track* find(long id) const;

  /// Replace all tracks from a key-frame detection list (full inspection).
  void reset_from_detections(const std::vector<detect::Detection>& dets);

  /// Shift every track box by the median flow inside it. `scale` maps
  /// logical-frame pixels to flow-field pixels (flow is computed on a
  /// downscaled render; see vision::Renderer).
  void predict(const vision::FlowField& flow, double scale);

  struct UpdateResult {
    std::vector<long> matched_track_ids;
    std::vector<std::size_t> unmatched_detections;  ///< indices into `dets`
    std::vector<long> removed_track_ids;            ///< dropped as lost
  };

  /// Associate detections with predicted tracks; matched tracks adopt the
  /// detection box (with size-class downsizing per the paper), unmatched
  /// tracks accrue a miss and are dropped past the limit. Unmatched
  /// detections are reported, NOT auto-added: whether to start tracking them
  /// is a scheduling decision (distributed BALB stage).
  UpdateResult update(const std::vector<detect::Detection>& dets);

  /// Start tracking a detection; returns the new track id.
  long add_track(const detect::Detection& det);

  void remove_track(long id);

  /// (track id, predicted box) pairs for ROI slicing.
  std::vector<std::pair<long, geom::BBox>> predicted_boxes() const;

  const geom::SizeClassSet& sizes() const { return sizes_; }

 private:
  Config cfg_{};
  geom::SizeClassSet sizes_{};
  std::vector<Track> tracks_;
  long next_id_ = 0;
};

}  // namespace mvs::track

#pragma once
// Optical-flow-based tracking-by-detection (paper Sec. II-B).
//
// Each tracked object carries a predicted box that is projected forward by
// the median optical flow inside it; partial-frame detections are then
// associated back to the predictions with Hungarian matching on IoU. The
// target size class of a track is fixed for a scheduling horizon (with
// downsizing if the object outgrows it), which is what makes GPU batching
// effective.

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/detection.hpp"
#include "geometry/size_class.hpp"
#include "matching/bbox_matcher.hpp"
#include "vision/optical_flow.hpp"

namespace mvs::track {

struct Track {
  long id = -1;                 ///< per-camera track identity
  std::uint64_t global_id = 0;  ///< cross-camera object id (set by scheduler)
  geom::BBox box;               ///< current best box estimate
  geom::SizeClassId size_class = 0;  ///< fixed within a scheduling horizon
  int age = 0;                  ///< frames since creation
  int missed = 0;               ///< consecutive frames without a match
  std::uint64_t last_truth_id = detect::Detection::kFalsePositive;
  // Constant-velocity bookkeeping for the velocity-fallback coast (see
  // FlowTracker::predict). Block-median optical flow cannot see an object
  // smaller than a flow block (the static background dominates its block),
  // so the detection-corrected position history supplies a velocity
  // estimate instead. Written unconditionally; READ only when predict() is
  // called with use_velocity=true, so the default flow-only path stays
  // bit-identical.
  geom::Vec2 velocity{0.0, 0.0};          ///< logical px per frame
  geom::Vec2 corrected_center{0.0, 0.0};  ///< center at last detection match
  int frames_since_correct = 0;           ///< predict() calls since a match
  bool has_velocity = false;              ///< velocity has been observed
};

class FlowTracker {
 public:
  struct Config {
    double match_min_iou = 0.15;
    int max_missed = 2;  ///< drop a track after this many missed frames
  };

  FlowTracker() = default;
  FlowTracker(Config cfg, geom::SizeClassSet sizes)
      : cfg_(cfg), sizes_(std::move(sizes)) {}

  const std::vector<Track>& tracks() const { return tracks_; }
  std::vector<Track>& tracks() { return tracks_; }
  bool has_track(long id) const;
  const Track* find(long id) const;

  /// Replace all tracks from a key-frame detection list (full inspection).
  void reset_from_detections(const std::vector<detect::Detection>& dets);

  /// Shift every track box by the median flow inside it. `scale` maps
  /// logical-frame pixels to flow-field pixels (flow is computed on a
  /// downscaled render; see vision::Renderer). With `use_velocity`, a track
  /// whose measured flow is below the sub-block noise floor coasts on its
  /// detection-derived constant-velocity estimate instead — block flow is
  /// blind to objects smaller than a flow block, and without the fallback
  /// their coasted ROI parts from the object within a few frames (the
  /// detect-or-track policy layer enables this; the fixed pipeline never
  /// does, preserving bit-identity).
  void predict(const vision::FlowField& flow, double scale,
               bool use_velocity = false);

  struct UpdateResult {
    std::vector<long> matched_track_ids;
    std::vector<std::size_t> unmatched_detections;  ///< indices into `dets`
    std::vector<long> removed_track_ids;            ///< dropped as lost
  };

  /// Associate detections with predicted tracks; matched tracks adopt the
  /// detection box (with size-class downsizing per the paper), unmatched
  /// tracks accrue a miss and are dropped past the limit. Unmatched
  /// detections are reported, NOT auto-added: whether to start tracking them
  /// is a scheduling decision (distributed BALB stage).
  ///
  /// `miss_scope`, when non-null, lists the track ids whose ROIs were
  /// actually inspected this frame: only those can accrue a miss (and be
  /// dropped). The detect-or-track policy layer inspects per-track subsets
  /// on its detect frames; a track whose slice was skipped saw no detector
  /// and must not be punished for the absent evidence. All tracks still
  /// participate in matching — a detection from a neighboring ROI that
  /// lands on a skipped track corrects it for free.
  UpdateResult update(const std::vector<detect::Detection>& dets,
                      const std::vector<long>* miss_scope = nullptr);

  /// update() with a caller-owned result object. Bit-identical outcome; the
  /// result's vectors and the tracker's internal matching scratch keep their
  /// capacity, so a warmed-up per-frame update allocates nothing
  /// (DESIGN.md §11).
  void update_into(const std::vector<detect::Detection>& dets,
                   const std::vector<long>* miss_scope, UpdateResult& out);

  /// Start tracking a detection; returns the new track id.
  long add_track(const detect::Detection& det);

  void remove_track(long id);

  /// (track id, predicted box) pairs for ROI slicing.
  std::vector<std::pair<long, geom::BBox>> predicted_boxes() const;

  /// predicted_boxes() into a caller-owned vector (cleared first).
  void predicted_boxes_into(
      std::vector<std::pair<long, geom::BBox>>& out) const;

  /// predicted_boxes() with each box grown by `slack_px` per frame since its
  /// last detection correction: the coast-uncertainty search region. A box
  /// uncorrected for k frames may be off by ~k x the per-frame coast error;
  /// without the slack the inspection crop can part from the object entirely
  /// and ROI detection ratchets into a miss it cannot recover from (the
  /// detect-or-track policy layer uses this; fixed ROI slicing does not).
  std::vector<std::pair<long, geom::BBox>> search_boxes(double slack_px) const;

  const geom::SizeClassSet& sizes() const { return sizes_; }

 private:
  Config cfg_{};
  geom::SizeClassSet sizes_{};
  std::vector<Track> tracks_;
  long next_id_ = 0;
  // update_into working memory, reused across frames (DESIGN.md §11).
  std::vector<geom::BBox> track_boxes_scratch_, det_boxes_scratch_;
  std::vector<char> matched_scratch_;
  std::vector<Track> survivors_scratch_;
  matching::BoxMatchResult match_scratch_;
  matching::BoxMatchScratch match_work_;
};

}  // namespace mvs::track

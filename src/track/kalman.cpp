#include "track/kalman.hpp"

#include <algorithm>
#include <cmath>

namespace mvs::track {

namespace {

std::array<double, 4> box_to_z(const geom::BBox& b) {
  const geom::Vec2 c = b.center();
  const double area = std::max(1.0, b.area());
  const double aspect = b.h > 0 ? b.w / b.h : 1.0;
  return {c.x, c.y, area, aspect};
}

geom::BBox z_to_box(double cx, double cy, double area, double aspect) {
  area = std::max(1.0, area);
  aspect = std::max(0.05, aspect);
  const double w = std::sqrt(area * aspect);
  const double h = area / w;
  return geom::BBox::from_center({cx, cy}, w, h);
}

}  // namespace

KalmanBoxFilter::KalmanBoxFilter(const geom::BBox& initial) {
  const auto z = box_to_z(initial);
  x_ = {z[0], z[1], z[2], z[3], 0.0, 0.0, 0.0};
  for (auto& row : p_) row.fill(0.0);
  // Position/shape start fairly certain, velocities uncertain (SORT choice).
  p_[0][0] = p_[1][1] = 10.0;
  p_[2][2] = 100.0;
  p_[3][3] = 1.0;
  p_[4][4] = p_[5][5] = 1000.0;
  p_[6][6] = 1000.0;
}

geom::BBox KalmanBoxFilter::predict() {
  // x' = F x with F adding velocity to position/area.
  x_[0] += x_[4];
  x_[1] += x_[5];
  x_[2] = std::max(1.0, x_[2] + x_[6]);

  // P' = F P F^T + Q, exploiting F's sparsity (identity + shift block).
  // Rows/cols: i in {0,1,2} couple with i+4.
  for (int i = 0; i < 3; ++i) {
    const int v = i + 4;
    for (int j = 0; j < kDim; ++j) p_[i][j] += p_[v][j];
    for (int j = 0; j < kDim; ++j) p_[j][i] += p_[j][v];
  }
  const double q_pos = 1.0, q_vel = 0.25;
  for (int i = 0; i < 4; ++i) p_[i][i] += q_pos;
  for (int i = 4; i < kDim; ++i) p_[i][i] += q_vel;
  return state_box();
}

void KalmanBoxFilter::update(const geom::BBox& measurement) {
  const auto z = box_to_z(measurement);
  const double r_diag[kMeas] = {4.0, 4.0, 25.0, 0.05};

  // Measurement model H picks the first four state entries, so the update
  // decomposes per measured coordinate with cross-covariance columns.
  for (int m = 0; m < kMeas; ++m) {
    const double s = p_[m][m] + r_diag[m];
    if (s <= 1e-12) continue;
    const double innov = z[static_cast<std::size_t>(m)] - x_[static_cast<std::size_t>(m)];
    std::array<double, kDim> k{};
    for (int i = 0; i < kDim; ++i) k[static_cast<std::size_t>(i)] = p_[i][m] / s;
    for (int i = 0; i < kDim; ++i) x_[static_cast<std::size_t>(i)] += k[static_cast<std::size_t>(i)] * innov;
    // P = (I - K H_m) P for the scalar measurement row.
    std::array<double, kDim> row{};
    for (int j = 0; j < kDim; ++j) row[static_cast<std::size_t>(j)] = p_[m][j];
    for (int i = 0; i < kDim; ++i)
      for (int j = 0; j < kDim; ++j)
        p_[i][j] -= k[static_cast<std::size_t>(i)] * row[static_cast<std::size_t>(j)];
  }
  x_[2] = std::max(1.0, x_[2]);
  x_[3] = std::max(0.05, x_[3]);
}

geom::BBox KalmanBoxFilter::state_box() const {
  return z_to_box(x_[0], x_[1], x_[2], x_[3]);
}

}  // namespace mvs::track

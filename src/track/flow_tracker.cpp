#include "track/flow_tracker.hpp"

#include <algorithm>

namespace mvs::track {

bool FlowTracker::has_track(long id) const { return find(id) != nullptr; }

const Track* FlowTracker::find(long id) const {
  for (const Track& t : tracks_)
    if (t.id == id) return &t;
  return nullptr;
}

void FlowTracker::reset_from_detections(
    const std::vector<detect::Detection>& dets) {
  tracks_.clear();
  for (const detect::Detection& det : dets) add_track(det);
}

void FlowTracker::predict(const vision::FlowField& flow, double scale) {
  for (Track& t : tracks_) {
    const geom::BBox flow_box{t.box.x / scale, t.box.y / scale,
                              t.box.w / scale, t.box.h / scale};
    const geom::Vec2 motion = vision::median_flow_in(flow, flow_box);
    t.box = t.box.shifted({motion.x * scale, motion.y * scale});
    ++t.age;
  }
}

FlowTracker::UpdateResult FlowTracker::update(
    const std::vector<detect::Detection>& dets) {
  UpdateResult result;

  std::vector<geom::BBox> track_boxes;
  track_boxes.reserve(tracks_.size());
  for (const Track& t : tracks_) track_boxes.push_back(t.box);
  std::vector<geom::BBox> det_boxes;
  det_boxes.reserve(dets.size());
  for (const detect::Detection& d : dets) det_boxes.push_back(d.box);

  const matching::BoxMatchResult match =
      matching::match_boxes(track_boxes, det_boxes, cfg_.match_min_iou);

  std::vector<char> track_matched(tracks_.size(), 0);
  for (const matching::BoxMatch& m : match.matches) {
    Track& t = tracks_[static_cast<std::size_t>(m.a)];
    const detect::Detection& d = dets[static_cast<std::size_t>(m.b)];
    t.box = d.box;
    t.missed = 0;
    t.last_truth_id = d.truth_id;
    // Size class is fixed within a horizon; if the object outgrew its class
    // the paper keeps the class and downsizes the crop, so no upgrade here.
    track_matched[static_cast<std::size_t>(m.a)] = 1;
    result.matched_track_ids.push_back(t.id);
  }
  for (int b : match.unmatched_b)
    result.unmatched_detections.push_back(static_cast<std::size_t>(b));

  std::vector<Track> survivors;
  survivors.reserve(tracks_.size());
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    Track& t = tracks_[i];
    if (!track_matched[i]) ++t.missed;
    if (t.missed > cfg_.max_missed) {
      result.removed_track_ids.push_back(t.id);
    } else {
      survivors.push_back(t);
    }
  }
  tracks_ = std::move(survivors);
  return result;
}

long FlowTracker::add_track(const detect::Detection& det) {
  Track t;
  t.id = next_id_++;
  t.box = det.box;
  t.size_class = sizes_.quantize(det.box);
  t.last_truth_id = det.truth_id;
  tracks_.push_back(t);
  return t.id;
}

void FlowTracker::remove_track(long id) {
  tracks_.erase(std::remove_if(tracks_.begin(), tracks_.end(),
                               [id](const Track& t) { return t.id == id; }),
                tracks_.end());
}

std::vector<std::pair<long, geom::BBox>> FlowTracker::predicted_boxes() const {
  std::vector<std::pair<long, geom::BBox>> out;
  out.reserve(tracks_.size());
  for (const Track& t : tracks_) out.emplace_back(t.id, t.box);
  return out;
}

}  // namespace mvs::track

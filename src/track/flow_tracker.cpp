#include "track/flow_tracker.hpp"

#include <algorithm>
#include <cmath>

namespace mvs::track {

bool FlowTracker::has_track(long id) const { return find(id) != nullptr; }

const Track* FlowTracker::find(long id) const {
  for (const Track& t : tracks_)
    if (t.id == id) return &t;
  return nullptr;
}

void FlowTracker::reset_from_detections(
    const std::vector<detect::Detection>& dets) {
  tracks_.clear();
  for (const detect::Detection& det : dets) add_track(det);
}

void FlowTracker::predict(const vision::FlowField& flow, double scale,
                          bool use_velocity) {
  // A box smaller than ~a flow block sees mostly background in its median
  // (flow reads near zero); one spanning a block or two reads a diluted
  // fraction of its true motion. Whenever the measured flow step falls well
  // short of the detection-derived velocity, trust the velocity — the EMA
  // self-corrects within a couple of matches if the object really slowed.
  constexpr double kFlowTrustFrac = 0.6;
  for (Track& t : tracks_) {
    const geom::BBox flow_box{t.box.x / scale, t.box.y / scale,
                              t.box.w / scale, t.box.h / scale};
    const geom::Vec2 motion = vision::median_flow_in(flow, flow_box);
    geom::Vec2 step{motion.x * scale, motion.y * scale};
    if (use_velocity && t.has_velocity &&
        std::hypot(step.x, step.y) <
            kFlowTrustFrac * std::hypot(t.velocity.x, t.velocity.y)) {
      step = t.velocity;
    }
    t.box = t.box.shifted(step);
    ++t.age;
    ++t.frames_since_correct;
  }
}

FlowTracker::UpdateResult FlowTracker::update(
    const std::vector<detect::Detection>& dets,
    const std::vector<long>* miss_scope) {
  UpdateResult result;
  update_into(dets, miss_scope, result);
  return result;
}

void FlowTracker::update_into(const std::vector<detect::Detection>& dets,
                              const std::vector<long>* miss_scope,
                              UpdateResult& result) {
  result.matched_track_ids.clear();
  result.unmatched_detections.clear();
  result.removed_track_ids.clear();

  std::vector<geom::BBox>& track_boxes = track_boxes_scratch_;
  track_boxes.clear();
  track_boxes.reserve(tracks_.size());
  for (const Track& t : tracks_) track_boxes.push_back(t.box);
  std::vector<geom::BBox>& det_boxes = det_boxes_scratch_;
  det_boxes.clear();
  det_boxes.reserve(dets.size());
  for (const detect::Detection& d : dets) det_boxes.push_back(d.box);

  matching::match_boxes_into(track_boxes, det_boxes, cfg_.match_min_iou,
                             match_work_, match_scratch_);
  const matching::BoxMatchResult& match = match_scratch_;

  matched_scratch_.assign(tracks_.size(), 0);
  std::vector<char>& track_matched = matched_scratch_;
  for (const matching::BoxMatch& m : match.matches) {
    Track& t = tracks_[static_cast<std::size_t>(m.a)];
    const detect::Detection& d = dets[static_cast<std::size_t>(m.b)];
    // Velocity observation from detection-corrected centers: mean per-frame
    // displacement since the last match, EMA-blended against detector
    // localization noise.
    const geom::Vec2 c{d.box.x + d.box.w / 2.0, d.box.y + d.box.h / 2.0};
    if (t.frames_since_correct > 0) {
      const double inv = 1.0 / static_cast<double>(t.frames_since_correct);
      const geom::Vec2 obs{(c.x - t.corrected_center.x) * inv,
                           (c.y - t.corrected_center.y) * inv};
      t.velocity = t.has_velocity
                       ? geom::Vec2{0.5 * (t.velocity.x + obs.x),
                                    0.5 * (t.velocity.y + obs.y)}
                       : obs;
      t.has_velocity = true;
    }
    t.corrected_center = c;
    t.frames_since_correct = 0;
    t.box = d.box;
    t.missed = 0;
    t.last_truth_id = d.truth_id;
    // Size class is fixed within a horizon; if the object outgrew its class
    // the paper keeps the class and downsizes the crop, so no upgrade here.
    track_matched[static_cast<std::size_t>(m.a)] = 1;
    result.matched_track_ids.push_back(t.id);
  }
  for (int b : match.unmatched_b)
    result.unmatched_detections.push_back(static_cast<std::size_t>(b));

  std::vector<Track>& survivors = survivors_scratch_;
  survivors.clear();
  survivors.reserve(tracks_.size());
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    Track& t = tracks_[i];
    const bool inspected =
        !miss_scope || std::find(miss_scope->begin(), miss_scope->end(),
                                 t.id) != miss_scope->end();
    if (!track_matched[i] && inspected) ++t.missed;
    if (t.missed > cfg_.max_missed) {
      result.removed_track_ids.push_back(t.id);
    } else {
      survivors.push_back(t);
    }
  }
  // Swap, not move: tracks_ keeps the survivor set, the old buffer becomes
  // next frame's survivors scratch.
  tracks_.swap(survivors);
}

long FlowTracker::add_track(const detect::Detection& det) {
  Track t;
  t.id = next_id_++;
  t.box = det.box;
  t.size_class = sizes_.quantize(det.box);
  t.last_truth_id = det.truth_id;
  t.corrected_center = {det.box.x + det.box.w / 2.0,
                        det.box.y + det.box.h / 2.0};
  tracks_.push_back(t);
  return t.id;
}

void FlowTracker::remove_track(long id) {
  tracks_.erase(std::remove_if(tracks_.begin(), tracks_.end(),
                               [id](const Track& t) { return t.id == id; }),
                tracks_.end());
}

std::vector<std::pair<long, geom::BBox>> FlowTracker::predicted_boxes() const {
  std::vector<std::pair<long, geom::BBox>> out;
  predicted_boxes_into(out);
  return out;
}

void FlowTracker::predicted_boxes_into(
    std::vector<std::pair<long, geom::BBox>>& out) const {
  out.clear();
  out.reserve(tracks_.size());
  for (const Track& t : tracks_) out.emplace_back(t.id, t.box);
}

std::vector<std::pair<long, geom::BBox>> FlowTracker::search_boxes(
    double slack_px) const {
  std::vector<std::pair<long, geom::BBox>> out;
  out.reserve(tracks_.size());
  for (const Track& t : tracks_)
    out.emplace_back(t.id,
                     t.box.expanded(slack_px * t.frames_since_correct));
  return out;
}

}  // namespace mvs::track

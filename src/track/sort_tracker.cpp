#include "track/sort_tracker.hpp"

#include <algorithm>

namespace mvs::track {

std::vector<SortTrack> SortTracker::step(
    const std::vector<detect::Detection>& dets) {
  // 1. Predict.
  std::vector<geom::BBox> predicted;
  predicted.reserve(entries_.size());
  for (Entry& e : entries_) {
    e.meta.box = e.filter.predict();
    ++e.meta.age;
    predicted.push_back(e.meta.box);
  }

  // 2. Associate.
  std::vector<geom::BBox> det_boxes;
  det_boxes.reserve(dets.size());
  for (const detect::Detection& d : dets) det_boxes.push_back(d.box);
  const matching::BoxMatchResult match =
      matching::match_boxes(predicted, det_boxes, cfg_.match_min_iou);

  // 3. Update matched.
  std::vector<char> matched(entries_.size(), 0);
  for (const matching::BoxMatch& m : match.matches) {
    Entry& e = entries_[static_cast<std::size_t>(m.a)];
    const detect::Detection& d = dets[static_cast<std::size_t>(m.b)];
    e.filter.update(d.box);
    e.meta.box = e.filter.state_box();
    e.meta.missed = 0;
    ++e.meta.hits;
    e.meta.last_truth_id = d.truth_id;
    matched[static_cast<std::size_t>(m.a)] = 1;
  }

  // 4. Lifecycle: age out lost tracks.
  std::vector<Entry> survivors;
  survivors.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!matched[i]) ++entries_[i].meta.missed;
    if (entries_[i].meta.missed <= cfg_.max_missed)
      survivors.push_back(std::move(entries_[i]));
  }
  entries_ = std::move(survivors);

  // 5. Births.
  for (int b : match.unmatched_b) {
    const detect::Detection& d = dets[static_cast<std::size_t>(b)];
    Entry e{SortTrack{next_id_++, d.box, 0, 0, 1, d.truth_id},
            KalmanBoxFilter(d.box)};
    entries_.push_back(std::move(e));
  }

  // Report confirmed tracks.
  std::vector<SortTrack> confirmed;
  for (const Entry& e : entries_)
    if (e.meta.hits >= cfg_.min_hits && e.meta.missed == 0)
      confirmed.push_back(e.meta);
  return confirmed;
}

}  // namespace mvs::track

#pragma once
// Opaque, migration-stable session identity (mvs::fleet).
//
// A SessionHandle names a hosted session independently of WHERE it is
// hosted: the id is a slot in the issuing fleet's handle table and the
// generation counts how many tenants have occupied that slot. Moving a
// session between shards (ShardedFleet migration) changes neither field —
// the handle a caller got from admit() keeps working across any number of
// rebalances. Releasing an evicted session recycles its slot under a
// bumped generation, so a caller holding the OLD handle gets a typed
// kStaleHandle error instead of silently addressing the slot's new tenant
// (the classic reused-id bug the raw-int API could not detect).

#include <cstdint>
#include <vector>

namespace mvs::fleet {

struct SessionHandle {
  std::uint64_t id = 0;   ///< slot in the issuing fleet's handle table
  std::uint32_t gen = 0;  ///< slot generation; 0 = never issued (invalid)

  /// Handles from admit() always carry gen >= 1.
  bool valid() const { return gen != 0; }

  friend bool operator==(const SessionHandle& a, const SessionHandle& b) {
    return a.id == b.id && a.gen == b.gen;
  }
  friend bool operator!=(const SessionHandle& a, const SessionHandle& b) {
    return !(a == b);
  }
};

/// Typed outcome of a handle-addressed lifecycle call.
enum class FleetStatus {
  kOk,
  /// The slot exists but the generation does not match: the session this
  /// handle named was released and the slot reused (or never issued).
  kStaleHandle,
  /// The id is outside the table entirely (never a valid handle).
  kUnknownSession,
  /// The handle is live but the session is in the wrong state for the
  /// operation (e.g. pausing an evicted session, releasing an active one).
  kInvalidState,
};

const char* to_string(FleetStatus status);

/// Slot table mapping live handles to an implementation payload (the
/// fleet's internal session id, or a shard directory entry). Slots are
/// allocated in admission order and recycled LIFO through a free list;
/// every reuse bumps the generation so retired handles stay detectably
/// stale forever (gen wraps after 2^32 - 1 tenants of one slot, far beyond
/// any serving horizon).
class HandleTable {
 public:
  struct Entry {
    std::uint32_t gen = 0;
    bool live = false;  ///< false once released (slot is in the free list)
    /// Payload words, owned by the embedding fleet. `a` is the internal
    /// session id (Fleet) or shard index (ShardedFleet); `b`/`c` hold the
    /// inner handle for shard directories.
    std::int64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t c = 0;
  };

  /// Allocate a slot (reusing the most recently released one first) and
  /// return its handle; the entry's payload is default-initialized.
  SessionHandle issue() {
    std::size_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = entries_.size();
      entries_.emplace_back();
    }
    Entry& e = entries_[slot];
    ++e.gen;
    e.live = true;
    e.a = 0;
    e.b = 0;
    e.c = 0;
    return {static_cast<std::uint64_t>(slot), e.gen};
  }

  /// Live entry for `h`, or nullptr with *status set to the typed error.
  Entry* find(SessionHandle h, FleetStatus* status = nullptr) {
    return const_cast<Entry*>(
        static_cast<const HandleTable*>(this)->find(h, status));
  }
  const Entry* find(SessionHandle h, FleetStatus* status = nullptr) const {
    if (h.id >= entries_.size()) {
      if (status) *status = FleetStatus::kUnknownSession;
      return nullptr;
    }
    const Entry& e = entries_[static_cast<std::size_t>(h.id)];
    if (!e.live || e.gen != h.gen) {
      if (status) *status = FleetStatus::kStaleHandle;
      return nullptr;
    }
    if (status) *status = FleetStatus::kOk;
    return &e;
  }

  /// Retire a live handle's slot into the free list; the next issue() from
  /// this slot carries gen + 1, making `h` permanently stale.
  void release(SessionHandle h) {
    Entry* e = find(h);
    if (!e) return;
    e->live = false;
    free_.push_back(static_cast<std::size_t>(h.id));
  }

  std::size_t live_count() const {
    std::size_t n = 0;
    for (const Entry& e : entries_) n += e.live;
    return n;
  }

 private:
  std::vector<Entry> entries_;
  std::vector<std::size_t> free_;
};

}  // namespace mvs::fleet

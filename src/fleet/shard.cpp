#include "fleet/shard.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

namespace mvs::fleet {

Shard::Shard(const FleetConfig& plane_cfg, int index, util::ThreadPool* pool)
    : index_(index) {
  FleetConfig cfg = plane_cfg;
  cfg.shards = 1;
  cfg.shard_index = index;
  // The plane owns placement/rebalance; a shard only serves what it hosts.
  cfg.rebalance_interval = 0;
  fleet_ = std::make_unique<Fleet>(cfg, pool);
}

const TickPlan& Shard::observe_tick() {
  const TickPlan& plan = fleet_->last_plan();
  window_busy_ms_ += plan.shared_busy_ms;
  return plan;
}

namespace {

/// Exact busy of `count` tasks greedily packed into maximally-filled
/// batches on `dev` (the arbiter's fill discipline): full batches at the
/// limit plus one remainder batch, each priced by the fill model, plus one
/// dispatch overhead per batch.
double greedy_busy_ms(const gpu::DeviceProfile& dev, geom::SizeClassId sc,
                      int count, double overhead_ms, long* batches) {
  const int limit = std::max(1, dev.batch_limit(sc));
  const int full = count / limit;
  const int rest = count % limit;
  const long n = full + (rest > 0 ? 1 : 0);
  *batches += n;
  double busy = static_cast<double>(full) * dev.actual_batch_latency_ms(sc, limit);
  if (rest > 0) busy += dev.actual_batch_latency_ms(sc, rest);
  return busy + static_cast<double>(n) * overhead_ms;
}

}  // namespace

CrossMergeStats cross_shard_merge(const std::vector<const TickPlan*>& plans,
                                  double dispatch_overhead_ms) {
  // Fold executed counts per (device class, size class). Cells carry
  // non-owning profile pointers; profiles sharing a name are identical
  // (same factory), so keeping the first seen per class is sound.
  std::map<std::pair<std::string, geom::SizeClassId>,
           std::pair<const gpu::DeviceProfile*, std::vector<int>>>
      cells;
  for (std::size_t shard = 0; shard < plans.size(); ++shard) {
    if (!plans[shard]) continue;
    for (const MergeCell& cell : plans[shard]->cells) {
      auto& slot = cells[{cell.device->name(), cell.size_class}];
      slot.first = cell.device;
      slot.second.push_back(cell.count);
    }
  }

  CrossMergeStats stats;
  for (const auto& [key, slot] : cells) {
    const gpu::DeviceProfile& dev = *slot.first;
    const geom::SizeClassId sc = key.second;
    long local_batches = 0, merged_batches = 0;
    double local_busy = 0.0;
    int total = 0;
    for (int count : slot.second) {
      local_busy +=
          greedy_busy_ms(dev, sc, count, dispatch_overhead_ms, &local_batches);
      total += count;
    }
    const double merged_busy =
        greedy_busy_ms(dev, sc, total, dispatch_overhead_ms, &merged_batches);
    stats.batches_saved += local_batches - merged_batches;
    stats.busy_saved_ms += local_busy - merged_busy;
  }
  return stats;
}

}  // namespace mvs::fleet

#pragma once
// SLO burn-rate monitoring (DESIGN.md §14).
//
// Multi-window, multi-burn-rate alerting in the Google-SRE style: a fast
// window catches an acute burn quickly, a slow window confirms it is not a
// blip, and a lower clear threshold adds hysteresis so a rate hovering at
// the alert boundary does not flap. "Burn rate" is the observed bad-event
// ratio divided by the error budget: burn 1.0 consumes the budget exactly;
// burn 2.0 exhausts it in half the window.
//
// Everything here is header-only, fixed-size (no heap) and single-writer:
// one monitor belongs to one session or one shard and is pushed from that
// owner's step path only. Readers of the counters race benignly.

#include <algorithm>
#include <array>
#include <cstdint>

namespace mvs::fleet {

/// Ring of the last `size` good/bad outcomes with an O(1) running bad count.
class BurnWindow {
 public:
  static constexpr int kMaxWindow = 256;

  void configure(int size) {
    size_ = std::clamp(size, 1, kMaxWindow);
    reset();
  }

  void push(bool bad) {
    const int idx = static_cast<int>(head_ % size_);
    bad_ += static_cast<int>(bad) - static_cast<int>(ring_[static_cast<std::size_t>(idx)]);
    ring_[static_cast<std::size_t>(idx)] = bad ? 1 : 0;
    ++head_;
  }

  bool full() const { return head_ >= size_; }
  int size() const { return size_; }
  int bad() const { return bad_; }
  /// Bad-event ratio over the filled portion of the window; 0 when empty.
  double ratio() const {
    const long long n = std::min<long long>(head_, size_);
    return n == 0 ? 0.0 : static_cast<double>(bad_) / static_cast<double>(n);
  }

  void reset() {
    ring_.fill(0);
    head_ = 0;
    bad_ = 0;
  }

 private:
  std::array<std::uint8_t, kMaxWindow> ring_{};
  long long head_ = 0;
  int size_ = 1;
  int bad_ = 0;
};

struct BurnConfig {
  /// Tolerated bad-event ratio (the SLO error budget). 0 disables the
  /// monitor entirely: push() never raises.
  double error_budget = 0.0;
  int fast_window = 16;   ///< ticks; catches acute burns
  int slow_window = 64;   ///< ticks; confirms sustained burns
  double raise_mult = 2.0;  ///< raise when both burns >= this multiple
  double clear_mult = 1.0;  ///< clear when the fast burn < this multiple

  bool enabled() const { return error_budget > 0.0; }
};

/// Hysteretic two-window burn-rate monitor. push() returns +1 on the raise
/// edge, -1 on the clear edge, 0 otherwise.
class BurnMonitor {
 public:
  BurnMonitor() { configure(BurnConfig{}); }
  explicit BurnMonitor(const BurnConfig& config) { configure(config); }

  void configure(const BurnConfig& config) {
    cfg_ = config;
    fast_.configure(cfg_.fast_window);
    slow_.configure(cfg_.slow_window);
    alerting_ = false;
  }

  const BurnConfig& config() const { return cfg_; }

  int push(bool bad) {
    fast_.push(bad);
    slow_.push(bad);
    if (!cfg_.enabled()) return 0;
    if (!alerting_) {
      // Raise needs the fast window filled (no alert off a single first
      // sample) and both windows burning: fast for speed, slow to confirm.
      if (fast_.full() && fast_burn() >= cfg_.raise_mult &&
          slow_burn() >= cfg_.raise_mult) {
        alerting_ = true;
        return +1;
      }
    } else if (fast_burn() < cfg_.clear_mult) {
      alerting_ = false;
      return -1;
    }
    return 0;
  }

  bool alerting() const { return alerting_; }
  double fast_burn() const { return burn(fast_.ratio()); }
  double slow_burn() const { return burn(slow_.ratio()); }

  void reset() {
    fast_.reset();
    slow_.reset();
    alerting_ = false;
  }

 private:
  double burn(double ratio) const {
    return cfg_.error_budget > 0.0 ? ratio / cfg_.error_budget : 0.0;
  }

  BurnConfig cfg_;
  BurnWindow fast_;
  BurnWindow slow_;
  bool alerting_ = false;
};

}  // namespace mvs::fleet

#pragma once
// One shard of the sharded serving plane (mvs::fleet).
//
// A Shard is a Fleet pinned to a shard index and run on the plane's shared
// util::ThreadPool, plus the windowed busy accounting the plane's
// rebalance scan reads (mirroring Fleet's own readmit window). The shard
// keeps its OWN GpuArbiter and tick wheel — shards never contend on
// planning state, which is what lets the plane step them concurrently.
//
// This header also hosts the second merge level's pricing function:
// cross_shard_merge folds every shard's executed merge cells per (device
// class, size class) and prices — under the arbiter's exact greedy fill
// model — the batches and busy time a plane-wide merge would save over the
// per-shard merges. With one shard the fold is the identity and the saving
// is exactly zero (the shard-of-one bit-identity).

#include <memory>
#include <vector>

#include "fleet/fleet.hpp"

namespace mvs::fleet {

class Shard {
 public:
  /// Embed a Fleet as shard `index` of a plane configured by `plane_cfg`
  /// (the shard copy runs single-shard with shard_index = index, so its obs
  /// metrics land under "fleet.shard.<index>."). `pool` must outlive the
  /// shard.
  Shard(const FleetConfig& plane_cfg, int index, util::ThreadPool* pool);

  Fleet& fleet() { return *fleet_; }
  const Fleet& fleet() const { return *fleet_; }
  int index() const { return index_; }

  /// Accumulate the rebalance window from the tick the shard just stepped
  /// and return its merged plan for the cross-shard merge level.
  const TickPlan& observe_tick();

  /// Σ shared busy over the ticks since the last reset (the rebalance
  /// scan's load signal).
  double window_busy_ms() const { return window_busy_ms_; }
  void reset_window() { window_busy_ms_ = 0.0; }

 private:
  int index_;
  std::unique_ptr<Fleet> fleet_;
  double window_busy_ms_ = 0.0;
};

/// What a plane-wide (second-level) merge would save this tick over the
/// per-shard merges, priced from the shards' executed merge cells.
struct CrossMergeStats {
  long batches_saved = 0;
  double busy_saved_ms = 0.0;
};

/// Fold the shards' per-tick merge cells per (device class, size class)
/// and price the hypothetical cross-shard merge: for each class the saved
/// batches are Σ ceil(n_i / B) - ceil(Σ n_i / B), and the saved busy is the
/// exact greedy-fill busy difference (actual_batch_latency_ms, maximally
/// filled batches) plus one dispatch overhead per saved batch. Zero when
/// `plans` has a single entry, by construction.
CrossMergeStats cross_shard_merge(const std::vector<const TickPlan*>& plans,
                                  double dispatch_overhead_ms);

}  // namespace mvs::fleet

#pragma once
// Sharded serving plane (mvs::fleet) — the 1k-10k-session FleetApi.
//
// A ShardedFleet hosts sessions across N Shards, each with its own
// GpuArbiter and tick wheel, all stepping concurrently on ONE shared
// util::ThreadPool. The plane adds exactly four things on top of the
// shards (DESIGN.md §13):
//
//   Placement — admit() picks the least-loaded shard by static placement
//   demand (Σ admission-time demand of hosted sessions, maintained
//   incrementally, so placement is O(shards)); with shard_capacity set the
//   per-shard headroom check is O(1). Ties go to the lowest shard index,
//   so placement is deterministic and thread-count independent.
//
//   Directory — callers hold plane-level SessionHandles; a handle table
//   maps each to (shard, inner handle). Live migration retires the inner
//   handle and re-issues one on the target shard while the OUTER handle is
//   untouched: caller identity is migration-stable by construction.
//
//   Two-level merge — each shard merges its own sessions' work per tick
//   (first level); the plane then folds every shard's executed merge cells
//   per device class (second level) and accounts the batches/busy a
//   plane-wide merge would additionally save (FleetSnapshot::
//   cross_batches_saved / cross_busy_saved_ms). With one shard the saving
//   is exactly zero — ShardedFleet{shards=1} is bit-identical to Fleet.
//
//   Rebalance — every rebalance_interval ticks the plane compares windowed
//   per-shard busy; when the hottest shard exceeds rebalance_high_water x
//   the mean it migrates ONE session (the hottest shard's
//   smallest-demand active session, the cheapest move) to the coldest
//   shard, and only when the move strictly improves the imbalance. One
//   move per scan + the high-water band = the same hysteresis discipline
//   as Fleet::readmit_scan. Migration reuses the session-record handover
//   (Fleet::detach/attach): stats, carryover debt, and the synthetic /
//   pipeline state travel whole, so per-session frame counts and
//   attributed busy are conserved exactly across any number of moves.
//
// Wheel discipline: every admit() first grows ALL shards' wheels to the
// session's rate, so the shards' wheels stay equal forever and a migrated
// session's period/phase mean the same thing on the target shard
// (cadence-exact migration).

#include <memory>
#include <string>
#include <vector>

#include "fleet/shard.hpp"
#include "util/stats.hpp"

namespace mvs::fleet {

class ShardedFleet : public FleetApi {
 public:
  /// config.shards >= 1 (a one-shard plane is legal — and bit-identical to
  /// a plain Fleet, the guard tests pin it — but make_fleet builds the
  /// cheaper Fleet for that case). The plane owns the shared pool;
  /// config.threads sizes it.
  explicit ShardedFleet(const FleetConfig& config);
  ~ShardedFleet() override;

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  AdmitResult admit(const SessionSpec& spec) override;
  FleetStatus pause(SessionHandle handle) override;
  FleetStatus resume(SessionHandle handle) override;
  FleetStatus evict(SessionHandle handle) override;
  FleetStatus release(SessionHandle handle) override;
  SessionState state(SessionHandle handle) const override;
  runtime::PipelineResult result(SessionHandle handle,
                                 FleetStatus* status = nullptr) const override;
  int scale_devices(const std::string& device_class, int delta) override;

  /// Step every shard one tick (concurrently on the shared pool), fold the
  /// cross-shard merge level, and run the rebalance scan when due.
  void step() override;

  long ticks() const override;
  int wheel_hz() const override;
  std::size_t session_count() const override;
  FleetSnapshot snapshot() const override;
  void attach_trace(runtime::TraceRecorder* trace) override;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  long migrations() const { return migrations_; }

  /// Force one migration now (test/ops hook): move `handle`'s session to
  /// `target_shard` regardless of load, via the same detach/attach path
  /// the rebalance scan uses. kInvalidState when the session is evicted or
  /// already on the target.
  FleetStatus migrate(SessionHandle handle, int target_shard);

 private:
  struct Route {
    Shard* shard = nullptr;
    SessionHandle inner;
  };
  /// Resolve an outer handle to its hosting shard + inner handle.
  Route resolve(SessionHandle handle, FleetStatus* status) const;
  /// Move the session behind directory entry `outer` from its shard to
  /// `target` (both resolved); shared tail of migrate() and the scan.
  FleetStatus move_session(SessionHandle outer, int target_shard);
  void rebalance_scan();
  void record(runtime::TraceEventType type, int session_id, double value,
              int shard = -1, int migrated_from = -1);

  FleetConfig cfg_;
  util::ThreadPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Outer handle directory: payload a = shard index, b/c = inner handle.
  HandleTable handles_;
  /// Per shard: inner handle slot id -> outer handle (snapshot rewriting
  /// and reverse lookup during rebalance).
  std::vector<std::vector<SessionHandle>> inner_to_outer_;
  runtime::TraceRecorder* trace_ = nullptr;

  long ticks_ = 0;  ///< plane steps (shard tick counters rescale on growth)
  int base_fps_ = 10;
  int rejected_ = 0;  ///< capacity rejections (shards count their own)
  long migrations_ = 0;
  long cross_batches_saved_ = 0;
  double cross_busy_saved_ms_ = 0.0;
  int rebalance_ticks_ = 0;
  util::SampleSet tick_busy_ms_;  ///< Σ shard busy per plane tick

  /// step() scratch (plan pointers for the cross-shard fold).
  std::vector<const TickPlan*> plan_scratch_;
};

}  // namespace mvs::fleet

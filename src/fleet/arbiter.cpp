#include "fleet/arbiter.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/obs.hpp"

namespace mvs::fleet {

/// Planning working memory reused across ticks. Groups persist (sorted by
/// device-class name, so iteration order matches the std::map the original
/// implementation used); per-tick state inside each group is reset in place.
/// Nothing here carries observable state between plan_tick_into calls.
struct PlanScratch {
  /// All submissions targeting one device class, with per-submission and
  /// merged size-class counts.
  struct ClassGroup {
    std::string name;                            ///< device class (sort key)
    const gpu::DeviceProfile* device = nullptr;  ///< reset every tick
    std::vector<std::size_t> members;            ///< indices into subs
    std::vector<std::vector<int>> counts;        ///< per member, per class
    std::vector<int> total;                      ///< merged, per class
  };

  /// One planning + device-pool scheduling pass over a class group.
  struct ClassOutcome {
    gpu::BatchPlan merged;
    std::vector<double> attributed;  ///< per member: batch shares + full frame
    std::vector<double> serial;      ///< per member: own units back-to-back
    std::vector<double> finish;      ///< per member: last unit's completion
    std::vector<double> free_at;     ///< per device: earliest idle time
  };

  std::vector<ClassGroup> groups;  ///< sorted by name; grows, never shrinks
  ClassOutcome outcome;
  gpu::BatchPlan isolated;  ///< per-member dedicated-device plan
  // Cold-path (batch split) buffers: shed order and post-shed counts.
  std::vector<std::size_t> order;
  std::vector<std::vector<int>> split_counts;
  std::vector<int> split_total;
};

GpuArbiter::GpuArbiter() = default;
GpuArbiter::~GpuArbiter() = default;

void GpuArbiter::begin_tick() { active_ = 0; }

void GpuArbiter::submit(int session, int camera,
                        const gpu::DeviceProfile& device,
                        const runtime::CameraGpuWork& work, double weight) {
  // Reuse the slot (and its task buffer's capacity) from a previous tick.
  if (active_ == subs_.size()) subs_.emplace_back();
  Submission& sub = subs_[active_++];
  sub.session = session;
  sub.camera = camera;
  sub.weight = weight;
  sub.full_frame = work.full_frame;
  sub.tasks.assign(work.tasks.begin(), work.tasks.end());
  sub.device = &device;
}

void GpuArbiter::set_device_count(const std::string& device_class, int count) {
  device_counts_[device_class] = std::max(1, count);
}

int GpuArbiter::device_count(const std::string& device_class) const {
  const auto it = device_counts_.find(device_class);
  return it == device_counts_.end() ? 1 : it->second;
}

namespace {

/// Plan the merged counts and list-schedule the batches (plan order, then
/// full frames in member order) onto `devices` earliest-free-first. Each
/// dispatch costs `overhead_ms` extra (charged into the batch) and passes
/// through a single per-class dispatcher that cannot issue two batches
/// closer together than the overhead — wide pools go sublinear. With a
/// single member on one device (and any overhead) every accumulation
/// happens in exactly the order gpu::plan_batch_counts uses, so
/// attributed == serial == finish bit-for-bit — the fleet-of-one identity:
/// the dispatcher frees no later than the only device does, so the max()
/// below always resolves to free_at[d].
///
/// `counts` may be longer than g.members (persistent scratch); only the
/// first g.members.size() entries are read.
void run_class(const std::vector<Submission>& subs,
               const PlanScratch::ClassGroup& g,
               const std::vector<std::vector<int>>& counts,
               const std::vector<int>& total, int devices, double overhead_ms,
               PlanScratch::ClassOutcome& out) {
  gpu::plan_batch_counts_into(total, *g.device, out.merged);
  const std::size_t n = g.members.size();
  out.attributed.assign(n, 0.0);
  out.serial.assign(n, 0.0);
  out.finish.assign(n, 0.0);

  std::vector<double>& free_at = out.free_at;
  free_at.assign(static_cast<std::size_t>(std::max(1, devices)), 0.0);
  double dispatcher_free = 0.0;
  const auto earliest = [&free_at]() {
    std::size_t best = 0;
    for (std::size_t d = 1; d < free_at.size(); ++d)
      if (free_at[d] < free_at[best]) best = d;
    return best;
  };

  for (const gpu::Batch& b : out.merged.batches) {
    const auto s = static_cast<std::size_t>(b.size_class);
    const double cost =
        overhead_ms + g.device->actual_batch_latency_ms(b.size_class, b.count);
    const std::size_t d = earliest();
    const double issue = std::max(free_at[d], dispatcher_free);
    dispatcher_free = issue + overhead_ms;
    const double end = issue + cost;
    free_at[d] = end;
    for (std::size_t mi = 0; mi < n; ++mi) {
      if (counts[mi][s] == 0) continue;
      const double share =
          static_cast<double>(counts[mi][s]) / static_cast<double>(total[s]);
      out.attributed[mi] += share * cost;
      out.serial[mi] += cost;
      out.finish[mi] = std::max(out.finish[mi], end);
    }
  }
  for (std::size_t mi = 0; mi < n; ++mi) {
    if (!subs[g.members[mi]].full_frame) continue;
    const double full = overhead_ms + g.device->full_frame_ms();
    const std::size_t d = earliest();
    const double issue = std::max(free_at[d], dispatcher_free);
    dispatcher_free = issue + overhead_ms;
    const double end = issue + full;
    free_at[d] = end;
    out.attributed[mi] += full;
    out.serial[mi] += full;
    out.finish[mi] = std::max(out.finish[mi], end);
  }
}

}  // namespace

TickPlan GpuArbiter::plan_tick(const TickContext& ctx) const {
  TickPlan plan;
  plan_tick_into(ctx, plan);
  return plan;
}

void GpuArbiter::plan_tick_into(const TickContext& ctx, TickPlan& plan) const {
  if (!scratch_) scratch_ = std::make_unique<PlanScratch>();
  PlanScratch& s = *scratch_;

  plan.shares.resize(active_);
  plan.cells.clear();
  plan.shared_batches = 0;
  plan.isolated_batches = 0;
  plan.shared_busy_ms = 0.0;
  plan.isolated_busy_ms = 0.0;
  plan.queue_ms_total = 0.0;
  plan.splits = 0;
  plan.deferred.clear();

  // Group by device class. The group list stays sorted by name so the
  // per-class iteration below is deterministic (lexicographic, exactly like
  // the std::map this scratch replaces); a never-before-seen class name
  // inserts once (cold), after which grouping reuses the slot forever.
  for (PlanScratch::ClassGroup& g : s.groups) {
    g.members.clear();
    g.device = nullptr;
  }
  for (std::size_t k = 0; k < active_; ++k) {
    const Submission& sub = subs_[k];
    plan.shares[k].session = sub.session;
    plan.shares[k].camera = sub.camera;
    const std::string& name = sub.device->name();
    std::size_t gi = 0;
    while (gi < s.groups.size() && s.groups[gi].name < name) ++gi;
    if (gi == s.groups.size() || s.groups[gi].name != name) {
      s.groups.emplace(s.groups.begin() + static_cast<std::ptrdiff_t>(gi));
      s.groups[gi].name = name;
    }
    PlanScratch::ClassGroup& g = s.groups[gi];
    if (!g.device) {
      g.device = sub.device;
      g.total.assign(sub.device->size_class_count(), 0);
    }
    g.members.push_back(k);
    if (g.counts.size() < g.members.size()) g.counts.emplace_back();
    std::vector<int>& counts = g.counts[g.members.size() - 1];
    counts.assign(g.device->size_class_count(), 0);
    for (geom::SizeClassId sc : sub.tasks) {
      assert(sc >= 0 && static_cast<std::size_t>(sc) < counts.size());
      ++counts[static_cast<std::size_t>(sc)];
      ++g.total[static_cast<std::size_t>(sc)];
    }
  }

  const double oh = std::max(0.0, ctx.dispatch_overhead_ms);
  for (const PlanScratch::ClassGroup& g : s.groups) {
    if (g.members.empty()) continue;
    MVS_SPAN("gpu.batch_plan");
    const int devices = device_count(g.name);
    PlanScratch::ClassOutcome& out = s.outcome;
    run_class(subs_, g, g.counts, g.total, devices, oh, out);
    const std::vector<int>* executed = &g.total;

    // Preemptive split: when the schedule would make a top-weight
    // contributor miss the SLO, defer half of one over-full batch (the last
    // splittable batch in plan order) to the next tick slot, shedding from
    // the lowest-weight members first, then re-plan the class once. This
    // branch only runs under SLO pressure; it copies the class counts (the
    // isolated rollup below must keep charging the PRE-split counts).
    if (ctx.allow_split && ctx.slo_ms > 0.0 && !out.merged.batches.empty()) {
      double top_weight = 0.0;
      for (const std::size_t k : g.members)
        top_weight = std::max(top_weight, subs_[k].weight);
      bool miss = false;
      for (std::size_t mi = 0; mi < g.members.size(); ++mi) {
        const double latency =
            out.attributed[mi] +
            std::max(0.0, out.finish[mi] - out.serial[mi]);
        if (subs_[g.members[mi]].weight >= top_weight &&
            latency > ctx.slo_ms) {
          miss = true;
          break;
        }
      }
      const gpu::Batch* victim_batch = nullptr;
      for (auto it = out.merged.batches.rbegin();
           it != out.merged.batches.rend() && miss; ++it)
        if (it->count >= 2) {
          victim_batch = &*it;
          break;
        }
      if (victim_batch) {
        const geom::SizeClassId victim_class = victim_batch->size_class;
        const auto vs = static_cast<std::size_t>(victim_class);
        int remaining = victim_batch->count / 2;
        const std::size_t n = g.members.size();
        s.split_counts.resize(std::max(s.split_counts.size(), n));
        for (std::size_t mi = 0; mi < n; ++mi)
          s.split_counts[mi].assign(g.counts[mi].begin(), g.counts[mi].end());
        s.split_total.assign(g.total.begin(), g.total.end());
        // Lowest weight sheds first; ties keep submission order.
        s.order.resize(n);
        std::iota(s.order.begin(), s.order.end(), std::size_t{0});
        std::stable_sort(s.order.begin(), s.order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return subs_[g.members[a]].weight <
                                  subs_[g.members[b]].weight;
                         });
        bool deferred_any = false;
        for (const std::size_t mi : s.order) {
          if (remaining <= 0) break;
          const int take = std::min(remaining, s.split_counts[mi][vs]);
          if (take <= 0) continue;
          s.split_counts[mi][vs] -= take;
          s.split_total[vs] -= take;
          remaining -= take;
          deferred_any = true;
          plan.deferred.push_back({subs_[g.members[mi]].session,
                                   subs_[g.members[mi]].camera, victim_class,
                                   take});
        }
        if (deferred_any) {
          ++plan.splits;
          run_class(subs_, g, s.split_counts, s.split_total, devices, oh, out);
          executed = &s.split_total;
        }
      }
    }

    // Expose the class's executed (post-split) counts for the second merge
    // level; warm ticks reuse the vector's capacity (no allocation).
    for (std::size_t sc = 0; sc < executed->size(); ++sc)
      if ((*executed)[sc] > 0)
        plan.cells.push_back(
            {g.device, static_cast<geom::SizeClassId>(sc), (*executed)[sc]});

    plan.shared_batches += static_cast<long>(out.merged.batches.size());
    plan.shared_busy_ms +=
        out.merged.actual_latency_ms +
        oh * static_cast<double>(out.merged.batches.size());
    MVS_COUNT("gpu.merged_batches", out.merged.batches.size());
    MVS_HIST("gpu.merged_busy_ms", out.merged.actual_latency_ms);

    for (std::size_t mi = 0; mi < g.members.size(); ++mi) {
      const std::size_t k = g.members[mi];
      gpu::plan_batch_counts_into(g.counts[mi], *g.device, s.isolated);
      plan.isolated_batches += static_cast<long>(s.isolated.batches.size());
      plan.isolated_busy_ms +=
          s.isolated.actual_latency_ms +
          oh * static_cast<double>(s.isolated.batches.size());
      plan.shares[k].attributed_ms = out.attributed[mi];
      plan.shares[k].queue_ms =
          std::max(0.0, out.finish[mi] - out.serial[mi]);
      plan.shares[k].isolated_ms =
          s.isolated.actual_latency_ms +
          oh * static_cast<double>(s.isolated.batches.size());
      if (subs_[k].full_frame) {
        const double full = oh + g.device->full_frame_ms();
        plan.shares[k].isolated_ms += full;
        plan.shared_busy_ms += full;
        plan.isolated_busy_ms += full;
      }
      plan.queue_ms_total += plan.shares[k].queue_ms;
    }
  }
}

}  // namespace mvs::fleet

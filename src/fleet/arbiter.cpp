#include "fleet/arbiter.hpp"

#include <cassert>
#include <map>
#include <string>

namespace mvs::fleet {

void GpuArbiter::begin_tick() { subs_.clear(); }

void GpuArbiter::submit(int session, int camera,
                        const gpu::DeviceProfile& device,
                        const runtime::CameraGpuWork& work) {
  Submission sub;
  sub.session = session;
  sub.camera = camera;
  sub.full_frame = work.full_frame;
  sub.tasks = work.tasks;
  sub.device = &device;
  subs_.push_back(std::move(sub));
}

namespace {

/// All submissions targeting one device class, with per-submission and
/// merged size-class counts.
struct ClassGroup {
  const gpu::DeviceProfile* device = nullptr;
  std::vector<std::size_t> members;            ///< indices into subs
  std::vector<std::vector<int>> counts;        ///< per member, per class
  std::vector<int> total;                      ///< merged, per class
};

}  // namespace

TickPlan GpuArbiter::plan_tick() const {
  TickPlan plan;
  plan.shares.resize(subs_.size());

  // Group by device class; std::map keeps the iteration deterministic.
  std::map<std::string, ClassGroup> groups;
  for (std::size_t k = 0; k < subs_.size(); ++k) {
    const Submission& sub = subs_[k];
    plan.shares[k].session = sub.session;
    plan.shares[k].camera = sub.camera;
    ClassGroup& g = groups[sub.device->name()];
    if (!g.device) {
      g.device = sub.device;
      g.total.assign(sub.device->size_class_count(), 0);
    }
    std::vector<int> counts(g.device->size_class_count(), 0);
    for (geom::SizeClassId s : sub.tasks) {
      assert(s >= 0 && static_cast<std::size_t>(s) < counts.size());
      ++counts[static_cast<std::size_t>(s)];
      ++g.total[static_cast<std::size_t>(s)];
    }
    g.members.push_back(k);
    g.counts.push_back(std::move(counts));
  }

  for (const auto& [name, g] : groups) {
    (void)name;
    const gpu::BatchPlan merged = gpu::plan_batch_counts(g.total, *g.device);
    plan.shared_batches += static_cast<long>(merged.batches.size());
    plan.shared_busy_ms += merged.actual_latency_ms;

    // Attribute batch by batch in plan order: member m's share of a batch of
    // class s is counts[m][s] / total[s] of the batch's actual latency. With
    // a single member the factor is exactly 1.0 and the accumulation order
    // matches plan_batch_counts — bit-exact with the member's own plan.
    for (std::size_t mi = 0; mi < g.members.size(); ++mi) {
      const std::vector<int>& mine = g.counts[mi];
      double attributed = 0.0;
      for (const gpu::Batch& b : merged.batches) {
        const auto s = static_cast<std::size_t>(b.size_class);
        if (mine[s] == 0) continue;
        const double share =
            static_cast<double>(mine[s]) / static_cast<double>(g.total[s]);
        attributed +=
            share * g.device->actual_batch_latency_ms(b.size_class, b.count);
      }
      const std::size_t k = g.members[mi];
      const gpu::BatchPlan isolated =
          gpu::plan_batch_counts(mine, *g.device);
      plan.isolated_batches += static_cast<long>(isolated.batches.size());
      plan.isolated_busy_ms += isolated.actual_latency_ms;
      plan.shares[k].attributed_ms = attributed;
      plan.shares[k].isolated_ms = isolated.actual_latency_ms;
      if (subs_[k].full_frame) {
        const double full = g.device->full_frame_ms();
        plan.shares[k].attributed_ms += full;
        plan.shares[k].isolated_ms += full;
        plan.shared_busy_ms += full;
        plan.isolated_busy_ms += full;
      }
    }
  }
  return plan;
}

}  // namespace mvs::fleet

#include "fleet/arbiter.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/obs.hpp"

namespace mvs::fleet {

void GpuArbiter::begin_tick() { subs_.clear(); }

void GpuArbiter::submit(int session, int camera,
                        const gpu::DeviceProfile& device,
                        const runtime::CameraGpuWork& work, double weight) {
  Submission sub;
  sub.session = session;
  sub.camera = camera;
  sub.weight = weight;
  sub.full_frame = work.full_frame;
  sub.tasks = work.tasks;
  sub.device = &device;
  subs_.push_back(std::move(sub));
}

void GpuArbiter::set_device_count(const std::string& device_class, int count) {
  device_counts_[device_class] = std::max(1, count);
}

int GpuArbiter::device_count(const std::string& device_class) const {
  const auto it = device_counts_.find(device_class);
  return it == device_counts_.end() ? 1 : it->second;
}

namespace {

/// All submissions targeting one device class, with per-submission and
/// merged size-class counts.
struct ClassGroup {
  const gpu::DeviceProfile* device = nullptr;
  std::vector<std::size_t> members;            ///< indices into subs
  std::vector<std::vector<int>> counts;        ///< per member, per class
  std::vector<int> total;                      ///< merged, per class
};

/// One planning + device-pool scheduling pass over a class group.
struct ClassOutcome {
  gpu::BatchPlan merged;
  std::vector<double> attributed;  ///< per member: batch shares + full frame
  std::vector<double> serial;      ///< per member: own units back-to-back
  std::vector<double> finish;      ///< per member: last unit's completion
};

/// Plan the merged counts and list-schedule the batches (plan order, then
/// full frames in member order) onto `devices` earliest-free-first. Each
/// dispatch costs `overhead_ms` extra (charged into the batch) and passes
/// through a single per-class dispatcher that cannot issue two batches
/// closer together than the overhead — wide pools go sublinear. With a
/// single member on one device (and any overhead) every accumulation
/// happens in exactly the order gpu::plan_batch_counts uses, so
/// attributed == serial == finish bit-for-bit — the fleet-of-one identity:
/// the dispatcher frees no later than the only device does, so the max()
/// below always resolves to free_at[d].
ClassOutcome run_class(const std::vector<Submission>& subs,
                       const ClassGroup& g,
                       const std::vector<std::vector<int>>& counts,
                       const std::vector<int>& total, int devices,
                       double overhead_ms) {
  ClassOutcome out;
  out.merged = gpu::plan_batch_counts(total, *g.device);
  const std::size_t n = g.members.size();
  out.attributed.assign(n, 0.0);
  out.serial.assign(n, 0.0);
  out.finish.assign(n, 0.0);

  std::vector<double> free_at(static_cast<std::size_t>(std::max(1, devices)),
                              0.0);
  double dispatcher_free = 0.0;
  const auto earliest = [&free_at]() {
    std::size_t best = 0;
    for (std::size_t d = 1; d < free_at.size(); ++d)
      if (free_at[d] < free_at[best]) best = d;
    return best;
  };

  for (const gpu::Batch& b : out.merged.batches) {
    const auto s = static_cast<std::size_t>(b.size_class);
    const double cost =
        overhead_ms + g.device->actual_batch_latency_ms(b.size_class, b.count);
    const std::size_t d = earliest();
    const double issue = std::max(free_at[d], dispatcher_free);
    dispatcher_free = issue + overhead_ms;
    const double end = issue + cost;
    free_at[d] = end;
    for (std::size_t mi = 0; mi < n; ++mi) {
      if (counts[mi][s] == 0) continue;
      const double share =
          static_cast<double>(counts[mi][s]) / static_cast<double>(total[s]);
      out.attributed[mi] += share * cost;
      out.serial[mi] += cost;
      out.finish[mi] = std::max(out.finish[mi], end);
    }
  }
  for (std::size_t mi = 0; mi < n; ++mi) {
    if (!subs[g.members[mi]].full_frame) continue;
    const double full = overhead_ms + g.device->full_frame_ms();
    const std::size_t d = earliest();
    const double issue = std::max(free_at[d], dispatcher_free);
    dispatcher_free = issue + overhead_ms;
    const double end = issue + full;
    free_at[d] = end;
    out.attributed[mi] += full;
    out.serial[mi] += full;
    out.finish[mi] = std::max(out.finish[mi], end);
  }
  return out;
}

}  // namespace

TickPlan GpuArbiter::plan_tick(const TickContext& ctx) const {
  TickPlan plan;
  plan.shares.resize(subs_.size());

  // Group by device class; std::map keeps the iteration deterministic.
  std::map<std::string, ClassGroup> groups;
  for (std::size_t k = 0; k < subs_.size(); ++k) {
    const Submission& sub = subs_[k];
    plan.shares[k].session = sub.session;
    plan.shares[k].camera = sub.camera;
    ClassGroup& g = groups[sub.device->name()];
    if (!g.device) {
      g.device = sub.device;
      g.total.assign(sub.device->size_class_count(), 0);
    }
    std::vector<int> counts(g.device->size_class_count(), 0);
    for (geom::SizeClassId s : sub.tasks) {
      assert(s >= 0 && static_cast<std::size_t>(s) < counts.size());
      ++counts[static_cast<std::size_t>(s)];
      ++g.total[static_cast<std::size_t>(s)];
    }
    g.members.push_back(k);
    g.counts.push_back(std::move(counts));
  }

  const double oh = std::max(0.0, ctx.dispatch_overhead_ms);
  for (const auto& [name, g] : groups) {
    MVS_SPAN("gpu.batch_plan");
    const int devices = device_count(name);
    std::vector<std::vector<int>> counts = g.counts;
    std::vector<int> total = g.total;
    ClassOutcome out = run_class(subs_, g, counts, total, devices, oh);

    // Preemptive split: when the schedule would make a top-weight
    // contributor miss the SLO, defer half of one over-full batch (the last
    // splittable batch in plan order) to the next tick slot, shedding from
    // the lowest-weight members first, then re-plan the class once.
    if (ctx.allow_split && ctx.slo_ms > 0.0 && !out.merged.batches.empty()) {
      double top_weight = 0.0;
      for (const std::size_t k : g.members)
        top_weight = std::max(top_weight, subs_[k].weight);
      bool miss = false;
      for (std::size_t mi = 0; mi < g.members.size(); ++mi) {
        const double latency =
            out.attributed[mi] +
            std::max(0.0, out.finish[mi] - out.serial[mi]);
        if (subs_[g.members[mi]].weight >= top_weight &&
            latency > ctx.slo_ms) {
          miss = true;
          break;
        }
      }
      const gpu::Batch* victim_batch = nullptr;
      for (auto it = out.merged.batches.rbegin();
           it != out.merged.batches.rend() && miss; ++it)
        if (it->count >= 2) {
          victim_batch = &*it;
          break;
        }
      if (victim_batch) {
        const auto s = static_cast<std::size_t>(victim_batch->size_class);
        int remaining = victim_batch->count / 2;
        // Lowest weight sheds first; ties keep submission order.
        std::vector<std::size_t> order(g.members.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return subs_[g.members[a]].weight <
                                  subs_[g.members[b]].weight;
                         });
        bool deferred_any = false;
        for (const std::size_t mi : order) {
          if (remaining <= 0) break;
          const int take = std::min(remaining, counts[mi][s]);
          if (take <= 0) continue;
          counts[mi][s] -= take;
          total[s] -= take;
          remaining -= take;
          deferred_any = true;
          plan.deferred.push_back({subs_[g.members[mi]].session,
                                   subs_[g.members[mi]].camera,
                                   victim_batch->size_class, take});
        }
        if (deferred_any) {
          ++plan.splits;
          out = run_class(subs_, g, counts, total, devices, oh);
        }
      }
    }

    plan.shared_batches += static_cast<long>(out.merged.batches.size());
    plan.shared_busy_ms +=
        out.merged.actual_latency_ms +
        oh * static_cast<double>(out.merged.batches.size());
    MVS_COUNT("gpu.merged_batches", out.merged.batches.size());
    MVS_HIST("gpu.merged_busy_ms", out.merged.actual_latency_ms);

    for (std::size_t mi = 0; mi < g.members.size(); ++mi) {
      const std::size_t k = g.members[mi];
      const gpu::BatchPlan isolated =
          gpu::plan_batch_counts(g.counts[mi], *g.device);
      plan.isolated_batches += static_cast<long>(isolated.batches.size());
      plan.isolated_busy_ms +=
          isolated.actual_latency_ms +
          oh * static_cast<double>(isolated.batches.size());
      plan.shares[k].attributed_ms = out.attributed[mi];
      plan.shares[k].queue_ms =
          std::max(0.0, out.finish[mi] - out.serial[mi]);
      plan.shares[k].isolated_ms =
          isolated.actual_latency_ms +
          oh * static_cast<double>(isolated.batches.size());
      if (subs_[k].full_frame) {
        const double full = oh + g.device->full_frame_ms();
        plan.shares[k].isolated_ms += full;
        plan.shared_busy_ms += full;
        plan.isolated_busy_ms += full;
      }
      plan.queue_ms_total += plan.shares[k].queue_ms;
    }
  }
  return plan;
}

}  // namespace mvs::fleet

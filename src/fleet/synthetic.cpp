#include "fleet/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace mvs::fleet {

namespace {

/// splitmix64: the standard stateless 64-bit mixer — every (seed, camera,
/// frame, draw) tuple maps to an independent uniform word, which is what
/// keeps synthetic work a pure function of position (migration-stable).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SyntheticSource::SyntheticSource(
    const std::vector<gpu::DeviceProfile>& devices, std::uint64_t seed,
    double tasks_per_camera, int horizon)
    : devices_(&devices),
      seed_(seed),
      base_tasks_(std::max(0, static_cast<int>(std::floor(tasks_per_camera)))),
      horizon_(std::max(1, horizon)),
      work_(devices.size()) {}

void SyntheticSource::run_frame() {
  const long f = frames_++;
  for (std::size_t cam = 0; cam < devices_->size(); ++cam) {
    const gpu::DeviceProfile& dev = (*devices_)[cam];
    runtime::CameraGpuWork& w = work_[cam];
    w.full_frame = (f % horizon_) == 0;
    w.tasks.clear();
    const int classes = static_cast<int>(dev.size_class_count());
    if (classes == 0) continue;
    const std::uint64_t frame_word =
        mix(seed_ ^ mix(static_cast<std::uint64_t>(cam + 1)) ^
            static_cast<std::uint64_t>(f));
    // Mean-preserving jitter of +/-1 task around the configured rate.
    const int n = std::max(
        0, base_tasks_ + static_cast<int>(frame_word % 3ULL) - 1);
    for (int t = 0; t < n; ++t) {
      const std::uint64_t task_word =
          mix(frame_word ^ static_cast<std::uint64_t>(0x51ed2701ULL + t));
      // Skew towards the small size classes (min of two draws), matching
      // the far-field boxes that dominate real pole-camera traffic.
      const int a = static_cast<int>(task_word % static_cast<std::uint64_t>(classes));
      const int b = static_cast<int>((task_word >> 32) %
                                     static_cast<std::uint64_t>(classes));
      w.tasks.push_back(static_cast<geom::SizeClassId>(std::min(a, b)));
    }
  }
}

}  // namespace mvs::fleet

#include "fleet/fleet.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numeric>

#include "obs/obs.hpp"
#include "policy/policy.hpp"
#include "sim/scenario.hpp"
#include "util/json.hpp"

namespace mvs::fleet {

const char* to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kWeightedPriority: return "weighted";
  }
  return "?";
}

std::optional<DispatchPolicy> parse_dispatch(std::string name) {
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name == "rr" || name == "round-robin") return DispatchPolicy::kRoundRobin;
  if (name == "weighted" || name == "weighted-priority")
    return DispatchPolicy::kWeightedPriority;
  return std::nullopt;
}

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kActive: return "active";
    case SessionState::kPaused: return "paused";
    case SessionState::kEvicted: return "evicted";
  }
  return "?";
}

const char* to_string(FleetStatus status) {
  switch (status) {
    case FleetStatus::kOk: return "ok";
    case FleetStatus::kStaleHandle: return "stale-handle";
    case FleetStatus::kUnknownSession: return "unknown-session";
    case FleetStatus::kInvalidState: return "invalid-state";
  }
  return "?";
}

std::optional<FleetConfig> make_fleet_config(
    const runtime::FleetRunConfig& config, std::string* error) {
  const auto dispatch = parse_dispatch(config.dispatch);
  if (!dispatch) {
    if (error) *error = "unknown dispatch policy: " + config.dispatch;
    return std::nullopt;
  }
  FleetConfig cfg;
  cfg.slo_ms = config.slo_ms;
  cfg.frame_period_ms = config.frame_period_ms;
  cfg.dispatch = *dispatch;
  cfg.threads = config.threads;
  cfg.allow_degrade = config.allow_degrade;
  cfg.assumed_tasks_per_camera = config.assumed_tasks_per_camera;
  cfg.readmit_interval = config.readmit_interval;
  cfg.readmit_low_water = config.readmit_low_water;
  cfg.readmit_high_water = config.readmit_high_water;
  cfg.allow_split = config.allow_split;
  if (config.dispatch_overhead_ms < 0.0) {
    if (error) *error = "dispatch_overhead_ms must be >= 0";
    return std::nullopt;
  }
  cfg.dispatch_overhead_ms = config.dispatch_overhead_ms;
  if (config.shards < 1) {
    if (error) *error = "shards must be >= 1";
    return std::nullopt;
  }
  cfg.shards = config.shards;
  if (config.shard_capacity < 0) {
    if (error) *error = "shard_capacity must be >= 0";
    return std::nullopt;
  }
  cfg.shard_capacity = config.shard_capacity;
  if (config.rebalance_interval < 0) {
    if (error) *error = "rebalance_interval must be >= 0";
    return std::nullopt;
  }
  cfg.rebalance_interval = config.rebalance_interval;
  if (config.rebalance_high_water <= 1.0) {
    if (error) *error = "rebalance_high_water must be > 1";
    return std::nullopt;
  }
  cfg.rebalance_high_water = config.rebalance_high_water;
  if (config.burn_error_budget < 0.0 || config.burn_error_budget > 1.0) {
    if (error) *error = "burn_error_budget must be in [0, 1]";
    return std::nullopt;
  }
  cfg.burn_error_budget = config.burn_error_budget;
  if (config.burn_fast_window < 1 || config.burn_slow_window < 1 ||
      config.burn_fast_window > config.burn_slow_window ||
      config.burn_slow_window > BurnWindow::kMaxWindow) {
    if (error) *error = "burn windows out of range";
    return std::nullopt;
  }
  cfg.burn_fast_window = config.burn_fast_window;
  cfg.burn_slow_window = config.burn_slow_window;
  if (config.burn_raise <= 0.0 || config.burn_clear <= 0.0 ||
      config.burn_clear > config.burn_raise) {
    if (error) *error = "burn thresholds out of range";
    return std::nullopt;
  }
  cfg.burn_raise = config.burn_raise;
  cfg.burn_clear = config.burn_clear;
  cfg.burn_degrade = config.burn_degrade;
  return cfg;
}

namespace {

BurnConfig make_burn_config(const FleetConfig& cfg) {
  BurnConfig bc;
  bc.error_budget = cfg.burn_error_budget;
  bc.fast_window = cfg.burn_fast_window;
  bc.slow_window = cfg.burn_slow_window;
  bc.raise_mult = cfg.burn_raise;
  bc.clear_mult = cfg.burn_clear;
  return bc;
}

}  // namespace

Fleet::Fleet(const FleetConfig& config)
    : cfg_(config),
      owned_pool_(std::make_unique<util::ThreadPool>(
          static_cast<std::size_t>(std::max(0, config.threads)))),
      pool_(owned_pool_.get()) {
  base_fps_ = std::max(
      1, static_cast<int>(std::lround(
             1000.0 / std::max(1e-6, cfg_.frame_period_ms))));
  wheel_hz_ = base_fps_;
  const std::string p =
      cfg_.shard_index < 0
          ? std::string("fleet.")
          : "fleet.shard." + std::to_string(cfg_.shard_index) + ".";
  obs_.ticks = p + "ticks";
  obs_.frames = p + "frames";
  obs_.deferred = p + "deferred";
  obs_.shared_batches = p + "shared_batches";
  obs_.isolated_batches = p + "isolated_batches";
  obs_.batch_splits = p + "batch_splits";
  obs_.tick_busy_ms = p + "tick_busy_ms";
  obs_.queue_depth = p + "queue_depth";
  obs_.sessions = p + "sessions";
  obs_.session_prefix = p + "session.";
  shard_burn_.configure(make_burn_config(cfg_));
}

Fleet::Fleet(const FleetConfig& config, util::ThreadPool* shared_pool)
    : Fleet(config) {
  if (shared_pool) {
    owned_pool_.reset();
    pool_ = shared_pool;
  }
}

Fleet::~Fleet() = default;

void Fleet::attach_trace(runtime::TraceRecorder* trace) { trace_ = trace; }

void Fleet::record(runtime::TraceEventType type, int session_id, double value,
                   int migrated_from) {
  if (trace_)
    trace_->record(
        {ticks_, session_id, type, 0, value, cfg_.shard_index, migrated_from});
  // Every lifecycle decision (admit/reject/defer/readmit/evict/...) funnels
  // through here; one counter per event type re-expresses them as metrics.
  // Event counters stay un-prefixed in shard mode on purpose: lifecycle
  // totals aggregate across the plane (per-shard rollups live on the
  // step() metrics instead).
  if (obs::enabled())
    obs::metrics()
        .counter(std::string("fleet.events.") + runtime::to_string(type))
        .add(1);
  // Lifecycle events also land in the flight recorder's event ring so a
  // postmortem shows what the fleet DID around the miss burst
  // (to_string returns a static string — no allocation here).
  if (obs::attribution_enabled())
    obs::recorder().note_event(ticks_, runtime::to_string(type), session_id,
                               value);
}

SessionRecord* Fleet::find(int id) {
  for (auto& s : sessions_)
    if (s->id == id) return s.get();
  return nullptr;
}

const SessionRecord* Fleet::find(int id) const {
  for (const auto& s : sessions_)
    if (s->id == id) return s.get();
  return nullptr;
}

SessionRecord* Fleet::find(SessionHandle handle, FleetStatus* status) {
  return const_cast<SessionRecord*>(
      static_cast<const Fleet*>(this)->find(handle, status));
}

const SessionRecord* Fleet::find(SessionHandle handle,
                                 FleetStatus* status) const {
  const HandleTable::Entry* e = handles_.find(handle, status);
  if (!e) return nullptr;
  const SessionRecord* s = find(static_cast<int>(e->a));
  if (!s) {
    if (status) *status = FleetStatus::kUnknownSession;
    return nullptr;
  }
  if (status) *status = FleetStatus::kOk;
  return s;
}

SessionState Fleet::state(SessionHandle handle) const {
  const SessionRecord* s = find(handle);
  return s ? s->state : SessionState::kEvicted;
}

double Fleet::estimate_demand_ms(
    const std::vector<gpu::DeviceProfile>& devices,
    const runtime::PipelineConfig& pipe) const {
  // Coarse, deterministic planning estimate of a deployment's steady-state
  // per-frame GPU busy time: one full-frame inspection per camera per
  // horizon, plus assumed_tasks_per_camera partial tasks per regular frame,
  // each costing its per-slot share of a mid-class batch. The partial term
  // scales by the frame policy's expected detect ratio (track-only frames
  // submit zero slices), each class's cost is divided by its current pool
  // width (a 3-wide pool absorbs ~3x the demand per tick), and a non-zero
  // dispatch overhead charges roughly one batch dispatch per firing.
  const double T = static_cast<double>(std::max(1, pipe.horizon_frames));
  const double detect = policy::demand_factor(pipe.frame_policy);
  double demand = 0.0;
  for (const gpu::DeviceProfile& dev : devices) {
    const auto classes = dev.size_class_count();
    const auto mid = static_cast<geom::SizeClassId>(
        classes >= 3 ? 2 : (classes > 0 ? classes - 1 : 0));
    const double per_task =
        classes > 0
            ? dev.batch_latency_ms(mid) / static_cast<double>(dev.batch_limit(mid))
            : 0.0;
    double per_frame =
        dev.full_frame_ms() / T +
        (T - 1.0) / T * cfg_.assumed_tasks_per_camera * per_task * detect;
    if (cfg_.dispatch_overhead_ms > 0.0)
      per_frame += cfg_.dispatch_overhead_ms * (1.0 / T + (T - 1.0) / T * detect);
    demand += per_frame /
              static_cast<double>(std::max(1, arbiter_.device_count(dev.name())));
  }
  return demand;
}

double Fleet::session_frame_ms(const SessionRecord& s) const {
  return s.frames > 0 ? s.busy_sum_ms / static_cast<double>(s.frames)
                      : s.static_demand_ms;
}

double Fleet::session_demand_ms(const SessionRecord& s) const {
  // Demand per base frame period: per-frame cost x how often the session
  // fires relative to the base rate. A full-rate base-fps session with
  // stride 1 contributes exactly its per-frame cost.
  return session_frame_ms(s) * static_cast<double>(s.fps) /
         (static_cast<double>(s.stride) * static_cast<double>(base_fps_));
}

const std::vector<gpu::DeviceProfile>& Fleet::probe_devices(
    const std::string& scenario, std::uint64_t seed) {
  const auto it = probe_cache_.find(scenario);
  if (it != probe_cache_.end()) return it->second;
  // Probe the deployment's device profiles without building the (expensive)
  // pipeline: scenario construction is cheap, association training is not.
  // Profiles are a fixed property of the scenario's camera poles (seed only
  // drives traffic), so one probe per scenario name serves every admission.
  std::vector<gpu::DeviceProfile> devices;
  const sim::Scenario probe = sim::make_scenario(scenario, seed);
  for (const sim::ScenarioCamera& cam : probe.cameras)
    devices.push_back(cam.device);
  return probe_cache_.emplace(scenario, std::move(devices)).first->second;
}

void Fleet::grow_wheel(int fps) {
  const long lcm = static_cast<long>(wheel_hz_) / std::gcd(wheel_hz_, fps) *
                   static_cast<long>(fps);
  if (lcm == wheel_hz_) return;
  const long m = lcm / wheel_hz_;
  // Rescale every firing pattern so established sessions keep their exact
  // cadence and phase relationships across the growth.
  for (auto& s : sessions_) {
    s->period_ticks *= static_cast<int>(m);
    s->phase *= static_cast<int>(m);
  }
  ticks_ *= m;
  wheel_hz_ = static_cast<int>(lcm);
}

void Fleet::ensure_wheel(int fps) { grow_wheel(std::max(1, fps)); }

AdmitResult Fleet::admit(const SessionSpec& spec) {
  AdmitResult result;
  if (spec.fps < 0) {
    ++rejected_;
    result.reason = "negative native fps";
    record(runtime::TraceEventType::kSessionReject, -1, 0.0);
    return result;
  }
  const int fps = spec.fps > 0 ? spec.fps : base_fps_;

  const std::vector<gpu::DeviceProfile>& devices =
      probe_devices(spec.scenario, spec.pipeline.seed);
  // Demand normalized to one base period: a session firing faster than the
  // base rate costs proportionally more per period.
  const double demand =
      estimate_demand_ms(devices, spec.pipeline) *
      static_cast<double>(fps) / static_cast<double>(base_fps_);

  // Without an SLO there is nothing to project against, so admission skips
  // the roster scan entirely — O(1), which is what lets a shard absorb
  // thousands of admissions. With an SLO the exact projection is kept.
  double current = 0.0;
  if (cfg_.slo_ms > 0.0)
    for (const auto& s : sessions_)
      if (s->state == SessionState::kActive) current += session_demand_ms(*s);

  // Split-aware headroom: with batch splitting on, an over-full tick can
  // shed half a batch to the next slot instead of missing the SLO, so the
  // admission ceiling relaxes by the spillable fraction.
  constexpr double kSplitHeadroom = 1.2;
  const double ceiling =
      cfg_.slo_ms * (cfg_.allow_split ? kSplitHeadroom : 1.0);

  bool tight = spec.pipeline.tight_masks;
  int stride = 1;
  result.projected_ms = current + demand;
  if (cfg_.slo_ms > 0.0 && result.projected_ms > ceiling) {
    // Degrade ladder: mask tightening sheds the shared-coverage slice of the
    // partial load, rate halving amortizes the whole session over two
    // ticks; the combination applies both.
    constexpr double kTightFactor = 0.75;
    struct Mode {
      bool tight;
      int stride;
      double factor;
    };
    const Mode ladder[] = {{true, 1, kTightFactor},
                           {false, 2, 0.5},
                           {true, 2, 0.5 * kTightFactor}};
    bool fitted = false;
    if (cfg_.allow_degrade) {
      for (const Mode& mode : ladder) {
        if (current + demand * mode.factor <= ceiling) {
          tight = mode.tight || tight;
          stride = mode.stride;
          result.projected_ms = current + demand * mode.factor;
          fitted = true;
          break;
        }
      }
    }
    if (!fitted) {
      ++rejected_;
      result.reason = "projected latency exceeds SLO even fully degraded";
      record(runtime::TraceEventType::kSessionReject, -1,
             result.projected_ms);
      return result;
    }
  }

  grow_wheel(fps);

  auto session = std::make_unique<SessionRecord>();
  session->id = next_id_++;
  session->spec = spec;
  session->spec.pipeline.tight_masks = tight;
  // Per-session fault profile (the self-contained session API): replaces
  // whatever the pipeline config carried and, unless fault-free, selects
  // the lossy transport.
  if (spec.faults) {
    session->spec.pipeline.faults = *spec.faults;
    if (!spec.faults->fault_free())
      session->spec.pipeline.transport = net::TransportKind::kLossy;
  }
  session->fps = fps;
  session->period_ticks = wheel_hz_ / fps;
  session->stride = stride;
  session->degraded_rate = stride > 1;
  session->degraded_tight = tight && !spec.pipeline.tight_masks;
  if (stride > 1) {
    // Spread rate-halved sessions across both phases to balance the ticks.
    int halved = 0;
    for (const auto& s : sessions_) halved += (s->stride > 1);
    session->phase = (halved % 2) * session->period_ticks;
  }
  session->burn.configure(make_burn_config(cfg_));
  session->devices = devices;
  session->static_demand_ms =
      estimate_demand_ms(session->devices, session->spec.pipeline);
  session->placement_demand_ms = demand;
  if (spec.synthetic) {
    session->synth = std::make_unique<SyntheticSource>(
        session->devices, spec.pipeline.seed, cfg_.assumed_tasks_per_camera,
        spec.pipeline.horizon_frames);
  } else {
    session->pipeline = std::make_unique<runtime::Pipeline>(
        spec.scenario, session->spec.pipeline, pool_);
  }

  // Register this deployment's accelerator classes with the arbiter so the
  // pool sizes show up in snapshots (default one device per class).
  for (const gpu::DeviceProfile& dev : session->devices)
    if (!arbiter_.device_counts().count(dev.name()))
      arbiter_.set_device_count(dev.name(), 1);

  session->handle = handles_.issue();
  handles_.find(session->handle)->a = session->id;
  result.handle = session->handle;
  result.admitted = true;
  result.masks_tightened = session->degraded_tight;
  result.rate_halved = stride > 1;
  result.shard = std::max(0, cfg_.shard_index);
  ++admitted_;
  ++live_sessions_;
  placed_demand_ms_ += session->placement_demand_ms;
  record(runtime::TraceEventType::kSessionAdmit, session->id,
         result.projected_ms);
  sessions_.push_back(std::move(session));
  return result;
}

FleetStatus Fleet::evict(SessionHandle handle) {
  FleetStatus status = FleetStatus::kOk;
  SessionRecord* s = find(handle, &status);
  if (!s) return status;
  if (s->state == SessionState::kEvicted) return FleetStatus::kInvalidState;
  if (s->pipeline) {
    s->final_result = s->pipeline->result();
    s->pipeline.reset();
  }
  s->synth.reset();
  s->carryover.clear();
  s->state = SessionState::kEvicted;
  ++evicted_;
  --live_sessions_;
  placed_demand_ms_ -= s->placement_demand_ms;
  record(runtime::TraceEventType::kSessionEvict, s->id, 0.0,
         s->migrated_from);
  // An eviction is a postmortem-worthy lifecycle end: snapshot the flight
  // recorder so the session's last frames survive it (in-memory only unless
  // a postmortem dir is configured).
  if (obs::attribution_enabled()) obs::recorder().request_dump("session-evict");
  return FleetStatus::kOk;
}

FleetStatus Fleet::pause(SessionHandle handle) {
  FleetStatus status = FleetStatus::kOk;
  SessionRecord* s = find(handle, &status);
  if (!s) return status;
  if (s->state != SessionState::kActive) return FleetStatus::kInvalidState;
  s->state = SessionState::kPaused;
  record(runtime::TraceEventType::kSessionPause, s->id, 0.0,
         s->migrated_from);
  return FleetStatus::kOk;
}

FleetStatus Fleet::resume(SessionHandle handle) {
  FleetStatus status = FleetStatus::kOk;
  SessionRecord* s = find(handle, &status);
  if (!s) return status;
  if (s->state != SessionState::kPaused) return FleetStatus::kInvalidState;
  s->state = SessionState::kActive;
  record(runtime::TraceEventType::kSessionResume, s->id, 0.0,
         s->migrated_from);
  return FleetStatus::kOk;
}

FleetStatus Fleet::release(SessionHandle handle) {
  FleetStatus status = FleetStatus::kOk;
  SessionRecord* s = find(handle, &status);
  if (!s) return status;
  if (s->state != SessionState::kEvicted) return FleetStatus::kInvalidState;
  // Drop the retained result and recycle the handle slot: the NEXT tenant
  // of this slot gets gen + 1, so every copy of `handle` is now
  // detectably stale instead of silently addressing the newcomer.
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() != s) continue;
    sessions_.erase(it);
    break;
  }
  handles_.release(handle);
  return FleetStatus::kOk;
}

int Fleet::scale_devices(const std::string& device_class, int delta) {
  const int next = std::max(1, arbiter_.device_count(device_class) + delta);
  arbiter_.set_device_count(device_class, next);
  record(runtime::TraceEventType::kDeviceScale, -1,
         static_cast<double>(next));
  return next;
}

runtime::PipelineResult Fleet::result(SessionHandle handle,
                                      FleetStatus* status) const {
  FleetStatus st = FleetStatus::kOk;
  const SessionRecord* s = find(handle, &st);
  if (status) *status = st;
  if (!s) return {};
  return s->pipeline ? s->pipeline->result() : s->final_result;
}

std::unique_ptr<SessionRecord> Fleet::detach(SessionHandle handle,
                                             FleetStatus* status) {
  FleetStatus st = FleetStatus::kOk;
  SessionRecord* s = find(handle, &st);
  if (!s) {
    if (status) *status = st;
    return nullptr;
  }
  if (s->state == SessionState::kEvicted) {
    if (status) *status = FleetStatus::kInvalidState;
    return nullptr;
  }
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() != s) continue;
    std::unique_ptr<SessionRecord> rec = std::move(*it);
    sessions_.erase(it);
    handles_.release(handle);
    --live_sessions_;
    placed_demand_ms_ -= rec->placement_demand_ms;
    rec->handle = {};
    if (status) *status = FleetStatus::kOk;
    return rec;
  }
  if (status) *status = FleetStatus::kUnknownSession;
  return nullptr;
}

SessionHandle Fleet::attach(std::unique_ptr<SessionRecord> record) {
  if (!record) return {};
  // Under the plane-wide equal-wheel invariant this is a no-op; it is kept
  // for safety so a record can never fire on a wheel its period does not
  // divide.
  grow_wheel(std::max(1, record->fps));
  record->id = next_id_++;
  record->handle = handles_.issue();
  handles_.find(record->handle)->a = record->id;
  for (const gpu::DeviceProfile& dev : record->devices)
    if (!arbiter_.device_counts().count(dev.name()))
      arbiter_.set_device_count(dev.name(), 1);
  ++live_sessions_;
  placed_demand_ms_ += record->placement_demand_ms;
  const SessionHandle h = record->handle;
  sessions_.push_back(std::move(record));
  return h;
}

SessionHandle Fleet::pick_migration_victim() const {
  const SessionRecord* best = nullptr;
  for (const auto& s : sessions_) {
    if (s->state != SessionState::kActive) continue;
    if (!best || s->placement_demand_ms < best->placement_demand_ms)
      best = s.get();
  }
  return best ? best->handle : SessionHandle{};
}

void Fleet::readmit_scan() {
  const double mean_busy =
      window_busy_ms_ / static_cast<double>(std::max(1, window_ticks_));
  window_busy_ms_ = 0.0;
  window_ticks_ = 0;

  // Above the high-water mark: push one session one rung DOWN the degrade
  // ladder per scan — tighten masks first, then halve the rate — the exact
  // mirror of re-admission below (which restores rate first, then masks).
  // Highest session id degrades first (the mirror of lowest-id-wins on the
  // way back up), so the longest-served sessions keep quality longest.
  // Between the water marks nothing changes in either direction: the band
  // is the hysteresis that keeps rungs from flapping scan to scan.
  if (mean_busy > cfg_.readmit_high_water * cfg_.slo_ms) {
    if (!cfg_.allow_degrade) return;
    apply_degrade_rung(mean_busy);
    return;
  }
  if (mean_busy >= cfg_.readmit_low_water * cfg_.slo_ms) return;

  double current = 0.0;
  for (const auto& s : sessions_)
    if (s->state == SessionState::kActive) current += session_demand_ms(*s);
  const double ceiling = cfg_.readmit_high_water * cfg_.slo_ms;

  // Reverse the degrade ladder one rung per scan: restore full rate first
  // (it halves the latency penalty), then un-tighten masks (recall). Only
  // degradation the FLEET applied is reversed; lowest session id wins ties.
  for (auto& s : sessions_) {
    if (s->state != SessionState::kActive || !s->degraded_rate) continue;
    // Going from stride 2 to 1 doubles the session's per-period demand.
    const double additional = session_demand_ms(*s);
    if (current + additional > ceiling) continue;
    s->stride = 1;
    s->degraded_rate = false;
    ++readmitted_;
    record(runtime::TraceEventType::kSessionReadmit, s->id,
           current + additional);
    return;
  }
  for (auto& s : sessions_) {
    if (s->state != SessionState::kActive || !s->degraded_tight) continue;
    // Un-tightening restores the shed shared-coverage load: the tightened
    // demand is 0.75x the full demand, so full costs an extra third.
    constexpr double kTightFactor = 0.75;
    const double additional =
        session_demand_ms(*s) * (1.0 / kTightFactor - 1.0);
    if (current + additional > ceiling) continue;
    s->spec.pipeline.tight_masks = false;
    if (s->pipeline) s->pipeline->set_tight_masks(false);
    s->degraded_tight = false;
    ++readmitted_;
    record(runtime::TraceEventType::kSessionReadmit, s->id,
           current + additional);
    return;
  }
}

bool Fleet::apply_degrade_rung(double value) {
  for (auto it = sessions_.rbegin(); it != sessions_.rend(); ++it) {
    SessionRecord* s = it->get();
    if (s->state != SessionState::kActive || s->degraded_tight) continue;
    s->spec.pipeline.tight_masks = true;
    if (s->pipeline) s->pipeline->set_tight_masks(true);
    s->degraded_tight = true;
    ++redegraded_;
    record(runtime::TraceEventType::kSessionRedegrade, s->id, value,
           s->migrated_from);
    return true;
  }
  for (auto it = sessions_.rbegin(); it != sessions_.rend(); ++it) {
    SessionRecord* s = it->get();
    if (s->state != SessionState::kActive || s->degraded_rate) continue;
    s->stride = 2;
    s->degraded_rate = true;
    ++redegraded_;
    record(runtime::TraceEventType::kSessionRedegrade, s->id, value,
           s->migrated_from);
    return true;
  }
  return false;
}

void Fleet::step() {
  MVS_SPAN("fleet.tick");
  const long tick = ticks_;

  // 1. Sessions due this tick (active, native period x stride matches).
  std::vector<SessionRecord*>& due = due_scratch_;
  due.clear();
  for (auto& s : sessions_) {
    const long cycle = static_cast<long>(s->period_ticks) * s->stride;
    if (s->state == SessionState::kActive && tick % cycle == s->phase % cycle)
      due.push_back(s.get());
  }

  // 2. Dispatch: order the due sessions, then defer from the back while the
  // projected tick demand exceeds the SLO (at least one session always
  // runs). Round-robin rotates the order each tick so the deferral burden
  // is shared; weighted-priority puts low weights at the back.
  if (cfg_.dispatch == DispatchPolicy::kWeightedPriority) {
    std::stable_sort(due.begin(), due.end(),
                     [](SessionRecord* a, SessionRecord* b) {
                       if (a->spec.weight != b->spec.weight)
                         return a->spec.weight > b->spec.weight;
                       return a->id < b->id;
                     });
  } else if (!due.empty()) {
    std::rotate(due.begin(),
                due.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(tick) % due.size()),
                due.end());
  }
  std::vector<SessionRecord*>& chosen = chosen_scratch_;
  chosen.clear();
  std::size_t deferred = 0;
  if (cfg_.slo_ms > 0.0) {
    double projected = 0.0;
    for (SessionRecord* s : due) {
      const double d = session_frame_ms(*s);  // full frame cost this tick
      if (!chosen.empty() && projected + d > cfg_.slo_ms) {
        ++s->deferred_ticks;
        ++deferred;
        record(runtime::TraceEventType::kSessionDefer, s->id, projected + d,
               s->migrated_from);
        continue;
      }
      projected += d;
      chosen.push_back(s);
    }
  } else {
    chosen.assign(due.begin(), due.end());
  }

  // 3. Step the chosen sessions concurrently on the shared pool. Sessions
  // only touch their own state (and the nested-safe pool), so this is
  // deterministic for any worker count. The per-frame stats live inside
  // each pipeline (run_frame_ref) — nothing is copied out here. Synthetic
  // sessions generate their seeded work instead of running the stack.
  pool_->run_tiles(chosen.size(), [&](std::size_t i) {
    MVS_SPAN("fleet.session");
    if (chosen[i]->pipeline)
      chosen[i]->pipeline->run_frame_ref();
    else
      chosen[i]->synth->run_frame();
  });

  // 4. Cross-session GPU arbitration over the stepped sessions' work, in
  // ascending session id for deterministic submission order. Batch-split
  // debt from earlier ticks rides along with the owning camera's work.
  std::vector<SessionRecord*>& ordered = ordered_scratch_;
  ordered.assign(chosen.begin(), chosen.end());
  std::sort(ordered.begin(), ordered.end(),
            [](SessionRecord* a, SessionRecord* b) { return a->id < b->id; });
  arbiter_.begin_tick();
  for (SessionRecord* s : ordered) {
    const auto& work =
        s->pipeline ? s->pipeline->last_gpu_work() : s->synth->last_gpu_work();
    for (std::size_t cam = 0; cam < work.size(); ++cam) {
      const int cam_id = static_cast<int>(cam);
      const auto debt = s->carryover.find(cam_id);
      if (debt != s->carryover.end() && !debt->second.empty()) {
        runtime::CameraGpuWork& merged = merged_scratch_;
        merged.full_frame = work[cam].full_frame;
        merged.tasks.assign(work[cam].tasks.begin(), work[cam].tasks.end());
        merged.tasks.insert(merged.tasks.end(), debt->second.begin(),
                            debt->second.end());
        debt->second.clear();
        arbiter_.submit(s->id, cam_id, s->devices[cam], merged,
                        s->spec.weight);
      } else {
        arbiter_.submit(s->id, cam_id, s->devices[cam], work[cam],
                        s->spec.weight);
      }
    }
  }
  TickContext ctx;
  ctx.slo_ms = cfg_.slo_ms;
  ctx.allow_split = cfg_.allow_split;
  ctx.dispatch_overhead_ms = cfg_.dispatch_overhead_ms;
  TickPlan& plan = plan_scratch_;
  {
    MVS_SPAN("fleet.arbiter");
    arbiter_.plan_tick_into(ctx, plan);
  }
  shared_batches_ += plan.shared_batches;
  isolated_batches_ += plan.isolated_batches;
  shared_busy_ms_ += plan.shared_busy_ms;
  isolated_busy_ms_ += plan.isolated_busy_ms;
  total_queue_ms_ += plan.queue_ms_total;
  batch_splits_ += plan.splits;
  tick_busy_ms_.add(plan.shared_busy_ms);
  queue_depth_.add(static_cast<double>(deferred));
  if (obs::enabled()) {
    // Fleet rollups re-expressed as registry metrics (the SampleSet-based
    // snapshot stays the bit-identical source for FleetSnapshot JSON). All
    // values here are simulated/deterministic, so they carry the full
    // fingerprint. Keys are shard-prefixed when this fleet is one shard of
    // a plane (the per-shard obs rollup).
    obs::MetricsRegistry& m = obs::metrics();
    m.counter(obs_.ticks).add(1);
    m.counter(obs_.frames).add(static_cast<long long>(chosen.size()));
    m.counter(obs_.deferred).add(static_cast<long long>(deferred));
    m.counter(obs_.shared_batches).add(plan.shared_batches);
    m.counter(obs_.isolated_batches).add(plan.isolated_batches);
    m.counter(obs_.batch_splits).add(plan.splits);
    m.histogram(obs_.tick_busy_ms).record(plan.shared_busy_ms);
    m.histogram(obs_.queue_depth).record(static_cast<double>(deferred));
    m.gauge(obs_.sessions).set(static_cast<double>(sessions_.size()));
  }

  // Deferred task slices become carryover debt charged on the tick that
  // actually runs them (conservation-exact attribution).
  for (const DeferredSlice& slice : plan.deferred) {
    SessionRecord* owner = find(slice.session);
    if (!owner || owner->state == SessionState::kEvicted) continue;
    auto& debt = owner->carryover[slice.camera];
    debt.insert(debt.end(), static_cast<std::size_t>(slice.count),
                slice.size_class);
    record(runtime::TraceEventType::kBatchSplit, slice.session,
           static_cast<double>(slice.count));
  }

  // 5. Per-session rollups: frame latency = slowest camera (paper
  // semantics) including device-pool queueing; demand = attributed busy of
  // the batches this tick actually executed.
  for (SessionRecord* s : ordered) {
    double frame_ms = 0.0, frame_iso_ms = 0.0, frame_queue_ms = 0.0;
    double busy = 0.0;
    // The critical-path share: the (gpu, queue) pair of the slowest camera,
    // whose sum IS frame_ms — so the attribution below conserves exactly.
    double crit_gpu_ms = 0.0, crit_wait_ms = 0.0;
    for (const Attribution& a : plan.shares) {
      if (a.session != s->id) continue;
      if (a.attributed_ms + a.queue_ms > frame_ms) {
        frame_ms = a.attributed_ms + a.queue_ms;
        crit_gpu_ms = a.attributed_ms;
        crit_wait_ms = a.queue_ms;
      }
      frame_iso_ms = std::max(frame_iso_ms, a.isolated_ms);
      frame_queue_ms = std::max(frame_queue_ms, a.queue_ms);
      busy += a.attributed_ms;
    }
    s->latency_ms.add(frame_ms);
    s->isolated_ms.add(frame_iso_ms);
    s->queue_ms.add(frame_queue_ms);
    if (obs::enabled()) {
      const std::string prefix = obs_.session_prefix + std::to_string(s->id);
      obs::MetricsRegistry& m = obs::metrics();
      m.histogram(prefix + ".latency_ms").record(frame_ms);
      m.histogram(prefix + ".queue_ms").record(frame_queue_ms);
    }
    s->busy_sum_ms += busy;
    const double slo = s->spec.slo_ms >= 0.0 ? s->spec.slo_ms : cfg_.slo_ms;
    const bool miss = slo > 0.0 && frame_ms > slo;
    if (miss) ++s->slo_violations;
    if (obs::attribution_enabled()) {
      // Stream id: shard (+1 so shard 0 is distinguishable from a
      // standalone runner's stream 0) in the high half-word, session id low.
      const std::uint32_t stream =
          (static_cast<std::uint32_t>(cfg_.shard_index + 1) << 16) |
          (static_cast<std::uint32_t>(s->id) & 0xffffU);
      obs::FrameAttribution fa;
      fa.id = obs::causal_id(stream, static_cast<std::uint64_t>(s->frames));
      fa.total_ms = frame_ms;
      fa.segment_ms[static_cast<std::size_t>(obs::Segment::kGpu)] =
          crit_gpu_ms;
      fa.segment_ms[static_cast<std::size_t>(obs::Segment::kBatchWait)] =
          crit_wait_ms;
      fa.deadline_miss = miss;
      obs::critical_path().record(fa);
      obs::recorder().note_frame(fa);
    }
    ++s->frames;
    if (cfg_.burn_error_budget > 0.0) {
      const int edge = s->burn.push(miss);
      if (edge > 0) {
        ++s->slo_alerts;
        ++slo_alerts_raised_;
        record(runtime::TraceEventType::kSloAlertRaise, s->id,
               s->burn.fast_burn(), s->migrated_from);
      } else if (edge < 0) {
        ++slo_alerts_cleared_;
        record(runtime::TraceEventType::kSloAlertClear, s->id,
               s->burn.fast_burn(), s->migrated_from);
      }
    }
  }

  // Shard-level burn monitor: a tick whose merged busy exceeds the SLO is
  // one bad event. A raise edge may couple straight into mitigation
  // (burn_degrade: one degrade rung, same rung order as the readmit
  // high-water branch).
  if (cfg_.burn_error_budget > 0.0 && cfg_.slo_ms > 0.0) {
    const int edge = shard_burn_.push(plan.shared_busy_ms > cfg_.slo_ms);
    if (edge > 0) {
      ++shard_slo_alerts_;
      ++slo_alerts_raised_;
      record(runtime::TraceEventType::kSloAlertRaise, -1,
             shard_burn_.fast_burn());
      if (cfg_.burn_degrade) apply_degrade_rung(shard_burn_.fast_burn());
    } else if (edge < 0) {
      ++slo_alerts_cleared_;
      record(runtime::TraceEventType::kSloAlertClear, -1,
             shard_burn_.fast_burn());
    }
  }

  // 6. Periodic re-admission scan over the windowed mean busy, normalized
  // to base frame periods so wheel growth does not skew the band.
  if (cfg_.slo_ms > 0.0 && cfg_.readmit_interval > 0) {
    window_busy_ms_ += plan.shared_busy_ms *
                       static_cast<double>(wheel_hz_) /
                       static_cast<double>(base_fps_);
    if (++window_ticks_ >= cfg_.readmit_interval) readmit_scan();
  }

  ++ticks_;
}

FleetSnapshot Fleet::snapshot() const {
  FleetSnapshot snap;
  snap.ticks = ticks_;
  snap.wheel_hz = wheel_hz_;
  snap.shards = 1;
  snap.admitted = admitted_;
  snap.rejected = rejected_;
  snap.evicted = evicted_;
  snap.readmitted = readmitted_;
  snap.redegraded = redegraded_;
  snap.batch_splits = batch_splits_;
  snap.shared_batches = shared_batches_;
  snap.isolated_batches = isolated_batches_;
  snap.shared_busy_ms = shared_busy_ms_;
  snap.isolated_busy_ms = isolated_busy_ms_;
  snap.total_queue_ms = total_queue_ms_;
  // Tick period in ms at the CURRENT wheel rate, anchored to the configured
  // base period so wheel_hz == base_fps reproduces frame_period_ms exactly.
  const double tick_period_ms =
      cfg_.frame_period_ms * static_cast<double>(base_fps_) /
      static_cast<double>(std::max(1, wheel_hz_));
  snap.mean_occupancy =
      tick_period_ms > 0.0 ? tick_busy_ms_.mean() / tick_period_ms : 0.0;
  snap.p95_tick_busy_ms =
      tick_busy_ms_.count() ? tick_busy_ms_.percentile(95.0) : 0.0;
  snap.mean_queue_depth = queue_depth_.mean();
  snap.slo_alerts_raised = slo_alerts_raised_;
  snap.slo_alerts_cleared = slo_alerts_cleared_;
  for (const auto& [name, count] : arbiter_.device_counts())
    snap.device_pools.emplace_back(name, count);
  for (const auto& s : sessions_) {
    SessionSnapshot ss;
    ss.handle = s->handle;
    ss.shard = std::max(0, cfg_.shard_index);
    ss.name = s->spec.name;
    ss.state = s->state;
    ss.weight = s->spec.weight;
    ss.fps = s->fps;
    ss.stride = s->stride;
    ss.tight_masks = s->spec.pipeline.tight_masks;
    ss.frames = s->frames;
    ss.deferred_ticks = s->deferred_ticks;
    ss.slo_violations = s->slo_violations;
    ss.slo_ms = s->spec.slo_ms >= 0.0 ? s->spec.slo_ms : cfg_.slo_ms;
    if (s->latency_ms.count()) {
      ss.p50_ms = s->latency_ms.percentile(50.0);
      ss.p95_ms = s->latency_ms.percentile(95.0);
      ss.p99_ms = s->latency_ms.percentile(99.0);
      ss.mean_ms = s->latency_ms.mean();
      ss.mean_isolated_ms = s->isolated_ms.mean();
      ss.mean_queue_ms = s->queue_ms.mean();
    }
    ss.busy_sum_ms = s->busy_sum_ms;
    ss.slo_alerts = s->slo_alerts;
    ss.alerting = s->burn.alerting();
    ss.fast_burn = s->burn.fast_burn();
    ss.slow_burn = s->burn.slow_burn();
    if (ss.alerting && s->state != SessionState::kEvicted)
      ++snap.alerting_sessions;
    if (s->pipeline || s->final_result.frames.size() ||
        s->state == SessionState::kEvicted) {
      const runtime::PipelineResult result =
          s->pipeline ? s->pipeline->result() : s->final_result;
      ss.object_recall = result.object_recall;
      ss.retries = result.total_retries();
      ss.dropped_msgs = result.total_dropped_msgs();
    }
    snap.total_retries += ss.retries;
    snap.total_dropped_msgs += ss.dropped_msgs;
    snap.sessions.push_back(std::move(ss));
  }
  return snap;
}

std::string FleetSnapshot::to_json() const {
  util::Json::Object fleet;
  fleet["ticks"] = util::Json(static_cast<double>(ticks));
  fleet["wheel_hz"] = util::Json(wheel_hz);
  fleet["shards"] = util::Json(shards);
  fleet["admitted"] = util::Json(admitted);
  fleet["rejected"] = util::Json(rejected);
  fleet["evicted"] = util::Json(evicted);
  fleet["readmitted"] = util::Json(readmitted);
  fleet["redegraded"] = util::Json(redegraded);
  fleet["migrations"] = util::Json(static_cast<double>(migrations));
  fleet["batch_splits"] = util::Json(static_cast<double>(batch_splits));
  fleet["shared_batches"] = util::Json(static_cast<double>(shared_batches));
  fleet["isolated_batches"] =
      util::Json(static_cast<double>(isolated_batches));
  fleet["shared_busy_ms"] = util::Json(shared_busy_ms);
  fleet["isolated_busy_ms"] = util::Json(isolated_busy_ms);
  fleet["total_queue_ms"] = util::Json(total_queue_ms);
  fleet["cross_batches_saved"] =
      util::Json(static_cast<double>(cross_batches_saved));
  fleet["cross_busy_saved_ms"] = util::Json(cross_busy_saved_ms);
  fleet["total_retries"] = util::Json(static_cast<double>(total_retries));
  fleet["total_dropped_msgs"] =
      util::Json(static_cast<double>(total_dropped_msgs));
  fleet["mean_occupancy"] = util::Json(mean_occupancy);
  fleet["p95_tick_busy_ms"] = util::Json(p95_tick_busy_ms);
  fleet["mean_queue_depth"] = util::Json(mean_queue_depth);
  fleet["slo_alerts_raised"] =
      util::Json(static_cast<double>(slo_alerts_raised));
  fleet["slo_alerts_cleared"] =
      util::Json(static_cast<double>(slo_alerts_cleared));
  fleet["alerting_sessions"] = util::Json(alerting_sessions);
  util::Json::Array pools;
  for (const auto& [name, count] : device_pools) {
    util::Json::Object pool;
    pool["class"] = util::Json(name);
    pool["devices"] = util::Json(count);
    pools.push_back(util::Json(std::move(pool)));
  }
  fleet["device_pools"] = util::Json(std::move(pools));
  util::Json::Array rollups;
  for (const ShardRollup& r : shard_rollups) {
    util::Json::Object obj;
    obj["shard"] = util::Json(r.index);
    obj["sessions"] = util::Json(r.sessions);
    obj["frames"] = util::Json(static_cast<double>(r.frames));
    obj["shared_busy_ms"] = util::Json(r.shared_busy_ms);
    obj["placed_demand_ms"] = util::Json(r.placed_demand_ms);
    obj["mean_occupancy"] = util::Json(r.mean_occupancy);
    obj["alerting"] = util::Json(r.alerting);
    obj["slo_alerts"] = util::Json(static_cast<double>(r.slo_alerts));
    rollups.push_back(util::Json(std::move(obj)));
  }
  fleet["shard_rollups"] = util::Json(std::move(rollups));

  util::Json::Array session_array;
  for (const SessionSnapshot& s : sessions) {
    util::Json::Object obj;
    obj["handle"] = util::Json(static_cast<double>(s.handle.id));
    obj["gen"] = util::Json(static_cast<double>(s.handle.gen));
    obj["shard"] = util::Json(s.shard);
    obj["name"] = util::Json(s.name);
    obj["state"] = util::Json(to_string(s.state));
    obj["weight"] = util::Json(s.weight);
    obj["fps"] = util::Json(s.fps);
    obj["stride"] = util::Json(s.stride);
    obj["tight_masks"] = util::Json(s.tight_masks);
    obj["frames"] = util::Json(static_cast<double>(s.frames));
    obj["deferred_ticks"] = util::Json(static_cast<double>(s.deferred_ticks));
    obj["slo_violations"] = util::Json(static_cast<double>(s.slo_violations));
    obj["slo_ms"] = util::Json(s.slo_ms);
    obj["p50_ms"] = util::Json(s.p50_ms);
    obj["p95_ms"] = util::Json(s.p95_ms);
    obj["p99_ms"] = util::Json(s.p99_ms);
    obj["mean_ms"] = util::Json(s.mean_ms);
    obj["mean_isolated_ms"] = util::Json(s.mean_isolated_ms);
    obj["mean_queue_ms"] = util::Json(s.mean_queue_ms);
    obj["busy_sum_ms"] = util::Json(s.busy_sum_ms);
    obj["retries"] = util::Json(static_cast<double>(s.retries));
    obj["dropped_msgs"] = util::Json(static_cast<double>(s.dropped_msgs));
    obj["object_recall"] = util::Json(s.object_recall);
    obj["slo_alerts"] = util::Json(static_cast<double>(s.slo_alerts));
    obj["alerting"] = util::Json(s.alerting);
    obj["fast_burn"] = util::Json(s.fast_burn);
    obj["slow_burn"] = util::Json(s.slow_burn);
    session_array.push_back(util::Json(std::move(obj)));
  }

  util::Json::Object doc;
  doc["fleet"] = util::Json(std::move(fleet));
  doc["sessions"] = util::Json(std::move(session_array));
  return util::Json(std::move(doc)).dump();
}

}  // namespace mvs::fleet

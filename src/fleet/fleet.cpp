#include "fleet/fleet.hpp"

#include <algorithm>
#include <cctype>

#include "sim/scenario.hpp"
#include "util/json.hpp"

namespace mvs::fleet {

const char* to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kWeightedPriority: return "weighted";
  }
  return "?";
}

std::optional<DispatchPolicy> parse_dispatch(std::string name) {
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name == "rr" || name == "round-robin") return DispatchPolicy::kRoundRobin;
  if (name == "weighted" || name == "weighted-priority")
    return DispatchPolicy::kWeightedPriority;
  return std::nullopt;
}

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kActive: return "active";
    case SessionState::kPaused: return "paused";
    case SessionState::kEvicted: return "evicted";
  }
  return "?";
}

struct Fleet::Session {
  int id = -1;
  SessionSpec spec;
  SessionState state = SessionState::kActive;
  int stride = 1;  ///< runs on ticks with tick % stride == phase
  int phase = 0;
  std::unique_ptr<runtime::Pipeline> pipeline;
  std::vector<gpu::DeviceProfile> devices;
  double static_demand_ms = 0.0;

  long frames = 0;
  long deferred_ticks = 0;
  long slo_violations = 0;
  util::SampleSet latency_ms;       ///< attributed per-frame latency
  util::SampleSet isolated_ms;      ///< dedicated-device counterfactual
  double busy_sum_ms = 0.0;         ///< Σ attributed over all cameras/frames
  /// Result snapshot frozen at eviction (the pipeline is destroyed then).
  runtime::PipelineResult final_result;
};

Fleet::Fleet(const FleetConfig& config)
    : cfg_(config),
      pool_(static_cast<std::size_t>(std::max(0, config.threads))) {}

Fleet::~Fleet() = default;

void Fleet::attach_trace(runtime::TraceRecorder* trace) { trace_ = trace; }

void Fleet::record(runtime::TraceEventType type, int session_id,
                   double value) {
  if (trace_) trace_->record({ticks_, session_id, type, 0, value});
}

Fleet::Session* Fleet::find(int id) {
  for (auto& s : sessions_)
    if (s->id == id) return s.get();
  return nullptr;
}

const Fleet::Session* Fleet::find(int id) const {
  for (const auto& s : sessions_)
    if (s->id == id) return s.get();
  return nullptr;
}

std::size_t Fleet::session_count() const {
  std::size_t n = 0;
  for (const auto& s : sessions_) n += (s->state != SessionState::kEvicted);
  return n;
}

SessionState Fleet::state(int id) const {
  const Session* s = find(id);
  return s ? s->state : SessionState::kEvicted;
}

double Fleet::estimate_demand_ms(
    const std::vector<gpu::DeviceProfile>& devices, int horizon_frames) const {
  // Coarse, deterministic planning estimate of a deployment's steady-state
  // per-frame GPU busy time: one full-frame inspection per camera per
  // horizon, plus assumed_tasks_per_camera partial tasks per regular frame,
  // each costing its per-slot share of a mid-class batch.
  const double T = static_cast<double>(std::max(1, horizon_frames));
  double demand = 0.0;
  for (const gpu::DeviceProfile& dev : devices) {
    const auto classes = dev.size_class_count();
    const auto mid = static_cast<geom::SizeClassId>(
        classes >= 3 ? 2 : (classes > 0 ? classes - 1 : 0));
    const double per_task =
        classes > 0
            ? dev.batch_latency_ms(mid) / static_cast<double>(dev.batch_limit(mid))
            : 0.0;
    demand += dev.full_frame_ms() / T +
              (T - 1.0) / T * cfg_.assumed_tasks_per_camera * per_task;
  }
  return demand;
}

double Fleet::session_demand_ms(const Session& s) const {
  const double per_frame =
      s.frames > 0 ? s.busy_sum_ms / static_cast<double>(s.frames)
                   : s.static_demand_ms;
  return per_frame / static_cast<double>(s.stride);
}

AdmitResult Fleet::admit(const SessionSpec& spec) {
  AdmitResult result;

  // Probe the deployment's device profiles without building the (expensive)
  // pipeline: scenario construction is cheap, association training is not.
  std::vector<gpu::DeviceProfile> devices;
  {
    const sim::Scenario probe =
        sim::make_scenario(spec.scenario, spec.pipeline.seed);
    for (const sim::ScenarioCamera& cam : probe.cameras)
      devices.push_back(cam.device);
  }
  const double demand =
      estimate_demand_ms(devices, spec.pipeline.horizon_frames);

  double current = 0.0;
  for (const auto& s : sessions_)
    if (s->state == SessionState::kActive) current += session_demand_ms(*s);

  bool tight = spec.pipeline.tight_masks;
  int stride = 1;
  result.projected_ms = current + demand;
  if (cfg_.slo_ms > 0.0 && result.projected_ms > cfg_.slo_ms) {
    // Degrade ladder: mask tightening sheds the shared-coverage slice of the
    // partial load, rate halving amortizes the whole session over two
    // ticks; the combination applies both.
    constexpr double kTightFactor = 0.75;
    struct Mode {
      bool tight;
      int stride;
      double factor;
    };
    const Mode ladder[] = {{true, 1, kTightFactor},
                           {false, 2, 0.5},
                           {true, 2, 0.5 * kTightFactor}};
    bool fitted = false;
    if (cfg_.allow_degrade) {
      for (const Mode& mode : ladder) {
        if (current + demand * mode.factor <= cfg_.slo_ms) {
          tight = mode.tight || tight;
          stride = mode.stride;
          result.projected_ms = current + demand * mode.factor;
          fitted = true;
          break;
        }
      }
    }
    if (!fitted) {
      ++rejected_;
      result.reason = "projected latency exceeds SLO even fully degraded";
      record(runtime::TraceEventType::kSessionReject, -1,
             result.projected_ms);
      return result;
    }
  }

  auto session = std::make_unique<Session>();
  session->id = sessions_.empty() ? 0 : sessions_.back()->id + 1;
  session->spec = spec;
  session->spec.pipeline.tight_masks = tight;
  session->stride = stride;
  if (stride > 1) {
    // Spread rate-halved sessions across both phases to balance the ticks.
    int halved = 0;
    for (const auto& s : sessions_) halved += (s->stride > 1);
    session->phase = halved % 2;
  }
  session->devices = std::move(devices);
  session->static_demand_ms = demand;
  session->pipeline = std::make_unique<runtime::Pipeline>(
      spec.scenario, session->spec.pipeline, &pool_);

  result.session_id = session->id;
  result.admitted = true;
  result.masks_tightened = tight && !spec.pipeline.tight_masks;
  result.rate_halved = stride > 1;
  record(runtime::TraceEventType::kSessionAdmit, session->id,
         result.projected_ms);
  sessions_.push_back(std::move(session));
  return result;
}

bool Fleet::evict(int id) {
  Session* s = find(id);
  if (!s || s->state == SessionState::kEvicted) return false;
  s->final_result = s->pipeline->result();
  s->pipeline.reset();
  s->state = SessionState::kEvicted;
  ++evicted_;
  record(runtime::TraceEventType::kSessionEvict, id, 0.0);
  return true;
}

bool Fleet::pause(int id) {
  Session* s = find(id);
  if (!s || s->state != SessionState::kActive) return false;
  s->state = SessionState::kPaused;
  record(runtime::TraceEventType::kSessionPause, id, 0.0);
  return true;
}

bool Fleet::resume(int id) {
  Session* s = find(id);
  if (!s || s->state != SessionState::kPaused) return false;
  s->state = SessionState::kActive;
  record(runtime::TraceEventType::kSessionResume, id, 0.0);
  return true;
}

runtime::PipelineResult Fleet::session_result(int id) const {
  const Session* s = find(id);
  if (!s) return {};
  return s->pipeline ? s->pipeline->result() : s->final_result;
}

void Fleet::step() {
  const long tick = ticks_;

  // 1. Sessions due this tick (active, stride phase matches).
  std::vector<Session*> due;
  for (auto& s : sessions_)
    if (s->state == SessionState::kActive &&
        tick % s->stride == s->phase % s->stride)
      due.push_back(s.get());

  // 2. Dispatch: order the due sessions, then defer from the back while the
  // projected tick demand exceeds the SLO (at least one session always
  // runs). Round-robin rotates the order each tick so the deferral burden
  // is shared; weighted-priority puts low weights at the back.
  if (cfg_.dispatch == DispatchPolicy::kWeightedPriority) {
    std::stable_sort(due.begin(), due.end(), [](Session* a, Session* b) {
      if (a->spec.weight != b->spec.weight)
        return a->spec.weight > b->spec.weight;
      return a->id < b->id;
    });
  } else if (!due.empty()) {
    std::rotate(due.begin(),
                due.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(tick) % due.size()),
                due.end());
  }
  std::vector<Session*> chosen;
  std::size_t deferred = 0;
  if (cfg_.slo_ms > 0.0) {
    double projected = 0.0;
    for (Session* s : due) {
      const double d = session_demand_ms(*s) *
                       static_cast<double>(s->stride);  // full frame this tick
      if (!chosen.empty() && projected + d > cfg_.slo_ms) {
        ++s->deferred_ticks;
        ++deferred;
        record(runtime::TraceEventType::kSessionDefer, s->id, projected + d);
        continue;
      }
      projected += d;
      chosen.push_back(s);
    }
  } else {
    chosen = due;
  }

  // 3. Step the chosen sessions concurrently on the shared pool. Sessions
  // only touch their own state (and the nested-safe pool), so this is
  // deterministic for any worker count.
  std::vector<runtime::FrameStats> stats(chosen.size());
  pool_.run_tiles(chosen.size(), [&](std::size_t i) {
    stats[i] = chosen[i]->pipeline->run_frame();
  });

  // 4. Cross-session GPU arbitration over the stepped sessions' work, in
  // ascending session id for deterministic submission order.
  std::vector<Session*> ordered = chosen;
  std::sort(ordered.begin(), ordered.end(),
            [](Session* a, Session* b) { return a->id < b->id; });
  arbiter_.begin_tick();
  for (Session* s : ordered) {
    const auto& work = s->pipeline->last_gpu_work();
    for (std::size_t cam = 0; cam < work.size(); ++cam)
      arbiter_.submit(s->id, static_cast<int>(cam),
                      s->devices[cam], work[cam]);
  }
  const TickPlan plan = arbiter_.plan_tick();
  shared_batches_ += plan.shared_batches;
  isolated_batches_ += plan.isolated_batches;
  shared_busy_ms_ += plan.shared_busy_ms;
  isolated_busy_ms_ += plan.isolated_busy_ms;
  tick_busy_ms_.add(plan.shared_busy_ms);
  queue_depth_.add(static_cast<double>(deferred));

  // 5. Per-session rollups: frame latency = slowest camera (paper
  // semantics), demand = total attributed busy.
  for (Session* s : ordered) {
    double frame_ms = 0.0, frame_iso_ms = 0.0, busy = 0.0;
    for (const Attribution& a : plan.shares) {
      if (a.session != s->id) continue;
      frame_ms = std::max(frame_ms, a.attributed_ms);
      frame_iso_ms = std::max(frame_iso_ms, a.isolated_ms);
      busy += a.attributed_ms;
    }
    s->latency_ms.add(frame_ms);
    s->isolated_ms.add(frame_iso_ms);
    s->busy_sum_ms += busy;
    ++s->frames;
    if (cfg_.slo_ms > 0.0 && frame_ms > cfg_.slo_ms) ++s->slo_violations;
  }

  ++ticks_;
}

void Fleet::run(int ticks) {
  for (int t = 0; t < ticks; ++t) step();
}

FleetSnapshot Fleet::snapshot() const {
  FleetSnapshot snap;
  snap.ticks = ticks_;
  snap.admitted = static_cast<int>(sessions_.size());
  snap.rejected = rejected_;
  snap.evicted = evicted_;
  snap.shared_batches = shared_batches_;
  snap.isolated_batches = isolated_batches_;
  snap.shared_busy_ms = shared_busy_ms_;
  snap.isolated_busy_ms = isolated_busy_ms_;
  snap.mean_occupancy = cfg_.frame_period_ms > 0.0
                            ? tick_busy_ms_.mean() / cfg_.frame_period_ms
                            : 0.0;
  snap.p95_tick_busy_ms =
      tick_busy_ms_.count() ? tick_busy_ms_.percentile(95.0) : 0.0;
  snap.mean_queue_depth = queue_depth_.mean();
  for (const auto& s : sessions_) {
    SessionSnapshot ss;
    ss.id = s->id;
    ss.name = s->spec.name;
    ss.state = s->state;
    ss.weight = s->spec.weight;
    ss.stride = s->stride;
    ss.tight_masks = s->spec.pipeline.tight_masks;
    ss.frames = s->frames;
    ss.deferred_ticks = s->deferred_ticks;
    ss.slo_violations = s->slo_violations;
    if (s->latency_ms.count()) {
      ss.p50_ms = s->latency_ms.percentile(50.0);
      ss.p95_ms = s->latency_ms.percentile(95.0);
      ss.p99_ms = s->latency_ms.percentile(99.0);
      ss.mean_ms = s->latency_ms.mean();
      ss.mean_isolated_ms = s->isolated_ms.mean();
    }
    ss.object_recall = s->pipeline ? s->pipeline->result().object_recall
                                   : s->final_result.object_recall;
    snap.sessions.push_back(std::move(ss));
  }
  return snap;
}

std::string FleetSnapshot::to_json() const {
  util::Json::Object fleet;
  fleet["ticks"] = util::Json(static_cast<double>(ticks));
  fleet["admitted"] = util::Json(admitted);
  fleet["rejected"] = util::Json(rejected);
  fleet["evicted"] = util::Json(evicted);
  fleet["shared_batches"] = util::Json(static_cast<double>(shared_batches));
  fleet["isolated_batches"] =
      util::Json(static_cast<double>(isolated_batches));
  fleet["shared_busy_ms"] = util::Json(shared_busy_ms);
  fleet["isolated_busy_ms"] = util::Json(isolated_busy_ms);
  fleet["mean_occupancy"] = util::Json(mean_occupancy);
  fleet["p95_tick_busy_ms"] = util::Json(p95_tick_busy_ms);
  fleet["mean_queue_depth"] = util::Json(mean_queue_depth);

  util::Json::Array session_array;
  for (const SessionSnapshot& s : sessions) {
    util::Json::Object obj;
    obj["id"] = util::Json(s.id);
    obj["name"] = util::Json(s.name);
    obj["state"] = util::Json(to_string(s.state));
    obj["weight"] = util::Json(s.weight);
    obj["stride"] = util::Json(s.stride);
    obj["tight_masks"] = util::Json(s.tight_masks);
    obj["frames"] = util::Json(static_cast<double>(s.frames));
    obj["deferred_ticks"] = util::Json(static_cast<double>(s.deferred_ticks));
    obj["slo_violations"] = util::Json(static_cast<double>(s.slo_violations));
    obj["p50_ms"] = util::Json(s.p50_ms);
    obj["p95_ms"] = util::Json(s.p95_ms);
    obj["p99_ms"] = util::Json(s.p99_ms);
    obj["mean_ms"] = util::Json(s.mean_ms);
    obj["mean_isolated_ms"] = util::Json(s.mean_isolated_ms);
    obj["object_recall"] = util::Json(s.object_recall);
    session_array.push_back(util::Json(std::move(obj)));
  }

  util::Json::Object doc;
  doc["fleet"] = util::Json(std::move(fleet));
  doc["sessions"] = util::Json(std::move(session_array));
  return util::Json(std::move(doc)).dump();
}

}  // namespace mvs::fleet

#include "fleet/fleet.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numeric>

#include "obs/obs.hpp"
#include "policy/policy.hpp"
#include "sim/scenario.hpp"
#include "util/json.hpp"

namespace mvs::fleet {

const char* to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kWeightedPriority: return "weighted";
  }
  return "?";
}

std::optional<DispatchPolicy> parse_dispatch(std::string name) {
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name == "rr" || name == "round-robin") return DispatchPolicy::kRoundRobin;
  if (name == "weighted" || name == "weighted-priority")
    return DispatchPolicy::kWeightedPriority;
  return std::nullopt;
}

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kActive: return "active";
    case SessionState::kPaused: return "paused";
    case SessionState::kEvicted: return "evicted";
  }
  return "?";
}

std::optional<FleetConfig> make_fleet_config(
    const runtime::FleetRunConfig& config, std::string* error) {
  const auto dispatch = parse_dispatch(config.dispatch);
  if (!dispatch) {
    if (error) *error = "unknown dispatch policy: " + config.dispatch;
    return std::nullopt;
  }
  FleetConfig cfg;
  cfg.slo_ms = config.slo_ms;
  cfg.frame_period_ms = config.frame_period_ms;
  cfg.dispatch = *dispatch;
  cfg.threads = config.threads;
  cfg.allow_degrade = config.allow_degrade;
  cfg.assumed_tasks_per_camera = config.assumed_tasks_per_camera;
  cfg.readmit_interval = config.readmit_interval;
  cfg.readmit_low_water = config.readmit_low_water;
  cfg.readmit_high_water = config.readmit_high_water;
  cfg.allow_split = config.allow_split;
  if (config.dispatch_overhead_ms < 0.0) {
    if (error) *error = "dispatch_overhead_ms must be >= 0";
    return std::nullopt;
  }
  cfg.dispatch_overhead_ms = config.dispatch_overhead_ms;
  return cfg;
}

struct Fleet::Session {
  int id = -1;
  SessionSpec spec;
  SessionState state = SessionState::kActive;
  int fps = 0;           ///< resolved native rate (base rate when spec.fps==0)
  int period_ticks = 1;  ///< wheel ticks between native frames
  int stride = 1;        ///< 2 when frame-rate halved (degrade ladder)
  int phase = 0;         ///< wheel-tick firing offset
  bool degraded_rate = false;   ///< rate halving applied BY the fleet
  bool degraded_tight = false;  ///< mask tightening applied BY the fleet
  std::unique_ptr<runtime::Pipeline> pipeline;
  std::vector<gpu::DeviceProfile> devices;
  double static_demand_ms = 0.0;
  /// Batch-split debt: tasks deferred to this session's next stepped
  /// submission, per camera.
  std::map<int, std::vector<geom::SizeClassId>> carryover;

  long frames = 0;
  long deferred_ticks = 0;
  long slo_violations = 0;
  util::SampleSet latency_ms;       ///< per-frame attributed + queueing
  util::SampleSet isolated_ms;      ///< dedicated-device counterfactual
  util::SampleSet queue_ms;         ///< per-frame device-pool queueing
  double busy_sum_ms = 0.0;         ///< Σ attributed over all cameras/frames
  /// Result snapshot frozen at eviction (the pipeline is destroyed then).
  runtime::PipelineResult final_result;
};

Fleet::Fleet(const FleetConfig& config)
    : cfg_(config),
      pool_(static_cast<std::size_t>(std::max(0, config.threads))) {
  base_fps_ = std::max(
      1, static_cast<int>(std::lround(
             1000.0 / std::max(1e-6, cfg_.frame_period_ms))));
  wheel_hz_ = base_fps_;
}

Fleet::~Fleet() = default;

void Fleet::attach_trace(runtime::TraceRecorder* trace) { trace_ = trace; }

void Fleet::record(runtime::TraceEventType type, int session_id,
                   double value) {
  if (trace_) trace_->record({ticks_, session_id, type, 0, value});
  // Every lifecycle decision (admit/reject/defer/readmit/evict/...) funnels
  // through here; one counter per event type re-expresses them as metrics.
  if (obs::enabled())
    obs::metrics()
        .counter(std::string("fleet.events.") + runtime::to_string(type))
        .add(1);
}

Fleet::Session* Fleet::find(int id) {
  for (auto& s : sessions_)
    if (s->id == id) return s.get();
  return nullptr;
}

const Fleet::Session* Fleet::find(int id) const {
  for (const auto& s : sessions_)
    if (s->id == id) return s.get();
  return nullptr;
}

std::size_t Fleet::session_count() const {
  std::size_t n = 0;
  for (const auto& s : sessions_) n += (s->state != SessionState::kEvicted);
  return n;
}

SessionState Fleet::state(int id) const {
  const Session* s = find(id);
  return s ? s->state : SessionState::kEvicted;
}

double Fleet::estimate_demand_ms(
    const std::vector<gpu::DeviceProfile>& devices,
    const runtime::PipelineConfig& pipe) const {
  // Coarse, deterministic planning estimate of a deployment's steady-state
  // per-frame GPU busy time: one full-frame inspection per camera per
  // horizon, plus assumed_tasks_per_camera partial tasks per regular frame,
  // each costing its per-slot share of a mid-class batch. The partial term
  // scales by the frame policy's expected detect ratio (track-only frames
  // submit zero slices), each class's cost is divided by its current pool
  // width (a 3-wide pool absorbs ~3x the demand per tick), and a non-zero
  // dispatch overhead charges roughly one batch dispatch per firing.
  const double T = static_cast<double>(std::max(1, pipe.horizon_frames));
  const double detect = policy::demand_factor(pipe.frame_policy);
  double demand = 0.0;
  for (const gpu::DeviceProfile& dev : devices) {
    const auto classes = dev.size_class_count();
    const auto mid = static_cast<geom::SizeClassId>(
        classes >= 3 ? 2 : (classes > 0 ? classes - 1 : 0));
    const double per_task =
        classes > 0
            ? dev.batch_latency_ms(mid) / static_cast<double>(dev.batch_limit(mid))
            : 0.0;
    double per_frame =
        dev.full_frame_ms() / T +
        (T - 1.0) / T * cfg_.assumed_tasks_per_camera * per_task * detect;
    if (cfg_.dispatch_overhead_ms > 0.0)
      per_frame += cfg_.dispatch_overhead_ms * (1.0 / T + (T - 1.0) / T * detect);
    demand += per_frame /
              static_cast<double>(std::max(1, arbiter_.device_count(dev.name())));
  }
  return demand;
}

double Fleet::session_frame_ms(const Session& s) const {
  return s.frames > 0 ? s.busy_sum_ms / static_cast<double>(s.frames)
                      : s.static_demand_ms;
}

double Fleet::session_demand_ms(const Session& s) const {
  // Demand per base frame period: per-frame cost x how often the session
  // fires relative to the base rate. A full-rate base-fps session with
  // stride 1 contributes exactly its per-frame cost.
  return session_frame_ms(s) * static_cast<double>(s.fps) /
         (static_cast<double>(s.stride) * static_cast<double>(base_fps_));
}

void Fleet::grow_wheel(int fps) {
  const long lcm = static_cast<long>(wheel_hz_) / std::gcd(wheel_hz_, fps) *
                   static_cast<long>(fps);
  if (lcm == wheel_hz_) return;
  const long m = lcm / wheel_hz_;
  // Rescale every firing pattern so established sessions keep their exact
  // cadence and phase relationships across the growth.
  for (auto& s : sessions_) {
    s->period_ticks *= static_cast<int>(m);
    s->phase *= static_cast<int>(m);
  }
  ticks_ *= m;
  wheel_hz_ = static_cast<int>(lcm);
}

AdmitResult Fleet::admit(const SessionSpec& spec) {
  AdmitResult result;
  if (spec.fps < 0) {
    ++rejected_;
    result.reason = "negative native fps";
    record(runtime::TraceEventType::kSessionReject, -1, 0.0);
    return result;
  }
  const int fps = spec.fps > 0 ? spec.fps : base_fps_;

  // Probe the deployment's device profiles without building the (expensive)
  // pipeline: scenario construction is cheap, association training is not.
  std::vector<gpu::DeviceProfile> devices;
  {
    const sim::Scenario probe =
        sim::make_scenario(spec.scenario, spec.pipeline.seed);
    for (const sim::ScenarioCamera& cam : probe.cameras)
      devices.push_back(cam.device);
  }
  // Demand normalized to one base period: a session firing faster than the
  // base rate costs proportionally more per period.
  const double demand =
      estimate_demand_ms(devices, spec.pipeline) *
      static_cast<double>(fps) / static_cast<double>(base_fps_);

  double current = 0.0;
  for (const auto& s : sessions_)
    if (s->state == SessionState::kActive) current += session_demand_ms(*s);

  // Split-aware headroom: with batch splitting on, an over-full tick can
  // shed half a batch to the next slot instead of missing the SLO, so the
  // admission ceiling relaxes by the spillable fraction.
  constexpr double kSplitHeadroom = 1.2;
  const double ceiling =
      cfg_.slo_ms * (cfg_.allow_split ? kSplitHeadroom : 1.0);

  bool tight = spec.pipeline.tight_masks;
  int stride = 1;
  result.projected_ms = current + demand;
  if (cfg_.slo_ms > 0.0 && result.projected_ms > ceiling) {
    // Degrade ladder: mask tightening sheds the shared-coverage slice of the
    // partial load, rate halving amortizes the whole session over two
    // ticks; the combination applies both.
    constexpr double kTightFactor = 0.75;
    struct Mode {
      bool tight;
      int stride;
      double factor;
    };
    const Mode ladder[] = {{true, 1, kTightFactor},
                           {false, 2, 0.5},
                           {true, 2, 0.5 * kTightFactor}};
    bool fitted = false;
    if (cfg_.allow_degrade) {
      for (const Mode& mode : ladder) {
        if (current + demand * mode.factor <= ceiling) {
          tight = mode.tight || tight;
          stride = mode.stride;
          result.projected_ms = current + demand * mode.factor;
          fitted = true;
          break;
        }
      }
    }
    if (!fitted) {
      ++rejected_;
      result.reason = "projected latency exceeds SLO even fully degraded";
      record(runtime::TraceEventType::kSessionReject, -1,
             result.projected_ms);
      return result;
    }
  }

  grow_wheel(fps);

  auto session = std::make_unique<Session>();
  session->id = sessions_.empty() ? 0 : sessions_.back()->id + 1;
  session->spec = spec;
  session->spec.pipeline.tight_masks = tight;
  // Per-session fault profile (the self-contained session API): replaces
  // whatever the pipeline config carried and, unless fault-free, selects
  // the lossy transport.
  if (spec.faults) {
    session->spec.pipeline.faults = *spec.faults;
    if (!spec.faults->fault_free())
      session->spec.pipeline.transport = net::TransportKind::kLossy;
  }
  session->fps = fps;
  session->period_ticks = wheel_hz_ / fps;
  session->stride = stride;
  session->degraded_rate = stride > 1;
  session->degraded_tight = tight && !spec.pipeline.tight_masks;
  if (stride > 1) {
    // Spread rate-halved sessions across both phases to balance the ticks.
    int halved = 0;
    for (const auto& s : sessions_) halved += (s->stride > 1);
    session->phase = (halved % 2) * session->period_ticks;
  }
  session->devices = std::move(devices);
  session->static_demand_ms =
      estimate_demand_ms(session->devices, session->spec.pipeline);
  session->pipeline = std::make_unique<runtime::Pipeline>(
      spec.scenario, session->spec.pipeline, &pool_);

  // Register this deployment's accelerator classes with the arbiter so the
  // pool sizes show up in snapshots (default one device per class).
  for (const gpu::DeviceProfile& dev : session->devices)
    if (!arbiter_.device_counts().count(dev.name()))
      arbiter_.set_device_count(dev.name(), 1);

  result.session_id = session->id;
  result.admitted = true;
  result.masks_tightened = session->degraded_tight;
  result.rate_halved = stride > 1;
  record(runtime::TraceEventType::kSessionAdmit, session->id,
         result.projected_ms);
  sessions_.push_back(std::move(session));
  return result;
}

bool Fleet::evict(int id) {
  Session* s = find(id);
  if (!s || s->state == SessionState::kEvicted) return false;
  s->final_result = s->pipeline->result();
  s->pipeline.reset();
  s->carryover.clear();
  s->state = SessionState::kEvicted;
  ++evicted_;
  record(runtime::TraceEventType::kSessionEvict, id, 0.0);
  return true;
}

bool Fleet::pause(int id) {
  Session* s = find(id);
  if (!s || s->state != SessionState::kActive) return false;
  s->state = SessionState::kPaused;
  record(runtime::TraceEventType::kSessionPause, id, 0.0);
  return true;
}

bool Fleet::resume(int id) {
  Session* s = find(id);
  if (!s || s->state != SessionState::kPaused) return false;
  s->state = SessionState::kActive;
  record(runtime::TraceEventType::kSessionResume, id, 0.0);
  return true;
}

int Fleet::scale_devices(const std::string& device_class, int delta) {
  const int next = std::max(1, arbiter_.device_count(device_class) + delta);
  arbiter_.set_device_count(device_class, next);
  record(runtime::TraceEventType::kDeviceScale, -1,
         static_cast<double>(next));
  return next;
}

runtime::PipelineResult Fleet::session_result(int id) const {
  const Session* s = find(id);
  if (!s) return {};
  return s->pipeline ? s->pipeline->result() : s->final_result;
}

void Fleet::readmit_scan() {
  const double mean_busy =
      window_busy_ms_ / static_cast<double>(std::max(1, window_ticks_));
  window_busy_ms_ = 0.0;
  window_ticks_ = 0;

  // Above the high-water mark: push one session one rung DOWN the degrade
  // ladder per scan — tighten masks first, then halve the rate — the exact
  // mirror of re-admission below (which restores rate first, then masks).
  // Highest session id degrades first (the mirror of lowest-id-wins on the
  // way back up), so the longest-served sessions keep quality longest.
  // Between the water marks nothing changes in either direction: the band
  // is the hysteresis that keeps rungs from flapping scan to scan.
  if (mean_busy > cfg_.readmit_high_water * cfg_.slo_ms) {
    if (!cfg_.allow_degrade) return;
    for (auto it = sessions_.rbegin(); it != sessions_.rend(); ++it) {
      Session* s = it->get();
      if (s->state != SessionState::kActive || s->degraded_tight) continue;
      s->spec.pipeline.tight_masks = true;
      s->pipeline->set_tight_masks(true);
      s->degraded_tight = true;
      ++redegraded_;
      record(runtime::TraceEventType::kSessionRedegrade, s->id, mean_busy);
      return;
    }
    for (auto it = sessions_.rbegin(); it != sessions_.rend(); ++it) {
      Session* s = it->get();
      if (s->state != SessionState::kActive || s->degraded_rate) continue;
      s->stride = 2;
      s->degraded_rate = true;
      ++redegraded_;
      record(runtime::TraceEventType::kSessionRedegrade, s->id, mean_busy);
      return;
    }
    return;
  }
  if (mean_busy >= cfg_.readmit_low_water * cfg_.slo_ms) return;

  double current = 0.0;
  for (const auto& s : sessions_)
    if (s->state == SessionState::kActive) current += session_demand_ms(*s);
  const double ceiling = cfg_.readmit_high_water * cfg_.slo_ms;

  // Reverse the degrade ladder one rung per scan: restore full rate first
  // (it halves the latency penalty), then un-tighten masks (recall). Only
  // degradation the FLEET applied is reversed; lowest session id wins ties.
  for (auto& s : sessions_) {
    if (s->state != SessionState::kActive || !s->degraded_rate) continue;
    // Going from stride 2 to 1 doubles the session's per-period demand.
    const double additional = session_demand_ms(*s);
    if (current + additional > ceiling) continue;
    s->stride = 1;
    s->degraded_rate = false;
    ++readmitted_;
    record(runtime::TraceEventType::kSessionReadmit, s->id,
           current + additional);
    return;
  }
  for (auto& s : sessions_) {
    if (s->state != SessionState::kActive || !s->degraded_tight) continue;
    // Un-tightening restores the shed shared-coverage load: the tightened
    // demand is 0.75x the full demand, so full costs an extra third.
    constexpr double kTightFactor = 0.75;
    const double additional =
        session_demand_ms(*s) * (1.0 / kTightFactor - 1.0);
    if (current + additional > ceiling) continue;
    s->spec.pipeline.tight_masks = false;
    s->pipeline->set_tight_masks(false);
    s->degraded_tight = false;
    ++readmitted_;
    record(runtime::TraceEventType::kSessionReadmit, s->id,
           current + additional);
    return;
  }
}

void Fleet::step() {
  MVS_SPAN("fleet.tick");
  const long tick = ticks_;

  // 1. Sessions due this tick (active, native period x stride matches).
  std::vector<Session*>& due = due_scratch_;
  due.clear();
  for (auto& s : sessions_) {
    const long cycle = static_cast<long>(s->period_ticks) * s->stride;
    if (s->state == SessionState::kActive && tick % cycle == s->phase % cycle)
      due.push_back(s.get());
  }

  // 2. Dispatch: order the due sessions, then defer from the back while the
  // projected tick demand exceeds the SLO (at least one session always
  // runs). Round-robin rotates the order each tick so the deferral burden
  // is shared; weighted-priority puts low weights at the back.
  if (cfg_.dispatch == DispatchPolicy::kWeightedPriority) {
    std::stable_sort(due.begin(), due.end(), [](Session* a, Session* b) {
      if (a->spec.weight != b->spec.weight)
        return a->spec.weight > b->spec.weight;
      return a->id < b->id;
    });
  } else if (!due.empty()) {
    std::rotate(due.begin(),
                due.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(tick) % due.size()),
                due.end());
  }
  std::vector<Session*>& chosen = chosen_scratch_;
  chosen.clear();
  std::size_t deferred = 0;
  if (cfg_.slo_ms > 0.0) {
    double projected = 0.0;
    for (Session* s : due) {
      const double d = session_frame_ms(*s);  // full frame cost this tick
      if (!chosen.empty() && projected + d > cfg_.slo_ms) {
        ++s->deferred_ticks;
        ++deferred;
        record(runtime::TraceEventType::kSessionDefer, s->id, projected + d);
        continue;
      }
      projected += d;
      chosen.push_back(s);
    }
  } else {
    chosen.assign(due.begin(), due.end());
  }

  // 3. Step the chosen sessions concurrently on the shared pool. Sessions
  // only touch their own state (and the nested-safe pool), so this is
  // deterministic for any worker count. The per-frame stats live inside
  // each pipeline (run_frame_ref) — nothing is copied out here.
  pool_.run_tiles(chosen.size(), [&](std::size_t i) {
    MVS_SPAN("fleet.session");
    chosen[i]->pipeline->run_frame_ref();
  });

  // 4. Cross-session GPU arbitration over the stepped sessions' work, in
  // ascending session id for deterministic submission order. Batch-split
  // debt from earlier ticks rides along with the owning camera's work.
  std::vector<Session*>& ordered = ordered_scratch_;
  ordered.assign(chosen.begin(), chosen.end());
  std::sort(ordered.begin(), ordered.end(),
            [](Session* a, Session* b) { return a->id < b->id; });
  arbiter_.begin_tick();
  for (Session* s : ordered) {
    const auto& work = s->pipeline->last_gpu_work();
    for (std::size_t cam = 0; cam < work.size(); ++cam) {
      const int cam_id = static_cast<int>(cam);
      const auto debt = s->carryover.find(cam_id);
      if (debt != s->carryover.end() && !debt->second.empty()) {
        runtime::CameraGpuWork& merged = merged_scratch_;
        merged.full_frame = work[cam].full_frame;
        merged.tasks.assign(work[cam].tasks.begin(), work[cam].tasks.end());
        merged.tasks.insert(merged.tasks.end(), debt->second.begin(),
                            debt->second.end());
        debt->second.clear();
        arbiter_.submit(s->id, cam_id, s->devices[cam], merged,
                        s->spec.weight);
      } else {
        arbiter_.submit(s->id, cam_id, s->devices[cam], work[cam],
                        s->spec.weight);
      }
    }
  }
  TickContext ctx;
  ctx.slo_ms = cfg_.slo_ms;
  ctx.allow_split = cfg_.allow_split;
  ctx.dispatch_overhead_ms = cfg_.dispatch_overhead_ms;
  TickPlan& plan = plan_scratch_;
  {
    MVS_SPAN("fleet.arbiter");
    arbiter_.plan_tick_into(ctx, plan);
  }
  shared_batches_ += plan.shared_batches;
  isolated_batches_ += plan.isolated_batches;
  shared_busy_ms_ += plan.shared_busy_ms;
  isolated_busy_ms_ += plan.isolated_busy_ms;
  total_queue_ms_ += plan.queue_ms_total;
  batch_splits_ += plan.splits;
  tick_busy_ms_.add(plan.shared_busy_ms);
  queue_depth_.add(static_cast<double>(deferred));
  if (obs::enabled()) {
    // Fleet rollups re-expressed as registry metrics (the SampleSet-based
    // snapshot stays the bit-identical source for FleetSnapshot JSON). All
    // values here are simulated/deterministic, so they carry the full
    // fingerprint.
    obs::MetricsRegistry& m = obs::metrics();
    m.counter("fleet.ticks").add(1);
    m.counter("fleet.frames").add(static_cast<long long>(chosen.size()));
    m.counter("fleet.deferred").add(static_cast<long long>(deferred));
    m.counter("fleet.shared_batches").add(plan.shared_batches);
    m.counter("fleet.isolated_batches").add(plan.isolated_batches);
    m.counter("fleet.batch_splits").add(plan.splits);
    m.histogram("fleet.tick_busy_ms").record(plan.shared_busy_ms);
    m.histogram("fleet.queue_depth").record(static_cast<double>(deferred));
    m.gauge("fleet.sessions").set(static_cast<double>(sessions_.size()));
  }

  // Deferred task slices become carryover debt charged on the tick that
  // actually runs them (conservation-exact attribution).
  for (const DeferredSlice& slice : plan.deferred) {
    Session* owner = find(slice.session);
    if (!owner || owner->state == SessionState::kEvicted) continue;
    auto& debt = owner->carryover[slice.camera];
    debt.insert(debt.end(), static_cast<std::size_t>(slice.count),
                slice.size_class);
    record(runtime::TraceEventType::kBatchSplit, slice.session,
           static_cast<double>(slice.count));
  }

  // 5. Per-session rollups: frame latency = slowest camera (paper
  // semantics) including device-pool queueing; demand = attributed busy of
  // the batches this tick actually executed.
  for (Session* s : ordered) {
    double frame_ms = 0.0, frame_iso_ms = 0.0, frame_queue_ms = 0.0;
    double busy = 0.0;
    for (const Attribution& a : plan.shares) {
      if (a.session != s->id) continue;
      frame_ms = std::max(frame_ms, a.attributed_ms + a.queue_ms);
      frame_iso_ms = std::max(frame_iso_ms, a.isolated_ms);
      frame_queue_ms = std::max(frame_queue_ms, a.queue_ms);
      busy += a.attributed_ms;
    }
    s->latency_ms.add(frame_ms);
    s->isolated_ms.add(frame_iso_ms);
    s->queue_ms.add(frame_queue_ms);
    if (obs::enabled()) {
      const std::string prefix = "fleet.session." + std::to_string(s->id);
      obs::MetricsRegistry& m = obs::metrics();
      m.histogram(prefix + ".latency_ms").record(frame_ms);
      m.histogram(prefix + ".queue_ms").record(frame_queue_ms);
    }
    s->busy_sum_ms += busy;
    ++s->frames;
    const double slo = s->spec.slo_ms >= 0.0 ? s->spec.slo_ms : cfg_.slo_ms;
    if (slo > 0.0 && frame_ms > slo) ++s->slo_violations;
  }

  // 6. Periodic re-admission scan over the windowed mean busy, normalized
  // to base frame periods so wheel growth does not skew the band.
  if (cfg_.slo_ms > 0.0 && cfg_.readmit_interval > 0) {
    window_busy_ms_ += plan.shared_busy_ms *
                       static_cast<double>(wheel_hz_) /
                       static_cast<double>(base_fps_);
    if (++window_ticks_ >= cfg_.readmit_interval) readmit_scan();
  }

  ++ticks_;
}

void Fleet::run(int ticks) {
  for (int t = 0; t < ticks; ++t) step();
}

FleetSnapshot Fleet::snapshot() const {
  FleetSnapshot snap;
  snap.ticks = ticks_;
  snap.wheel_hz = wheel_hz_;
  snap.admitted = static_cast<int>(sessions_.size());
  snap.rejected = rejected_;
  snap.evicted = evicted_;
  snap.readmitted = readmitted_;
  snap.redegraded = redegraded_;
  snap.batch_splits = batch_splits_;
  snap.shared_batches = shared_batches_;
  snap.isolated_batches = isolated_batches_;
  snap.shared_busy_ms = shared_busy_ms_;
  snap.isolated_busy_ms = isolated_busy_ms_;
  snap.total_queue_ms = total_queue_ms_;
  // Tick period in ms at the CURRENT wheel rate, anchored to the configured
  // base period so wheel_hz == base_fps reproduces frame_period_ms exactly.
  const double tick_period_ms =
      cfg_.frame_period_ms * static_cast<double>(base_fps_) /
      static_cast<double>(std::max(1, wheel_hz_));
  snap.mean_occupancy =
      tick_period_ms > 0.0 ? tick_busy_ms_.mean() / tick_period_ms : 0.0;
  snap.p95_tick_busy_ms =
      tick_busy_ms_.count() ? tick_busy_ms_.percentile(95.0) : 0.0;
  snap.mean_queue_depth = queue_depth_.mean();
  for (const auto& [name, count] : arbiter_.device_counts())
    snap.device_pools.emplace_back(name, count);
  for (const auto& s : sessions_) {
    SessionSnapshot ss;
    ss.id = s->id;
    ss.name = s->spec.name;
    ss.state = s->state;
    ss.weight = s->spec.weight;
    ss.fps = s->fps;
    ss.stride = s->stride;
    ss.tight_masks = s->spec.pipeline.tight_masks;
    ss.frames = s->frames;
    ss.deferred_ticks = s->deferred_ticks;
    ss.slo_violations = s->slo_violations;
    ss.slo_ms = s->spec.slo_ms >= 0.0 ? s->spec.slo_ms : cfg_.slo_ms;
    if (s->latency_ms.count()) {
      ss.p50_ms = s->latency_ms.percentile(50.0);
      ss.p95_ms = s->latency_ms.percentile(95.0);
      ss.p99_ms = s->latency_ms.percentile(99.0);
      ss.mean_ms = s->latency_ms.mean();
      ss.mean_isolated_ms = s->isolated_ms.mean();
      ss.mean_queue_ms = s->queue_ms.mean();
    }
    const runtime::PipelineResult result =
        s->pipeline ? s->pipeline->result() : s->final_result;
    ss.object_recall = result.object_recall;
    ss.retries = result.total_retries();
    ss.dropped_msgs = result.total_dropped_msgs();
    snap.total_retries += ss.retries;
    snap.total_dropped_msgs += ss.dropped_msgs;
    snap.sessions.push_back(std::move(ss));
  }
  return snap;
}

std::string FleetSnapshot::to_json() const {
  util::Json::Object fleet;
  fleet["ticks"] = util::Json(static_cast<double>(ticks));
  fleet["wheel_hz"] = util::Json(wheel_hz);
  fleet["admitted"] = util::Json(admitted);
  fleet["rejected"] = util::Json(rejected);
  fleet["evicted"] = util::Json(evicted);
  fleet["readmitted"] = util::Json(readmitted);
  fleet["redegraded"] = util::Json(redegraded);
  fleet["batch_splits"] = util::Json(static_cast<double>(batch_splits));
  fleet["shared_batches"] = util::Json(static_cast<double>(shared_batches));
  fleet["isolated_batches"] =
      util::Json(static_cast<double>(isolated_batches));
  fleet["shared_busy_ms"] = util::Json(shared_busy_ms);
  fleet["isolated_busy_ms"] = util::Json(isolated_busy_ms);
  fleet["total_queue_ms"] = util::Json(total_queue_ms);
  fleet["total_retries"] = util::Json(static_cast<double>(total_retries));
  fleet["total_dropped_msgs"] =
      util::Json(static_cast<double>(total_dropped_msgs));
  fleet["mean_occupancy"] = util::Json(mean_occupancy);
  fleet["p95_tick_busy_ms"] = util::Json(p95_tick_busy_ms);
  fleet["mean_queue_depth"] = util::Json(mean_queue_depth);
  util::Json::Array pools;
  for (const auto& [name, count] : device_pools) {
    util::Json::Object pool;
    pool["class"] = util::Json(name);
    pool["devices"] = util::Json(count);
    pools.push_back(util::Json(std::move(pool)));
  }
  fleet["device_pools"] = util::Json(std::move(pools));

  util::Json::Array session_array;
  for (const SessionSnapshot& s : sessions) {
    util::Json::Object obj;
    obj["id"] = util::Json(s.id);
    obj["name"] = util::Json(s.name);
    obj["state"] = util::Json(to_string(s.state));
    obj["weight"] = util::Json(s.weight);
    obj["fps"] = util::Json(s.fps);
    obj["stride"] = util::Json(s.stride);
    obj["tight_masks"] = util::Json(s.tight_masks);
    obj["frames"] = util::Json(static_cast<double>(s.frames));
    obj["deferred_ticks"] = util::Json(static_cast<double>(s.deferred_ticks));
    obj["slo_violations"] = util::Json(static_cast<double>(s.slo_violations));
    obj["slo_ms"] = util::Json(s.slo_ms);
    obj["p50_ms"] = util::Json(s.p50_ms);
    obj["p95_ms"] = util::Json(s.p95_ms);
    obj["p99_ms"] = util::Json(s.p99_ms);
    obj["mean_ms"] = util::Json(s.mean_ms);
    obj["mean_isolated_ms"] = util::Json(s.mean_isolated_ms);
    obj["mean_queue_ms"] = util::Json(s.mean_queue_ms);
    obj["retries"] = util::Json(static_cast<double>(s.retries));
    obj["dropped_msgs"] = util::Json(static_cast<double>(s.dropped_msgs));
    obj["object_recall"] = util::Json(s.object_recall);
    session_array.push_back(util::Json(std::move(obj)));
  }

  util::Json::Object doc;
  doc["fleet"] = util::Json(std::move(fleet));
  doc["sessions"] = util::Json(std::move(session_array));
  return util::Json(std::move(doc)).dump();
}

}  // namespace mvs::fleet

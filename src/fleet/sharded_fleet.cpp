#include "fleet/sharded_fleet.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "obs/obs.hpp"

namespace mvs::fleet {

ShardedFleet::ShardedFleet(const FleetConfig& config)
    : cfg_(config),
      pool_(static_cast<std::size_t>(std::max(0, config.threads))) {
  const int n = std::max(1, cfg_.shards);
  shards_.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k)
    shards_.push_back(std::make_unique<Shard>(cfg_, k, &pool_));
  inner_to_outer_.resize(static_cast<std::size_t>(n));
  base_fps_ = std::max(
      1, static_cast<int>(std::lround(
             1000.0 / std::max(1e-6, cfg_.frame_period_ms))));
}

ShardedFleet::~ShardedFleet() = default;

void ShardedFleet::attach_trace(runtime::TraceRecorder* trace) {
  trace_ = trace;
  for (auto& s : shards_) s->fleet().attach_trace(trace);
}

void ShardedFleet::record(runtime::TraceEventType type, int session_id,
                          double value, int shard, int migrated_from) {
  if (trace_)
    trace_->record({ticks(), session_id, type, 0, value, shard, migrated_from});
  if (obs::enabled())
    obs::metrics()
        .counter(std::string("fleet.events.") + runtime::to_string(type))
        .add(1);
}

long ShardedFleet::ticks() const { return shards_[0]->fleet().ticks(); }

int ShardedFleet::wheel_hz() const { return shards_[0]->fleet().wheel_hz(); }

std::size_t ShardedFleet::session_count() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->fleet().session_count();
  return n;
}

AdmitResult ShardedFleet::admit(const SessionSpec& spec) {
  // Keep every shard's wheel equal BEFORE placement: a session admitted
  // anywhere must be cadence-representable everywhere, or migration could
  // not preserve its firing pattern.
  if (spec.fps >= 0) {
    const int fps = spec.fps > 0 ? spec.fps : base_fps_;
    for (auto& s : shards_) s->fleet().ensure_wheel(fps);
  }

  // Least-loaded placement over static placement demand; ties go to the
  // lowest index. O(shards), with an O(1) per-shard capacity check.
  Shard* best = nullptr;
  for (auto& s : shards_) {
    if (cfg_.shard_capacity > 0 &&
        s->fleet().session_count() >=
            static_cast<std::size_t>(cfg_.shard_capacity))
      continue;
    if (!best ||
        s->fleet().placed_demand_ms() < best->fleet().placed_demand_ms())
      best = s.get();
  }
  if (!best) {
    AdmitResult result;
    result.reason = "every shard is at shard_capacity";
    ++rejected_;
    record(runtime::TraceEventType::kSessionReject, -1, 0.0);
    return result;
  }

  AdmitResult result = best->fleet().admit(spec);
  if (!result.admitted) return result;  // the shard counted and traced it

  const SessionHandle inner = result.handle;
  const SessionHandle outer = handles_.issue();
  HandleTable::Entry* entry = handles_.find(outer);
  entry->a = best->index();
  entry->b = inner.id;
  entry->c = inner.gen;
  auto& fwd = inner_to_outer_[static_cast<std::size_t>(best->index())];
  if (fwd.size() <= inner.id) fwd.resize(inner.id + 1);
  fwd[inner.id] = outer;
  result.handle = outer;
  result.shard = best->index();
  return result;
}

ShardedFleet::Route ShardedFleet::resolve(SessionHandle handle,
                                          FleetStatus* status) const {
  const HandleTable::Entry* entry = handles_.find(handle, status);
  if (!entry) return {};
  Route route;
  route.shard = shards_[static_cast<std::size_t>(entry->a)].get();
  route.inner = {entry->b, entry->c};
  return route;
}

FleetStatus ShardedFleet::pause(SessionHandle handle) {
  FleetStatus status = FleetStatus::kOk;
  Route route = resolve(handle, &status);
  if (!route.shard) return status;
  return route.shard->fleet().pause(route.inner);
}

FleetStatus ShardedFleet::resume(SessionHandle handle) {
  FleetStatus status = FleetStatus::kOk;
  Route route = resolve(handle, &status);
  if (!route.shard) return status;
  return route.shard->fleet().resume(route.inner);
}

FleetStatus ShardedFleet::evict(SessionHandle handle) {
  FleetStatus status = FleetStatus::kOk;
  Route route = resolve(handle, &status);
  if (!route.shard) return status;
  return route.shard->fleet().evict(route.inner);
}

FleetStatus ShardedFleet::release(SessionHandle handle) {
  FleetStatus status = FleetStatus::kOk;
  Route route = resolve(handle, &status);
  if (!route.shard) return status;
  const FleetStatus inner_status = route.shard->fleet().release(route.inner);
  if (inner_status != FleetStatus::kOk) return inner_status;
  inner_to_outer_[static_cast<std::size_t>(route.shard->index())]
                 [route.inner.id] = {};
  handles_.release(handle);
  return FleetStatus::kOk;
}

SessionState ShardedFleet::state(SessionHandle handle) const {
  Route route = resolve(handle, nullptr);
  if (!route.shard) return SessionState::kEvicted;
  return route.shard->fleet().state(route.inner);
}

runtime::PipelineResult ShardedFleet::result(SessionHandle handle,
                                             FleetStatus* status) const {
  FleetStatus st = FleetStatus::kOk;
  Route route = resolve(handle, &st);
  if (!route.shard) {
    if (status) *status = st;
    return {};
  }
  return route.shard->fleet().result(route.inner, status);
}

int ShardedFleet::scale_devices(const std::string& device_class, int delta) {
  int size = 1;
  for (auto& s : shards_) size = s->fleet().scale_devices(device_class, delta);
  return size;
}

FleetStatus ShardedFleet::move_session(SessionHandle outer, int target_shard) {
  FleetStatus status = FleetStatus::kOk;
  Route route = resolve(outer, &status);
  if (!route.shard) return status;
  if (target_shard < 0 || target_shard >= shard_count())
    return FleetStatus::kUnknownSession;
  if (target_shard == route.shard->index()) return FleetStatus::kInvalidState;

  const int source_shard = route.shard->index();
  std::unique_ptr<SessionRecord> record_ptr =
      route.shard->fleet().detach(route.inner, &status);
  if (!record_ptr) return status;
  inner_to_outer_[static_cast<std::size_t>(source_shard)][route.inner.id] = {};

  // Stamp provenance BEFORE attach: every post-migration lifecycle event
  // the target shard records for this session carries migrated_from.
  record_ptr->migrated_from = source_shard;
  Shard& target = *shards_[static_cast<std::size_t>(target_shard)];
  const SessionHandle inner = target.fleet().attach(std::move(record_ptr));
  HandleTable::Entry* entry = handles_.find(outer);
  entry->a = target_shard;
  entry->b = inner.id;
  entry->c = inner.gen;
  auto& fwd = inner_to_outer_[static_cast<std::size_t>(target_shard)];
  if (fwd.size() <= inner.id) fwd.resize(inner.id + 1);
  fwd[inner.id] = outer;
  ++migrations_;
  record(runtime::TraceEventType::kSessionMigrate, static_cast<int>(outer.id),
         static_cast<double>(target_shard), target_shard, source_shard);
  return FleetStatus::kOk;
}

FleetStatus ShardedFleet::migrate(SessionHandle handle, int target_shard) {
  return move_session(handle, target_shard);
}

void ShardedFleet::rebalance_scan() {
  // One move per scan, and only past the high-water band (hysteresis —
  // same discipline as Fleet::readmit_scan).
  Shard* hot = nullptr;
  Shard* cold = nullptr;
  double total = 0.0;
  for (auto& s : shards_) {
    total += s->window_busy_ms();
    if (!hot || s->window_busy_ms() > hot->window_busy_ms()) hot = s.get();
    if (!cold || s->window_busy_ms() < cold->window_busy_ms()) cold = s.get();
  }
  const double mean = total / static_cast<double>(shards_.size());
  const bool imbalanced =
      hot && cold && hot != cold && mean > 0.0 &&
      hot->window_busy_ms() > cfg_.rebalance_high_water * mean;
  for (auto& s : shards_) s->reset_window();
  if (!imbalanced) return;

  // Cheapest move first: the hottest shard's smallest-demand active
  // session. Migrate only when the move strictly improves the static
  // placement imbalance (placed_hot - d >= placed_cold + d), so the scan
  // cannot ping-pong a session between two near-equal shards.
  const SessionHandle victim = hot->fleet().pick_migration_victim();
  if (!victim.valid()) return;
  const SessionHandle outer =
      inner_to_outer_[static_cast<std::size_t>(hot->index())][victim.id];
  std::unique_ptr<SessionRecord> rec = hot->fleet().detach(victim);
  if (!rec) return;
  const double d = rec->placement_demand_ms;
  Shard* dest = hot->fleet().placed_demand_ms() >=
                        cold->fleet().placed_demand_ms() + d
                    ? cold
                    : hot;  // not an improvement: put it back where it was
  if (dest != hot) rec->migrated_from = hot->index();
  const SessionHandle inner = dest->fleet().attach(std::move(rec));
  inner_to_outer_[static_cast<std::size_t>(hot->index())][victim.id] = {};
  HandleTable::Entry* entry = handles_.find(outer);
  entry->a = dest->index();
  entry->b = inner.id;
  entry->c = inner.gen;
  auto& fwd = inner_to_outer_[static_cast<std::size_t>(dest->index())];
  if (fwd.size() <= inner.id) fwd.resize(inner.id + 1);
  fwd[inner.id] = outer;
  if (dest != hot) {
    ++migrations_;
    record(runtime::TraceEventType::kSessionMigrate, static_cast<int>(outer.id),
           static_cast<double>(dest->index()), dest->index(), hot->index());
  }
}

void ShardedFleet::step() {
  // Shards are fully independent (own arbiter, own sessions, own wheel),
  // so stepping them concurrently on the shared pool is deterministic for
  // any worker count; each shard's internal parallelism nests on the same
  // pool.
  pool_.run_tiles(shards_.size(),
                  [&](std::size_t i) { shards_[i]->fleet().step(); });

  plan_scratch_.clear();
  double busy = 0.0;
  for (auto& s : shards_) {
    const TickPlan& plan = s->observe_tick();
    plan_scratch_.push_back(&plan);
    busy += plan.shared_busy_ms;
  }
  tick_busy_ms_.add(busy);

  // Second merge level: price what a plane-wide merge would save on top of
  // the shard-local merges this tick. Exactly zero with one shard.
  const CrossMergeStats cross =
      cross_shard_merge(plan_scratch_, cfg_.dispatch_overhead_ms);
  cross_batches_saved_ += cross.batches_saved;
  cross_busy_saved_ms_ += cross.busy_saved_ms;

  if (cfg_.rebalance_interval > 0 &&
      ++rebalance_ticks_ >= cfg_.rebalance_interval) {
    rebalance_ticks_ = 0;
    rebalance_scan();
  }

  ++ticks_;
}

FleetSnapshot ShardedFleet::snapshot() const {
  FleetSnapshot snap;
  snap.ticks = ticks();
  snap.wheel_hz = wheel_hz();
  snap.shards = shard_count();
  snap.rejected = rejected_;
  snap.migrations = migrations_;
  snap.cross_batches_saved = cross_batches_saved_;
  snap.cross_busy_saved_ms = cross_busy_saved_ms_;

  std::map<std::string, int> pools;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = *shards_[k];
    FleetSnapshot sub = shard.fleet().snapshot();
    snap.admitted += sub.admitted;
    snap.rejected += sub.rejected;
    snap.evicted += sub.evicted;
    snap.readmitted += sub.readmitted;
    snap.redegraded += sub.redegraded;
    snap.batch_splits += sub.batch_splits;
    snap.shared_batches += sub.shared_batches;
    snap.isolated_batches += sub.isolated_batches;
    snap.shared_busy_ms += sub.shared_busy_ms;
    snap.isolated_busy_ms += sub.isolated_busy_ms;
    snap.total_queue_ms += sub.total_queue_ms;
    snap.total_retries += sub.total_retries;
    snap.total_dropped_msgs += sub.total_dropped_msgs;
    snap.mean_queue_depth += sub.mean_queue_depth;
    snap.slo_alerts_raised += sub.slo_alerts_raised;
    snap.slo_alerts_cleared += sub.slo_alerts_cleared;
    snap.alerting_sessions += sub.alerting_sessions;
    for (const auto& [name, count] : sub.device_pools)
      pools[name] = std::max(pools[name], count);

    ShardRollup rollup;
    rollup.index = static_cast<int>(k);
    rollup.sessions = static_cast<int>(shard.fleet().session_count());
    rollup.shared_busy_ms = sub.shared_busy_ms;
    rollup.placed_demand_ms = shard.fleet().placed_demand_ms();
    rollup.mean_occupancy = sub.mean_occupancy;
    rollup.alerting = shard.fleet().burn_alerting();
    rollup.slo_alerts = shard.fleet().burn_alerts();

    const auto& fwd = inner_to_outer_[k];
    for (SessionSnapshot& ss : sub.sessions) {
      rollup.frames += ss.frames;
      ss.shard = static_cast<int>(k);
      if (ss.handle.id < fwd.size() && fwd[ss.handle.id].valid())
        ss.handle = fwd[ss.handle.id];
      snap.sessions.push_back(std::move(ss));
    }
    snap.shard_rollups.push_back(rollup);
  }
  for (const auto& [name, count] : pools)
    snap.device_pools.emplace_back(name, count);

  const double tick_period_ms =
      cfg_.frame_period_ms * static_cast<double>(base_fps_) /
      static_cast<double>(std::max(1, snap.wheel_hz));
  snap.mean_occupancy =
      tick_period_ms > 0.0 ? tick_busy_ms_.mean() / tick_period_ms : 0.0;
  snap.p95_tick_busy_ms =
      tick_busy_ms_.count() ? tick_busy_ms_.percentile(95.0) : 0.0;
  return snap;
}

std::unique_ptr<FleetApi> make_fleet(const FleetConfig& config) {
  if (config.shards <= 1) return std::make_unique<Fleet>(config);
  return std::make_unique<ShardedFleet>(config);
}

}  // namespace mvs::fleet

#pragma once
// Deterministic synthetic session load (mvs::fleet).
//
// A SyntheticSource stands in for a runtime::Pipeline when a hosted
// session only needs to EXERCISE the serving plane, not the vision stack:
// it emits seeded per-camera partial-frame task multisets (plus periodic
// full-frame inspections on the pipeline's key-frame cadence) against the
// scenario's real device profiles, while skipping scenario playback,
// association training, and per-frame imaging entirely. This is what makes
// 1k-10k-session fleets constructible in milliseconds — dispatch,
// cross-session batching, attribution, and migration all behave exactly as
// they do for real sessions, because the arbiter only ever sees
// CameraGpuWork.
//
// Determinism and migration stability: the work for (seed, camera, frame)
// is a pure function, and the only mutable state is the frame counter —
// which travels with the session record on shard migration, so a migrated
// session continues its exact task sequence on the target shard.

#include <cstdint>
#include <vector>

#include "gpu/device_profile.hpp"
#include "runtime/pipeline.hpp"

namespace mvs::fleet {

class SyntheticSource {
 public:
  /// `devices` must outlive the source (it borrows the profiles only to
  /// size each camera's task classes). `tasks_per_camera` is the mean
  /// per-frame partial-task count (the admission estimator's constant);
  /// `horizon` the key-frame period in frames (full inspection on frame 0,
  /// horizon, 2*horizon, ... per camera, like the paper's pipelines).
  SyntheticSource(const std::vector<gpu::DeviceProfile>& devices,
                  std::uint64_t seed, double tasks_per_camera, int horizon);

  /// Generate the next frame's work (advances the frame counter).
  /// Allocation-free once warm: task vectors keep their capacity.
  void run_frame();

  const std::vector<runtime::CameraGpuWork>& last_gpu_work() const {
    return work_;
  }

  long frames() const { return frames_; }

 private:
  const std::vector<gpu::DeviceProfile>* devices_;
  std::uint64_t seed_;
  int base_tasks_;  ///< floor(tasks_per_camera), jittered +/-1 per frame
  int horizon_;
  long frames_ = 0;
  std::vector<runtime::CameraGpuWork> work_;
};

}  // namespace mvs::fleet

#pragma once
// Cross-session GPU arbiter (mvs::fleet).
//
// The serving host pools the accelerators of each device class (profile
// name) into one shared queue per class. Every tick, each hosted session
// submits its cameras' partial-frame inspection tasks; the arbiter merges
// the task multisets per (device class, size class) and plans batches over
// the MERGED counts with the same greedy filling the paper uses per camera
// (gpu::plan_batch_counts). Because batch latency t_i^s is flat in fill
// before the inflection point, topping a session's incomplete batch up with
// another session's same-size tasks costs nothing extra — so each session's
// own BALB latency estimate stays correct while the fleet executes strictly
// fewer (never more) batches than sessions running on dedicated devices.
//
// Latency attribution: each shared batch's actual (fill-model) latency is
// split across contributing sessions in proportion to their task counts of
// that size class, batch by batch in plan order. A submission that is alone
// on its device class is therefore charged bit-exactly what
// gpu::plan_batches would charge it — the fleet-of-one identity the tests
// pin down. Full-frame inspections (key frames / Full policy) are exclusive:
// charged whole to their session and never merged.

#include <vector>

#include "gpu/batch_planner.hpp"
#include "gpu/device_profile.hpp"
#include "runtime/pipeline.hpp"

namespace mvs::fleet {

/// One camera's GPU demand submitted for the current tick.
struct Submission {
  int session = 0;
  int camera = 0;
  bool full_frame = false;
  std::vector<geom::SizeClassId> tasks;  ///< partial-region size classes
  const gpu::DeviceProfile* device = nullptr;  ///< non-owning
};

/// Per-submission outcome of one tick's cross-session plan.
struct Attribution {
  int session = 0;
  int camera = 0;
  /// This camera's share of the shared batches it participated in, plus its
  /// exclusive full-frame charge. Sums over all submissions to the tick's
  /// total GPU busy time.
  double attributed_ms = 0.0;
  /// What a dedicated per-camera device would charge (gpu::plan_batches on
  /// this submission alone) — the paper's single-deployment number.
  double isolated_ms = 0.0;
};

/// One tick's merged plan across every submission.
struct TickPlan {
  std::vector<Attribution> shares;  ///< submission order
  /// Partial-frame batches in the merged plan / summed per-submission plans
  /// (full-frame inspections excluded from both counts: they are identical
  /// on both sides and would dilute the batching comparison).
  long shared_batches = 0;
  long isolated_batches = 0;
  /// Total GPU busy time (partial batches + full frames) under the merged
  /// plan and under dedicated devices.
  double shared_busy_ms = 0.0;
  double isolated_busy_ms = 0.0;
};

class GpuArbiter {
 public:
  /// Discard the previous tick's submissions.
  void begin_tick();

  /// Register one camera's demand. `device` must outlive plan_tick();
  /// profiles sharing a name are assumed identical (they come from the
  /// gpu:: factory functions).
  void submit(int session, int camera, const gpu::DeviceProfile& device,
              const runtime::CameraGpuWork& work);

  /// Merge, plan, and attribute. Deterministic: grouping is by device name
  /// (lexicographic), attribution follows plan batch order, and submission
  /// order is preserved in `shares`.
  TickPlan plan_tick() const;

  std::size_t submission_count() const { return subs_.size(); }

 private:
  std::vector<Submission> subs_;
};

}  // namespace mvs::fleet

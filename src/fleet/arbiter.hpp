#pragma once
// Cross-session GPU arbiter (mvs::fleet).
//
// The serving host pools the accelerators of each device class (profile
// name) into one shared queue per class. Every tick, each hosted session
// submits its cameras' partial-frame inspection tasks; the arbiter merges
// the task multisets per (device class, size class) and plans batches over
// the MERGED counts with the same greedy filling the paper uses per camera
// (gpu::plan_batch_counts). Because batch latency t_i^s is flat in fill
// before the inflection point, topping a session's incomplete batch up with
// another session's same-size tasks costs nothing extra — so each session's
// own BALB latency estimate stays correct while the fleet executes strictly
// fewer (never more) batches than sessions running on dedicated devices.
//
// Elastic device pools: each class has a device COUNT (default 1, scaled at
// runtime via Fleet::scale_devices). The merged plan's batches are list-
// scheduled in plan order onto the class's devices (earliest-free first,
// full-frame inspections after the partial batches); a submission's
// queueing delay is how much later its last unit finishes than its own
// serial execution time would take. With one submission per class on one
// device the schedule accumulates in exactly the attribution order, so the
// delay is bit-exactly zero — preserving the fleet-of-one identity.
//
// Latency attribution: each shared batch's actual (fill-model) latency is
// split across contributing sessions in proportion to their task counts of
// that size class, batch by batch in plan order. A submission that is alone
// on its device class is therefore charged bit-exactly what
// gpu::plan_batches would charge it — the fleet-of-one identity the tests
// pin down. Full-frame inspections (key frames / Full policy) are exclusive:
// charged whole to their session and never merged.
//
// Preemptive batch splitting: when a TickContext carries an SLO and permits
// splitting, a class whose schedule would make a contributing session miss
// the deadline may split ONE over-full batch: half of its tasks are pushed
// to the next tick slot (listed in TickPlan::deferred; the fleet re-injects
// them into the owners' next submissions), shedding load from the
// lowest-weight contributors first. Attribution stays conservation-exact:
// the tick charges exactly the batches it executes, and deferred tasks are
// charged on the tick that runs them.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gpu/batch_planner.hpp"
#include "gpu/device_profile.hpp"
#include "runtime/pipeline.hpp"

namespace mvs::fleet {

/// One camera's GPU demand submitted for the current tick.
struct Submission {
  int session = 0;
  int camera = 0;
  double weight = 1.0;  ///< owner's dispatch weight (batch-split priority)
  bool full_frame = false;
  std::vector<geom::SizeClassId> tasks;  ///< partial-region size classes
  const gpu::DeviceProfile* device = nullptr;  ///< non-owning
};

/// Per-submission outcome of one tick's cross-session plan.
struct Attribution {
  int session = 0;
  int camera = 0;
  /// This camera's share of the shared batches it participated in, plus its
  /// exclusive full-frame charge. Sums over all submissions to the tick's
  /// total GPU busy time.
  double attributed_ms = 0.0;
  /// Queueing delay on the class's device pool: completion time of the
  /// camera's last unit minus its own serial execution time. Exactly zero
  /// when the camera is alone on its class (fleet-of-one identity).
  double queue_ms = 0.0;
  /// What a dedicated per-camera device would charge (gpu::plan_batches on
  /// this submission alone) — the paper's single-deployment number.
  double isolated_ms = 0.0;
};

/// Tasks a batch split pushed out of the current tick, owed to the next
/// tick slot of the owning (session, camera).
struct DeferredSlice {
  int session = 0;
  int camera = 0;
  geom::SizeClassId size_class = 0;
  int count = 0;
};

/// One (device class, size class) cell of a tick's merged plan: the task
/// count the class actually executed this tick (post-split). This is the
/// hook for the SECOND merge level: a ShardedFleet folds every shard's
/// cells per device class to price what a cross-shard merge would save
/// (sharded_fleet.cpp). Only non-empty cells are listed.
struct MergeCell {
  const gpu::DeviceProfile* device = nullptr;  ///< non-owning
  geom::SizeClassId size_class = 0;
  int count = 0;
};

/// One tick's merged plan across every submission.
struct TickPlan {
  std::vector<Attribution> shares;  ///< submission order
  std::vector<MergeCell> cells;     ///< merged counts per (class, size)
  /// Partial-frame batches in the merged plan / summed per-submission plans
  /// (full-frame inspections excluded from both counts: they are identical
  /// on both sides and would dilute the batching comparison).
  long shared_batches = 0;
  long isolated_batches = 0;
  /// Total GPU busy time (partial batches + full frames) under the merged
  /// plan and under dedicated devices. Conservation: the attributed_ms of
  /// all shares sums bit-closely to shared_busy_ms (splits included — a
  /// tick only charges the batches it actually executes).
  double shared_busy_ms = 0.0;
  double isolated_busy_ms = 0.0;
  /// Summed per-submission queueing delay on the device pools.
  double queue_ms_total = 0.0;
  /// Batch splits performed this tick and the task slices they deferred.
  long splits = 0;
  std::vector<DeferredSlice> deferred;
};

/// Per-tick planning context (SLO-aware batch splitting).
struct TickContext {
  /// Frame deadline (ms); <= 0 disables splitting.
  double slo_ms = 0.0;
  /// Permit splitting an over-full batch across two tick slots.
  bool allow_split = false;
  /// Fixed per-batch dispatch cost (ms): kernel-launch / DMA setup time
  /// serialized through ONE dispatcher per device class. Each batch (and
  /// full frame) costs overhead + latency on its device, and consecutive
  /// dispatches cannot issue closer together than the overhead — which is
  /// what keeps wide pools from scaling linearly. 0 (the default) is the
  /// ideal overhead-free arbiter and preserves every bit-identity guard.
  double dispatch_overhead_ms = 0.0;
};

/// Reusable planning working memory (defined in arbiter.cpp): per-class
/// grouping buffers, merged/isolated batch plans, schedule arrays. Owned by
/// the arbiter so warm plan_tick_into calls allocate nothing (DESIGN.md
/// §11).
struct PlanScratch;

class GpuArbiter {
 public:
  GpuArbiter();
  ~GpuArbiter();
  GpuArbiter(const GpuArbiter&) = delete;
  GpuArbiter& operator=(const GpuArbiter&) = delete;

  /// Discard the previous tick's submissions. Submission slots (and their
  /// task buffers) are retained for reuse.
  void begin_tick();

  /// Register one camera's demand. `device` must outlive plan_tick();
  /// profiles sharing a name are assumed identical (they come from the
  /// gpu:: factory functions). `weight` is the owning session's dispatch
  /// weight; batch splits defer the lowest weights first.
  void submit(int session, int camera, const gpu::DeviceProfile& device,
              const runtime::CameraGpuWork& work, double weight = 1.0);

  /// Merge, plan, schedule onto the device pools, and attribute.
  /// Deterministic: grouping is by device name (lexicographic), attribution
  /// follows plan batch order, list scheduling follows plan order onto the
  /// earliest-free device, and submission order is preserved in `shares`.
  TickPlan plan_tick(const TickContext& ctx = {}) const;

  /// plan_tick into a caller-owned plan (fields reset in place): identical
  /// results, but warm steady-state ticks reuse every buffer — the fleet
  /// hot path. The cold batch-split branch may still allocate (it copies
  /// the class counts to re-plan); it only runs under SLO pressure.
  void plan_tick_into(const TickContext& ctx, TickPlan& plan) const;

  /// Devices serving `device_class` (>= 1; classes default to one device).
  void set_device_count(const std::string& device_class, int count);
  int device_count(const std::string& device_class) const;
  /// Every class with an explicit pool size (sorted by class name).
  const std::map<std::string, int>& device_counts() const {
    return device_counts_;
  }

  std::size_t submission_count() const { return active_; }

 private:
  /// Submission slots. Only the first `active_` entries belong to the
  /// current tick; begin_tick() rewinds `active_` instead of clearing so
  /// each slot's task vector keeps its capacity across ticks.
  std::vector<Submission> subs_;
  std::size_t active_ = 0;
  std::map<std::string, int> device_counts_;
  /// Lazily built planning scratch; mutable because plan_tick is logically
  /// const (the scratch carries no observable state between calls).
  mutable std::unique_ptr<PlanScratch> scratch_;
};

}  // namespace mvs::fleet

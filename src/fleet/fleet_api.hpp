#pragma once
// mvs::fleet public serving interface.
//
// FleetApi is the one surface callers program against: a single-shard
// Fleet and a sharded ShardedFleet implement it identically, so examples,
// benches, and the CLI are written once and scale from one session to ten
// thousand by flipping FleetConfig::shards. Sessions are addressed by
// opaque SessionHandle values (see handle.hpp) that stay valid across
// live migration between shards; handle misuse after release() returns a
// typed FleetStatus instead of silently addressing a reused slot.
//
// This header also owns the fleet vocabulary types — config, admission
// result, rollup snapshots — shared by both implementations.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fleet/handle.hpp"
#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/trace.hpp"

namespace mvs::fleet {

enum class DispatchPolicy {
  kRoundRobin,        ///< rotate deferral burden fairly across sessions
  kWeightedPriority,  ///< defer lowest-weight sessions first under pressure
};

const char* to_string(DispatchPolicy policy);
/// Parse "rr" | "round-robin" | "weighted", case-insensitive.
std::optional<DispatchPolicy> parse_dispatch(std::string name);

struct FleetConfig {
  /// Per-tick GPU latency deadline (ms). <= 0 disables admission control
  /// and dispatch deferral: every session is admitted and runs every tick.
  double slo_ms = 0.0;
  /// Base tick length; the paper's scenarios stream at 10 fps. Sessions
  /// with a different native fps grow the wheel (see wheel_hz()).
  double frame_period_ms = 100.0;
  DispatchPolicy dispatch = DispatchPolicy::kRoundRobin;
  /// Shared worker pool width (0 = hardware concurrency). All sessions'
  /// per-camera parallelism — and, sharded, all shards — run on this one
  /// pool.
  int threads = 0;
  /// Allow the admission controller to degrade instead of rejecting.
  bool allow_degrade = true;
  /// Admission estimator: assumed steady-state partial-frame tasks per
  /// camera per regular frame (coarse planning constant; see DESIGN.md §8).
  double assumed_tasks_per_camera = 4.0;
  /// Ticks between re-admission scans (reverse degrade ladder); 0 keeps
  /// degradation sticky for a session's lifetime.
  int readmit_interval = 10;
  /// Hysteresis band as fractions of the SLO: a scan only restores when
  /// the windowed mean busy sits below low water AND the projection after
  /// restoring stays below high water (prevents admit/degrade oscillation).
  double readmit_low_water = 0.7;
  double readmit_high_water = 0.9;
  /// Let the arbiter split an over-full merged batch across two tick slots
  /// when a top-weight session would miss the SLO.
  bool allow_split = false;
  /// Fixed per-batch dispatch cost (ms) charged by the device pools; see
  /// TickContext::dispatch_overhead_ms. 0 = ideal overhead-free arbiter.
  double dispatch_overhead_ms = 0.0;
  /// Serving-plane width (make_fleet: 1 = single Fleet, > 1 = ShardedFleet
  /// with this many shards, each with its own arbiter and tick wheel).
  int shards = 1;
  /// Max live sessions per shard; 0 = unbounded. The sharded admission
  /// check against this is O(1) (DESIGN.md §13).
  int shard_capacity = 0;
  /// Ticks between sharded rebalance scans; 0 disables background
  /// migration. Each scan moves at most ONE session off the hottest shard
  /// (hysteresis, like readmit_scan).
  int rebalance_interval = 0;
  /// A scan migrates only when the hottest shard's windowed busy exceeds
  /// this multiple of the mean shard busy (> 1; the hysteresis band).
  double rebalance_high_water = 1.25;
  /// SLO burn-rate monitoring (DESIGN.md §14): tolerated per-tick
  /// SLO-violation ratio. 0 disables per-session and per-shard monitors.
  double burn_error_budget = 0.0;
  int burn_fast_window = 16;   ///< ticks; acute-burn window
  int burn_slow_window = 64;   ///< ticks; confirmation window
  double burn_raise = 2.0;     ///< raise at fast AND slow burn >= this
  double burn_clear = 1.0;     ///< clear at fast burn < this (hysteresis)
  /// A shard-level raise edge immediately applies one degrade rung to the
  /// heaviest restorable session (alerting coupled to mitigation).
  bool burn_degrade = false;
  /// Internal: which shard of a ShardedFleet this Fleet is (-1 =
  /// standalone). Namespaces the obs metric keys; not a config-file knob.
  int shard_index = -1;
};

/// The per-session serving spec is owned by runtime::config (the JSON-
/// facing layer); the fleet consumes it verbatim. See
/// runtime::FleetSessionSpec for the full field reference — name,
/// scenario, pipeline, weight, native fps, SLO override, the optional
/// per-session fault profile, and the synthetic-load switch.
using SessionSpec = runtime::FleetSessionSpec;

enum class SessionState { kActive, kPaused, kEvicted };

const char* to_string(SessionState state);

struct AdmitResult {
  SessionHandle handle;  ///< invalid (gen 0) when rejected
  bool admitted = false;
  bool masks_tightened = false;  ///< degraded: solo-coverage adoption only
  bool rate_halved = false;      ///< degraded: runs at half its native rate
  double projected_ms = 0.0;     ///< fleet demand estimate at decision time
  int shard = -1;                ///< placement (0 for a standalone Fleet)
  std::string reason;
};

/// Per-session rollup (stats snapshot).
struct SessionSnapshot {
  SessionHandle handle;  ///< the caller-facing identity (migration-stable)
  int shard = 0;         ///< hosting shard (0 for a standalone Fleet)
  std::string name;
  SessionState state = SessionState::kActive;
  double weight = 1.0;
  int fps = 0;               ///< native rate (resolved; base rate if 0 in spec)
  int stride = 1;            ///< 2 when frame-rate halved
  bool tight_masks = false;
  long frames = 0;           ///< frames actually run
  long deferred_ticks = 0;   ///< ticks lost to dispatch deferral
  long slo_violations = 0;   ///< frames whose latency > effective SLO
  double slo_ms = 0.0;       ///< effective SLO (session override or fleet)
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_ms = 0.0;           ///< mean frame latency (attributed + queue)
  double mean_isolated_ms = 0.0;  ///< same work on dedicated devices
  double mean_queue_ms = 0.0;     ///< mean device-pool queueing per frame
  double busy_sum_ms = 0.0;       ///< Σ attributed GPU busy over all frames
  long retries = 0;               ///< transport retransmissions (lossy only)
  long dropped_msgs = 0;          ///< messages lost after all retries
  double object_recall = 0.0;
  /// SLO burn-rate health (0 / false when monitoring is disabled).
  long slo_alerts = 0;       ///< raise edges over the session's lifetime
  bool alerting = false;     ///< currently inside a raise..clear episode
  double fast_burn = 0.0;    ///< burn rate over the fast window
  double slow_burn = 0.0;    ///< burn rate over the slow window
};

/// Per-shard rollup inside a sharded snapshot (empty for a plain Fleet).
struct ShardRollup {
  int index = 0;
  int sessions = 0;  ///< live (non-evicted) sessions hosted
  long frames = 0;   ///< frames run across the shard's sessions
  double shared_busy_ms = 0.0;
  double placed_demand_ms = 0.0;  ///< static admission-demand load
  double mean_occupancy = 0.0;
  bool alerting = false;  ///< shard-level burn monitor inside an episode
  long slo_alerts = 0;    ///< shard-level raise edges
};

/// Fleet-level rollup.
struct FleetSnapshot {
  long ticks = 0;
  int wheel_hz = 0;  ///< current tick-wheel rate (lcm of admitted rates)
  int shards = 1;
  int admitted = 0, rejected = 0, evicted = 0;
  int readmitted = 0;       ///< degrade-ladder rungs restored
  int redegraded = 0;       ///< degrade-ladder rungs re-applied under load
  long migrations = 0;      ///< sessions moved between shards (sharded only)
  long batch_splits = 0;    ///< arbiter batch splits across all ticks
  long shared_batches = 0, isolated_batches = 0;
  double shared_busy_ms = 0.0, isolated_busy_ms = 0.0;
  double total_queue_ms = 0.0;  ///< summed device-pool queueing delay
  /// Second merge level (sharded only): batches / busy the fleet WOULD
  /// additionally save if each device class's per-shard residual batches
  /// were topped up across shards every tick (0 with one shard — the
  /// shard-of-one identity).
  long cross_batches_saved = 0;
  double cross_busy_saved_ms = 0.0;
  /// Transport fault rollups summed over all sessions (lossy only).
  long total_retries = 0;
  long total_dropped_msgs = 0;
  /// SLO burn-rate alerting rollup (0 when monitoring is disabled).
  long slo_alerts_raised = 0;   ///< raise edges (sessions + shards)
  long slo_alerts_cleared = 0;  ///< clear edges
  int alerting_sessions = 0;    ///< sessions currently alerting
  /// Mean per-tick GPU busy time / tick period; > 1 means saturated.
  double mean_occupancy = 0.0;
  double p95_tick_busy_ms = 0.0;
  /// Mean sessions deferred per tick (dispatch queue depth).
  double mean_queue_depth = 0.0;
  /// Accelerator pools by class name (count >= 1 per class in use;
  /// sharded: per-shard replicas, so counts are per shard).
  std::vector<std::pair<std::string, int>> device_pools;
  std::vector<ShardRollup> shard_rollups;  ///< one per shard (sharded only)
  std::vector<SessionSnapshot> sessions;

  /// JSON document of the whole rollup (fleet object + sessions array).
  std::string to_json() const;
};

/// Build a FleetConfig from the config-file representation; nullopt (with
/// *error filled) on an unknown dispatch policy name or out-of-range
/// sharding knobs. Session specs and device_scale entries are NOT applied
/// here — admit() / scale_devices() them explicitly (see
/// tools/mvsched_cli.cpp for the canonical loop).
std::optional<FleetConfig> make_fleet_config(
    const runtime::FleetRunConfig& config, std::string* error = nullptr);

/// The serving-plane interface. Implementations: Fleet (one shard,
/// fleet.hpp) and ShardedFleet (N shards + migration, sharded_fleet.hpp).
class FleetApi {
 public:
  virtual ~FleetApi() = default;

  /// Admission-controlled session creation; see Fleet::admit for the
  /// degrade-ladder semantics. Sharded: O(1) capacity check, least-loaded
  /// shard placement.
  virtual AdmitResult admit(const SessionSpec& spec) = 0;

  /// Lifecycle transitions. Evictions are final (kInvalidState to evict
  /// twice); an evicted session's result() survives until release().
  virtual FleetStatus pause(SessionHandle handle) = 0;
  virtual FleetStatus resume(SessionHandle handle) = 0;
  virtual FleetStatus evict(SessionHandle handle) = 0;

  /// Drop an EVICTED session's retained result and recycle its slot; the
  /// handle (and any copy of it) becomes permanently stale.
  virtual FleetStatus release(SessionHandle handle) = 0;

  /// kEvicted for stale/unknown handles (it names no live session).
  virtual SessionState state(SessionHandle handle) const = 0;

  /// Everything the session has run so far (survives eviction until
  /// release). Empty with *status = the typed error on a bad handle.
  virtual runtime::PipelineResult result(
      SessionHandle handle, FleetStatus* status = nullptr) const = 0;

  /// Grow (delta > 0) or shrink (delta < 0) a device class's pool at
  /// runtime; pools never drop below one device. Sharded: applies to every
  /// shard's replica of the class. Returns the new per-shard pool size.
  virtual int scale_devices(const std::string& device_class, int delta) = 0;

  /// Advance one wheel tick (all shards in lockstep when sharded).
  virtual void step() = 0;

  virtual long ticks() const = 0;
  virtual int wheel_hz() const = 0;
  virtual std::size_t session_count() const = 0;  ///< live, incl. paused
  virtual FleetSnapshot snapshot() const = 0;

  /// Record session lifecycle events (admit/reject/evict/pause/resume/
  /// defer/readmit/migrate) plus device_scale and batch_split into
  /// `trace`; pass nullptr to detach.
  virtual void attach_trace(runtime::TraceRecorder* trace) = 0;

  void run(int ticks) {
    for (int t = 0; t < ticks; ++t) step();
  }
};

/// Build the serving plane the config asks for: a single Fleet when
/// config.shards <= 1 (bit-identical to the pre-sharding runtime), a
/// ShardedFleet otherwise.
std::unique_ptr<FleetApi> make_fleet(const FleetConfig& config);

}  // namespace mvs::fleet

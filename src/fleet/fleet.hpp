#pragma once
// mvs::fleet — multi-session serving runtime.
//
// Hosts many concurrent runtime::Pipeline sessions (independent multi-view
// deployments) over ONE shared util::ThreadPool and one shared simulated
// GPU complex (fleet::GpuArbiter). The fleet advances on a tick wheel;
// each tick the dispatch policy picks which due sessions run a frame, the
// sessions execute concurrently on the pool, and the arbiter merges their
// partial-frame tasks into cross-session batches with per-session latency
// attribution and device-pool queueing delay.
//
// Heterogeneous tick rates: sessions declare a native fps (SessionSpec::fps,
// 0 = the fleet base rate 1000 / frame_period_ms). The wheel runs at the
// least common multiple of all admitted rates and grows on demand — when a
// non-dividing rate is admitted, every session's period and phase (and the
// tick counter) are rescaled so established firing patterns continue
// unchanged. A session fires every wheel_hz / fps ticks.
//
// Admission control: with an SLO configured, a candidate session is only
// admitted if the projected fleet per-period GPU demand stays within the
// deadline; otherwise the controller degrades it (priority-mask tightening,
// then frame-rate halving, then both) and admits the first fitting mode, or
// rejects. Dynamic re-admission reverses the ladder: every readmit_interval
// ticks the fleet compares the windowed mean of observed tick busy against
// a hysteresis band under the SLO and, when demand has fallen, restores one
// rung (full rate first, then mask un-tightening via
// Pipeline::set_tight_masks) for the lowest-id degraded session whose
// projected demand still fits below the high-water mark.
//
// Elastic device pools: every accelerator class starts with one device;
// Fleet::scale_devices grows or shrinks a class's pool at runtime. The
// arbiter charges explicit queueing delay whenever a tick's merged plan
// exceeds one device's throughput, and (when FleetConfig::allow_split is
// on) may split an over-full merged batch across two tick slots to protect
// a high-weight session's SLO — deferred task slices are re-injected into
// the owner's next submission, so attribution stays conservation-exact.
//
// Session lifecycle (admit/pause/resume/evict/defer/readmit) plus
// device_scale and batch_split events are exported through the existing
// TraceRecorder JSON path and aggregated into per-session and fleet-level
// rollups (p50/p95/p99 latency, queueing, GPU occupancy, admission
// counters, transport retry/drop totals).
//
// A fleet of one unscaled full-rate session with the ideal transport
// reproduces a standalone Pipeline::run bit-identically (guarded by
// test_runtime.FleetOfOne...).

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fleet/arbiter.hpp"
#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/trace.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mvs::fleet {

enum class DispatchPolicy {
  kRoundRobin,        ///< rotate deferral burden fairly across sessions
  kWeightedPriority,  ///< defer lowest-weight sessions first under pressure
};

const char* to_string(DispatchPolicy policy);
/// Parse "rr" | "round-robin" | "weighted", case-insensitive.
std::optional<DispatchPolicy> parse_dispatch(std::string name);

struct FleetConfig {
  /// Per-tick GPU latency deadline (ms). <= 0 disables admission control
  /// and dispatch deferral: every session is admitted and runs every tick.
  double slo_ms = 0.0;
  /// Base tick length; the paper's scenarios stream at 10 fps. Sessions
  /// with a different native fps grow the wheel (see wheel_hz()).
  double frame_period_ms = 100.0;
  DispatchPolicy dispatch = DispatchPolicy::kRoundRobin;
  /// Shared worker pool width (0 = hardware concurrency). All sessions'
  /// per-camera parallelism runs on this one pool.
  int threads = 0;
  /// Allow the admission controller to degrade instead of rejecting.
  bool allow_degrade = true;
  /// Admission estimator: assumed steady-state partial-frame tasks per
  /// camera per regular frame (coarse planning constant; see DESIGN.md §8).
  double assumed_tasks_per_camera = 4.0;
  /// Ticks between re-admission scans (reverse degrade ladder); 0 keeps
  /// degradation sticky for a session's lifetime.
  int readmit_interval = 10;
  /// Hysteresis band as fractions of the SLO: a scan only restores when
  /// the windowed mean busy sits below low water AND the projection after
  /// restoring stays below high water (prevents admit/degrade oscillation).
  double readmit_low_water = 0.7;
  double readmit_high_water = 0.9;
  /// Let the arbiter split an over-full merged batch across two tick slots
  /// when a top-weight session would miss the SLO.
  bool allow_split = false;
  /// Fixed per-batch dispatch cost (ms) charged by the device pools; see
  /// TickContext::dispatch_overhead_ms. 0 = ideal overhead-free arbiter.
  double dispatch_overhead_ms = 0.0;
};

/// The per-session serving spec is owned by runtime::config (the JSON-
/// facing layer); the fleet consumes it verbatim. See
/// runtime::FleetSessionSpec for the full field reference — name,
/// scenario, pipeline, weight, native fps, SLO override, and the optional
/// per-session fault profile that replaces reaching into pipeline.faults.
using SessionSpec = runtime::FleetSessionSpec;

enum class SessionState { kActive, kPaused, kEvicted };

const char* to_string(SessionState state);

struct AdmitResult {
  int session_id = -1;  ///< -1 when rejected
  bool admitted = false;
  bool masks_tightened = false;  ///< degraded: solo-coverage adoption only
  bool rate_halved = false;      ///< degraded: runs at half its native rate
  double projected_ms = 0.0;     ///< fleet demand estimate at decision time
  std::string reason;
};

/// Per-session rollup (stats snapshot).
struct SessionSnapshot {
  int id = -1;
  std::string name;
  SessionState state = SessionState::kActive;
  double weight = 1.0;
  int fps = 0;               ///< native rate (resolved; base rate if 0 in spec)
  int stride = 1;            ///< 2 when frame-rate halved
  bool tight_masks = false;
  long frames = 0;           ///< frames actually run
  long deferred_ticks = 0;   ///< ticks lost to dispatch deferral
  long slo_violations = 0;   ///< frames whose latency > effective SLO
  double slo_ms = 0.0;       ///< effective SLO (session override or fleet)
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_ms = 0.0;           ///< mean frame latency (attributed + queue)
  double mean_isolated_ms = 0.0;  ///< same work on dedicated devices
  double mean_queue_ms = 0.0;     ///< mean device-pool queueing per frame
  long retries = 0;               ///< transport retransmissions (lossy only)
  long dropped_msgs = 0;          ///< messages lost after all retries
  double object_recall = 0.0;
};

/// Fleet-level rollup.
struct FleetSnapshot {
  long ticks = 0;
  int wheel_hz = 0;  ///< current tick-wheel rate (lcm of admitted rates)
  int admitted = 0, rejected = 0, evicted = 0;
  int readmitted = 0;       ///< degrade-ladder rungs restored
  int redegraded = 0;       ///< degrade-ladder rungs re-applied under load
  long batch_splits = 0;    ///< arbiter batch splits across all ticks
  long shared_batches = 0, isolated_batches = 0;
  double shared_busy_ms = 0.0, isolated_busy_ms = 0.0;
  double total_queue_ms = 0.0;  ///< summed device-pool queueing delay
  /// Transport fault rollups summed over all sessions (lossy only).
  long total_retries = 0;
  long total_dropped_msgs = 0;
  /// Mean per-tick GPU busy time / tick period; > 1 means saturated.
  double mean_occupancy = 0.0;
  double p95_tick_busy_ms = 0.0;
  /// Mean sessions deferred per tick (dispatch queue depth).
  double mean_queue_depth = 0.0;
  /// Accelerator pools by class name (count >= 1 per class in use).
  std::vector<std::pair<std::string, int>> device_pools;
  std::vector<SessionSnapshot> sessions;

  /// JSON document of the whole rollup (fleet object + sessions array).
  std::string to_json() const;
};

/// Build a FleetConfig from the config-file representation; nullopt (with
/// *error filled) on an unknown dispatch policy name. Session specs and
/// device_scale entries are NOT applied here — admit() / scale_devices()
/// them explicitly (see tools/mvsched_cli.cpp for the canonical loop).
std::optional<FleetConfig> make_fleet_config(
    const runtime::FleetRunConfig& config, std::string* error = nullptr);

class Fleet {
 public:
  explicit Fleet(const FleetConfig& config = {});
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Admission-controlled session creation. On admission the pipeline is
  /// built (scenario + association training) against the shared pool; on
  /// rejection nothing is constructed beyond the device-profile probe.
  /// spec.faults (when set) replaces the pipeline fault profile and, unless
  /// fault-free, selects the lossy transport. A native fps that does not
  /// divide the current wheel grows it to the least common multiple.
  AdmitResult admit(const SessionSpec& spec);

  /// Lifecycle transitions; false when `id` is unknown or already evicted
  /// (evictions are final). Pausing an evicted or unknown session is a
  /// no-op returning false.
  bool evict(int id);
  bool pause(int id);
  bool resume(int id);

  /// Grow (delta > 0) or shrink (delta < 0) the device pool of an
  /// accelerator class at runtime; pools never drop below one device.
  /// Returns the new pool size and records a device_scale trace event.
  int scale_devices(const std::string& device_class, int delta);

  /// Advance one wheel tick: dispatch, step the due sessions concurrently,
  /// merge their GPU work cross-session, update rollups, and (periodically)
  /// run the re-admission scan.
  void step();
  void run(int ticks);

  long ticks() const { return ticks_; }
  /// Current tick-wheel rate (ticks per second). Starts at the base rate
  /// 1000 / frame_period_ms and grows to the lcm of admitted native rates;
  /// growing rescales ticks() so firing phases are preserved.
  int wheel_hz() const { return wheel_hz_; }
  std::size_t session_count() const;        ///< admitted, incl. paused
  SessionState state(int id) const;         ///< kEvicted for unknown ids
  /// Everything the session has run so far (survives eviction).
  runtime::PipelineResult session_result(int id) const;
  FleetSnapshot snapshot() const;

  /// Record session lifecycle events (admit/reject/evict/pause/resume/
  /// defer/readmit) plus device_scale and batch_split into `trace`; pass
  /// nullptr to detach.
  void attach_trace(runtime::TraceRecorder* trace);

  util::ThreadPool& pool() { return pool_; }

 private:
  struct Session;

  Session* find(int id);
  const Session* find(int id) const;
  /// Deterministic static demand estimate for a candidate deployment.
  /// Pool-width-aware (a class's per-frame cost is divided by its current
  /// device count), frame-policy-aware (the partial-task term scales by
  /// policy::demand_factor — a detect-or-track policy skips detection on
  /// most regular frames), and dispatch-overhead-aware.
  double estimate_demand_ms(const std::vector<gpu::DeviceProfile>& devices,
                            const runtime::PipelineConfig& pipe) const;
  /// Observed (or estimated) GPU busy per frame of an admitted session.
  double session_frame_ms(const Session& s) const;
  /// Demand normalized to one base frame period: frame cost x the
  /// session's firing rate relative to the base rate.
  double session_demand_ms(const Session& s) const;
  /// Grow the wheel so `fps` divides it, rescaling periods/phases/ticks.
  void grow_wheel(int fps);
  /// Reverse degrade ladder: restore at most one rung across the fleet.
  void readmit_scan();
  void record(runtime::TraceEventType type, int session_id, double value);

  FleetConfig cfg_;
  util::ThreadPool pool_;
  GpuArbiter arbiter_;
  std::vector<std::unique_ptr<Session>> sessions_;
  runtime::TraceRecorder* trace_ = nullptr;

  long ticks_ = 0;
  int base_fps_ = 10;   ///< 1000 / frame_period_ms, floor 1
  int wheel_hz_ = 10;   ///< current wheel rate (>= base_fps_)
  int rejected_ = 0;
  int evicted_ = 0;
  int readmitted_ = 0;
  int redegraded_ = 0;
  long batch_splits_ = 0;
  long shared_batches_ = 0;
  long isolated_batches_ = 0;
  double shared_busy_ms_ = 0.0;
  double isolated_busy_ms_ = 0.0;
  double total_queue_ms_ = 0.0;
  /// Re-admission window accumulator (busy normalized to base periods).
  double window_busy_ms_ = 0.0;
  int window_ticks_ = 0;
  util::SampleSet tick_busy_ms_;
  util::SampleSet queue_depth_;

  /// step() working buffers reused across ticks so a warm fleet tick
  /// allocates nothing on the serving path (DESIGN.md §11).
  std::vector<Session*> due_scratch_;
  std::vector<Session*> chosen_scratch_;
  std::vector<Session*> ordered_scratch_;
  TickPlan plan_scratch_;
  runtime::CameraGpuWork merged_scratch_;
};

}  // namespace mvs::fleet

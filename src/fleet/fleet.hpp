#pragma once
// mvs::fleet — single-shard serving runtime (one FleetApi implementation).
//
// Hosts many concurrent runtime::Pipeline sessions (independent multi-view
// deployments) over ONE shared util::ThreadPool and one shared simulated
// GPU complex (fleet::GpuArbiter). The fleet advances on a tick wheel;
// each tick the dispatch policy picks which due sessions run a frame, the
// sessions execute concurrently on the pool, and the arbiter merges their
// partial-frame tasks into cross-session batches with per-session latency
// attribution and device-pool queueing delay.
//
// Heterogeneous tick rates: sessions declare a native fps (SessionSpec::fps,
// 0 = the fleet base rate 1000 / frame_period_ms). The wheel runs at the
// least common multiple of all admitted rates and grows on demand — when a
// non-dividing rate is admitted, every session's period and phase (and the
// tick counter) are rescaled so established firing patterns continue
// unchanged. A session fires every wheel_hz / fps ticks.
//
// Admission control: with an SLO configured, a candidate session is only
// admitted if the projected fleet per-period GPU demand stays within the
// deadline; otherwise the controller degrades it (priority-mask tightening,
// then frame-rate halving, then both) and admits the first fitting mode, or
// rejects. Dynamic re-admission reverses the ladder: every readmit_interval
// ticks the fleet compares the windowed mean of observed tick busy against
// a hysteresis band under the SLO and, when demand has fallen, restores one
// rung (full rate first, then mask un-tightening via
// Pipeline::set_tight_masks) for the lowest-id degraded session whose
// projected demand still fits below the high-water mark. Without an SLO,
// admission is O(1): no projection over the live roster is computed.
//
// Elastic device pools: every accelerator class starts with one device;
// Fleet::scale_devices grows or shrinks a class's pool at runtime. The
// arbiter charges explicit queueing delay whenever a tick's merged plan
// exceeds one device's throughput, and (when FleetConfig::allow_split is
// on) may split an over-full merged batch across two tick slots to protect
// a high-weight session's SLO — deferred task slices are re-injected into
// the owner's next submission, so attribution stays conservation-exact.
//
// Sessions are addressed by migration-stable SessionHandle values (see
// handle.hpp); the raw internal ids never leave this class. As one shard
// of a ShardedFleet the fleet runs on the plane's shared pool, exposes its
// per-tick merge cells (last_plan) to the second merge level, and hands
// whole sessions over via detach()/attach() — the SessionRecord carries
// every stat, the carryover debt, and the synthetic/pipeline state, so
// migration conserves per-session frame counts and attributed busy exactly.
//
// A fleet of one unscaled full-rate session with the ideal transport
// reproduces a standalone Pipeline::run bit-identically (guarded by
// test_runtime.FleetOfOne...).

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fleet/arbiter.hpp"
#include "fleet/burn.hpp"
#include "fleet/fleet_api.hpp"
#include "fleet/handle.hpp"
#include "fleet/synthetic.hpp"
#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/trace.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mvs::fleet {

/// Everything one hosted session owns — the migration unit. A Fleet hands
/// the whole record to ShardedFleet on detach(); stats, carryover debt,
/// degrade state, and the pipeline/synthetic source travel with it, which
/// is what makes migration conservation-exact (nothing is rebuilt or
/// reset on the target shard).
struct SessionRecord {
  int id = -1;           ///< internal id, local to the hosting Fleet
  SessionHandle handle;  ///< hosting fleet's handle (reissued on attach)
  SessionSpec spec;
  SessionState state = SessionState::kActive;
  int fps = 0;           ///< resolved native rate (base rate when spec.fps==0)
  int period_ticks = 1;  ///< wheel ticks between native frames
  int stride = 1;        ///< 2 when frame-rate halved (degrade ladder)
  int phase = 0;         ///< wheel-tick firing offset
  bool degraded_rate = false;   ///< rate halving applied BY the fleet
  bool degraded_tight = false;  ///< mask tightening applied BY the fleet
  /// Exactly one of pipeline / synth is set (spec.synthetic selects).
  std::unique_ptr<runtime::Pipeline> pipeline;
  std::unique_ptr<SyntheticSource> synth;
  std::vector<gpu::DeviceProfile> devices;
  double static_demand_ms = 0.0;
  /// Static per-base-period load this session contributes to shard
  /// placement accounting (frozen at admission; added/removed on
  /// admit/evict/detach/attach so the aggregate stays incremental-exact).
  double placement_demand_ms = 0.0;
  /// Batch-split debt: tasks deferred to this session's next stepped
  /// submission, per camera.
  std::map<int, std::vector<geom::SizeClassId>> carryover;

  /// Shard the session migrated FROM most recently (-1 = never migrated).
  /// Travels with the record so post-migration trace events keep their
  /// provenance (test_sharded_fleet.MigratedSessionTraceAttribution).
  int migrated_from = -1;

  long frames = 0;
  long deferred_ticks = 0;
  long slo_violations = 0;
  /// Per-session SLO burn-rate monitor (DESIGN.md §14); a frame whose
  /// latency exceeds the effective SLO is one bad event. Lives in the
  /// record so migration carries the window state with the session.
  BurnMonitor burn;
  long slo_alerts = 0;  ///< raise edges over the session's lifetime
  util::SampleSet latency_ms;       ///< per-frame attributed + queueing
  util::SampleSet isolated_ms;      ///< dedicated-device counterfactual
  util::SampleSet queue_ms;         ///< per-frame device-pool queueing
  double busy_sum_ms = 0.0;         ///< Σ attributed over all cameras/frames
  /// Result snapshot frozen at eviction (the pipeline is destroyed then).
  runtime::PipelineResult final_result;
};

class Fleet : public FleetApi {
 public:
  explicit Fleet(const FleetConfig& config = {});
  /// Shard embedding: run on `shared_pool` instead of owning one
  /// (config.threads is ignored). The pool must outlive the fleet.
  Fleet(const FleetConfig& config, util::ThreadPool* shared_pool);
  ~Fleet() override;

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Admission-controlled session creation. On admission the pipeline is
  /// built (scenario + association training) against the shared pool — or,
  /// for spec.synthetic, a SyntheticSource (no vision stack at all); on
  /// rejection nothing is constructed beyond the device-profile probe.
  /// spec.faults (when set) replaces the pipeline fault profile and, unless
  /// fault-free, selects the lossy transport. A native fps that does not
  /// divide the current wheel grows it to the least common multiple.
  AdmitResult admit(const SessionSpec& spec) override;

  /// Lifecycle transitions (see FleetApi). Evictions are final; the
  /// session's result survives until release().
  FleetStatus evict(SessionHandle handle) override;
  FleetStatus pause(SessionHandle handle) override;
  FleetStatus resume(SessionHandle handle) override;
  FleetStatus release(SessionHandle handle) override;

  int scale_devices(const std::string& device_class, int delta) override;

  /// Advance one wheel tick: dispatch, step the due sessions concurrently,
  /// merge their GPU work cross-session, update rollups, and (periodically)
  /// run the re-admission scan.
  void step() override;

  long ticks() const override { return ticks_; }
  /// Current tick-wheel rate (ticks per second). Starts at the base rate
  /// 1000 / frame_period_ms and grows to the lcm of admitted native rates;
  /// growing rescales ticks() so firing phases are preserved.
  int wheel_hz() const override { return wheel_hz_; }
  std::size_t session_count() const override {
    return static_cast<std::size_t>(live_sessions_);
  }
  SessionState state(SessionHandle handle) const override;
  runtime::PipelineResult result(SessionHandle handle,
                                 FleetStatus* status = nullptr) const override;
  FleetSnapshot snapshot() const override;

  void attach_trace(runtime::TraceRecorder* trace) override;

  util::ThreadPool& pool() { return *pool_; }

  // ---- Shard-plane hooks (used by ShardedFleet; harmless standalone) ----

  /// Grow the wheel so `fps` divides it (no-op when it already does). The
  /// sharded plane calls this on EVERY shard before any admit, keeping all
  /// wheels equal — the invariant that makes migration cadence-exact.
  void ensure_wheel(int fps);

  /// The last step()'s merged plan (merge cells, busy, shares). Valid
  /// after the first step; the second merge level reads cells from here.
  const TickPlan& last_plan() const { return plan_scratch_; }

  /// Σ placement_demand_ms over live sessions (O(1) placement load).
  double placed_demand_ms() const { return placed_demand_ms_; }

  /// Shard-level burn monitor state for the plane's ShardRollup.
  bool burn_alerting() const { return shard_burn_.alerting(); }
  long burn_alerts() const { return shard_slo_alerts_; }

  /// Remove a live (active or paused) session wholesale for migration.
  /// Its handle on THIS fleet is retired (the caller-facing identity lives
  /// in the ShardedFleet directory). nullptr + *status on a bad handle or
  /// an evicted session.
  std::unique_ptr<SessionRecord> detach(SessionHandle handle,
                                        FleetStatus* status = nullptr);

  /// Adopt a detached session under a fresh local id and handle. Requires
  /// an equal wheel rate (ensure_wheel keeps it so); the session's period,
  /// phase, stats, and carryover debt continue unchanged.
  SessionHandle attach(std::unique_ptr<SessionRecord> record);

  /// Pick the migration victim a rebalance scan would move: the ACTIVE
  /// session with the smallest placement demand (ties: lowest internal id,
  /// i.e. longest-served first stays put last). Invalid handle when none.
  SessionHandle pick_migration_victim() const;

 private:
  SessionRecord* find(int id);
  const SessionRecord* find(int id) const;
  SessionRecord* find(SessionHandle handle, FleetStatus* status = nullptr);
  const SessionRecord* find(SessionHandle handle,
                            FleetStatus* status = nullptr) const;
  /// Deterministic static demand estimate for a candidate deployment.
  /// Pool-width-aware (a class's per-frame cost is divided by its current
  /// device count), frame-policy-aware (the partial-task term scales by
  /// policy::demand_factor — a detect-or-track policy skips detection on
  /// most regular frames), and dispatch-overhead-aware.
  double estimate_demand_ms(const std::vector<gpu::DeviceProfile>& devices,
                            const runtime::PipelineConfig& pipe) const;
  /// Observed (or estimated) GPU busy per frame of an admitted session.
  double session_frame_ms(const SessionRecord& s) const;
  /// Demand normalized to one base frame period: frame cost x the
  /// session's firing rate relative to the base rate.
  double session_demand_ms(const SessionRecord& s) const;
  /// Device profiles of a scenario's cameras, cached per scenario name
  /// (profiles are seed-independent) so 10k admissions probe each
  /// scenario once instead of rebuilding it per session.
  const std::vector<gpu::DeviceProfile>& probe_devices(
      const std::string& scenario, std::uint64_t seed);
  /// Grow the wheel so `fps` divides it, rescaling periods/phases/ticks.
  void grow_wheel(int fps);
  /// Reverse degrade ladder: restore at most one rung across the fleet.
  void readmit_scan();
  /// Push one session one rung DOWN the degrade ladder (mask tightening
  /// first, then rate halving; highest id first). Returns false when every
  /// session is already fully degraded. Shared by the readmit high-water
  /// branch and the burn_degrade alert trigger.
  bool apply_degrade_rung(double value);
  void record(runtime::TraceEventType type, int session_id, double value,
              int migrated_from = -1);

  FleetConfig cfg_;
  std::unique_ptr<util::ThreadPool> owned_pool_;  ///< null when shared
  util::ThreadPool* pool_;
  GpuArbiter arbiter_;
  std::vector<std::unique_ptr<SessionRecord>> sessions_;
  HandleTable handles_;  ///< entry payload a = internal session id
  runtime::TraceRecorder* trace_ = nullptr;
  std::map<std::string, std::vector<gpu::DeviceProfile>> probe_cache_;

  long ticks_ = 0;
  int base_fps_ = 10;   ///< 1000 / frame_period_ms, floor 1
  int wheel_hz_ = 10;   ///< current wheel rate (>= base_fps_)
  int next_id_ = 0;
  int admitted_ = 0;
  int live_sessions_ = 0;
  double placed_demand_ms_ = 0.0;
  int rejected_ = 0;
  int evicted_ = 0;
  int readmitted_ = 0;
  int redegraded_ = 0;
  long batch_splits_ = 0;
  long shared_batches_ = 0;
  long isolated_batches_ = 0;
  double shared_busy_ms_ = 0.0;
  double isolated_busy_ms_ = 0.0;
  double total_queue_ms_ = 0.0;
  /// Re-admission window accumulator (busy normalized to base periods).
  double window_busy_ms_ = 0.0;
  int window_ticks_ = 0;
  /// Shard-level burn monitor: one bad event per tick whose shared busy
  /// exceeds the SLO. Session + shard raise/clear edges tally below.
  BurnMonitor shard_burn_;
  long shard_slo_alerts_ = 0;
  long slo_alerts_raised_ = 0;
  long slo_alerts_cleared_ = 0;
  util::SampleSet tick_busy_ms_;
  util::SampleSet queue_depth_;

  /// Obs metric keys prepared once (shard-prefixed when embedded) so the
  /// obs-enabled tick path does not build strings per tick.
  struct ObsKeys {
    std::string ticks, frames, deferred, shared_batches, isolated_batches,
        batch_splits, tick_busy_ms, queue_depth, sessions, session_prefix;
  };
  ObsKeys obs_;

  /// step() working buffers reused across ticks so a warm fleet tick
  /// allocates nothing on the serving path (DESIGN.md §11).
  std::vector<SessionRecord*> due_scratch_;
  std::vector<SessionRecord*> chosen_scratch_;
  std::vector<SessionRecord*> ordered_scratch_;
  TickPlan plan_scratch_;
  runtime::CameraGpuWork merged_scratch_;
};

}  // namespace mvs::fleet

#pragma once
// mvs::fleet — multi-session serving runtime.
//
// Hosts many concurrent runtime::Pipeline sessions (independent multi-view
// deployments) over ONE shared util::ThreadPool and one shared simulated
// GPU complex (fleet::GpuArbiter). The fleet advances in ticks of
// frame_period_ms; each tick the dispatch policy picks which sessions run a
// frame, the sessions execute concurrently on the pool, and the arbiter
// merges their partial-frame tasks into cross-session batches with
// per-session latency attribution.
//
// Admission control: with an SLO configured, a candidate session is only
// admitted if the projected fleet per-tick GPU demand stays within the
// deadline; otherwise the controller degrades it (priority-mask tightening,
// then frame-rate halving, then both) and admits the first fitting mode, or
// rejects. Session lifecycle (admit/pause/resume/evict/defer) is exported
// through the existing TraceRecorder JSON path and aggregated into
// per-session and fleet-level rollups (p50/p95/p99 latency, queue depth,
// GPU occupancy, admission counters).
//
// A fleet of one session with the ideal transport reproduces a standalone
// Pipeline::run bit-identically (guarded by test_runtime.FleetOfOne...).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/arbiter.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/trace.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace mvs::fleet {

enum class DispatchPolicy {
  kRoundRobin,        ///< rotate deferral burden fairly across sessions
  kWeightedPriority,  ///< defer lowest-weight sessions first under pressure
};

const char* to_string(DispatchPolicy policy);
/// Parse "rr" | "round-robin" | "weighted", case-insensitive.
std::optional<DispatchPolicy> parse_dispatch(std::string name);

struct FleetConfig {
  /// Per-tick GPU latency deadline (ms). <= 0 disables admission control
  /// and dispatch deferral: every session is admitted and runs every tick.
  double slo_ms = 0.0;
  /// Tick length; the paper's scenarios stream at 10 fps.
  double frame_period_ms = 100.0;
  DispatchPolicy dispatch = DispatchPolicy::kRoundRobin;
  /// Shared worker pool width (0 = hardware concurrency). All sessions'
  /// per-camera parallelism runs on this one pool.
  int threads = 0;
  /// Allow the admission controller to degrade instead of rejecting.
  bool allow_degrade = true;
  /// Admission estimator: assumed steady-state partial-frame tasks per
  /// camera per regular frame (coarse planning constant; see DESIGN.md §8).
  double assumed_tasks_per_camera = 4.0;
};

struct SessionSpec {
  std::string name;
  std::string scenario = "S2";
  runtime::PipelineConfig pipeline;
  /// Weighted-priority dispatch share; higher = deferred later.
  double weight = 1.0;
};

enum class SessionState { kActive, kPaused, kEvicted };

const char* to_string(SessionState state);

struct AdmitResult {
  int session_id = -1;  ///< -1 when rejected
  bool admitted = false;
  bool masks_tightened = false;  ///< degraded: solo-coverage adoption only
  bool rate_halved = false;      ///< degraded: runs every other tick
  double projected_ms = 0.0;     ///< fleet demand estimate at decision time
  std::string reason;
};

/// Per-session rollup (stats snapshot).
struct SessionSnapshot {
  int id = -1;
  std::string name;
  SessionState state = SessionState::kActive;
  double weight = 1.0;
  int stride = 1;            ///< 2 when frame-rate halved
  bool tight_masks = false;
  long frames = 0;           ///< frames actually run
  long deferred_ticks = 0;   ///< ticks lost to dispatch deferral
  long slo_violations = 0;   ///< frames whose attributed latency > SLO
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_ms = 0.0;           ///< mean attributed frame latency
  double mean_isolated_ms = 0.0;  ///< same work on dedicated devices
  double object_recall = 0.0;
};

/// Fleet-level rollup.
struct FleetSnapshot {
  long ticks = 0;
  int admitted = 0, rejected = 0, evicted = 0;
  long shared_batches = 0, isolated_batches = 0;
  double shared_busy_ms = 0.0, isolated_busy_ms = 0.0;
  /// Mean per-tick GPU busy time / frame period; > 1 means saturated.
  double mean_occupancy = 0.0;
  double p95_tick_busy_ms = 0.0;
  /// Mean sessions deferred per tick (dispatch queue depth).
  double mean_queue_depth = 0.0;
  std::vector<SessionSnapshot> sessions;

  /// JSON document of the whole rollup (fleet object + sessions array).
  std::string to_json() const;
};

class Fleet {
 public:
  explicit Fleet(const FleetConfig& config = {});
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Admission-controlled session creation. On admission the pipeline is
  /// built (scenario + association training) against the shared pool; on
  /// rejection nothing is constructed beyond the device-profile probe.
  AdmitResult admit(const SessionSpec& spec);

  /// Lifecycle transitions; false when `id` is unknown or already evicted
  /// (evictions are final). Pausing an evicted or unknown session is a
  /// no-op returning false.
  bool evict(int id);
  bool pause(int id);
  bool resume(int id);

  /// Advance one tick: dispatch, step the chosen sessions concurrently,
  /// merge their GPU work cross-session, update rollups.
  void step();
  void run(int ticks);

  long ticks() const { return ticks_; }
  std::size_t session_count() const;        ///< admitted, incl. paused
  SessionState state(int id) const;         ///< kEvicted for unknown ids
  /// Everything the session has run so far (survives eviction).
  runtime::PipelineResult session_result(int id) const;
  FleetSnapshot snapshot() const;

  /// Record session lifecycle events (admit/reject/evict/pause/resume/
  /// defer) into `trace`; pass nullptr to detach.
  void attach_trace(runtime::TraceRecorder* trace);

  util::ThreadPool& pool() { return pool_; }

 private:
  struct Session;

  Session* find(int id);
  const Session* find(int id) const;
  /// Deterministic static demand estimate for a candidate deployment.
  double estimate_demand_ms(const std::vector<gpu::DeviceProfile>& devices,
                            int horizon_frames) const;
  /// Current demand of an admitted session: observed mean per-frame
  /// attributed busy once it has run, else its static estimate; halved by
  /// its stride.
  double session_demand_ms(const Session& s) const;
  void record(runtime::TraceEventType type, int session_id, double value);

  FleetConfig cfg_;
  util::ThreadPool pool_;
  GpuArbiter arbiter_;
  std::vector<std::unique_ptr<Session>> sessions_;
  runtime::TraceRecorder* trace_ = nullptr;

  long ticks_ = 0;
  int rejected_ = 0;
  int evicted_ = 0;
  long shared_batches_ = 0;
  long isolated_batches_ = 0;
  double shared_busy_ms_ = 0.0;
  double isolated_busy_ms_ = 0.0;
  util::SampleSet tick_busy_ms_;
  util::SampleSet queue_depth_;
};

}  // namespace mvs::fleet

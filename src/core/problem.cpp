#include "core/problem.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mvs::core {

double Assignment::system_latency() const {
  double worst = 0.0;
  for (double l : camera_latency) worst = std::max(worst, l);
  return worst;
}

std::vector<int> Assignment::priority_order() const {
  std::vector<int> order(camera_latency.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return camera_latency[static_cast<std::size_t>(a)] <
           camera_latency[static_cast<std::size_t>(b)];
  });
  return order;
}

bool is_feasible(const MvsProblem& p, const Assignment& a) {
  if (a.x.size() != p.camera_count()) return false;
  for (const auto& row : a.x)
    if (row.size() != p.object_count()) return false;

  for (std::size_t j = 0; j < p.object_count(); ++j) {
    const ObjectSpec& obj = p.objects[j];
    int covered_trackers = 0;
    for (std::size_t i = 0; i < p.camera_count(); ++i) {
      if (!a.x[i][j]) continue;
      const bool can_see =
          std::find(obj.coverage.begin(), obj.coverage.end(),
                    static_cast<int>(i)) != obj.coverage.end();
      if (!can_see) return false;  // condition (2)
      ++covered_trackers;
    }
    if (covered_trackers < 1) return false;  // condition (1)
  }
  return true;
}

std::vector<double> regular_frame_latencies(const MvsProblem& p,
                                            const Assignment& a) {
  std::vector<double> out(p.camera_count(), 0.0);
  for (std::size_t i = 0; i < p.camera_count(); ++i) {
    std::vector<geom::SizeClassId> tasks;
    for (std::size_t j = 0; j < p.object_count(); ++j) {
      if (a.x[i][j])
        tasks.push_back(p.objects[j].size_class[i]);
    }
    out[i] = gpu::plan_batches(tasks, p.cameras[i]).planned_latency_ms;
  }
  return out;
}

double recomputed_system_latency(const MvsProblem& p, const Assignment& a) {
  const std::vector<double> regular = regular_frame_latencies(p, a);
  double worst = 0.0;
  for (std::size_t i = 0; i < p.camera_count(); ++i)
    worst = std::max(worst, p.cameras[i].full_frame_ms() + regular[i]);
  return worst;
}

}  // namespace mvs::core

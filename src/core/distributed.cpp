#include "core/distributed.hpp"

#include <cassert>

namespace mvs::core {

DistributedStage::DistributedStage(CameraMasks masks,
                                   std::vector<int> priority_order)
    : masks_(std::move(masks)) {
  rank_.assign(priority_order.size(), 0);
  for (std::size_t pos = 0; pos < priority_order.size(); ++pos)
    rank_[static_cast<std::size_t>(priority_order[pos])] =
        static_cast<int>(pos);
}

bool DistributedStage::should_adopt_new(int cam, const geom::BBox& box) const {
  assert(valid());
  return masks_.owns(cam, box.center());
}

int DistributedStage::takeover_camera(
    const std::vector<int>& visible_cams) const {
  assert(valid());
  int best = -1;
  for (int cam : visible_cams) {
    if (best < 0 || rank_[static_cast<std::size_t>(cam)] <
                        rank_[static_cast<std::size_t>(best)])
      best = cam;
  }
  return best;
}

}  // namespace mvs::core

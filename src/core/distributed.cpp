#include "core/distributed.hpp"

#include <cassert>

namespace mvs::core {

DistributedStage::DistributedStage(CameraMasks masks,
                                   std::vector<int> priority_order)
    : masks_(std::move(masks)) {
  // Rank lookup must cover every deployment camera, not just the listed
  // ones — the masks know the deployment size even when the priority order
  // is a surviving subset.
  std::size_t cameras = masks_.camera_count();
  for (int cam : priority_order)
    cameras = std::max(cameras, static_cast<std::size_t>(cam) + 1);
  rank_.assign(cameras, kUnranked);
  for (std::size_t pos = 0; pos < priority_order.size(); ++pos)
    rank_[static_cast<std::size_t>(priority_order[pos])] =
        static_cast<int>(pos);
}

bool DistributedStage::should_adopt_new(int cam, const geom::BBox& box) const {
  assert(valid());
  return masks_.owns(cam, box.center());
}

int DistributedStage::takeover_camera(
    const std::vector<int>& visible_cams) const {
  assert(valid());
  int best = -1;
  for (int cam : visible_cams) {
    if (rank_[static_cast<std::size_t>(cam)] == kUnranked) continue;
    if (best < 0 || rank_[static_cast<std::size_t>(cam)] <
                        rank_[static_cast<std::size_t>(best)])
      best = cam;
  }
  return best;
}

}  // namespace mvs::core

#pragma once
// Central stage of the Batch-Aware Latency-Balanced scheduler
// (paper Algorithm 1).
//
// Single pass over objects in ascending coverage-set size (least scheduling
// flexibility first, ties broken toward larger target sizes): reuse an
// incomplete same-size batch when one exists on a covering camera (choosing
// the largest relative batch capacity), otherwise open a new batch on the
// camera whose latency-after-inclusion is minimal. Complexity
// max(O(N log N), O(M N)).

#include "core/problem.hpp"

namespace mvs::core {

struct CentralBalbOptions {
  /// Consider batch reuse (line 4-8 of Algorithm 1). Disabling this yields
  /// the latency-balancing-only ablation ("no batch awareness").
  bool batch_aware = true;

  /// Object visit order. Algorithm 1 uses kCoverageAscending; the others
  /// exist for the ordering ablation bench.
  enum class Order { kCoverageAscending, kCoverageDescending, kInputOrder };
  Order order = Order::kCoverageAscending;
};

/// Run the central BALB stage. Preconditions: every object has a non-empty
/// coverage set of valid camera indices with valid size classes.
Assignment central_balb(const MvsProblem& problem,
                        const CentralBalbOptions& options = {});

}  // namespace mvs::core

#include "core/masks.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "core/baselines.hpp"

namespace mvs::core {

CameraMasks::CameraMasks(std::vector<geom::Grid> grids,
                         std::vector<std::vector<char>> owner)
    : grids_(std::move(grids)), owner_(std::move(owner)) {
  assert(grids_.size() == owner_.size());
}

bool CameraMasks::owns(int cam, geom::Vec2 point) const {
  const geom::Grid& grid = grids_[static_cast<std::size_t>(cam)];
  const std::size_t flat = grid.flat(grid.cell_at(point));
  return owner_[static_cast<std::size_t>(cam)][flat] != 0;
}

double CameraMasks::owned_fraction(int cam) const {
  const auto& cells = owner_[static_cast<std::size_t>(cam)];
  if (cells.empty()) return 0.0;
  std::size_t owned = 0;
  for (char c : cells) owned += static_cast<std::size_t>(c);
  return static_cast<double>(owned) / static_cast<double>(cells.size());
}

namespace {

template <typename OwnerRule>
CameraMasks build_masks(const std::vector<std::pair<int, int>>& frame_dims,
                        int cell_size, const CellCoverageFn& coverage,
                        OwnerRule&& rule) {
  std::vector<geom::Grid> grids;
  std::vector<std::vector<char>> owner;
  grids.reserve(frame_dims.size());
  for (std::size_t cam = 0; cam < frame_dims.size(); ++cam) {
    grids.emplace_back(frame_dims[cam].first, frame_dims[cam].second,
                       cell_size);
    const geom::Grid& grid = grids.back();
    std::vector<char> cells(grid.cell_count(), 0);
    for (int r = 0; r < grid.rows(); ++r) {
      for (int c = 0; c < grid.cols(); ++c) {
        const geom::CellIndex cell{c, r};
        const geom::Vec2 center = grid.cell_box(cell).center();
        std::vector<int> cover = coverage(static_cast<int>(cam), center);
        if (std::find(cover.begin(), cover.end(), static_cast<int>(cam)) ==
            cover.end())
          cover.push_back(static_cast<int>(cam));
        cells[grid.flat(cell)] =
            rule(static_cast<int>(cam), center, cover) ? 1 : 0;
      }
    }
    owner.push_back(std::move(cells));
  }
  return CameraMasks(std::move(grids), std::move(owner));
}

}  // namespace

CameraMasks build_priority_masks(
    const std::vector<std::pair<int, int>>& frame_dims, int cell_size,
    const CellCoverageFn& coverage, const std::vector<int>& priority_order) {
  // Cameras missing from the order (e.g. dropped out of the deployment for
  // this horizon) rank last, so every contested cell falls to a listed
  // camera; a cell covered by no listed camera keeps its first coverer as
  // owner, which is inert — an unlisted camera never inspects.
  constexpr int kUnlisted = std::numeric_limits<int>::max();
  std::vector<int> rank(frame_dims.size(), kUnlisted);
  for (std::size_t pos = 0; pos < priority_order.size(); ++pos)
    rank[static_cast<std::size_t>(priority_order[pos])] =
        static_cast<int>(pos);

  return build_masks(
      frame_dims, cell_size, coverage,
      [&rank](int cam, geom::Vec2 /*center*/, const std::vector<int>& cover) {
        int best = cover.front();
        for (int c : cover)
          if (rank[static_cast<std::size_t>(c)] <
              rank[static_cast<std::size_t>(best)])
            best = c;
        return best == cam;
      });
}

CameraMasks build_power_weighted_masks(
    const std::vector<std::pair<int, int>>& frame_dims, int cell_size,
    const CellCoverageFn& coverage, const RegionKeyFn& region_key,
    const std::vector<gpu::DeviceProfile>& cameras) {
  return build_masks(frame_dims, cell_size, coverage,
                     [&](int cam, geom::Vec2 center,
                         const std::vector<int>& cover) {
                       std::vector<int> sorted = cover;
                       std::sort(sorted.begin(), sorted.end());
                       const int owner = power_weighted_owner(
                           sorted, cameras, region_key(cam, center));
                       return owner == cam;
                     });
}

}  // namespace mvs::core

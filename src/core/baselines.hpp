#pragma once
// Scheduling baselines compared against BALB in the paper's evaluation
// (Sec. IV-C/D), plus an exact brute-force solver used to measure BALB's
// optimality gap on small instances (tests and the ordering ablation).

#include <cstdint>
#include <vector>

#include "core/problem.hpp"

namespace mvs::core {

/// BALB-Ind: every camera independently tracks every object it can see.
/// No cross-camera coordination; redundant work on overlaps.
Assignment independent_assignment(const MvsProblem& problem);

/// Static Partitioning (SP): objects are assigned by a fixed offline
/// region-to-camera map; `owner[j]` is the camera that owns object j's
/// region. When owner[j] is not in the coverage set (region map error),
/// falls back to the covering camera with the highest processing power.
Assignment static_partition_assignment(const MvsProblem& problem,
                                       const std::vector<int>& owner);

/// Deterministic power-weighted owner choice for a shared region: picks a
/// camera from `coverage` with probability proportional to its processing
/// power, derandomized by `region_key` so that every camera computes the
/// same owner for the same world region.
int power_weighted_owner(const std::vector<int>& coverage,
                         const std::vector<gpu::DeviceProfile>& cameras,
                         std::uint64_t region_key);

/// Exact minimizer of the MVS objective by exhaustive enumeration (one
/// tracker per object; adding trackers never reduces the max latency).
/// Cost grows as prod |C_j| — use only for small instances.
Assignment optimal_bruteforce(const MvsProblem& problem);

}  // namespace mvs::core

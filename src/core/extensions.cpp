#include "core/extensions.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mvs::core {

namespace {

/// Shared incremental scheduler state for the extension passes.
struct PassState {
  std::vector<double> latency;            // L_i
  std::vector<std::vector<int>> counts;   // per camera, per size class

  explicit PassState(const MvsProblem& p) {
    latency.resize(p.camera_count());
    counts.resize(p.camera_count());
    for (std::size_t i = 0; i < p.camera_count(); ++i) {
      latency[i] = p.cameras[i].full_frame_ms();
      counts[i].assign(p.cameras[i].size_class_count(), 0);
    }
  }

  bool has_open_batch(const MvsProblem& p, int cam,
                      geom::SizeClassId s) const {
    const auto i = static_cast<std::size_t>(cam);
    const int limit = p.cameras[i].batch_limit(s);
    const int count = counts[i][static_cast<std::size_t>(s)];
    return count > 0 && count % limit != 0;
  }

  double open_batch_capacity(const MvsProblem& p, int cam,
                             geom::SizeClassId s) const {
    const auto i = static_cast<std::size_t>(cam);
    const int limit = p.cameras[i].batch_limit(s);
    const int fill = counts[i][static_cast<std::size_t>(s)] % limit;
    return static_cast<double>(limit - fill) / static_cast<double>(limit);
  }

  void place(const MvsProblem& p, int cam, geom::SizeClassId s,
             bool new_batch) {
    const auto i = static_cast<std::size_t>(cam);
    if (new_batch) latency[i] += p.cameras[i].batch_latency_ms(s);
    ++counts[i][static_cast<std::size_t>(s)];
  }
};

std::vector<std::size_t> coverage_ascending_order(const MvsProblem& p) {
  std::vector<std::size_t> order(p.object_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return p.objects[a].coverage.size() <
                            p.objects[b].coverage.size();
                   });
  return order;
}

}  // namespace

Assignment redundant_balb(const MvsProblem& problem,
                          const RedundancyOptions& options) {
  assert(options.coverage_k >= 1);
  Assignment result;
  result.x.assign(problem.camera_count(),
                  std::vector<char>(problem.object_count(), 0));
  PassState state(problem);
  const std::vector<std::size_t> order = coverage_ascending_order(problem);

  for (int round = 0; round < options.coverage_k; ++round) {
    for (std::size_t j : order) {
      const ObjectSpec& obj = problem.objects[j];
      // Candidates: covering cameras not yet tracking this object.
      std::vector<int> candidates;
      for (int cam : obj.coverage)
        if (!result.x[static_cast<std::size_t>(cam)][j])
          candidates.push_back(cam);
      if (candidates.empty()) continue;  // coverage exhausted below K

      // Batch reuse first (largest relative capacity), else min updated
      // latency — the same rule as Algorithm 1, over the shared state.
      int chosen = -1;
      double best_capacity = 0.0;
      for (int cam : candidates) {
        const geom::SizeClassId s =
            obj.size_class[static_cast<std::size_t>(cam)];
        if (!state.has_open_batch(problem, cam, s)) continue;
        const double capacity = state.open_batch_capacity(problem, cam, s);
        if (capacity > best_capacity) {
          best_capacity = capacity;
          chosen = cam;
        }
      }
      bool new_batch = false;
      if (chosen < 0) {
        double best = 0.0;
        for (int cam : candidates) {
          const auto i = static_cast<std::size_t>(cam);
          const geom::SizeClassId s = obj.size_class[i];
          const double updated =
              state.latency[i] + problem.cameras[i].batch_latency_ms(s);
          if (chosen < 0 || updated < best) {
            best = updated;
            chosen = cam;
          }
        }
        new_batch = true;
      }
      const auto i = static_cast<std::size_t>(chosen);
      result.x[i][j] = 1;
      state.place(problem, chosen, obj.size_class[i], new_batch);
    }
  }
  result.camera_latency = state.latency;
  return result;
}

Assignment quality_aware_balb(const MvsProblem& problem,
                              const std::vector<std::vector<double>>& quality,
                              const QualityOptions& options) {
  assert(quality.size() == problem.object_count());
  Assignment result;
  result.x.assign(problem.camera_count(),
                  std::vector<char>(problem.object_count(), 0));
  PassState state(problem);

  for (std::size_t j : coverage_ascending_order(problem)) {
    const ObjectSpec& obj = problem.objects[j];
    assert(!obj.coverage.empty());

    // Latency-after-inclusion per covering camera; zero marginal cost when a
    // batch is open.
    double best_updated = 0.0;
    bool first = true;
    std::vector<double> updated(obj.coverage.size());
    for (std::size_t k = 0; k < obj.coverage.size(); ++k) {
      const auto i = static_cast<std::size_t>(obj.coverage[k]);
      const geom::SizeClassId s = obj.size_class[i];
      const double marginal =
          state.has_open_batch(problem, obj.coverage[k], s)
              ? 0.0
              : problem.cameras[i].batch_latency_ms(s);
      updated[k] = state.latency[i] + marginal;
      if (first || updated[k] < best_updated) {
        best_updated = updated[k];
        first = false;
      }
    }

    // Among cameras within the slack band, maximize tracking quality.
    int chosen = -1;
    double best_quality = 0.0;
    for (std::size_t k = 0; k < obj.coverage.size(); ++k) {
      if (updated[k] > best_updated * (1.0 + options.latency_slack)) continue;
      const double q =
          quality[j][static_cast<std::size_t>(obj.coverage[k])];
      if (chosen < 0 || q > best_quality) {
        best_quality = q;
        chosen = obj.coverage[k];
      }
    }
    const auto i = static_cast<std::size_t>(chosen);
    const geom::SizeClassId s = obj.size_class[i];
    const bool new_batch = !state.has_open_batch(problem, chosen, s);
    result.x[i][j] = 1;
    state.place(problem, chosen, s, new_batch);
  }
  result.camera_latency = state.latency;
  return result;
}

double mean_assignment_quality(
    const MvsProblem& problem, const Assignment& assignment,
    const std::vector<std::vector<double>>& quality) {
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t j = 0; j < problem.object_count(); ++j) {
    for (std::size_t i = 0; i < problem.camera_count(); ++i) {
      if (!assignment.x[i][j]) continue;
      total += quality[j][i];
      ++pairs;
    }
  }
  return pairs ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace mvs::core

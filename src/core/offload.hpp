#pragma once
// Centralized-processing extension (paper Sec. V, "Extension to centralized
// processing"): when cameras cannot run the DNN onboard, frames are uploaded
// to an edge server and the bottleneck becomes uplink bandwidth. The
// multi-view idea carries over as VIEW SELECTION: upload the minimum-cost
// subset of camera views that still covers every observed object.
//
// This is weighted set cover (NP-hard); we implement the classical greedy
// ln(n)-approximation plus an exact brute force for small camera counts
// (used by tests to bound the greedy gap).

#include <cstdint>
#include <vector>

namespace mvs::core {

struct ViewSelectionProblem {
  /// objects_per_camera[i] = ids of objects visible from camera i.
  std::vector<std::vector<std::uint64_t>> objects_per_camera;
  /// upload_cost[i] = cost of uploading camera i's frame (e.g. encoded
  /// bytes / uplink bandwidth, in ms).
  std::vector<double> upload_cost;
};

struct ViewSelection {
  std::vector<int> cameras;   ///< selected views, ascending
  double total_cost = 0.0;
  std::size_t covered = 0;    ///< objects covered by the selection
  std::size_t total_objects = 0;
};

/// Greedy weighted set cover: repeatedly pick the view minimizing
/// cost / newly-covered-objects. Objects visible from no camera are ignored
/// (they cannot be covered).
ViewSelection select_views_greedy(const ViewSelectionProblem& problem);

/// Exact minimum-cost cover by exhaustive subset enumeration. Use only for
/// small camera counts (<= ~16).
ViewSelection select_views_optimal(const ViewSelectionProblem& problem);

}  // namespace mvs::core

#pragma once
// Scheduler extensions prototyping the paper's Sec. V future-work items.
//
//  - Redundant (K-coverage) BALB: "we may allocate multiple cameras to track
//    the same object" to survive association errors and dynamic occlusion.
//    Each object is assigned to up to K distinct covering cameras; the
//    batch-aware single pass of Algorithm 1 is repeated K rounds over the
//    shared latency/batch state, so redundant copies still batch well.
//
//  - Quality-aware BALB: "introduce a tracking quality metric ... the
//    scheduling objective is extended to optimizing the quality-efficiency
//    tradeoff". Among cameras whose latency-after-inclusion is within a
//    slack factor of the best, the highest-quality view (e.g. the closer
//    camera) wins.

#include "core/problem.hpp"

namespace mvs::core {

struct RedundancyOptions {
  int coverage_k = 2;  ///< target trackers per object (capped by |C_j|)
};

/// K-coverage variant of the central BALB stage. With coverage_k == 1 this
/// is exactly central_balb().
Assignment redundant_balb(const MvsProblem& problem,
                          const RedundancyOptions& options);

struct QualityOptions {
  /// A camera qualifies if its latency-after-inclusion is within
  /// (1 + latency_slack) of the minimum across the coverage set.
  double latency_slack = 0.15;
};

/// quality[j][i] = tracking quality of object j on camera i (higher is
/// better; e.g. projected pixel size or inverse distance). Only entries for
/// covering cameras are read.
Assignment quality_aware_balb(const MvsProblem& problem,
                              const std::vector<std::vector<double>>& quality,
                              const QualityOptions& options);

/// Mean achieved quality of an assignment under the same quality matrix
/// (averaged over tracked (object, camera) pairs).
double mean_assignment_quality(
    const MvsProblem& problem, const Assignment& assignment,
    const std::vector<std::vector<double>>& quality);

}  // namespace mvs::core

#include "core/baselines.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mvs::core {

namespace {

/// SplitMix64, for derandomized weighted choices.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Assignment finalize(const MvsProblem& problem, Assignment a) {
  // Recompute scheduler latencies (t_full + planned batches) so all
  // baselines report comparable numbers.
  const std::vector<double> regular = regular_frame_latencies(problem, a);
  a.camera_latency.resize(problem.camera_count());
  for (std::size_t i = 0; i < problem.camera_count(); ++i)
    a.camera_latency[i] = problem.cameras[i].full_frame_ms() + regular[i];
  return a;
}

}  // namespace

Assignment independent_assignment(const MvsProblem& problem) {
  Assignment a;
  a.x.assign(problem.camera_count(),
             std::vector<char>(problem.object_count(), 0));
  for (std::size_t j = 0; j < problem.object_count(); ++j)
    for (int cam : problem.objects[j].coverage)
      a.x[static_cast<std::size_t>(cam)][j] = 1;
  return finalize(problem, std::move(a));
}

Assignment static_partition_assignment(const MvsProblem& problem,
                                       const std::vector<int>& owner) {
  assert(owner.size() == problem.object_count());
  Assignment a;
  a.x.assign(problem.camera_count(),
             std::vector<char>(problem.object_count(), 0));
  for (std::size_t j = 0; j < problem.object_count(); ++j) {
    const ObjectSpec& obj = problem.objects[j];
    int cam = owner[j];
    const bool valid = std::find(obj.coverage.begin(), obj.coverage.end(),
                                 cam) != obj.coverage.end();
    if (!valid) {
      cam = obj.coverage.front();
      for (int c : obj.coverage)
        if (problem.cameras[static_cast<std::size_t>(c)].relative_power() >
            problem.cameras[static_cast<std::size_t>(cam)].relative_power())
          cam = c;
    }
    a.x[static_cast<std::size_t>(cam)][j] = 1;
  }
  return finalize(problem, std::move(a));
}

int power_weighted_owner(const std::vector<int>& coverage,
                         const std::vector<gpu::DeviceProfile>& cameras,
                         std::uint64_t region_key) {
  assert(!coverage.empty());
  double total = 0.0;
  for (int cam : coverage)
    total += cameras[static_cast<std::size_t>(cam)].relative_power();
  // Deterministic uniform draw in [0, 1) from the region key.
  const double u = static_cast<double>(mix(region_key) >> 11) /
                   static_cast<double>(1ULL << 53);
  double acc = 0.0;
  for (int cam : coverage) {
    acc += cameras[static_cast<std::size_t>(cam)].relative_power() / total;
    if (u < acc) return cam;
  }
  return coverage.back();
}

Assignment optimal_bruteforce(const MvsProblem& problem) {
  const std::size_t n = problem.object_count();
  std::vector<std::size_t> choice(n, 0);  // index into each coverage set
  std::vector<int> best_owner(n, 0);
  double best = std::numeric_limits<double>::infinity();

  auto evaluate = [&]() {
    Assignment a;
    a.x.assign(problem.camera_count(), std::vector<char>(n, 0));
    for (std::size_t j = 0; j < n; ++j)
      a.x[static_cast<std::size_t>(
          problem.objects[j].coverage[choice[j]])][j] = 1;
    return recomputed_system_latency(problem, a);
  };

  // Odometer enumeration over the product of coverage sets.
  while (true) {
    const double value = evaluate();
    if (value < best) {
      best = value;
      for (std::size_t j = 0; j < n; ++j)
        best_owner[j] = problem.objects[j].coverage[choice[j]];
    }
    std::size_t j = 0;
    while (j < n) {
      if (++choice[j] < problem.objects[j].coverage.size()) break;
      choice[j] = 0;
      ++j;
    }
    if (j == n) break;
    if (n == 0) break;
  }

  Assignment a;
  a.x.assign(problem.camera_count(), std::vector<char>(n, 0));
  for (std::size_t j = 0; j < n; ++j)
    a.x[static_cast<std::size_t>(best_owner[j])][j] = 1;
  return finalize(problem, std::move(a));
}

}  // namespace mvs::core

#include "core/offload.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

namespace mvs::core {

namespace {

std::set<std::uint64_t> all_objects(const ViewSelectionProblem& p) {
  std::set<std::uint64_t> ids;
  for (const auto& cam : p.objects_per_camera)
    ids.insert(cam.begin(), cam.end());
  return ids;
}

}  // namespace

ViewSelection select_views_greedy(const ViewSelectionProblem& problem) {
  assert(problem.objects_per_camera.size() == problem.upload_cost.size());
  const std::set<std::uint64_t> universe = all_objects(problem);

  ViewSelection out;
  out.total_objects = universe.size();
  std::set<std::uint64_t> uncovered = universe;
  std::vector<char> used(problem.objects_per_camera.size(), 0);

  while (!uncovered.empty()) {
    int best = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best_new = 0;
    for (std::size_t i = 0; i < problem.objects_per_camera.size(); ++i) {
      if (used[i]) continue;
      std::size_t fresh = 0;
      for (std::uint64_t id : problem.objects_per_camera[i])
        fresh += uncovered.count(id);
      if (fresh == 0) continue;
      const double ratio =
          problem.upload_cost[i] / static_cast<double>(fresh);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(i);
        best_new = fresh;
      }
    }
    if (best < 0) break;  // remaining objects are not coverable
    used[static_cast<std::size_t>(best)] = 1;
    out.cameras.push_back(best);
    out.total_cost += problem.upload_cost[static_cast<std::size_t>(best)];
    out.covered += best_new;
    for (std::uint64_t id :
         problem.objects_per_camera[static_cast<std::size_t>(best)])
      uncovered.erase(id);
  }
  std::sort(out.cameras.begin(), out.cameras.end());
  return out;
}

ViewSelection select_views_optimal(const ViewSelectionProblem& problem) {
  assert(problem.objects_per_camera.size() == problem.upload_cost.size());
  const std::size_t m = problem.objects_per_camera.size();
  assert(m <= 20);
  const std::set<std::uint64_t> universe = all_objects(problem);

  // Determine which objects are coverable at all.
  ViewSelection best;
  best.total_objects = universe.size();
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_subset;

  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    double cost = 0.0;
    std::set<std::uint64_t> covered;
    for (std::size_t i = 0; i < m; ++i) {
      if (!(mask & (1u << i))) continue;
      cost += problem.upload_cost[i];
      covered.insert(problem.objects_per_camera[i].begin(),
                     problem.objects_per_camera[i].end());
    }
    if (covered.size() == universe.size() && cost < best_cost) {
      best_cost = cost;
      best_subset.clear();
      for (std::size_t i = 0; i < m; ++i)
        if (mask & (1u << i)) best_subset.push_back(static_cast<int>(i));
    }
  }
  best.cameras = best_subset;
  best.total_cost = best_subset.empty() ? 0.0 : best_cost;
  best.covered = universe.size();
  return best;
}

}  // namespace mvs::core

#pragma once
// The Multi-View Scheduling (MVS) problem (paper Sec. III).
//
// Given M cameras with heterogeneous batch-latency profiles and N objects,
// each visible from a coverage set of cameras with a per-camera target size,
// find a feasible object-to-camera assignment minimizing the maximum camera
// latency, where a camera's latency is the summed execution time of its
// greedily-packed same-size batches. The problem is strongly NP-hard
// (reduction from bin packing, Claim 1); BALB approximates it.

#include <cstdint>
#include <vector>

#include "geometry/size_class.hpp"
#include "gpu/batch_planner.hpp"
#include "gpu/device_profile.hpp"

namespace mvs::core {

/// One object to be tracked during the upcoming scheduling horizon.
struct ObjectSpec {
  std::uint64_t key = 0;  ///< caller-defined identity (association output)
  /// Cameras that can see the object (the coverage set C_j), as indices into
  /// the problem's camera list. Must be non-empty and duplicate-free.
  std::vector<int> coverage;
  /// size_class[i] is the target size of this object on camera i; only
  /// entries for cameras in `coverage` are meaningful.
  std::vector<geom::SizeClassId> size_class;
};

struct MvsProblem {
  std::vector<gpu::DeviceProfile> cameras;
  std::vector<ObjectSpec> objects;

  std::size_t camera_count() const { return cameras.size(); }
  std::size_t object_count() const { return objects.size(); }
};

/// An object-to-camera assignment (the matrix X of Definition 2).
struct Assignment {
  /// x[i][j] = 1 iff camera i tracks object j.
  std::vector<std::vector<char>> x;
  /// Camera latencies as accounted by the scheduler (initialized to
  /// t_i^full per Algorithm 1, then incremented per new batch).
  std::vector<double> camera_latency;

  double system_latency() const;

  /// Cameras ordered by ascending camera_latency — the fixed priority used
  /// by the BALB distributed stage (lowest-latency camera = highest
  /// priority for adopting new objects).
  std::vector<int> priority_order() const;
};

/// Does `a` satisfy Definition 2 against `p` (every object tracked by >= 1
/// covering camera, never by a non-covering one)?
bool is_feasible(const MvsProblem& p, const Assignment& a);

/// Per-camera regular-frame inspection latency of an assignment: greedy
/// batching of the assigned objects' size classes on each camera
/// (planned = batches x t_i^s). Does NOT include full-frame time.
std::vector<double> regular_frame_latencies(const MvsProblem& p,
                                            const Assignment& a);

/// The objective the MVS problem minimizes: max over cameras of
/// (t_i^full-initialized) scheduler latency. Recomputed from scratch, for
/// validating incremental accounting.
double recomputed_system_latency(const MvsProblem& p, const Assignment& a);

}  // namespace mvs::core

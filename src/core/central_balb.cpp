#include "core/central_balb.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mvs::core {

Assignment central_balb(const MvsProblem& problem,
                        const CentralBalbOptions& options) {
  const std::size_t m = problem.camera_count();
  const std::size_t n = problem.object_count();

  Assignment result;
  result.x.assign(m, std::vector<char>(n, 0));
  result.camera_latency.resize(m);
  // Line 1: L_i := t_i^full.
  for (std::size_t i = 0; i < m; ++i)
    result.camera_latency[i] = problem.cameras[i].full_frame_ms();

  // Per camera, per size class: number of already-batched images.
  std::vector<std::vector<int>> counts(m);
  for (std::size_t i = 0; i < m; ++i)
    counts[i].assign(problem.cameras[i].size_class_count(), 0);

  // Line 2: reindex objects by non-decreasing |C_j|, ties toward larger
  // target size (the largest class across the object's coverage set).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  auto max_class = [&](std::size_t j) {
    geom::SizeClassId best = 0;
    for (int cam : problem.objects[j].coverage)
      best = std::max(best,
                      problem.objects[j].size_class[static_cast<std::size_t>(cam)]);
    return best;
  };
  switch (options.order) {
    case CentralBalbOptions::Order::kCoverageAscending:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         const std::size_t ca = problem.objects[a].coverage.size();
                         const std::size_t cb = problem.objects[b].coverage.size();
                         if (ca != cb) return ca < cb;
                         return max_class(a) > max_class(b);
                       });
      break;
    case CentralBalbOptions::Order::kCoverageDescending:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return problem.objects[a].coverage.size() >
                                problem.objects[b].coverage.size();
                       });
      break;
    case CentralBalbOptions::Order::kInputOrder:
      break;
  }

  // Line 3-13: single assignment pass.
  for (std::size_t j : order) {
    const ObjectSpec& obj = problem.objects[j];
    assert(!obj.coverage.empty());

    int chosen = -1;
    if (options.batch_aware) {
      // Line 4: cameras in C_j with an incomplete batch for this object's
      // target size; pick the largest relative batch capacity.
      double best_capacity = 0.0;
      for (int cam : obj.coverage) {
        const auto i = static_cast<std::size_t>(cam);
        const geom::SizeClassId s = obj.size_class[i];
        const int limit = problem.cameras[i].batch_limit(s);
        const int fill = counts[i][static_cast<std::size_t>(s)] % limit;
        if (counts[i][static_cast<std::size_t>(s)] == 0 || fill == 0)
          continue;  // no open batch
        const double relative =
            static_cast<double>(limit - fill) / static_cast<double>(limit);
        if (relative > best_capacity) {
          best_capacity = relative;
          chosen = cam;
        }
      }
    }

    if (chosen >= 0) {
      // Line 6-7: ride the open batch; latency does not grow.
      const auto i = static_cast<std::size_t>(chosen);
      result.x[i][j] = 1;
      ++counts[i][static_cast<std::size_t>(obj.size_class[i])];
    } else {
      // Line 10-11: open a new batch on the camera minimizing L_i + t_i^s.
      double best = 0.0;
      for (int cam : obj.coverage) {
        const auto i = static_cast<std::size_t>(cam);
        const geom::SizeClassId s = obj.size_class[i];
        const double updated =
            result.camera_latency[i] + problem.cameras[i].batch_latency_ms(s);
        if (chosen < 0 || updated < best) {
          best = updated;
          chosen = cam;
        }
      }
      const auto i = static_cast<std::size_t>(chosen);
      const geom::SizeClassId s = obj.size_class[i];
      result.x[i][j] = 1;
      result.camera_latency[i] += problem.cameras[i].batch_latency_ms(s);
      ++counts[i][static_cast<std::size_t>(s)];
    }
  }
  return result;
}

}  // namespace mvs::core

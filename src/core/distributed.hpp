#pragma once
// Distributed stage of BALB (paper Sec. III-C2).
//
// Runs independently on every camera at every regular frame, with no
// cross-camera communication, handling the two object-dynamics cases:
//   (1) a NEW object appears -> the highest-priority camera whose mask owns
//       the object's cell starts tracking it;
//   (2) an object LEAVES its assigned camera's view -> the highest-priority
//       camera in its remaining coverage set takes over.
// Consistency across cameras comes from the shared, centrally computed
// masks and priority order, both fixed for the scheduling horizon.
// Complexity O(N) per camera per frame.

#include <limits>
#include <vector>

#include "core/masks.hpp"
#include "geometry/bbox.hpp"

namespace mvs::core {

class DistributedStage {
 public:
  DistributedStage() = default;

  /// `priority_order` from Assignment::priority_order(); `masks` from
  /// build_priority_masks with the same order. The order may cover only a
  /// subset of the deployment's cameras (e.g. the survivors after a camera
  /// dropout): unlisted cameras are unranked — they never win a takeover
  /// election and their mask cells fall to listed cameras.
  DistributedStage(CameraMasks masks, std::vector<int> priority_order);

  /// Case 1: should camera `cam` start tracking a new object detected at
  /// `box` in its own frame? True iff cam's mask owns the box center — i.e.
  /// no higher-priority camera covers that region.
  bool should_adopt_new(int cam, const geom::BBox& box) const;

  /// Case 2: an existing object was assigned to `assigned_cam` but has left
  /// its view; `visible_cams` is the object's current coverage set as
  /// inferred from the shared cross-camera models. Returns the camera that
  /// must take over (highest priority among visible, unranked cameras
  /// excluded), or -1 if none can.
  int takeover_camera(const std::vector<int>& visible_cams) const;

  /// Rank of an unranked (e.g. dropped-out) camera.
  static constexpr int kUnranked = std::numeric_limits<int>::max();

  int priority_rank(int cam) const {
    return rank_[static_cast<std::size_t>(cam)];
  }

  const CameraMasks& masks() const { return masks_; }
  bool valid() const { return !rank_.empty(); }

 private:
  CameraMasks masks_;
  std::vector<int> rank_;  ///< rank_[cam] = position in priority order
};

}  // namespace mvs::core

#pragma once
// Camera masks for communication-free distributed scheduling
// (paper Sec. III-C2, Fig. 8).
//
// Each camera's frame is divided into grid cells; each cell has a coverage
// set (which cameras can observe the world region behind it, computed from
// the data-driven cross-camera models) and exactly one owner. Two ownership
// rules are provided:
//   - priority masks (BALB distributed stage): the cell goes to the
//     highest-priority camera in its coverage set, priority = ascending
//     central-stage latency;
//   - power-weighted masks (Static Partitioning baseline): overlap cells
//     are split offline in proportion to camera processing power, using a
//     deterministic region key so all cameras agree.

#include <functional>
#include <vector>

#include "geometry/grid.hpp"
#include "gpu/device_profile.hpp"

namespace mvs::core {

/// Coverage oracle: cameras (including `cam` itself) able to observe the
/// world region behind pixel `center` of camera `cam`'s frame.
using CellCoverageFn =
    std::function<std::vector<int>(int cam, geom::Vec2 center)>;

/// Region key oracle: a deterministic identifier of the *world* region
/// behind pixel `center` of camera `cam`, consistent across cameras (e.g. a
/// quantized position predicted on a canonical reference camera).
using RegionKeyFn = std::function<std::uint64_t(int cam, geom::Vec2 center)>;

class CameraMasks {
 public:
  CameraMasks() = default;
  CameraMasks(std::vector<geom::Grid> grids,
              std::vector<std::vector<char>> owner);

  /// Does camera `cam` own the cell containing `point` in its own frame?
  bool owns(int cam, geom::Vec2 point) const;

  const geom::Grid& grid(int cam) const {
    return grids_[static_cast<std::size_t>(cam)];
  }
  /// Fraction of camera `cam`'s cells it owns (diagnostics / tests).
  double owned_fraction(int cam) const;

  std::size_t camera_count() const { return grids_.size(); }

 private:
  std::vector<geom::Grid> grids_;
  std::vector<std::vector<char>> owner_;  ///< [cam][flat cell] in {0,1}
};

/// BALB distributed-stage masks: cell owner = highest-priority covering
/// camera. `priority_order` lists camera indices from highest priority
/// (lowest central-stage latency) to lowest.
CameraMasks build_priority_masks(
    const std::vector<std::pair<int, int>>& frame_dims, int cell_size,
    const CellCoverageFn& coverage, const std::vector<int>& priority_order);

/// Static Partitioning masks: overlap cells split in proportion to device
/// processing power using the deterministic region key.
CameraMasks build_power_weighted_masks(
    const std::vector<std::pair<int, int>>& frame_dims, int cell_size,
    const CellCoverageFn& coverage, const RegionKeyFn& region_key,
    const std::vector<gpu::DeviceProfile>& cameras);

}  // namespace mvs::core

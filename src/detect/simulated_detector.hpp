#pragma once
// Simulated object detector standing in for YOLOv5 (see DESIGN.md).
//
// Detection *quality* is modelled here; detection *time* is charged by the
// gpu::BatchPlanner from profiled latency tables, mirroring how the paper
// drives its scheduler from offline YOLO profiles. The model captures the
// error sources that matter to the scheduling problem:
//   - small / distant objects are missed more often;
//   - objects truncated by the ROI border are missed more often;
//   - large regions downsampled into a small input resolution lose recall;
//   - localization noise grows with object size;
//   - occasional false positives per inspected region.

#include "detect/detection.hpp"
#include "geometry/size_class.hpp"
#include "util/rng.hpp"

namespace mvs::detect {

class SimulatedDetector {
 public:
  struct Config {
    double base_miss_rate = 0.02;       ///< per-object miss floor
    double small_object_px = 24.0;      ///< below this side length, recall decays
    double truncation_min_coverage = 0.5;  ///< ROI must cover this much of a box
    double box_noise_frac = 0.03;       ///< stddev of coordinate noise vs size
    double false_positive_rate = 0.01;  ///< FPs per inspected region
    double downsample_miss_gain = 0.15; ///< extra miss per unit log2 downsample
    double score_mean = 0.85;
  };

  SimulatedDetector() = default;
  explicit SimulatedDetector(Config cfg) : cfg_(cfg) {}

  /// Full-frame inspection: every visible ground-truth object is a candidate.
  std::vector<Detection> detect_full(
      const std::vector<GroundTruthObject>& visible, double frame_w,
      double frame_h, util::Rng& rng) const;

  /// Partial-frame inspection inside `roi`, which is executed at the square
  /// input resolution of `size_class` side `input_side` (so a larger ROI is
  /// downsampled). Candidates are visible objects sufficiently covered by
  /// the ROI.
  std::vector<Detection> detect_roi(
      const std::vector<GroundTruthObject>& visible, const geom::BBox& roi,
      int input_side, util::Rng& rng) const;

  /// detect_roi APPENDING to `out` (not cleared): callers accumulating
  /// detections over many slices reuse one buffer instead of splicing a
  /// fresh vector per slice. Identical detections and RNG draw order.
  void detect_roi_append(const std::vector<GroundTruthObject>& visible,
                         const geom::BBox& roi, int input_side, util::Rng& rng,
                         std::vector<Detection>& out) const;

  const Config& config() const { return cfg_; }

 private:
  /// Probability that `obj` is detected when inspected at `downsample` (>=1).
  double detection_probability(const GroundTruthObject& obj,
                               double downsample) const;

  Detection make_detection(const GroundTruthObject& obj, util::Rng& rng) const;

  Config cfg_{};
};

}  // namespace mvs::detect

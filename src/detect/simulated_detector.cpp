#include "detect/simulated_detector.hpp"

#include <algorithm>
#include <cmath>

namespace mvs::detect {

double SimulatedDetector::detection_probability(const GroundTruthObject& obj,
                                                double downsample) const {
  double miss = cfg_.base_miss_rate;
  // Effective on-sensor size after downsampling.
  const double side = std::min(obj.box.w, obj.box.h) / downsample;
  if (side < cfg_.small_object_px && side > 0.0) {
    // Linear recall decay toward 0 as the object shrinks below the floor.
    miss += (1.0 - miss) * (1.0 - side / cfg_.small_object_px);
  }
  if (downsample > 1.0) {
    miss += cfg_.downsample_miss_gain * std::log2(downsample);
  }
  return std::clamp(1.0 - miss, 0.0, 1.0);
}

Detection SimulatedDetector::make_detection(const GroundTruthObject& obj,
                                            util::Rng& rng) const {
  Detection det;
  const double sx = cfg_.box_noise_frac * obj.box.w;
  const double sy = cfg_.box_noise_frac * obj.box.h;
  det.box = geom::BBox{obj.box.x + rng.gaussian(0.0, sx),
                       obj.box.y + rng.gaussian(0.0, sy),
                       std::max(2.0, obj.box.w + rng.gaussian(0.0, sx)),
                       std::max(2.0, obj.box.h + rng.gaussian(0.0, sy))};
  det.cls = obj.cls;
  det.score = std::clamp(rng.gaussian(cfg_.score_mean, 0.08), 0.05, 1.0);
  det.truth_id = obj.id;
  return det;
}

std::vector<Detection> SimulatedDetector::detect_full(
    const std::vector<GroundTruthObject>& visible, double frame_w,
    double frame_h, util::Rng& rng) const {
  std::vector<Detection> out;
  out.reserve(visible.size());
  // Full frames run at the network's native input resolution; treat as no
  // additional downsampling (the profile's full-frame latency accounts for
  // the resolution).
  for (const GroundTruthObject& obj : visible) {
    if (rng.bernoulli(detection_probability(obj, 1.0)))
      out.push_back(make_detection(obj, rng));
  }
  if (rng.bernoulli(cfg_.false_positive_rate)) {
    Detection fp;
    const double w = rng.uniform(12.0, 60.0);
    const double h = rng.uniform(12.0, 60.0);
    fp.box = geom::BBox{rng.uniform(0.0, std::max(1.0, frame_w - w)),
                        rng.uniform(0.0, std::max(1.0, frame_h - h)), w, h};
    fp.cls = ObjectClass::kCar;
    fp.score = rng.uniform(0.3, 0.6);
    out.push_back(fp);
  }
  return out;
}

std::vector<Detection> SimulatedDetector::detect_roi(
    const std::vector<GroundTruthObject>& visible, const geom::BBox& roi,
    int input_side, util::Rng& rng) const {
  std::vector<Detection> out;
  detect_roi_append(visible, roi, input_side, rng, out);
  return out;
}

void SimulatedDetector::detect_roi_append(
    const std::vector<GroundTruthObject>& visible, const geom::BBox& roi,
    int input_side, util::Rng& rng, std::vector<Detection>& out) const {
  const double downsample =
      std::max(1.0, std::max(roi.w, roi.h) / static_cast<double>(input_side));
  for (const GroundTruthObject& obj : visible) {
    const double cov = geom::coverage(obj.box, roi);
    if (cov < cfg_.truncation_min_coverage) continue;
    double p = detection_probability(obj, downsample);
    // Truncated objects are harder: scale by how completely the ROI sees
    // them above the threshold.
    p *= (cov - cfg_.truncation_min_coverage) /
             (1.0 - cfg_.truncation_min_coverage) * 0.3 +
         0.7;
    if (rng.bernoulli(p)) out.push_back(make_detection(obj, rng));
  }
  if (rng.bernoulli(cfg_.false_positive_rate)) {
    Detection fp;
    const double w = rng.uniform(8.0, roi.w / 2.0 + 8.0);
    const double h = rng.uniform(8.0, roi.h / 2.0 + 8.0);
    fp.box = geom::BBox{roi.x + rng.uniform(0.0, std::max(1.0, roi.w - w)),
                        roi.y + rng.uniform(0.0, std::max(1.0, roi.h - h)), w,
                        h};
    fp.cls = ObjectClass::kCar;
    fp.score = rng.uniform(0.3, 0.6);
    out.push_back(fp);
  }
}

}  // namespace mvs::detect

#pragma once
// Detection data types shared by the detector, tracker, association module
// and scheduler.

#include <cstdint>
#include <vector>

#include "geometry/bbox.hpp"

namespace mvs::detect {

/// Object category ids mirroring the traffic classes the paper's scenarios
/// contain (COCO-style subset).
enum class ObjectClass : int { kCar = 0, kTruck = 1, kBus = 2, kPerson = 3 };

/// Ground-truth object instance visible in one camera frame. Produced by the
/// world simulator; consumed by the simulated detector and the recall metric.
struct GroundTruthObject {
  std::uint64_t id = 0;  ///< globally unique physical-object identity
  geom::BBox box;        ///< pixel box in this camera's frame
  ObjectClass cls = ObjectClass::kCar;
  double distance_m = 0.0;  ///< camera-to-object distance (quality proxy)
};

/// One detector output box.
struct Detection {
  geom::BBox box;
  ObjectClass cls = ObjectClass::kCar;
  double score = 0.0;
  /// Ground-truth identity behind this detection, or kFalsePositive.
  /// Used ONLY by evaluation metrics, never by the scheduler or tracker.
  std::uint64_t truth_id = kFalsePositive;

  static constexpr std::uint64_t kFalsePositive = ~0ULL;
};

}  // namespace mvs::detect

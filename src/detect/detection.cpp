#include "detect/detection.hpp"

// Currently header-only types; this TU anchors the library target.

#pragma once
// Evaluation metrics matching the paper's definitions.

#include <cstdint>
#include <vector>

#include "detect/detection.hpp"
#include "geometry/bbox.hpp"
#include "util/stats.hpp"

namespace mvs::metrics {

/// Binary-classification confusion counts with derived metrics (Fig. 10).
struct BinaryMetrics {
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;

  void add(bool predicted, bool actual);
  double precision() const;
  double recall() const;
  double f1() const;
  std::size_t total() const { return tp + fp + fn + tn; }
};

/// Object recall per the paper (Sec. IV-C): at every timestamp, a
/// ground-truth object counts as a true positive if at least one camera
/// localizes it (reported box overlapping the ground-truth box with
/// IoU >= `iou_threshold`), otherwise a false negative. An object counts as
/// ground truth only while at least one camera can see it.
class ObjectRecall {
 public:
  explicit ObjectRecall(double iou_threshold = 0.5)
      : iou_threshold_(iou_threshold) {}

  /// One timestamp: `gt_per_camera[c]` is camera c's visible ground truth;
  /// `reported_per_camera[c]` the boxes camera c currently localizes
  /// (tracks or detections). Returns this frame's recall.
  double add_frame(
      const std::vector<std::vector<detect::GroundTruthObject>>& gt_per_camera,
      const std::vector<std::vector<geom::BBox>>& reported_per_camera);

  double recall() const;
  std::size_t true_positives() const { return tp_; }
  std::size_t ground_truth_total() const { return tp_ + fn_; }

 private:
  double iou_threshold_;
  std::size_t tp_ = 0;
  std::size_t fn_ = 0;
  /// Per-frame unique-id scratch (sorted + deduplicated in place each
  /// frame); reused so warm add_frame calls allocate nothing.
  std::vector<std::uint64_t> ids_scratch_;
};

/// Mean of per-frame maxima — the "slowest camera" statistic of Fig. 13.
class SlowestCameraLatency {
 public:
  void add_frame(const std::vector<double>& per_camera_ms);
  double mean_ms() const { return stats_.mean(); }
  double max_ms() const { return stats_.max(); }
  std::size_t frames() const { return stats_.count(); }

 private:
  util::RunningStats stats_;
};

}  // namespace mvs::metrics

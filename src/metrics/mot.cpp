#include "metrics/mot.hpp"

#include <algorithm>

namespace mvs::metrics {

void MotAccumulator::add_frame(const std::vector<TrackObservation>& matches,
                               std::size_t missed_truths,
                               std::size_t false_tracks) {
  matches_ += matches.size();
  misses_ += missed_truths;
  false_positives_ += false_tracks;
  for (const TrackObservation& obs : matches) {
    const auto it = last_track_.find(obs.truth_id);
    if (it != last_track_.end() && it->second != obs.track_id)
      ++id_switches_;
    last_track_[obs.truth_id] = obs.track_id;
    ++pairings_[obs.truth_id][obs.track_id];
  }
}

std::size_t MotAccumulator::fragmentations() const {
  std::size_t extra = 0;
  for (const auto& [truth, histogram] : pairings_)
    extra += histogram.size() - 1;
  return extra;
}

double MotAccumulator::mota() const {
  const std::size_t gt = matches_ + misses_;
  if (gt == 0) return 1.0;
  const double errors =
      static_cast<double>(misses_ + false_positives_ + id_switches_);
  return 1.0 - errors / static_cast<double>(gt);
}

double MotAccumulator::identity_consistency() const {
  std::size_t consistent = 0;
  std::size_t total = 0;
  for (const auto& [truth, histogram] : pairings_) {
    std::size_t best = 0, sum = 0;
    for (const auto& [track, count] : histogram) {
      best = std::max(best, count);
      sum += count;
    }
    consistent += best;
    total += sum;
  }
  return total ? static_cast<double>(consistent) / static_cast<double>(total)
               : 1.0;
}

}  // namespace mvs::metrics

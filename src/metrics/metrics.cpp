#include "metrics/metrics.hpp"

#include <algorithm>

namespace mvs::metrics {

void BinaryMetrics::add(bool predicted, bool actual) {
  if (predicted && actual) ++tp;
  else if (predicted && !actual) ++fp;
  else if (!predicted && actual) ++fn;
  else ++tn;
}

double BinaryMetrics::precision() const {
  return (tp + fp) ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                   : 0.0;
}

double BinaryMetrics::recall() const {
  return (tp + fn) ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                   : 0.0;
}

double BinaryMetrics::f1() const {
  const double p = precision(), r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double ObjectRecall::add_frame(
    const std::vector<std::vector<detect::GroundTruthObject>>& gt_per_camera,
    const std::vector<std::vector<geom::BBox>>& reported_per_camera) {
  // Ground-truth identities visible anywhere this timestamp. Sorted +
  // deduplicated scratch vector: same ascending iteration order a std::set
  // would give, without the per-node allocations.
  std::vector<std::uint64_t>& gt_ids = ids_scratch_;
  gt_ids.clear();
  for (const auto& cam : gt_per_camera)
    for (const detect::GroundTruthObject& obj : cam) gt_ids.push_back(obj.id);
  std::sort(gt_ids.begin(), gt_ids.end());
  gt_ids.erase(std::unique(gt_ids.begin(), gt_ids.end()), gt_ids.end());

  std::size_t frame_tp = 0;
  for (std::uint64_t id : gt_ids) {
    bool found = false;
    for (std::size_t c = 0; c < gt_per_camera.size() && !found; ++c) {
      const detect::GroundTruthObject* gt = nullptr;
      for (const detect::GroundTruthObject& obj : gt_per_camera[c]) {
        if (obj.id == id) {
          gt = &obj;
          break;
        }
      }
      if (!gt) continue;
      for (const geom::BBox& box : reported_per_camera[c]) {
        if (geom::iou(box, gt->box) >= iou_threshold_) {
          found = true;
          break;
        }
      }
    }
    if (found) ++frame_tp;
  }
  tp_ += frame_tp;
  fn_ += gt_ids.size() - frame_tp;
  return gt_ids.empty()
             ? 1.0
             : static_cast<double>(frame_tp) / static_cast<double>(gt_ids.size());
}

double ObjectRecall::recall() const {
  const std::size_t total = tp_ + fn_;
  return total ? static_cast<double>(tp_) / static_cast<double>(total) : 1.0;
}

void SlowestCameraLatency::add_frame(const std::vector<double>& per_camera_ms) {
  double worst = 0.0;
  for (double v : per_camera_ms) worst = std::max(worst, v);
  stats_.add(worst);
}

}  // namespace mvs::metrics

#pragma once
// Multi-object-tracking quality metrics (CLEAR-MOT style), computed per
// camera from (track id -> ground-truth id) correspondences. Complements
// the paper's object-recall metric with identity-level quality: a scheduler
// that bounces objects between cameras or trackers shows up here as ID
// switches and fragmentation even when recall stays high.

#include <cstdint>
#include <map>
#include <vector>

namespace mvs::metrics {

/// One matched (track, truth) pair observed in a frame.
struct TrackObservation {
  long track_id = -1;
  std::uint64_t truth_id = 0;
};

class MotAccumulator {
 public:
  /// One camera-frame: matched pairs, plus counts of unmatched ground-truth
  /// objects (misses) and unmatched tracks (false positives).
  void add_frame(const std::vector<TrackObservation>& matches,
                 std::size_t missed_truths, std::size_t false_tracks);

  std::size_t matches() const { return matches_; }
  std::size_t misses() const { return misses_; }
  std::size_t false_positives() const { return false_positives_; }

  /// Times a ground-truth object's matched track id changed between
  /// consecutive observations of that object.
  std::size_t id_switches() const { return id_switches_; }

  /// Distinct (truth, track) pairings beyond the first per truth — how
  /// fragmented each object's trajectory is.
  std::size_t fragmentations() const;

  /// MOTA = 1 - (misses + false positives + id switches) / ground truth.
  /// Can be negative; 1.0 is perfect.
  double mota() const;

  /// Fraction of ground-truth observations whose matched track id is the
  /// object's most frequent one (IDF1-flavoured identity consistency).
  double identity_consistency() const;

 private:
  std::size_t matches_ = 0;
  std::size_t misses_ = 0;
  std::size_t false_positives_ = 0;
  std::size_t id_switches_ = 0;
  std::map<std::uint64_t, long> last_track_;  ///< per truth: last matched id
  /// per truth: histogram of matched track ids.
  std::map<std::uint64_t, std::map<long, std::size_t>> pairings_;
};

}  // namespace mvs::metrics

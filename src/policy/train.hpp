#pragma once
// Learned-policy training (mvs::policy).
//
// Consumes the JSONL feature traces the pipeline records under
// PolicyConfig::feature_trace (one {"f": [...8 floats...], "label": 0|1}
// row per camera per detect frame; label 1 = the inspection changed
// something the tracker would have gotten wrong) and fits one of the
// mvs::ml baselines, exporting the result as a self-contained model.hpp
// JSON document. Used by tools/policy_train and bench/ablation_policy.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "policy/model.hpp"

namespace mvs::policy {

struct TrainSample {
  std::vector<double> x;  ///< kFeatureCount features (features.hpp order)
  int label = 0;          ///< 1 = detection was useful this frame
};

/// Parse a JSONL feature-trace stream; nullopt (with *error filled) on the
/// first malformed row. Rows must carry exactly kFeatureCount features.
std::optional<std::vector<TrainSample>> load_feature_trace(
    std::istream& in, std::string* error = nullptr);

struct TrainReport {
  Model model;
  /// Holdout metrics (deterministic tail split; every 5th sample held out).
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  std::size_t train_samples = 0;
  std::size_t eval_samples = 0;
  double positive_rate = 0.0;  ///< label-1 fraction of the whole trace
};

/// Fit `type` on the samples and export it; nullopt (with *error filled)
/// when the trace is empty or single-class (nothing to learn — callers
/// should fall back to the heuristic policy).
std::optional<TrainReport> train_model(const std::vector<TrainSample>& samples,
                                       ModelType type,
                                       std::string* error = nullptr);

}  // namespace mvs::policy

#pragma once
// Online per-camera policy features (mvs::policy).
//
// The detect-or-track decision (policy.hpp) is made per camera per regular
// frame from cheap signals that are already lying around after the tracking
// stage: optical-flow drift, matching residual, detection-confidence decay,
// track churn and the camera's share of the deployment's GPU demand. All of
// them are O(tracks + flow blocks) to compute — the whole point is that the
// decision costs microseconds while the detector costs milliseconds.
//
// Feature vector layout is FROZEN (kFeatureNames order): learned models are
// serialized against these names and the loader rejects any mismatch.

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "geometry/bbox.hpp"
#include "vision/optical_flow.hpp"

namespace mvs::policy {

/// Number of online features the policy sees.
inline constexpr std::size_t kFeatureCount = 9;

/// Canonical feature names, in vector order. Serialized into learned-model
/// JSON so a model trained against one layout can never be evaluated
/// against another.
extern const std::array<const char*, kFeatureCount> kFeatureNames;

/// Detection-confidence decay per regular frame without inspection
/// (feature 3 = confidence_at_last_detect * kConfidenceDecay^frames_since).
inline constexpr double kConfidenceDecay = 0.94;

/// One camera's online features for the current regular frame.
struct CameraFeatures {
  double frames_since_detect = 0.0;  ///< regular frames since last inspection
  double drift_px = 0.0;        ///< accumulated mean track motion since detect
  double residual = 0.0;        ///< normalized mean flow SAD residual [0, 1]
  double confidence = 1.0;      ///< decayed mean detection score at last detect
  double churn = 0.0;           ///< track adds+drops at last detect / tracks
  double track_count = 0.0;     ///< active tracks this frame
  double demand_share = 0.0;    ///< camera's share of fleet GPU ms (lag 1)
  double unexplained_motion = 0.0;  ///< moving blocks outside any known box
  /// Fraction of the camera's planned responsibility that went missing
  /// mid-horizon: max(0, baseline - live tracks) / max(1, baseline), where
  /// baseline is the track count installed by the last key-frame plan
  /// (raised when later inspections adopt more, lowered when tracks
  /// legitimately depart the view). A positive deficit means an object the
  /// central plan expects this camera to report is currently untracked —
  /// coasting cannot re-acquire it, only detection can.
  double track_deficit = 0.0;

  /// Flatten into kFeatureNames order (model/trace input).
  std::vector<double> to_vector() const;
};

/// Per-camera accumulator the pipeline carries between frames to derive
/// CameraFeatures. Reset by note_detect() whenever the camera was inspected
/// (key frame or policy-selected detect frame).
struct CameraFeatureState {
  int frames_since_detect = 0;
  double accum_drift_px = 0.0;
  double confidence_at_detect = 1.0;  ///< mean det score at last inspection
  int churn_at_detect = 0;            ///< adds + drops at last inspection
  int tracks_at_detect = 0;
  double demand_share = 0.0;  ///< updated sequentially after each frame
  /// Planned responsibility: tracks installed by the last key-frame plan,
  /// raised when a later inspection leaves MORE tracks alive (adoption /
  /// takeover), lowered only by note_departure(). Live tracks below this
  /// baseline = a mid-horizon loss (see CameraFeatures::track_deficit).
  int track_baseline = 0;

  /// Record an inspection outcome: mean detection score, adds + drops, and
  /// the surviving track count. Resets staleness and drift; ratchets the
  /// baseline up to `tracks`.
  void note_detect(double mean_score, int churn_events, int tracks);

  /// Key-frame plan installed `tracks` tracks: the baseline resets to it
  /// (a full inspection is the one moment responsibility may shrink).
  void reset_baseline(int tracks) { track_baseline = std::max(0, tracks); }

  /// A track left the camera's view (culled as departed, not lost): the
  /// camera is no longer responsible for it.
  void note_departure() { track_baseline = std::max(0, track_baseline - 1); }

  /// Accumulate one track-only (or pre-decision) frame's drift.
  void add_drift(double mean_track_motion_px) {
    accum_drift_px += mean_track_motion_px;
  }

  /// Assemble the feature vector for the current frame.
  CameraFeatures features(std::size_t track_count, double residual,
                          double unexplained_motion) const;
};

/// Mean per-frame motion (logical pixels) of the blocks under the given
/// track boxes: mean over boxes of |median flow inside the box| * scale.
/// Returns 0 when there are no boxes. `scale` maps flow-field (rendered)
/// pixels to logical pixels.
double mean_track_motion_px(const vision::FlowField& field,
                            const std::vector<geom::BBox>& boxes,
                            double scale);

/// Mean SAD residual over all flow blocks, normalized by the worst-case
/// block SAD (block_size^2 * 255) into [0, 1].
double normalized_residual(const vision::FlowField& field);

/// Fraction of flow blocks with |flow| >= motion_threshold (flow pixels)
/// whose centers are NOT inside any `explained` box (track or ghost boxes,
/// logical coordinates; `scale` maps flow pixels to logical). This is the
/// cheapest possible "something new is moving" signal: the same quantity
/// vision::extract_new_regions clusters, without the clustering.
double unexplained_motion_fraction(const vision::FlowField& field,
                                   const std::vector<geom::BBox>& explained,
                                   double scale,
                                   double motion_threshold = 1.5);

}  // namespace mvs::policy

#include "policy/model.hpp"

#include <cmath>
#include <cstddef>

#include "policy/features.hpp"
#include "util/json.hpp"

namespace mvs::policy {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Read a JSON array of numbers into `out`; false on shape mismatch.
bool read_numbers(const util::Json* node, std::vector<double>& out) {
  if (!node || !node->is_array()) return false;
  out.clear();
  for (const util::Json& v : node->as_array()) {
    if (!v.is_number()) return false;
    out.push_back(v.as_number());
  }
  return true;
}

bool validate_features(const util::Json& root, std::string* error) {
  const util::Json* names = root.find("features");
  if (!names || !names->is_array() ||
      names->as_array().size() != kFeatureCount)
    return fail(error, "model: \"features\" must list the " +
                           std::to_string(kFeatureCount) + " feature names");
  for (std::size_t d = 0; d < kFeatureCount; ++d) {
    const util::Json& name = names->as_array()[d];
    if (!name.is_string() || name.as_string() != kFeatureNames[d])
      return fail(error, "model: feature " + std::to_string(d) +
                             " must be \"" + kFeatureNames[d] +
                             "\" (layout mismatch)");
  }
  return true;
}

bool parse_logistic(const util::Json& root, Model& model, std::string* error) {
  if (!read_numbers(root.find("mean"), model.mean) ||
      model.mean.size() != kFeatureCount)
    return fail(error, "model: \"mean\" must have one number per feature");
  if (!read_numbers(root.find("scale"), model.scale) ||
      model.scale.size() != kFeatureCount)
    return fail(error, "model: \"scale\" must have one number per feature");
  for (double s : model.scale)
    if (!(s > 0.0))
      return fail(error, "model: every \"scale\" entry must be > 0");
  if (!read_numbers(root.find("weights"), model.weights) ||
      model.weights.size() != kFeatureCount)
    return fail(error, "model: \"weights\" must have one number per feature");
  const util::Json* bias = root.find("bias");
  if (!bias || !bias->is_number())
    return fail(error, "model: logistic requires a numeric \"bias\"");
  model.bias = bias->as_number();
  return true;
}

bool parse_tree(const util::Json& root, Model& model, std::string* error) {
  const util::Json* nodes = root.find("nodes");
  if (!nodes || !nodes->is_array() || nodes->as_array().empty())
    return fail(error, "model: tree requires a non-empty \"nodes\" array");
  const std::size_t n = nodes->as_array().size();
  model.nodes.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const util::Json& jn = nodes->as_array()[i];
    if (!jn.is_object())
      return fail(error, "model: tree node " + std::to_string(i) +
                             " must be an object");
    TreeNode node;
    if (const util::Json* leaf = jn.find("leaf")) {
      if (!leaf->is_number() || leaf->as_number() < 0.0 ||
          leaf->as_number() > 1.0)
        return fail(error, "model: leaf " + std::to_string(i) +
                               " must be a probability in [0, 1]");
      node.leaf = leaf->as_number();
    } else {
      const util::Json* feature = jn.find("feature");
      const util::Json* threshold = jn.find("threshold");
      const util::Json* left = jn.find("left");
      const util::Json* right = jn.find("right");
      if (!feature || !feature->is_number() || !threshold ||
          !threshold->is_number() || !left || !left->is_number() || !right ||
          !right->is_number())
        return fail(error, "model: interior node " + std::to_string(i) +
                               " needs feature/threshold/left/right");
      node.feature = static_cast<int>(feature->as_number());
      if (node.feature < 0 ||
          node.feature >= static_cast<int>(kFeatureCount))
        return fail(error, "model: node " + std::to_string(i) +
                               " feature index out of range");
      node.threshold = threshold->as_number();
      node.left = static_cast<int>(left->as_number());
      node.right = static_cast<int>(right->as_number());
      // Children must point strictly forward: guarantees the walk
      // terminates without a visited set.
      for (int child : {node.left, node.right})
        if (child <= static_cast<int>(i) || child >= static_cast<int>(n))
          return fail(error, "model: node " + std::to_string(i) +
                                 " child index must point forward in range");
    }
    model.nodes.push_back(node);
  }
  return true;
}

}  // namespace

const char* to_string(ModelType type) {
  return type == ModelType::kLogistic ? "logistic" : "tree";
}

double Model::evaluate(const std::vector<double>& x) const {
  if (type == ModelType::kLogistic) {
    double z = bias;
    for (std::size_t d = 0; d < weights.size() && d < x.size(); ++d)
      z += weights[d] * (x[d] - mean[d]) / scale[d];
    return 1.0 / (1.0 + std::exp(-z));
  }
  std::size_t i = 0;
  while (nodes[i].feature >= 0) {
    const double v = x[static_cast<std::size_t>(nodes[i].feature)];
    i = static_cast<std::size_t>(v <= nodes[i].threshold ? nodes[i].left
                                                         : nodes[i].right);
  }
  return nodes[i].leaf;
}

std::optional<Model> parse_model(const std::string& json_text,
                                 std::string* error) {
  std::string parse_error;
  const std::optional<util::Json> doc = util::Json::parse(json_text,
                                                          &parse_error);
  if (!doc) {
    fail(error, "model: " + parse_error);
    return std::nullopt;
  }
  if (!doc->is_object()) {
    fail(error, "model: document must be an object");
    return std::nullopt;
  }

  Model model;
  const std::string type = doc->string_or("type", "");
  if (type == "logistic") {
    model.type = ModelType::kLogistic;
  } else if (type == "tree") {
    model.type = ModelType::kTree;
  } else {
    fail(error, "model: \"type\" must be \"logistic\" or \"tree\"");
    return std::nullopt;
  }
  if (!validate_features(*doc, error)) return std::nullopt;

  const util::Json* threshold = doc->find("threshold");
  if (threshold) {
    if (!threshold->is_number() || threshold->as_number() <= 0.0 ||
        threshold->as_number() >= 1.0) {
      fail(error, "model: \"threshold\" must be in (0, 1)");
      return std::nullopt;
    }
    model.threshold = threshold->as_number();
  }

  const bool ok = model.type == ModelType::kLogistic
                      ? parse_logistic(*doc, model, error)
                      : parse_tree(*doc, model, error);
  if (!ok) return std::nullopt;
  return model;
}

std::string dump_model(const Model& model) {
  util::Json::Array names;
  for (const char* name : kFeatureNames) names.emplace_back(name);

  util::Json::Object root;
  root["type"] = to_string(model.type);
  root["features"] = std::move(names);
  root["threshold"] = model.threshold;
  if (model.type == ModelType::kLogistic) {
    auto numbers = [](const std::vector<double>& xs) {
      util::Json::Array arr;
      for (double x : xs) arr.emplace_back(x);
      return arr;
    };
    root["mean"] = numbers(model.mean);
    root["scale"] = numbers(model.scale);
    root["weights"] = numbers(model.weights);
    root["bias"] = model.bias;
  } else {
    util::Json::Array nodes;
    for (const TreeNode& node : model.nodes) {
      util::Json::Object jn;
      if (node.feature < 0) {
        jn["leaf"] = node.leaf;
      } else {
        jn["feature"] = node.feature;
        jn["threshold"] = node.threshold;
        jn["left"] = node.left;
        jn["right"] = node.right;
      }
      nodes.emplace_back(std::move(jn));
    }
    root["nodes"] = std::move(nodes);
  }
  return util::Json(std::move(root)).dump();
}

}  // namespace mvs::policy

#pragma once
// mvs::policy — online detect-or-track scheduling layer.
//
// BALB's regular frames run every camera through partial-frame DETECTION on
// a fixed cadence, but the latency objective is dominated by GPU demand and
// a camera whose tracks are stable can coast on optical-flow TRACKING for
// several frames with negligible recall loss (cf. "Detect or Track:
// Towards Cost-Effective Video Object Detection/Tracking"). A FramePolicy
// makes that call per camera per regular frame from the online features of
// features.hpp; track-only cameras contribute ZERO GPU slices that frame.
//
// Three implementations behind one config switch:
//   fixed     — today's behavior: detect every regular frame. Selecting it
//               is bit-identical to the pre-policy pipeline (guarded by
//               test_runtime's determinism and fleet-of-one tests).
//   heuristic — staleness / drift / confidence-decay / unexplained-motion
//               thresholds with hysteresis (a trigger that fired must drop
//               below its low-water mark before it can fire again, and a
//               fresh detect opens a short refractory window), so a signal
//               hovering at the threshold cannot oscillate the decision.
//   learned   — an mvs::ml logistic or decision-tree scorer trained from
//               recorded feature traces (train.hpp / tools/policy_train),
//               loaded from model.hpp JSON. The staleness cap still applies
//               as a safety net so a mis-trained model can only defer a
//               detect, never starve one.
//
// Determinism: decide() for camera i reads and writes only camera i's slot,
// so the pipeline may call it from its parallel per-camera step; decisions
// depend only on the camera's own feature stream, never on call order.

#include <memory>
#include <optional>
#include <string>

#include "policy/features.hpp"
#include "policy/model.hpp"

namespace mvs::policy {

enum class PolicyKind { kFixed, kHeuristic, kLearned };

const char* to_string(PolicyKind kind);
/// Parse "fixed" | "heuristic" | "learned", case-insensitive.
std::optional<PolicyKind> parse_policy_kind(std::string name);

/// Config-facing knobs (runtime::config `policy {}` block + CLI parity).
struct PolicyConfig {
  PolicyKind kind = PolicyKind::kFixed;
  /// Force a detect once a camera has gone this many regular frames
  /// without one (upper bound on staleness; applies to heuristic AND
  /// learned — the safety net that bounds recall loss). Defaults tuned on
  /// S2 multi-seed paired-RNG sweeps (bench/ablation_policy): with
  /// per-track slice gating a cadence cap of 3 keeps mean recall at the
  /// fixed baseline while the gating carries the GPU cut; larger values let
  /// stale tracks outlive their objects.
  int staleness_limit = 3;
  /// Fresh-detect refractory window: triggers other than staleness are
  /// ignored for this many frames after an inspection.
  int min_track_frames = 1;
  /// Heuristic trigger: accumulated track drift (logical px) since detect.
  double drift_px = 4.0;
  /// Heuristic trigger: decayed detection confidence floor.
  double conf_floor = 0.45;
  /// Heuristic trigger: unexplained-motion block fraction.
  double motion_frac = 0.006;
  /// Heuristic trigger: churn (adds + drops per track at last detect).
  double churn_hi = 0.34;
  /// Hysteresis width: a fired trigger re-arms only after its signal drops
  /// below (1 - hysteresis) x its threshold.
  double hysteresis = 0.3;
  /// Learned-model source: a JSON file path, or the document inline
  /// (model_json wins when both are set; inline is what tests use).
  std::string model_path;
  std::string model_json;
  /// Learned decision threshold override; <= 0 keeps the model's own.
  double threshold = 0.0;
  /// Admission-estimator planning constant: expected fraction of regular
  /// camera-frames that still run detection under this policy (see
  /// demand_factor and DESIGN.md §10). Matches the tuned heuristic's
  /// measured cadence on S2 (~0.49 detect frames per regular camera-frame).
  double expected_detect_ratio = 0.5;
  /// When non-empty, the pipeline appends one JSONL feature row per
  /// camera per detect frame ({"f": [...], "label": 0|1}) for training.
  std::string feature_trace;
  /// ReXCam-style cross-camera correlation gate (correlation.hpp): skip
  /// detection entirely — key-frame full inspections included — in cameras
  /// no tracked object can reach. Orthogonal to `kind` (composes with the
  /// fixed cadence too); off by default, preserving bit-identity.
  bool correlation_gate = false;
  /// Minimum learned transition probability for a reachability edge.
  double gate_threshold = 0.05;
  /// Transition lookahead window (frames) used when fitting the table.
  int gate_window = 80;
  /// Hot-set hold-down (frames) covering blind gaps between cameras.
  int gate_hold = 80;
};

/// One decision. `score` is the policy's detect propensity (1.0 for forced
/// detects, the model probability for learned) — exported to obs.
struct Decision {
  bool detect = true;
  double score = 1.0;
};

class FramePolicy {
 public:
  virtual ~FramePolicy() = default;

  PolicyKind kind() const { return kind_; }

  /// Decide for one camera's regular frame. Thread-safe across DISTINCT
  /// cameras (per-camera state only); deterministic in the camera's own
  /// feature stream.
  virtual Decision decide(int camera, const CameraFeatures& f) = 0;

  /// Forget camera state (key frame ran a full inspection / camera rejoin).
  virtual void reset(int camera) { (void)camera; }

 protected:
  explicit FramePolicy(PolicyKind kind) : kind_(kind) {}

 private:
  PolicyKind kind_;
};

/// Build the configured policy for `cameras` cameras. Throws
/// std::runtime_error on an invalid learned-model document or a missing
/// model file.
std::unique_ptr<FramePolicy> make_policy(const PolicyConfig& config,
                                         std::size_t cameras);

/// Admission-estimator scaling for the partial-frame (regular-frame) GPU
/// demand term: 1.0 under the fixed cadence, the configured
/// expected_detect_ratio (clamped to [0.05, 1]) otherwise. Full-frame key
/// inspections are unaffected — the policy never skips key frames.
double demand_factor(const PolicyConfig& config);

}  // namespace mvs::policy

#include "policy/policy.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mvs::policy {

namespace {

/// Fixed cadence: detect every regular frame (the pre-policy pipeline).
/// The pipeline fast-paths this kind without ever calling decide(), but
/// the implementation exists so the selection logic is uniform.
class FixedPolicy final : public FramePolicy {
 public:
  FixedPolicy() : FramePolicy(PolicyKind::kFixed) {}
  Decision decide(int, const CameraFeatures&) override { return {true, 1.0}; }
};

/// Threshold triggers with hysteresis. Drift and confidence reset on every
/// detect and climb monotonically between detects, so they cannot hover at
/// their threshold; the refractory window alone debounces them. The
/// instantaneous signals (unexplained motion, churn) carry a per-camera
/// latch: after firing, a signal HOVERING inside the hysteresis band
/// [threshold x (1 - h), threshold x (1 + h)] cannot fire again until it
/// first drops below the low-water mark — but a signal clearly ABOVE the
/// band still fires while disarmed (a genuinely busy camera must keep
/// detecting; only threshold-noise oscillation is suppressed).
class HeuristicPolicy final : public FramePolicy {
 public:
  HeuristicPolicy(const PolicyConfig& cfg, std::size_t cameras)
      : FramePolicy(PolicyKind::kHeuristic),
        cfg_(cfg),
        motion_armed_(cameras, 1),
        churn_armed_(cameras, 1) {}

  Decision decide(int camera, const CameraFeatures& f) override {
    const auto i = static_cast<std::size_t>(camera);
    const double h = std::clamp(cfg_.hysteresis, 0.0, 1.0);

    // Re-arm latched triggers whose signal dropped below low water.
    if (!motion_armed_[i] &&
        f.unexplained_motion < cfg_.motion_frac * (1.0 - h))
      motion_armed_[i] = 1;
    if (!churn_armed_[i] && f.churn < cfg_.churn_hi * (1.0 - h))
      churn_armed_[i] = 1;

    if (cfg_.staleness_limit > 0 &&
        f.frames_since_detect >= static_cast<double>(cfg_.staleness_limit))
      return {true, 1.0};
    if (f.frames_since_detect < static_cast<double>(cfg_.min_track_frames))
      return {false, 0.0};  // refractory: just inspected

    // A planned object went missing mid-horizon: coasting can never bring
    // it back, so keep detecting (at the refractory cadence — an object the
    // detector keeps missing anyway must not force EVERY frame) until it is
    // re-acquired or the next key frame re-plans.
    if (f.track_deficit > 0.0) return {true, 1.0};
    if (f.drift_px >= cfg_.drift_px) return {true, 1.0};
    if (f.confidence <= cfg_.conf_floor) return {true, 1.0};
    const double motion_gate =
        cfg_.motion_frac * (motion_armed_[i] ? 1.0 : 1.0 + h);
    if (f.unexplained_motion >= motion_gate) {
      motion_armed_[i] = 0;
      return {true, 1.0};
    }
    const double churn_gate = cfg_.churn_hi * (churn_armed_[i] ? 1.0 : 1.0 + h);
    if (f.churn >= churn_gate) {
      churn_armed_[i] = 0;
      return {true, 1.0};
    }
    return {false, 0.0};
  }

  void reset(int camera) override {
    motion_armed_[static_cast<std::size_t>(camera)] = 1;
    churn_armed_[static_cast<std::size_t>(camera)] = 1;
  }

 private:
  PolicyConfig cfg_;
  std::vector<char> motion_armed_;
  std::vector<char> churn_armed_;
};

/// Model scorer: detect when P(useful) >= threshold. The staleness cap and
/// refractory window bracket the model so a bad fit degrades gracefully
/// toward the heuristic's cadence bounds instead of starving (or spamming)
/// detection.
class LearnedPolicy final : public FramePolicy {
 public:
  LearnedPolicy(const PolicyConfig& cfg, Model model)
      : FramePolicy(PolicyKind::kLearned), cfg_(cfg), model_(std::move(model)) {
    if (cfg_.threshold > 0.0) model_.threshold = cfg_.threshold;
  }

  Decision decide(int, const CameraFeatures& f) override {
    if (cfg_.staleness_limit > 0 &&
        f.frames_since_detect >= static_cast<double>(cfg_.staleness_limit))
      return {true, 1.0};
    if (f.frames_since_detect < static_cast<double>(cfg_.min_track_frames))
      return {false, 0.0};
    const double p = model_.evaluate(f.to_vector());
    return {p >= model_.threshold, p};
  }

 private:
  PolicyConfig cfg_;
  Model model_;
};

std::string load_model_text(const PolicyConfig& cfg) {
  if (!cfg.model_json.empty()) return cfg.model_json;
  if (cfg.model_path.empty())
    throw std::runtime_error(
        "policy: learned mode requires a model (policy.model path or inline "
        "model_json)");
  std::ifstream in(cfg.model_path);
  if (!in)
    throw std::runtime_error("policy: cannot read model file " +
                             cfg.model_path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFixed: return "fixed";
    case PolicyKind::kHeuristic: return "heuristic";
    case PolicyKind::kLearned: return "learned";
  }
  return "fixed";
}

std::optional<PolicyKind> parse_policy_kind(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (name == "fixed") return PolicyKind::kFixed;
  if (name == "heuristic") return PolicyKind::kHeuristic;
  if (name == "learned") return PolicyKind::kLearned;
  return std::nullopt;
}

std::unique_ptr<FramePolicy> make_policy(const PolicyConfig& config,
                                         std::size_t cameras) {
  switch (config.kind) {
    case PolicyKind::kFixed:
      return std::make_unique<FixedPolicy>();
    case PolicyKind::kHeuristic:
      return std::make_unique<HeuristicPolicy>(config, cameras);
    case PolicyKind::kLearned: {
      std::string error;
      std::optional<Model> model = parse_model(load_model_text(config),
                                               &error);
      if (!model) throw std::runtime_error("policy: " + error);
      return std::make_unique<LearnedPolicy>(config, std::move(*model));
    }
  }
  return std::make_unique<FixedPolicy>();
}

double demand_factor(const PolicyConfig& config) {
  if (config.kind == PolicyKind::kFixed) return 1.0;
  return std::clamp(config.expected_detect_ratio, 0.05, 1.0);
}

}  // namespace mvs::policy

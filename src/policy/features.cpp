#include "policy/features.hpp"

#include <algorithm>
#include <cmath>

namespace mvs::policy {

const std::array<const char*, kFeatureCount> kFeatureNames = {
    "frames_since_detect", "drift_px",    "residual",
    "confidence",          "churn",       "track_count",
    "demand_share",        "unexplained_motion", "track_deficit"};

std::vector<double> CameraFeatures::to_vector() const {
  return {frames_since_detect, drift_px,    residual,     confidence,
          churn,               track_count, demand_share, unexplained_motion,
          track_deficit};
}

void CameraFeatureState::note_detect(double mean_score, int churn_events,
                                     int tracks) {
  frames_since_detect = 0;
  accum_drift_px = 0.0;
  confidence_at_detect = mean_score;
  churn_at_detect = churn_events;
  tracks_at_detect = tracks;
  track_baseline = std::max(track_baseline, tracks);
}

CameraFeatures CameraFeatureState::features(std::size_t track_count,
                                            double residual,
                                            double unexplained_motion) const {
  CameraFeatures f;
  f.frames_since_detect = static_cast<double>(frames_since_detect);
  f.drift_px = accum_drift_px;
  f.residual = residual;
  f.confidence = confidence_at_detect *
                 std::pow(kConfidenceDecay,
                          static_cast<double>(frames_since_detect));
  f.churn = static_cast<double>(churn_at_detect) /
            static_cast<double>(std::max(1, tracks_at_detect));
  f.track_count = static_cast<double>(track_count);
  f.demand_share = demand_share;
  f.unexplained_motion = unexplained_motion;
  const int live = static_cast<int>(track_count);
  f.track_deficit =
      static_cast<double>(std::max(0, track_baseline - live)) /
      static_cast<double>(std::max(1, track_baseline));
  return f;
}

double mean_track_motion_px(const vision::FlowField& field,
                            const std::vector<geom::BBox>& boxes,
                            double scale) {
  if (boxes.empty() || scale <= 0.0) return 0.0;
  double acc = 0.0;
  for (const geom::BBox& box : boxes) {
    const geom::BBox scaled{box.x / scale, box.y / scale, box.w / scale,
                            box.h / scale};
    const geom::Vec2 motion = vision::median_flow_in(field, scaled);
    acc += std::hypot(motion.x, motion.y) * scale;
  }
  return acc / static_cast<double>(boxes.size());
}

double normalized_residual(const vision::FlowField& field) {
  if (field.residual.empty()) return 0.0;
  double acc = 0.0;
  for (double r : field.residual) acc += r;
  const double worst = static_cast<double>(field.block_size) *
                       static_cast<double>(field.block_size) * 255.0;
  return acc / (static_cast<double>(field.residual.size()) * worst);
}

double unexplained_motion_fraction(const vision::FlowField& field,
                                   const std::vector<geom::BBox>& explained,
                                   double scale, double motion_threshold) {
  if (field.cols <= 0 || field.rows <= 0) return 0.0;
  // Pre-scale the explained boxes into flow-field coordinates once.
  std::vector<geom::BBox> scaled;
  scaled.reserve(explained.size());
  const double inv = scale > 0.0 ? 1.0 / scale : 1.0;
  for (const geom::BBox& b : explained)
    scaled.push_back({b.x * inv, b.y * inv, b.w * inv, b.h * inv});

  const double half = static_cast<double>(field.block_size) / 2.0;
  std::size_t unexplained = 0;
  for (int r = 0; r < field.rows; ++r) {
    for (int c = 0; c < field.cols; ++c) {
      const geom::Vec2& v = field.at(c, r);
      if (std::hypot(v.x, v.y) < motion_threshold) continue;
      const double cx = c * field.block_size + half;
      const double cy = r * field.block_size + half;
      bool inside = false;
      for (const geom::BBox& b : scaled) {
        if (cx >= b.x && cx <= b.x + b.w && cy >= b.y && cy <= b.y + b.h) {
          inside = true;
          break;
        }
      }
      if (!inside) ++unexplained;
    }
  }
  const std::size_t blocks =
      static_cast<std::size_t>(field.cols) * static_cast<std::size_t>(field.rows);
  return static_cast<double>(unexplained) / static_cast<double>(blocks);
}

}  // namespace mvs::policy

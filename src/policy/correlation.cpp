#include "policy/correlation.hpp"

#include <algorithm>
#include <unordered_map>

namespace mvs::policy {

CorrelationGate::CorrelationGate(const CorrelationGateConfig& config,
                                 std::size_t cameras)
    : cfg_(config),
      cameras_(cameras),
      entry_(cameras, 0),
      reach_(cameras * cameras, 0),
      hot_(cameras, 1),
      // Warm start: every camera stays hot for one full hold window after
      // fit(), long enough for the population already mid-grid at frame 0
      // (which no entry or reachability edge can predict) to be acquired
      // and start driving activity-based gating.
      hold_(cameras, config.hold) {}

void CorrelationGate::fit(const std::vector<CameraSightings>& frames) {
  if (frames.empty() || cameras_ == 0) return;

  // First frame each object was seen in each camera, and globally.
  struct FirstSeen {
    long global = -1;
    std::vector<long> per_camera;
  };
  std::unordered_map<std::uint64_t, FirstSeen> first;
  for (std::size_t t = 0; t < frames.size(); ++t) {
    const CameraSightings& frame = frames[t];
    const std::size_t m = std::min(frame.size(), cameras_);
    for (std::size_t c = 0; c < m; ++c) {
      for (std::uint64_t id : frame[c]) {
        FirstSeen& fs = first[id];
        if (fs.per_camera.empty()) fs.per_camera.assign(cameras_, -1);
        if (fs.global < 0) fs.global = static_cast<long>(t);
        if (fs.per_camera[c] < 0) fs.per_camera[c] = static_cast<long>(t);
      }
    }
  }
  if (first.empty()) return;

  // Entry cameras: where objects surface for the first time anywhere.
  // Reachability i -> j: of the objects that appeared in i, the fraction
  // that appeared in j within `window` frames of surfacing in i (including
  // simultaneous co-visibility, which marks overlapping views both ways).
  std::vector<long> appearances(cameras_, 0);
  std::vector<long> transitions(cameras_ * cameras_, 0);
  for (const auto& [id, fs] : first) {
    for (std::size_t i = 0; i < cameras_; ++i) {
      if (fs.per_camera[i] < 0) continue;
      ++appearances[i];
      // Objects already in view at training frame 0 (through traffic left
      // over from warmup) reveal nothing about where traffic ENTERS — only
      // genuinely new arrivals mark entry cameras. Their later camera-to-
      // camera transitions still count toward reachability.
      if (fs.global > 0 && fs.per_camera[i] == fs.global) entry_[i] = 1;
      for (std::size_t j = 0; j < cameras_; ++j) {
        if (j == i || fs.per_camera[j] < 0) continue;
        const long lag = fs.per_camera[j] - fs.per_camera[i];
        if (lag >= 0 && lag <= cfg_.window)
          ++transitions[i * cameras_ + j];
      }
    }
  }
  for (std::size_t i = 0; i < cameras_; ++i) {
    if (appearances[i] == 0) {
      // No evidence about this camera: never prune it.
      entry_[i] = 1;
      continue;
    }
    for (std::size_t j = 0; j < cameras_; ++j) {
      const double p = static_cast<double>(transitions[i * cameras_ + j]) /
                       static_cast<double>(appearances[i]);
      if (p >= cfg_.threshold) reach_[i * cameras_ + j] = 1;
    }
  }
  // Training too short to observe a single fresh arrival: no evidence about
  // entries at all, so never prune anything.
  if (std::find(entry_.begin(), entry_.end(), 1) == entry_.end())
    entry_.assign(cameras_, 1);
  fitted_ = true;
}

void CorrelationGate::refresh(const std::vector<int>& activity) {
  if (!fitted_) return;
  for (std::size_t i = 0; i < cameras_; ++i) {
    bool raw = entry_[i] != 0 || (i < activity.size() && activity[i] > 0);
    if (!raw) {
      for (std::size_t j = 0; j < cameras_ && !raw; ++j)
        raw = j < activity.size() && activity[j] > 0 &&
              reach_[j * cameras_ + i] != 0;
    }
    if (raw) {
      hold_[i] = cfg_.hold;
      hot_[i] = 1;
    } else if (hold_[i] > 0) {
      // A hold of N keeps the camera hot for N full frames after the last
      // frame that made it hot.
      --hold_[i];
      hot_[i] = 1;
    } else {
      hot_[i] = 0;
    }
  }
}

}  // namespace mvs::policy

#pragma once
// Serialized detect-or-track scoring models (mvs::policy).
//
// A learned policy is a tiny binary classifier over the frozen
// features.hpp vector, stored as JSON so models trained by
// tools/policy_train travel as plain files. Two shapes are supported,
// mirroring the two mvs::ml baselines:
//
//   {"type": "logistic", "features": [...8 names...],
//    "mean": [...], "scale": [...], "weights": [...], "bias": b,
//    "threshold": 0.5}
//
//   {"type": "tree", "features": [...8 names...], "threshold": 0.5,
//    "nodes": [{"feature": f, "threshold": t, "left": i, "right": j} |
//              {"leaf": p}, ...]}
//
// Evaluation is self-contained (no mvs::ml at inference): logistic applies
// sigmoid(bias + sum_d w_d * (x_d - mean_d) / scale_d); the tree walks
// nodes from index 0 (go left when x[feature] <= threshold) to a leaf's
// positive fraction. parse_model validates everything the evaluator
// assumes — feature names must match kFeatureNames exactly, vector sizes
// must agree, scales must be positive, tree child links must point forward
// (acyclic) and in range, leaves must be probabilities — so a malformed
// model is rejected at load time, never trusted at decision time.

#include <optional>
#include <string>
#include <vector>

namespace mvs::policy {

enum class ModelType { kLogistic, kTree };

const char* to_string(ModelType type);

/// Flattened decision-tree node. Interior nodes have feature >= 0 and
/// forward child indices; leaves have feature == -1 and a positive
/// fraction in `leaf`.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  double leaf = 0.0;
  int left = -1;
  int right = -1;
};

struct Model {
  ModelType type = ModelType::kLogistic;
  // Logistic parameters (raw feature space; scale is a standard deviation).
  std::vector<double> mean, scale, weights;
  double bias = 0.0;
  // Tree parameters.
  std::vector<TreeNode> nodes;
  /// Decision threshold on the returned probability: detect when
  /// evaluate(x) >= threshold.
  double threshold = 0.5;

  /// P(detect is useful | x). `x` must have kFeatureCount entries.
  double evaluate(const std::vector<double>& x) const;
};

/// Parse + validate a model document; nullopt (with *error filled) on any
/// structural or semantic problem.
std::optional<Model> parse_model(const std::string& json_text,
                                 std::string* error = nullptr);

/// Serialize (round-trips through parse_model).
std::string dump_model(const Model& model);

}  // namespace mvs::policy

#pragma once
// Cross-camera correlation gating (ReXCam-style, "Scaling Video Analytics on
// Constrained Edge Nodes" / Jain et al.): at city scale most cameras are
// empty most of the time, and an empty camera whose view no tracked object
// can reach within a horizon does not need GPU inference at all. The gate
// learns, from the simulator's training split, (a) which cameras objects
// ENTER the deployment through and (b) the pairwise reachability table
// P(object appears in j soon after appearing in i). At runtime a camera is
// HOT — eligible for detection — iff it is an entry camera, currently holds
// tracks/ghosts, or is reachable from a camera that does; everything else
// is COLD and the pipeline skips its key-frame full inspection and regular-
// frame slices. A hold-down keeps a camera hot while an object transits the
// blind gap between two poles.
//
// The gate is deliberately conservative where it has no evidence: before
// fit(), and for cameras that saw nothing during training, every camera is
// hot (the gate only prunes what it can vouch for). Objects already in view
// at training frame 0 — through traffic left over from the world warmup —
// do not mark entry cameras (they reveal nothing about where traffic
// enters), and if training never observes a single fresh arrival the gate
// falls back to treating every camera as entry. After fit() every camera
// starts with one full hold window of warmth, so the population already
// mid-grid at runtime frame 0 is acquired before gating engages. The fitted
// tables are immutable at runtime and refresh() runs sequentially between
// frames, so gating is deterministic across thread counts.
//
// This layer is sim-free: training data arrives as per-frame per-camera
// lists of visible object identities (the pipeline converts its training
// frames), keeping mvs::policy independent of mvs::sim.

#include <cstdint>
#include <vector>

namespace mvs::policy {

struct CorrelationGateConfig {
  bool enabled = false;
  /// Minimum transition probability for a reachability edge: the fraction
  /// of objects seen in camera i that later (within `window` frames) appear
  /// in camera j must reach this for j to count as reachable from i.
  double threshold = 0.05;
  /// Transition lookahead, in frames: how long after leaving camera i an
  /// object may take to surface in camera j (covers the blind gap between
  /// poles plus tracking slack).
  int window = 80;
  /// Hold-down, in frames: a camera stays hot this long after the condition
  /// that made it hot goes away (objects in blind gaps keep their
  /// destination camera warm).
  int hold = 80;
};

/// One training frame: sightings[camera] = identities visible in that
/// camera (order and duplicates do not matter).
using CameraSightings = std::vector<std::vector<std::uint64_t>>;

class CorrelationGate {
 public:
  CorrelationGate(const CorrelationGateConfig& config, std::size_t cameras);

  /// Learn entry cameras and the reachability table from a training split.
  /// Cameras with no sightings in `frames` stay conservatively hot forever.
  void fit(const std::vector<CameraSightings>& frames);

  /// Recompute the hot set from the current per-camera activity
  /// (tracks + ghosts + pending lost-track searches). Call once per frame,
  /// sequentially, before the per-camera steps read hot().
  void refresh(const std::vector<int>& activity);

  /// May camera `cam` run detection this frame? Always true before fit().
  bool hot(int cam) const {
    return !fitted_ || hot_[static_cast<std::size_t>(cam)] != 0;
  }

  bool fitted() const { return fitted_; }
  bool entry(int cam) const { return entry_[static_cast<std::size_t>(cam)]; }
  bool reachable(int from, int to) const {
    return reach_[static_cast<std::size_t>(from) * cameras_ +
                  static_cast<std::size_t>(to)] != 0;
  }
  std::size_t camera_count() const { return cameras_; }

 private:
  CorrelationGateConfig cfg_;
  std::size_t cameras_ = 0;
  bool fitted_ = false;
  std::vector<char> entry_;  ///< objects first surface here (or no evidence)
  std::vector<char> reach_;  ///< row-major [from][to] reachability
  std::vector<char> hot_;
  std::vector<int> hold_;    ///< per-camera hold-down countdown
};

}  // namespace mvs::policy

#include "policy/train.hpp"

#include <algorithm>
#include <istream>
#include <string>

#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "policy/features.hpp"
#include "util/json.hpp"

namespace mvs::policy {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Deterministic holdout: every 5th row evaluates, the rest train. The
/// trace is a time series, so a strided split spreads both halves over the
/// whole run instead of evaluating only on the tail's conditions.
constexpr std::size_t kHoldoutStride = 5;

Model export_logistic(const ml::LogisticRegression& fit) {
  Model model;
  model.type = ModelType::kLogistic;
  const ml::Feature& raw = fit.raw_weights();  // scaled space, last = bias
  const ml::Feature& mean = fit.scaler().mean();
  const ml::Feature& inv_std = fit.scaler().inv_std();
  model.mean = mean;
  model.scale.resize(inv_std.size());
  model.weights.assign(raw.begin(), raw.end() - 1);
  for (std::size_t d = 0; d < inv_std.size(); ++d)
    model.scale[d] = 1.0 / inv_std[d];
  model.bias = raw.back();
  return model;
}

Model export_tree(const ml::DecisionTree& fit) {
  Model model;
  model.type = ModelType::kTree;
  for (const ml::DecisionTree::FlatNode& n : fit.flatten()) {
    TreeNode node;
    node.feature = n.feature;
    node.threshold = n.threshold;
    node.leaf = n.positive_fraction;
    node.left = n.left;
    node.right = n.right;
    model.nodes.push_back(node);
  }
  return model;
}

}  // namespace

std::optional<std::vector<TrainSample>> load_feature_trace(
    std::istream& in, std::string* error) {
  std::vector<TrainSample> samples;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string parse_error;
    const std::optional<util::Json> row = util::Json::parse(line,
                                                            &parse_error);
    const std::string where = "feature trace line " + std::to_string(line_no);
    if (!row) {
      fail(error, where + ": " + parse_error);
      return std::nullopt;
    }
    const util::Json* f = row->find("f");
    const util::Json* label = row->find("label");
    if (!row->is_object() || !f || !f->is_array() || !label ||
        !label->is_number()) {
      fail(error, where + ": expected {\"f\": [...], \"label\": 0|1}");
      return std::nullopt;
    }
    TrainSample sample;
    for (const util::Json& v : f->as_array()) {
      if (!v.is_number()) {
        fail(error, where + ": non-numeric feature");
        return std::nullopt;
      }
      sample.x.push_back(v.as_number());
    }
    if (sample.x.size() != kFeatureCount) {
      fail(error, where + ": expected " + std::to_string(kFeatureCount) +
                      " features, got " + std::to_string(sample.x.size()));
      return std::nullopt;
    }
    sample.label = label->as_number() != 0.0 ? 1 : 0;
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::optional<TrainReport> train_model(const std::vector<TrainSample>& samples,
                                       ModelType type, std::string* error) {
  std::vector<ml::Feature> train_x, eval_x;
  std::vector<int> train_y, eval_y;
  std::size_t positives = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    positives += static_cast<std::size_t>(samples[i].label);
    if (i % kHoldoutStride == kHoldoutStride - 1) {
      eval_x.push_back(samples[i].x);
      eval_y.push_back(samples[i].label);
    } else {
      train_x.push_back(samples[i].x);
      train_y.push_back(samples[i].label);
    }
  }
  if (train_x.empty()) {
    fail(error, "train: feature trace is empty");
    return std::nullopt;
  }
  const std::size_t train_pos =
      static_cast<std::size_t>(std::count(train_y.begin(), train_y.end(), 1));
  if (train_pos == 0 || train_pos == train_y.size()) {
    fail(error,
         "train: trace is single-class; record a longer or busier run");
    return std::nullopt;
  }

  TrainReport report;
  if (type == ModelType::kLogistic) {
    ml::LogisticRegression fit;
    fit.fit(train_x, train_y);
    report.model = export_logistic(fit);
  } else {
    ml::DecisionTree fit;
    fit.fit(train_x, train_y);
    report.model = export_tree(fit);
  }

  std::size_t correct = 0, tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < eval_x.size(); ++i) {
    const bool predicted =
        report.model.evaluate(eval_x[i]) >= report.model.threshold;
    const bool truth = eval_y[i] == 1;
    correct += static_cast<std::size_t>(predicted == truth);
    tp += static_cast<std::size_t>(predicted && truth);
    fp += static_cast<std::size_t>(predicted && !truth);
    fn += static_cast<std::size_t>(!predicted && truth);
  }
  report.train_samples = train_x.size();
  report.eval_samples = eval_x.size();
  if (!eval_x.empty())
    report.accuracy =
        static_cast<double>(correct) / static_cast<double>(eval_x.size());
  if (tp + fp > 0)
    report.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  if (tp + fn > 0)
    report.recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
  report.positive_rate = samples.empty()
                             ? 0.0
                             : static_cast<double>(positives) /
                                   static_cast<double>(samples.size());
  return report;
}

}  // namespace mvs::policy

#pragma once
// 2-D geometric primitives: points and axis-aligned bounding boxes in image
// pixel coordinates. Everything downstream (detections, tracks, association,
// scheduling target sizes) is built on BBox.

#include <algorithm>
#include <cmath>
#include <ostream>

namespace mvs::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double k) const { return {x * k, y * k}; }
  double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  double norm() const { return std::hypot(x, y); }
};

/// Axis-aligned bounding box. (x, y) is the top-left corner; w/h >= 0 for a
/// valid box. Degenerate (empty) boxes have area 0 and IoU 0 with everything.
struct BBox {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  static BBox from_corners(double x0, double y0, double x1, double y1) {
    return {std::min(x0, x1), std::min(y0, y1), std::abs(x1 - x0),
            std::abs(y1 - y0)};
  }
  static BBox from_center(Vec2 c, double w, double h) {
    return {c.x - w / 2.0, c.y - h / 2.0, w, h};
  }

  double x2() const { return x + w; }
  double y2() const { return y + h; }
  Vec2 center() const { return {x + w / 2.0, y + h / 2.0}; }
  double area() const { return (w > 0 && h > 0) ? w * h : 0.0; }
  bool empty() const { return w <= 0.0 || h <= 0.0; }

  bool contains(Vec2 p) const {
    return p.x >= x && p.x <= x2() && p.y >= y && p.y <= y2();
  }

  /// Translate by a motion vector (optical-flow prediction).
  BBox shifted(Vec2 d) const { return {x + d.x, y + d.y, w, h}; }

  /// Grow by `margin` pixels on every side (tracking search region).
  BBox expanded(double margin) const {
    return {x - margin, y - margin, w + 2 * margin, h + 2 * margin};
  }

  /// Scale about the center.
  BBox scaled(double k) const {
    return from_center(center(), w * k, h * k);
  }

  /// Clamp to the image rectangle [0,W)x[0,H); may become empty.
  BBox clamped(double width, double height) const;
};

/// Intersection box (possibly empty).
BBox intersect(const BBox& a, const BBox& b);

/// Intersection-over-union in [0, 1].
double iou(const BBox& a, const BBox& b);

/// Intersection area divided by area of `a` ("how much of a is inside b").
double coverage(const BBox& a, const BBox& b);

/// Euclidean distance between box centers.
double center_distance(const BBox& a, const BBox& b);

std::ostream& operator<<(std::ostream& os, const BBox& b);

}  // namespace mvs::geom

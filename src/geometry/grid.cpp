#include "geometry/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mvs::geom {

Grid::Grid(int width, int height, int cell_size)
    : width_(width), height_(height), cell_(cell_size) {
  assert(width > 0 && height > 0 && cell_size > 0);
  cols_ = (width + cell_size - 1) / cell_size;
  rows_ = (height + cell_size - 1) / cell_size;
}

CellIndex Grid::cell_at(Vec2 p) const {
  const double cx = std::clamp(p.x, 0.0, static_cast<double>(width_ - 1));
  const double cy = std::clamp(p.y, 0.0, static_cast<double>(height_ - 1));
  return {static_cast<int>(cx) / cell_, static_cast<int>(cy) / cell_};
}

BBox Grid::cell_box(CellIndex c) const {
  const double x0 = static_cast<double>(c.col * cell_);
  const double y0 = static_cast<double>(c.row * cell_);
  const double x1 = std::min(static_cast<double>((c.col + 1) * cell_),
                             static_cast<double>(width_));
  const double y1 = std::min(static_cast<double>((c.row + 1) * cell_),
                             static_cast<double>(height_));
  return BBox::from_corners(x0, y0, x1, y1);
}

std::vector<CellIndex> Grid::cells_overlapping(const BBox& box) const {
  std::vector<CellIndex> cells;
  const BBox clipped = box.clamped(static_cast<double>(width_),
                                   static_cast<double>(height_));
  if (clipped.empty()) return cells;
  const CellIndex lo = cell_at({clipped.x, clipped.y});
  // Use a point just inside the far edge so boxes ending exactly on a cell
  // boundary do not claim the next cell.
  const CellIndex hi =
      cell_at({clipped.x2() - 1e-9, clipped.y2() - 1e-9});
  for (int r = lo.row; r <= hi.row; ++r)
    for (int c = lo.col; c <= hi.col; ++c) cells.push_back({c, r});
  return cells;
}

}  // namespace mvs::geom

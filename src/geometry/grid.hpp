#pragma once
// Pixel-cell grid used by the BALB distributed stage (paper Fig. 8).
//
// Each camera frame is divided into a grid of cells; per-cell coverage sets
// (which cameras can observe the world region behind the cell) are computed
// once per deployment, and the distributed stage assigns each cell to the
// highest-priority camera that covers it ("camera masks").

#include <cstddef>
#include <vector>

#include "geometry/bbox.hpp"

namespace mvs::geom {

struct CellIndex {
  int col = 0;
  int row = 0;
  bool operator==(const CellIndex&) const = default;
};

/// A uniform grid over a W x H pixel frame.
class Grid {
 public:
  /// cell_size: side of each square cell in pixels (last row/col may be
  /// truncated). width/height/cell_size must be > 0.
  Grid(int width, int height, int cell_size);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int cell_size() const { return cell_; }
  std::size_t cell_count() const {
    return static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  }

  /// Cell containing a pixel point (clamped into range).
  CellIndex cell_at(Vec2 p) const;

  /// Flat index of a cell, row-major.
  std::size_t flat(CellIndex c) const {
    return static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(c.col);
  }

  /// Pixel rectangle of a cell (clipped to the frame).
  BBox cell_box(CellIndex c) const;

  /// All cells overlapping `box` (clipped to the frame).
  std::vector<CellIndex> cells_overlapping(const BBox& box) const;

 private:
  int width_, height_, cell_;
  int cols_, rows_;
};

}  // namespace mvs::geom

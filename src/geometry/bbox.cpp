#include "geometry/bbox.hpp"

namespace mvs::geom {

BBox BBox::clamped(double width, double height) const {
  const double nx0 = std::clamp(x, 0.0, width);
  const double ny0 = std::clamp(y, 0.0, height);
  const double nx1 = std::clamp(x2(), 0.0, width);
  const double ny1 = std::clamp(y2(), 0.0, height);
  return {nx0, ny0, std::max(0.0, nx1 - nx0), std::max(0.0, ny1 - ny0)};
}

BBox intersect(const BBox& a, const BBox& b) {
  const double x0 = std::max(a.x, b.x);
  const double y0 = std::max(a.y, b.y);
  const double x1 = std::min(a.x2(), b.x2());
  const double y1 = std::min(a.y2(), b.y2());
  if (x1 <= x0 || y1 <= y0) return {};
  return {x0, y0, x1 - x0, y1 - y0};
}

double iou(const BBox& a, const BBox& b) {
  const double inter = intersect(a, b).area();
  if (inter <= 0.0) return 0.0;
  const double uni = a.area() + b.area() - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

double coverage(const BBox& a, const BBox& b) {
  const double area = a.area();
  if (area <= 0.0) return 0.0;
  return intersect(a, b).area() / area;
}

double center_distance(const BBox& a, const BBox& b) {
  return (a.center() - b.center()).norm();
}

std::ostream& operator<<(std::ostream& os, const BBox& b) {
  return os << "BBox(" << b.x << ", " << b.y << ", " << b.w << ", " << b.h
            << ")";
}

}  // namespace mvs::geom

#include "geometry/size_class.hpp"

#include <algorithm>
#include <cassert>

namespace mvs::geom {

SizeClassSet::SizeClassSet() : sizes_{64, 128, 256, 512} {}

SizeClassSet::SizeClassSet(std::vector<int> sizes) : sizes_(std::move(sizes)) {
  assert(!sizes_.empty());
  std::sort(sizes_.begin(), sizes_.end());
}

SizeClassId SizeClassSet::quantize(const BBox& box, double margin) const {
  const double need = std::max(box.w, box.h) + 2.0 * margin;
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    if (static_cast<double>(sizes_[i]) >= need)
      return static_cast<SizeClassId>(i);
  }
  return static_cast<SizeClassId>(sizes_.size() - 1);
}

BBox SizeClassSet::expand_to_class(const BBox& box, SizeClassId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < sizes_.size());
  const double side = static_cast<double>(sizes_[static_cast<std::size_t>(id)]);
  const double w = std::max(box.w, side);
  const double h = std::max(box.h, side);
  // If the box already exceeds the class side it is kept (and will be
  // downsampled by the detector); otherwise grow to the exact class square.
  return BBox::from_center(box.center(), std::max(side, w), std::max(side, h));
}

}  // namespace mvs::geom

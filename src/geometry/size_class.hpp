#pragma once
// Target-size quantization (paper Sec. II-B / III-A).
//
// Partial-frame inspection regions are expanded to the nearest size in a
// small quantized set S = {64, 128, 256, 512} so that regions with the same
// size can be batched together on the GPU. Regions larger than the largest
// class are downsampled to it.

#include <array>
#include <cstddef>
#include <vector>

#include "geometry/bbox.hpp"

namespace mvs::geom {

/// Index into the quantized size set; kInvalidSizeClass means "full frame".
using SizeClassId = int;
inline constexpr SizeClassId kFullFrameSizeClass = -1;

/// The quantized target-size set used throughout the system. Matches the
/// paper's choice for YOLOv5 partial-frame detection.
class SizeClassSet {
 public:
  /// Default paper set {64, 128, 256, 512} (square pixel regions).
  SizeClassSet();
  explicit SizeClassSet(std::vector<int> sizes);

  std::size_t count() const { return sizes_.size(); }
  int size_of(SizeClassId id) const { return sizes_.at(static_cast<std::size_t>(id)); }
  const std::vector<int>& sizes() const { return sizes_; }

  /// Smallest class whose side covers max(w, h) after adding `margin` on each
  /// side; regions larger than the biggest class map to the biggest class
  /// (they are downsampled, per the paper).
  SizeClassId quantize(const BBox& box, double margin = 8.0) const;

  /// Expand `box` about its center to the square of its quantized class.
  /// If the region exceeds the largest class it keeps its own (downsampled)
  /// extent but still reports the largest class.
  BBox expand_to_class(const BBox& box, SizeClassId id) const;

 private:
  std::vector<int> sizes_;  // ascending
};

}  // namespace mvs::geom

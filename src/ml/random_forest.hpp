#pragma once
// Bagged decision-tree ensemble — an extra association-classifier baseline
// beyond the paper's four (reported as "extra" in the Fig. 10 bench).
// Each tree trains on a bootstrap sample; prediction averages the leaves'
// positive fractions.

#include "ml/decision_tree.hpp"
#include "ml/model.hpp"

namespace mvs::ml {

class RandomForest final : public BinaryClassifier {
 public:
  struct Config {
    int trees = 15;
    DecisionTree::Config tree{};
    std::uint64_t seed = 41;
  };

  RandomForest() = default;
  explicit RandomForest(Config cfg) : cfg_(cfg) {}

  void fit(const std::vector<Feature>& xs,
           const std::vector<int>& labels) override;
  bool predict(const Feature& x) const override;
  double decision(const Feature& x) const override;

  std::size_t tree_count() const { return forest_.size(); }

 private:
  Config cfg_{};
  std::vector<DecisionTree> forest_;
};

}  // namespace mvs::ml

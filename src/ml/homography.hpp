#pragma once
// Homography baseline for cross-camera box mapping (Fig. 11).
//
// Estimates a 3x3 projective transform H between the two image planes with
// the normalized DLT algorithm from point correspondences (we use the
// bottom-center "footprint" of each box, the point most nearly on the ground
// plane), then maps a query box by transforming its four corners and taking
// the axis-aligned hull. As the paper observes, a plane-induced homography
// cannot capture 3-D object extent, so its MAE is intrinsically higher than
// the data-driven KNN mapping.

#include <array>

#include "ml/model.hpp"

namespace mvs::ml {

/// 3x3 homography in row-major order.
class Homography {
 public:
  Homography();  ///< identity

  /// Estimate from >= 4 point pairs via normalized DLT. Returns false if the
  /// configuration is degenerate.
  bool estimate(const std::vector<std::array<double, 2>>& src,
                const std::vector<std::array<double, 2>>& dst);

  /// Apply to a point; returns {inf, inf} if the point maps to infinity.
  std::array<double, 2> apply(std::array<double, 2> p) const;

  const std::array<double, 9>& coefficients() const { return h_; }

 private:
  std::array<double, 9> h_;
};

/// VectorRegressor adapter over Homography with the association feature
/// convention: inputs/outputs are [cx, cy, w, h] box vectors.
class HomographyRegressor final : public VectorRegressor {
 public:
  void fit(const std::vector<Feature>& xs,
           const std::vector<Feature>& ys) override;
  Feature predict(const Feature& x) const override;

  const Homography& homography() const { return h_; }

 private:
  Homography h_;
};

}  // namespace mvs::ml

#include "ml/svm.hpp"

#include <cassert>
#include <cmath>

namespace mvs::ml {

void LinearSvm::fit(const std::vector<Feature>& xs,
                    const std::vector<int>& labels) {
  assert(xs.size() == labels.size() && !xs.empty());
  scaler_.fit(xs);
  const std::vector<Feature> sx = scaler_.transform_all(xs);
  const std::size_t dim = sx.front().size();
  weights_.assign(dim + 1, 0.0);

  util::Rng rng(cfg_.seed);
  long t = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    for (std::size_t i : rng.permutation(sx.size())) {
      ++t;
      const double eta = 1.0 / (cfg_.lambda * static_cast<double>(t));
      const double y = labels[i] ? 1.0 : -1.0;
      double z = weights_[dim];
      for (std::size_t d = 0; d < dim; ++d) z += weights_[d] * sx[i][d];
      // Sub-gradient step: shrink weights; add margin violators.
      for (std::size_t d = 0; d < dim; ++d)
        weights_[d] *= (1.0 - eta * cfg_.lambda);
      if (y * z < 1.0) {
        for (std::size_t d = 0; d < dim; ++d)
          weights_[d] += eta * y * sx[i][d];
        weights_[dim] += eta * y;
      }
    }
  }
}

double LinearSvm::decision(const Feature& x) const {
  assert(!weights_.empty());
  const Feature q = scaler_.transform(x);
  double z = weights_.back();
  for (std::size_t d = 0; d < q.size(); ++d) z += weights_[d] * q[d];
  return z;
}

bool LinearSvm::predict(const Feature& x) const { return decision(x) > 0.0; }

}  // namespace mvs::ml

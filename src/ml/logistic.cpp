#include "ml/logistic.hpp"

#include <cassert>
#include <cmath>

namespace mvs::ml {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void LogisticRegression::fit(const std::vector<Feature>& xs,
                             const std::vector<int>& labels) {
  assert(xs.size() == labels.size() && !xs.empty());
  scaler_.fit(xs);
  const std::vector<Feature> sx = scaler_.transform_all(xs);
  const std::size_t dim = sx.front().size();
  weights_.assign(dim + 1, 0.0);

  util::Rng rng(cfg_.seed);
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    const double lr =
        cfg_.learning_rate / (1.0 + 0.02 * static_cast<double>(epoch));
    for (std::size_t i : rng.permutation(sx.size())) {
      double z = weights_[dim];
      for (std::size_t d = 0; d < dim; ++d) z += weights_[d] * sx[i][d];
      const double err = sigmoid(z) - static_cast<double>(labels[i]);
      for (std::size_t d = 0; d < dim; ++d)
        weights_[d] -= lr * (err * sx[i][d] + cfg_.l2 * weights_[d]);
      weights_[dim] -= lr * err;
    }
  }
}

double LogisticRegression::decision(const Feature& x) const {
  assert(!weights_.empty());
  const Feature q = scaler_.transform(x);
  double z = weights_.back();
  for (std::size_t d = 0; d < q.size(); ++d) z += weights_[d] * q[d];
  return z;
}

double LogisticRegression::probability(const Feature& x) const {
  return sigmoid(decision(x));
}

bool LogisticRegression::predict(const Feature& x) const {
  return decision(x) > 0.0;
}

}  // namespace mvs::ml

#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace mvs::ml {

namespace {

double gini(std::size_t pos, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

std::unique_ptr<DecisionTree::Node> DecisionTree::build(
    const std::vector<Feature>& xs, const std::vector<int>& labels,
    std::vector<std::size_t> idx, int depth) const {
  auto node = std::make_unique<Node>();
  std::size_t pos = 0;
  for (std::size_t i : idx) pos += static_cast<std::size_t>(labels[i]);
  node->positive_fraction =
      idx.empty() ? 0.0
                  : static_cast<double>(pos) / static_cast<double>(idx.size());

  const bool pure = (pos == 0 || pos == idx.size());
  if (depth >= cfg_.max_depth || idx.size() <= cfg_.min_leaf || pure)
    return node;

  const std::size_t dim = xs.front().size();
  double best_gain = 1e-9;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double parent = gini(pos, idx.size());

  for (std::size_t d = 0; d < dim; ++d) {
    std::vector<std::size_t> sorted = idx;
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return xs[a][d] < xs[b][d];
    });
    std::size_t left_pos = 0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      left_pos += static_cast<std::size_t>(labels[sorted[i]]);
      const double a = xs[sorted[i]][d];
      const double b = xs[sorted[i + 1]][d];
      if (b <= a) continue;  // no separating threshold between equal values
      const std::size_t nl = i + 1;
      const std::size_t nr = sorted.size() - nl;
      const double wl = static_cast<double>(nl) / static_cast<double>(sorted.size());
      const double child = wl * gini(left_pos, nl) +
                           (1.0 - wl) * gini(pos - left_pos, nr);
      const double gain = parent - child;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(d);
        best_threshold = (a + b) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    (xs[i][static_cast<std::size_t>(best_feature)] <= best_threshold
         ? left_idx
         : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node;

  node->feature = best_feature;
  node->threshold = best_threshold;
  node->left = build(xs, labels, std::move(left_idx), depth + 1);
  node->right = build(xs, labels, std::move(right_idx), depth + 1);
  return node;
}

void DecisionTree::fit(const std::vector<Feature>& xs,
                       const std::vector<int>& labels) {
  assert(xs.size() == labels.size() && !xs.empty());
  std::vector<std::size_t> idx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) idx[i] = i;
  root_ = build(xs, labels, std::move(idx), 0);
}

const DecisionTree::Node* DecisionTree::leaf_for(const Feature& x) const {
  assert(root_);
  const Node* n = root_.get();
  while (n->feature >= 0) {
    n = (x[static_cast<std::size_t>(n->feature)] <= n->threshold)
            ? n->left.get()
            : n->right.get();
  }
  return n;
}

bool DecisionTree::predict(const Feature& x) const {
  return leaf_for(x)->positive_fraction > 0.5;
}

double DecisionTree::decision(const Feature& x) const {
  return leaf_for(x)->positive_fraction - 0.5;
}

int DecisionTree::depth() const {
  std::function<int(const Node*)> rec = [&](const Node* n) -> int {
    if (!n || n->feature < 0) return 0;
    return 1 + std::max(rec(n->left.get()), rec(n->right.get()));
  };
  return rec(root_.get());
}

std::size_t DecisionTree::node_count() const {
  std::function<std::size_t(const Node*)> rec = [&](const Node* n) -> std::size_t {
    if (!n) return 0;
    return 1 + rec(n->left.get()) + rec(n->right.get());
  };
  return rec(root_.get());
}

std::vector<DecisionTree::FlatNode> DecisionTree::flatten() const {
  std::vector<FlatNode> out;
  std::function<int(const Node*)> rec = [&](const Node* n) -> int {
    const int index = static_cast<int>(out.size());
    out.push_back(FlatNode{n->feature, n->threshold, n->positive_fraction,
                           -1, -1});
    if (n->feature >= 0) {
      out[static_cast<std::size_t>(index)].left = rec(n->left.get());
      out[static_cast<std::size_t>(index)].right = rec(n->right.get());
    }
    return index;
  };
  if (root_) rec(root_.get());
  return out;
}

}  // namespace mvs::ml

#pragma once
// Common model interfaces for the cross-camera association module
// (paper Sec. II-C) and its baselines (Figures 10 and 11).
//
// Features are dense double vectors; for association they are
// [cx, cy, w, h] of a source-camera bounding box (normalized by frame size).

#include <vector>

namespace mvs::ml {

using Feature = std::vector<double>;

/// Binary classifier: "does this source-camera object appear on the target
/// camera?" (paper Fig. 10 compares KNN / SVM / logistic / decision tree).
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// labels[i] in {0, 1}. Precondition: xs.size() == labels.size() > 0 and
  /// all feature vectors share one dimension.
  virtual void fit(const std::vector<Feature>& xs,
                   const std::vector<int>& labels) = 0;

  virtual bool predict(const Feature& x) const = 0;

  /// Signed score; > 0 means positive. Enables threshold sweeps.
  virtual double decision(const Feature& x) const = 0;
};

/// Multi-output regressor: source box features -> target-camera box
/// [cx, cy, w, h] (paper Fig. 11 compares KNN / homography / linear / RANSAC).
class VectorRegressor {
 public:
  virtual ~VectorRegressor() = default;

  /// Precondition: xs.size() == ys.size() > 0; each ys[i] shares one output
  /// dimension.
  virtual void fit(const std::vector<Feature>& xs,
                   const std::vector<Feature>& ys) = 0;

  virtual Feature predict(const Feature& x) const = 0;
};

/// Mean absolute error across all output coordinates of a test set.
double mean_absolute_error(const VectorRegressor& model,
                           const std::vector<Feature>& xs,
                           const std::vector<Feature>& ys);

}  // namespace mvs::ml

#include "ml/ransac.hpp"

#include <cassert>
#include <cmath>

namespace mvs::ml {

void RansacRegressor::fit(const std::vector<Feature>& xs,
                          const std::vector<Feature>& ys) {
  assert(xs.size() == ys.size() && !xs.empty());
  util::Rng rng(cfg_.seed);
  const std::size_t n = xs.size();
  const std::size_t sample =
      std::min(cfg_.sample_size, n);

  inliers_ = 0;
  std::vector<std::size_t> best_inliers;

  for (int it = 0; it < cfg_.iterations; ++it) {
    // Draw a minimal sample.
    std::vector<std::size_t> perm = rng.permutation(n);
    perm.resize(sample);
    LinearRegression hypo;
    hypo.fit_subset(xs, ys, perm);
    if (!hypo.fitted()) continue;

    std::vector<std::size_t> in;
    for (std::size_t i = 0; i < n; ++i) {
      const Feature pred = hypo.predict(xs[i]);
      bool ok = true;
      for (std::size_t d = 0; d < pred.size(); ++d) {
        if (std::abs(pred[d] - ys[i][d]) > cfg_.inlier_threshold) {
          ok = false;
          break;
        }
      }
      if (ok) in.push_back(i);
    }
    if (in.size() > best_inliers.size()) best_inliers = std::move(in);
  }

  if (best_inliers.size() >= sample) {
    best_.fit_subset(xs, ys, best_inliers);
    inliers_ = best_inliers.size();
  } else {
    best_.fit(xs, ys);  // degenerate data: fall back to plain least squares
    inliers_ = n;
  }
}

Feature RansacRegressor::predict(const Feature& x) const {
  return best_.predict(x);
}

}  // namespace mvs::ml

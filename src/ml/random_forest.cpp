#include "ml/random_forest.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace mvs::ml {

void RandomForest::fit(const std::vector<Feature>& xs,
                       const std::vector<int>& labels) {
  assert(xs.size() == labels.size() && !xs.empty());
  util::Rng rng(cfg_.seed);
  forest_.clear();
  forest_.reserve(static_cast<std::size_t>(cfg_.trees));
  for (int t = 0; t < cfg_.trees; ++t) {
    // Bootstrap sample (with replacement), same size as the input.
    std::vector<Feature> bx;
    std::vector<int> by;
    bx.reserve(xs.size());
    by.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::size_t pick = rng.index(xs.size());
      bx.push_back(xs[pick]);
      by.push_back(labels[pick]);
    }
    DecisionTree tree(cfg_.tree);
    tree.fit(bx, by);
    forest_.push_back(std::move(tree));
  }
}

double RandomForest::decision(const Feature& x) const {
  assert(!forest_.empty());
  double vote = 0.0;
  for (const DecisionTree& tree : forest_) vote += tree.decision(x);
  return vote / static_cast<double>(forest_.size());
}

bool RandomForest::predict(const Feature& x) const {
  return decision(x) > 0.0;
}

}  // namespace mvs::ml

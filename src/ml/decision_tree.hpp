#pragma once
// CART decision-tree baseline for the association classifier (Fig. 10):
// binary axis-aligned splits chosen by Gini impurity, depth-limited.

#include <memory>

#include "ml/model.hpp"

namespace mvs::ml {

class DecisionTree final : public BinaryClassifier {
 public:
  struct Config {
    int max_depth = 8;
    std::size_t min_leaf = 4;
  };

  DecisionTree() = default;
  explicit DecisionTree(Config cfg) : cfg_(cfg) {}

  void fit(const std::vector<Feature>& xs,
           const std::vector<int>& labels) override;
  bool predict(const Feature& x) const override;
  double decision(const Feature& x) const override;

  int depth() const;
  std::size_t node_count() const;

  /// Flattened tree node (model export): interior nodes have feature >= 0
  /// and child indices pointing strictly FORWARD in the flattened array
  /// (pre-order), leaves have feature == -1.
  struct FlatNode {
    int feature = -1;
    double threshold = 0.0;
    double positive_fraction = 0.0;
    int left = -1;
    int right = -1;
  };

  /// Pre-order flattening of the fitted tree; empty before fit().
  std::vector<FlatNode> flatten() const;

 private:
  struct Node {
    int feature = -1;       // -1 => leaf
    double threshold = 0.0;  // go left if x[feature] <= threshold
    double positive_fraction = 0.0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  std::unique_ptr<Node> build(const std::vector<Feature>& xs,
                              const std::vector<int>& labels,
                              std::vector<std::size_t> idx, int depth) const;
  const Node* leaf_for(const Feature& x) const;

  Config cfg_{};
  std::unique_ptr<Node> root_;
};

}  // namespace mvs::ml

#include "ml/linear_model.hpp"

#include <cassert>

#include "linalg/solve.hpp"

namespace mvs::ml {

void LinearRegression::fit(const std::vector<Feature>& xs,
                           const std::vector<Feature>& ys) {
  std::vector<std::size_t> idx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) idx[i] = i;
  fit_subset(xs, ys, idx);
}

void LinearRegression::fit_subset(const std::vector<Feature>& xs,
                                  const std::vector<Feature>& ys,
                                  const std::vector<std::size_t>& idx) {
  assert(xs.size() == ys.size() && !idx.empty());
  const std::size_t dim = xs.front().size();
  const std::size_t out_dim = ys.front().size();

  // Design matrix with bias column.
  linalg::Matrix a(idx.size(), dim + 1);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    for (std::size_t d = 0; d < dim; ++d) a(r, d) = xs[idx[r]][d];
    a(r, dim) = 1.0;
  }

  coef_.assign(out_dim, Feature(dim + 1, 0.0));
  for (std::size_t o = 0; o < out_dim; ++o) {
    std::vector<double> b(idx.size());
    for (std::size_t r = 0; r < idx.size(); ++r) b[r] = ys[idx[r]][o];
    const auto w = linalg::least_squares(a, b, ridge_);
    if (w) coef_[o] = *w;
  }
}

Feature LinearRegression::predict(const Feature& x) const {
  assert(fitted());
  Feature out(coef_.size(), 0.0);
  for (std::size_t o = 0; o < coef_.size(); ++o) {
    double z = coef_[o].back();
    for (std::size_t d = 0; d < x.size(); ++d) z += coef_[o][d] * x[d];
    out[o] = z;
  }
  return out;
}

}  // namespace mvs::ml

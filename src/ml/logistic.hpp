#pragma once
// Logistic-regression baseline for the association classifier (Fig. 10),
// trained with mini-batch-free SGD + L2 regularization.

#include "ml/model.hpp"
#include "ml/scaler.hpp"
#include "util/rng.hpp"

namespace mvs::ml {

class LogisticRegression final : public BinaryClassifier {
 public:
  struct Config {
    int epochs = 200;
    double learning_rate = 0.1;
    double l2 = 1e-4;
    std::uint64_t seed = 7;
  };

  LogisticRegression() = default;
  explicit LogisticRegression(Config cfg) : cfg_(cfg) {}

  void fit(const std::vector<Feature>& xs,
           const std::vector<int>& labels) override;
  bool predict(const Feature& x) const override;
  double decision(const Feature& x) const override;

  /// P(label = 1 | x).
  double probability(const Feature& x) const;

  /// Fitted parameters (model export): weights in SCALED feature space with
  /// the bias as the last entry, and the scaler that defines that space.
  const Feature& raw_weights() const { return weights_; }
  const StandardScaler& scaler() const { return scaler_; }

 private:
  Config cfg_{};
  StandardScaler scaler_;
  Feature weights_;  // last entry is the bias
};

}  // namespace mvs::ml

#include "ml/kdtree.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mvs::ml {

namespace {
double sq_dist(const Feature& a, const Feature& b) {
  double s = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double delta = a[d] - b[d];
    s += delta * delta;
  }
  return s;
}
}  // namespace

KdTree::KdTree(std::vector<Feature> points) : points_(std::move(points)) {
  order_.resize(points_.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  if (!points_.empty()) root_ = build(0, points_.size(), 0);
}

int KdTree::build(std::size_t begin, std::size_t end, int depth) {
  Node node;
  node.begin = begin;
  node.end = end;
  if (end - begin <= kLeafSize) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  const int dim = static_cast<int>(points_.front().size());
  const int axis = depth % dim;
  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<long>(begin),
                   order_.begin() + static_cast<long>(mid),
                   order_.begin() + static_cast<long>(end),
                   [&](std::size_t a, std::size_t b) {
                     return points_[a][static_cast<std::size_t>(axis)] <
                            points_[b][static_cast<std::size_t>(axis)];
                   });
  node.axis = axis;
  node.threshold = points_[order_[mid]][static_cast<std::size_t>(axis)];

  const int self = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  const int left = build(begin, mid, depth + 1);
  const int right = build(mid, end, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

void KdTree::search(int node_index, const Feature& query,
                    std::vector<std::pair<double, std::size_t>>& heap,
                    std::size_t k) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];
  if (node.axis < 0) {
    // Leaf: scan the range; maintain a max-heap of the best k.
    for (std::size_t i = node.begin; i < node.end; ++i) {
      const std::size_t p = order_[i];
      const double dist = sq_dist(points_[p], query);
      if (heap.size() < k) {
        heap.emplace_back(dist, p);
        std::push_heap(heap.begin(), heap.end());
      } else if (dist < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {dist, p};
        std::push_heap(heap.begin(), heap.end());
      }
    }
    return;
  }

  const double delta =
      query[static_cast<std::size_t>(node.axis)] - node.threshold;
  const int near = delta <= 0.0 ? node.left : node.right;
  const int far = delta <= 0.0 ? node.right : node.left;
  search(near, query, heap, k);
  // Prune the far side unless the splitting plane is closer than the
  // current k-th best.
  if (heap.size() < k || delta * delta < heap.front().first)
    search(far, query, heap, k);
}

std::vector<std::size_t> KdTree::nearest(const Feature& query, int k) const {
  std::vector<std::pair<double, std::size_t>> heap;
  std::vector<std::size_t> out;
  nearest_into(query, k, heap, out);
  return out;
}

void KdTree::nearest_into(const Feature& query, int k,
                          std::vector<std::pair<double, std::size_t>>& heap,
                          std::vector<std::size_t>& out) const {
  assert(!points_.empty());
  const std::size_t kk =
      std::min<std::size_t>(static_cast<std::size_t>(k), points_.size());
  heap.clear();
  heap.reserve(kk + 1);
  search(root_, query, heap, kk);
  std::sort_heap(heap.begin(), heap.end());
  out.clear();
  out.reserve(heap.size());
  for (const auto& [dist, index] : heap) out.push_back(index);
}

}  // namespace mvs::ml

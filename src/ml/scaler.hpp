#pragma once
// Per-dimension standardization (zero mean, unit variance). SGD-trained
// baselines (logistic regression, linear SVM) need this; KNN benefits too.

#include "ml/model.hpp"

namespace mvs::ml {

class StandardScaler {
 public:
  void fit(const std::vector<Feature>& xs);
  Feature transform(const Feature& x) const;
  /// transform into a caller-owned feature (resized in place) — the
  /// classifier hot path reuses one scratch feature per thread.
  void transform_into(const Feature& x, Feature& out) const;
  std::vector<Feature> transform_all(const std::vector<Feature>& xs) const;
  bool fitted() const { return !mean_.empty(); }

  /// Fitted parameters (model export): per-dimension mean and 1 / stddev
  /// (1.0 for near-constant dimensions). Empty before fit().
  const Feature& mean() const { return mean_; }
  const Feature& inv_std() const { return inv_std_; }

 private:
  Feature mean_;
  Feature inv_std_;
};

}  // namespace mvs::ml

#pragma once
// Per-dimension standardization (zero mean, unit variance). SGD-trained
// baselines (logistic regression, linear SVM) need this; KNN benefits too.

#include "ml/model.hpp"

namespace mvs::ml {

class StandardScaler {
 public:
  void fit(const std::vector<Feature>& xs);
  Feature transform(const Feature& x) const;
  std::vector<Feature> transform_all(const std::vector<Feature>& xs) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  Feature mean_;
  Feature inv_std_;
};

}  // namespace mvs::ml

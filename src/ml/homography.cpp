#include "ml/homography.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "linalg/solve.hpp"

namespace mvs::ml {

namespace {

struct Normalizer {
  double cx = 0.0, cy = 0.0, scale = 1.0;

  static Normalizer fit(const std::vector<std::array<double, 2>>& pts) {
    Normalizer n;
    for (const auto& p : pts) {
      n.cx += p[0];
      n.cy += p[1];
    }
    const double count = static_cast<double>(pts.size());
    n.cx /= count;
    n.cy /= count;
    double mean_dist = 0.0;
    for (const auto& p : pts)
      mean_dist += std::hypot(p[0] - n.cx, p[1] - n.cy);
    mean_dist /= count;
    n.scale = mean_dist > 1e-12 ? std::sqrt(2.0) / mean_dist : 1.0;
    return n;
  }

  std::array<double, 2> apply(std::array<double, 2> p) const {
    return {(p[0] - cx) * scale, (p[1] - cy) * scale};
  }
};

}  // namespace

Homography::Homography() : h_{1, 0, 0, 0, 1, 0, 0, 0, 1} {}

bool Homography::estimate(const std::vector<std::array<double, 2>>& src,
                          const std::vector<std::array<double, 2>>& dst) {
  assert(src.size() == dst.size());
  if (src.size() < 4) return false;

  const Normalizer ns = Normalizer::fit(src);
  const Normalizer nd = Normalizer::fit(dst);

  // Build A^T A directly (9x9) from the 2 DLT rows per correspondence.
  linalg::Matrix ata(9, 9);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const auto s = ns.apply(src[i]);
    const auto d = nd.apply(dst[i]);
    const double x = s[0], y = s[1], u = d[0], v = d[1];
    const double rows[2][9] = {
        {-x, -y, -1, 0, 0, 0, u * x, u * y, u},
        {0, 0, 0, -x, -y, -1, v * x, v * y, v},
    };
    for (const auto& row : rows)
      for (int a = 0; a < 9; ++a)
        for (int b = 0; b < 9; ++b)
          ata(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) +=
              row[a] * row[b];
  }

  const std::vector<double> h = linalg::smallest_eigenvector(ata);
  double norm = 0.0;
  for (double v : h) norm += v * v;
  if (norm < 1e-20) return false;

  // Denormalize: H = T_d^{-1} * Hn * T_s.
  // T_s maps p -> ((x - cx) * s, (y - cy) * s); T_d^{-1} is the inverse map.
  const double s1 = ns.scale, s2 = nd.scale;
  std::array<double, 9> hn;
  for (int i = 0; i < 9; ++i) hn[static_cast<std::size_t>(i)] = h[static_cast<std::size_t>(i)];

  // Compose: first T_s, then Hn, then T_d^{-1}.
  auto mul = [](const std::array<double, 9>& a, const std::array<double, 9>& b) {
    std::array<double, 9> c{};
    for (int r = 0; r < 3; ++r)
      for (int k = 0; k < 3; ++k)
        for (int col = 0; col < 3; ++col)
          c[static_cast<std::size_t>(r * 3 + col)] +=
              a[static_cast<std::size_t>(r * 3 + k)] *
              b[static_cast<std::size_t>(k * 3 + col)];
    return c;
  };
  const std::array<double, 9> ts = {s1, 0, -s1 * ns.cx, 0, s1, -s1 * ns.cy, 0, 0, 1};
  const std::array<double, 9> td_inv = {1.0 / s2, 0, nd.cx, 0, 1.0 / s2, nd.cy, 0, 0, 1};
  h_ = mul(td_inv, mul(hn, ts));

  // Scale so h[8] == 1 when possible (pure convention).
  if (std::abs(h_[8]) > 1e-12)
    for (double& v : h_) v /= h_[8];
  return true;
}

std::array<double, 2> Homography::apply(std::array<double, 2> p) const {
  const double w = h_[6] * p[0] + h_[7] * p[1] + h_[8];
  if (std::abs(w) < 1e-12) {
    const double inf = std::numeric_limits<double>::infinity();
    return {inf, inf};
  }
  return {(h_[0] * p[0] + h_[1] * p[1] + h_[2]) / w,
          (h_[3] * p[0] + h_[4] * p[1] + h_[5]) / w};
}

void HomographyRegressor::fit(const std::vector<Feature>& xs,
                              const std::vector<Feature>& ys) {
  assert(xs.size() == ys.size());
  std::vector<std::array<double, 2>> src, dst;
  src.reserve(xs.size());
  dst.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Bottom-center footprint: the point closest to the ground plane.
    src.push_back({xs[i][0], xs[i][1] + xs[i][3] / 2.0});
    dst.push_back({ys[i][0], ys[i][1] + ys[i][3] / 2.0});
  }
  h_.estimate(src, dst);
}

Feature HomographyRegressor::predict(const Feature& x) const {
  const double cx = x[0], cy = x[1], w = x[2], h = x[3];
  const std::array<std::array<double, 2>, 4> corners = {{
      {cx - w / 2, cy - h / 2},
      {cx + w / 2, cy - h / 2},
      {cx - w / 2, cy + h / 2},
      {cx + w / 2, cy + h / 2},
  }};
  double x0 = std::numeric_limits<double>::infinity(), y0 = x0;
  double x1 = -x0, y1 = -x0;
  for (const auto& c : corners) {
    const auto p = h_.apply(c);
    if (!std::isfinite(p[0]) || !std::isfinite(p[1])) continue;
    x0 = std::min(x0, p[0]);
    y0 = std::min(y0, p[1]);
    x1 = std::max(x1, p[0]);
    y1 = std::max(y1, p[1]);
  }
  if (!std::isfinite(x0) || x1 <= x0 || y1 <= y0) return {0.0, 0.0, 0.0, 0.0};
  return {(x0 + x1) / 2.0, (y0 + y1) / 2.0, x1 - x0, y1 - y0};
}

}  // namespace mvs::ml

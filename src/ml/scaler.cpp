#include "ml/scaler.hpp"

#include <cassert>
#include <cmath>

namespace mvs::ml {

void StandardScaler::fit(const std::vector<Feature>& xs) {
  assert(!xs.empty());
  const std::size_t dim = xs.front().size();
  mean_.assign(dim, 0.0);
  inv_std_.assign(dim, 0.0);
  for (const Feature& x : xs) {
    assert(x.size() == dim);
    for (std::size_t d = 0; d < dim; ++d) mean_[d] += x[d];
  }
  const double n = static_cast<double>(xs.size());
  for (double& m : mean_) m /= n;
  std::vector<double> var(dim, 0.0);
  for (const Feature& x : xs)
    for (std::size_t d = 0; d < dim; ++d) {
      const double delta = x[d] - mean_[d];
      var[d] += delta * delta;
    }
  for (std::size_t d = 0; d < dim; ++d) {
    const double s = std::sqrt(var[d] / n);
    inv_std_[d] = s > 1e-12 ? 1.0 / s : 1.0;
  }
}

Feature StandardScaler::transform(const Feature& x) const {
  Feature out;
  transform_into(x, out);
  return out;
}

void StandardScaler::transform_into(const Feature& x, Feature& out) const {
  assert(x.size() == mean_.size());
  out.resize(x.size());
  for (std::size_t d = 0; d < x.size(); ++d)
    out[d] = (x[d] - mean_[d]) * inv_std_[d];
}

std::vector<Feature> StandardScaler::transform_all(
    const std::vector<Feature>& xs) const {
  std::vector<Feature> out;
  out.reserve(xs.size());
  for (const Feature& x : xs) out.push_back(transform(x));
  return out;
}

}  // namespace mvs::ml

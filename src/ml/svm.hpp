#pragma once
// Linear support-vector-machine baseline (Fig. 10), trained with the
// Pegasos primal sub-gradient method on the hinge loss.

#include "ml/model.hpp"
#include "ml/scaler.hpp"
#include "util/rng.hpp"

namespace mvs::ml {

class LinearSvm final : public BinaryClassifier {
 public:
  struct Config {
    int epochs = 200;
    double lambda = 1e-3;  ///< regularization strength
    std::uint64_t seed = 11;
  };

  LinearSvm() = default;
  explicit LinearSvm(Config cfg) : cfg_(cfg) {}

  void fit(const std::vector<Feature>& xs,
           const std::vector<int>& labels) override;
  bool predict(const Feature& x) const override;
  double decision(const Feature& x) const override;

 private:
  Config cfg_{};
  StandardScaler scaler_;
  Feature weights_;  // last entry is the bias
};

}  // namespace mvs::ml

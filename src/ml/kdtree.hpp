#pragma once
// Exact k-nearest-neighbor search over a static point set via a kd-tree.
//
// The association models issue thousands of KNN queries per key frame
// (every detection x every camera pair, plus the one-off cell-coverage
// cache); brute force is O(n) per query, the kd-tree is ~O(log n) for the
// low-dimensional (4-D box feature) points used here. Results are exact and
// identical to brute force — verified by tests — so KnnClassifier /
// KnnRegressor can use it transparently.

#include <cstddef>
#include <vector>

#include "ml/model.hpp"

namespace mvs::ml {

class KdTree {
 public:
  KdTree() = default;

  /// Build over `points` (copied). All points must share one dimension.
  explicit KdTree(std::vector<Feature> points);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Feature& point(std::size_t index) const { return points_[index]; }

  /// Indices of the k nearest points to `query` under squared L2,
  /// ordered nearest-first. k is capped at size().
  std::vector<std::size_t> nearest(const Feature& query, int k) const;

  /// nearest() into caller-owned buffers: `heap` is working memory, `out`
  /// receives the indices (cleared first). Same results; warm calls
  /// allocate nothing.
  void nearest_into(const Feature& query, int k,
                    std::vector<std::pair<double, std::size_t>>& heap,
                    std::vector<std::size_t>& out) const;

 private:
  struct Node {
    int axis = -1;          ///< split dimension; -1 for leaves
    double threshold = 0.0;
    std::size_t begin = 0;  ///< leaf: range into order_
    std::size_t end = 0;
    int left = -1;          ///< child node indices
    int right = -1;
  };

  static constexpr std::size_t kLeafSize = 8;

  int build(std::size_t begin, std::size_t end, int depth);
  void search(int node, const Feature& query,
              std::vector<std::pair<double, std::size_t>>& heap,
              std::size_t k) const;

  std::vector<Feature> points_;
  std::vector<std::size_t> order_;  ///< permutation partitioned by the tree
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace mvs::ml

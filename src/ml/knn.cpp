#include "ml/knn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mvs::ml {

namespace {
double sq_dist(const Feature& a, const Feature& b) {
  double s = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double delta = a[d] - b[d];
    s += delta * delta;
  }
  return s;
}
}  // namespace

std::vector<std::size_t> k_nearest(const std::vector<Feature>& xs,
                                   const Feature& q, int k) {
  assert(!xs.empty());
  const std::size_t kk = std::min<std::size_t>(static_cast<std::size_t>(k),
                                               xs.size());
  std::vector<std::size_t> idx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(kk),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return sq_dist(xs[a], q) < sq_dist(xs[b], q);
                    });
  idx.resize(kk);
  return idx;
}

void KnnClassifier::fit(const std::vector<Feature>& xs,
                        const std::vector<int>& labels) {
  assert(xs.size() == labels.size() && !xs.empty());
  scaler_.fit(xs);
  tree_ = KdTree(scaler_.transform_all(xs));
  labels_ = labels;
}

double KnnClassifier::decision(const Feature& x) const {
  assert(!tree_.empty());
  // Per-thread scratch: decision() runs per ghost per frame on pipeline
  // pool workers, and must stay allocation-free once warm (DESIGN.md §11).
  thread_local Feature q;
  thread_local std::vector<std::pair<double, std::size_t>> heap;
  thread_local std::vector<std::size_t> nn;
  scaler_.transform_into(x, q);
  tree_.nearest_into(q, k_, heap, nn);
  double pos = 0.0, neg = 0.0;
  for (std::size_t i : nn) {
    const double w = 1.0 / (1e-6 + std::sqrt(sq_dist(tree_.point(i), q)));
    (labels_[i] ? pos : neg) += w;
  }
  return pos - neg;
}

bool KnnClassifier::predict(const Feature& x) const {
  return decision(x) > 0.0;
}

void KnnRegressor::fit(const std::vector<Feature>& xs,
                       const std::vector<Feature>& ys) {
  assert(xs.size() == ys.size() && !xs.empty());
  scaler_.fit(xs);
  tree_ = KdTree(scaler_.transform_all(xs));
  ys_ = ys;
}

Feature KnnRegressor::predict(const Feature& x) const {
  assert(!tree_.empty());
  const Feature q = scaler_.transform(x);
  const auto nn = tree_.nearest(q, k_);
  Feature out(ys_.front().size(), 0.0);
  double wsum = 0.0;
  for (std::size_t i : nn) {
    const double w = 1.0 / (1e-6 + std::sqrt(sq_dist(tree_.point(i), q)));
    wsum += w;
    for (std::size_t d = 0; d < out.size(); ++d) out[d] += w * ys_[i][d];
  }
  for (double& v : out) v /= wsum;
  return out;
}

double mean_absolute_error(const VectorRegressor& model,
                           const std::vector<Feature>& xs,
                           const std::vector<Feature>& ys) {
  assert(xs.size() == ys.size());
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  std::size_t terms = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Feature pred = model.predict(xs[i]);
    for (std::size_t d = 0; d < ys[i].size(); ++d) {
      acc += std::abs(pred[d] - ys[i][d]);
      ++terms;
    }
  }
  return acc / static_cast<double>(terms);
}

}  // namespace mvs::ml

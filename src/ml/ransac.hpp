#pragma once
// RANSAC-wrapped linear regression (Fig. 11 baseline): robust to outlier
// correspondences produced by association noise / occlusions.

#include "ml/linear_model.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"

namespace mvs::ml {

class RansacRegressor final : public VectorRegressor {
 public:
  struct Config {
    int iterations = 100;
    std::size_t sample_size = 8;       ///< minimal sample per hypothesis
    double inlier_threshold = 0.05;    ///< max per-output abs residual
    std::uint64_t seed = 23;
  };

  RansacRegressor() = default;
  explicit RansacRegressor(Config cfg) : cfg_(cfg) {}

  void fit(const std::vector<Feature>& xs,
           const std::vector<Feature>& ys) override;
  Feature predict(const Feature& x) const override;

  std::size_t inlier_count() const { return inliers_; }

 private:
  Config cfg_{};
  LinearRegression best_;
  std::size_t inliers_ = 0;
};

}  // namespace mvs::ml

#pragma once
// K-nearest-neighbors classifier and regressor — the paper's data-driven
// cross-camera location mapping ("a special lookup table which uses the
// nearest case(s) in the memory to generate the prediction", Sec. II-C).

#include "ml/kdtree.hpp"
#include "ml/model.hpp"
#include "ml/scaler.hpp"

namespace mvs::ml {

/// Majority-vote KNN binary classifier with inverse-distance weighting.
class KnnClassifier final : public BinaryClassifier {
 public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  void fit(const std::vector<Feature>& xs,
           const std::vector<int>& labels) override;
  bool predict(const Feature& x) const override;
  double decision(const Feature& x) const override;

 private:
  int k_;
  StandardScaler scaler_;
  KdTree tree_;  ///< exact accelerator over the scaled training points
  std::vector<int> labels_;
};

/// Inverse-distance-weighted KNN multi-output regressor.
class KnnRegressor final : public VectorRegressor {
 public:
  explicit KnnRegressor(int k = 5) : k_(k) {}

  void fit(const std::vector<Feature>& xs,
           const std::vector<Feature>& ys) override;
  Feature predict(const Feature& x) const override;

 private:
  int k_;
  StandardScaler scaler_;
  KdTree tree_;  ///< exact accelerator over the scaled training points
  std::vector<Feature> ys_;
};

/// Indices of the k nearest rows of `xs` to `q` under squared L2.
/// Exposed for testing and for the association module's diagnostics.
std::vector<std::size_t> k_nearest(const std::vector<Feature>& xs,
                                   const Feature& q, int k);

}  // namespace mvs::ml

#pragma once
// Multi-output linear regression (Fig. 11's "learnable homography
// transformation" baseline), solved exactly via ridge-regularized normal
// equations.

#include "ml/model.hpp"

namespace mvs::ml {

class LinearRegression final : public VectorRegressor {
 public:
  explicit LinearRegression(double ridge = 1e-6) : ridge_(ridge) {}

  void fit(const std::vector<Feature>& xs,
           const std::vector<Feature>& ys) override;
  Feature predict(const Feature& x) const override;

  /// Fit on a subset of sample indices (used by RANSAC).
  void fit_subset(const std::vector<Feature>& xs,
                  const std::vector<Feature>& ys,
                  const std::vector<std::size_t>& idx);

  bool fitted() const { return !coef_.empty(); }

 private:
  double ridge_;
  // coef_[out] is a (dim+1)-vector: weights then bias, one per output.
  std::vector<Feature> coef_;
};

}  // namespace mvs::ml

#pragma once
// Tiny command-line argument parser for the CLI tool and examples.
// Supports --flag, --key value, --key=value, and positional arguments.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mvs::util {

class Args {
 public:
  /// Parse argv; `flags` lists option names (without --) that take no value
  /// — everything else with a -- prefix consumes the next token (or the
  /// =value suffix).
  static Args parse(int argc, const char* const* argv,
                    const std::vector<std::string>& flags = {});

  bool has(const std::string& name) const;
  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, std::string fallback) const;
  double number_or(const std::string& name, double fallback) const;
  int int_or(const std::string& name, int fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace mvs::util

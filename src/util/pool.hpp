#pragma once
/// \file pool.hpp
/// Lock-free object pool: recycles heap objects so steady-state hot paths
/// perform zero allocations after warm-up.
///
/// Ownership rules (DESIGN.md §11):
///   * `acquire()` hands out a pointer the caller owns until `release()`.
///   * Recycled objects come back **in their last-released state** — the
///     pool deliberately does not reset them, because the whole point is to
///     keep expensive internal buffers (vector capacity, pyramid planes)
///     alive across uses.  Callers reset the cheap logical fields.
///   * `release()` never blocks: if the free list is full the object is
///     deleted (cold path, only under pathological churn).
///   * The pool must outlive every object it handed out.  Destroying the
///     pool deletes whatever is parked on the free list; objects still
///     checked out are the caller's leak to fix.
///
/// Thread safety: acquire/release are lock-free (backed by MpmcQueue) and
/// may be called from any thread.

#include <atomic>
#include <cstddef>
#include <utility>

#include "util/mpmc_queue.hpp"

namespace mvs::util {

template <typename T>
class Pool {
 public:
  explicit Pool(std::size_t max_parked = 256) : free_(max_parked) {}

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    T* obj = nullptr;
    while (free_.try_pop(obj)) delete obj;
  }

  /// Pop a recycled object, or heap-allocate a fresh one (warm-up only).
  template <typename... Args>
  T* acquire(Args&&... args) {
    T* obj = nullptr;
    if (free_.try_pop(obj)) return obj;  // recycled: state as last released
    total_allocated_.fetch_add(1, std::memory_order_relaxed);
    return new T(std::forward<Args>(args)...);
  }

  /// Park an object for reuse; deletes it if the free list is full.
  void release(T* obj) noexcept {
    if (obj == nullptr) return;
    if (!free_.try_push(obj)) delete obj;
  }

  /// Number of `new T` calls ever made — a warmed-up pool's count stops
  /// moving; the allocation guard test watches exactly that.
  std::size_t total_allocated() const noexcept {
    return total_allocated_.load(std::memory_order_relaxed);
  }

 private:
  MpmcQueue<T*> free_;
  std::atomic<std::size_t> total_allocated_{0};
};

}  // namespace mvs::util

#pragma once
/// \file inplace_function.hpp
/// Fixed-capacity, non-allocating std::function replacement.
///
/// `InplaceFunction<R(Args...), Capacity>` stores the callable inline in a
/// `Capacity`-byte buffer — never on the heap.  Oversized callables are a
/// compile error (static_assert), so a hot path converted to
/// InplaceFunction cannot silently regress into allocating.  Move-only by
/// design: hot-path handlers are scheduled once and fired once, and
/// move-only keeps captured state cheap and unambiguous.
///
/// Used by netsim::EventQueue so scheduling a simulated-network event does
/// not touch the heap.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mvs::util {

template <typename Signature, std::size_t Capacity = 64>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    static_assert(sizeof(D) <= Capacity,
                  "callable too large for InplaceFunction buffer; "
                  "raise Capacity or shrink the capture");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned callables not supported");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callable must be nothrow-move-constructible");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
    invoke_ = [](void* b, Args&&... args) -> R {
      return (*static_cast<D*>(b))(std::forward<Args>(args)...);
    };
    manage_ = [](void* src, void* dst) noexcept {
      if (dst != nullptr)  // move src -> dst
        ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    };
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { destroy(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

 private:
  using Invoke = R (*)(void*, Args&&...);
  /// Moves src into dst (when dst != nullptr), then destroys src.
  using Manage = void (*)(void* src, void* dst) noexcept;

  void destroy() noexcept {
    if (manage_ != nullptr) manage_(buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void move_from(InplaceFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (other.manage_ != nullptr) other.manage_(other.buf_, buf_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace mvs::util

#pragma once
// Deterministic random number generation for the whole system.
//
// Every stochastic component in mvsched (the world simulator, the simulated
// detector, ML model initialization, ...) takes an explicit Rng so that runs
// are reproducible bit-for-bit given a seed. Never use global RNG state.

#include <cstdint>
#include <random>
#include <vector>

namespace mvs::util {

/// Seeded pseudo-random generator with convenience samplers.
/// Thin wrapper over std::mt19937_64; cheap to pass by reference.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);

  /// Gaussian with the given mean / standard deviation.
  double gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed inter-arrival time with the given rate
  /// (events per unit time). rate must be > 0.
  double exponential(double rate);

  /// Poisson-distributed count with the given mean.
  int poisson(double mean);

  /// Random index in [0, n). n must be > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (e.g. one per camera) so that
  /// adding consumers does not perturb unrelated streams.
  Rng fork();

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace mvs::util

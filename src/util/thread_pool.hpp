#pragma once
// Fixed-size worker pool used to run per-camera pipeline work concurrently.
// Cameras are independent (own tracker, RNG, frame buffers), so parallel
// execution is deterministic as long as each camera's work stays on its own
// state — which parallel_for_each guarantees by partitioning indices.
//
// run_tiles() adds a second, nested-safe level of parallelism: the calling
// thread (which may itself be a pool worker) claims tiles from a shared
// counter alongside idle workers, so a worker can fan out sub-tasks without
// ever blocking on a queue it is needed to drain (no deadlock even with a
// single worker).
//
// SHAREABILITY: one pool may serve many independent clients concurrently
// (the fleet runtime runs every session over a single pool). Both
// parallel_for_each() and run_tiles() operate on a per-call completion
// group: concurrent calls from different threads — or nested calls from
// inside pool tasks — never wait on each other's work and never observe
// each other's exceptions. Only the low-level submit()/wait_idle() pair has
// pool-global semantics (wait_idle waits for ALL submitted tasks and may
// rethrow any submitted task's exception); clients sharing a pool should
// use the group-based calls.
//
// HOT-PATH DESIGN (DESIGN.md §11): the task queue is a bounded lock-free
// MPMC ring (util::MpmcQueue) of POD {fn, arg} slots; sleep/wake is an
// eventcount (sleeper counter + wake epoch + C++20 atomic wait as the futex
// slow path), so dispatching work never takes a mutex. run_tiles() and
// parallel_for_each() are templates over the callable — no std::function
// temporaries — and their per-call completion groups are recycled through a
// util::Pool guarded by a reference count, so a steady-state tick performs
// zero heap allocations. The only mutexes left are cold paths: exception
// capture, and the heap-boxed std::function behind submit().

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mpmc_queue.hpp"
#include "util/pool.hpp"

namespace mvs::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; tasks may run in any order on any worker. Not a
  /// hot-path call: the callable is boxed on the heap (use run_tiles /
  /// parallel_for_each on allocation-free paths). Applies backpressure by
  /// spinning/yielding when the ring is full.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here (subsequent tasks still ran).
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// fn must only touch state owned by index i (or be otherwise synchronized).
  /// Rethrows the first exception any invocation threw. Per-call completion
  /// group: safe to call concurrently from many threads and from inside pool
  /// tasks (the caller participates, so nesting never deadlocks).
  template <typename Fn>
  void parallel_for_each(std::size_t n, Fn&& fn) {
    // Delegates to the per-call tile group: the caller participates (nested
    // calls from pool tasks make progress even when every worker is busy)
    // and completion/exception state is private to this call, so concurrent
    // sessions sharing the pool never cross-talk through wait_idle().
    run_tiles(n, std::forward<Fn>(fn));
  }

  /// Run fn(i) for i in [0, n) with the CALLING thread participating: tiles
  /// are claimed from a shared counter by the caller and by any idle
  /// workers. Safe to call from inside a pool task (nested parallelism) —
  /// the caller makes progress on its own tiles even when every worker is
  /// busy. fn must only touch state owned by index i. Rethrows the first
  /// exception any invocation threw, after all claimed tiles finished.
  /// The callable is borrowed by address for the duration of the call (the
  /// caller outlives every helper's use of it), never copied or boxed.
  template <typename Fn>
  void run_tiles(std::size_t n, Fn&& fn) {
    using D = std::remove_reference_t<Fn>;
    run_tiles_erased(
        n, &invoke_tile<D>,
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

 private:
  /// POD task slot carried by the MPMC ring — no type erasure allocation.
  struct Task {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
  };
  struct TileGroup;

  template <typename D>
  static void invoke_tile(void* fn, std::size_t i) {
    (*static_cast<D*>(fn))(i);
  }

  void run_tiles_erased(std::size_t n, void (*invoke)(void*, std::size_t),
                        void* fn);
  static void run_helper(void* arg);     ///< tile-group helper task body
  static void run_submitted(void* arg);  ///< submit() task body

  void push_task(const Task& task);  ///< blocking (backpressure) + wake
  bool pop_task(Task& out);          ///< spins, then eventcount sleep
  void wake_one();
  void wake_all();
  void finish_task();  ///< in_flight_ decrement + wait_idle wakeup
  void release_group(TileGroup* group);
  void worker_loop();

  std::vector<std::thread> workers_;
  MpmcQueue<Task> queue_{1024};
  Pool<TileGroup> tile_groups_{256};

  // ---- eventcount (sleep/wake slow path; see DESIGN.md §11) ----
  // Workers announce themselves in sleepers_ before re-polling the ring;
  // producers fence-then-check sleepers_ after pushing. The seq_cst
  // fence/RMW pair guarantees at least one side sees the other (Dekker),
  // so a push can never be missed by a worker committing to sleep.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> sleepers_{0};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> wake_epoch_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> stopping_{false};

  std::mutex error_mu_;              ///< cold: taken only when a task throws
  std::exception_ptr first_error_;   ///< guarded by error_mu_
};

}  // namespace mvs::util

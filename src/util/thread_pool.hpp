#pragma once
// Fixed-size worker pool used to run per-camera pipeline work concurrently.
// Cameras are independent (own tracker, RNG, frame buffers), so parallel
// execution is deterministic as long as each camera's work stays on its own
// state — which parallel_for_each guarantees by partitioning indices.
//
// run_tiles() adds a second, nested-safe level of parallelism: the calling
// thread (which may itself be a pool worker) claims tiles from a shared
// counter alongside idle workers, so a worker can fan out sub-tasks without
// ever blocking on a queue it is needed to drain (no deadlock even with a
// single worker).
//
// SHAREABILITY: one pool may serve many independent clients concurrently
// (the fleet runtime runs every session over a single pool). Both
// parallel_for_each() and run_tiles() operate on a per-call completion
// group: concurrent calls from different threads — or nested calls from
// inside pool tasks — never wait on each other's work and never observe
// each other's exceptions. Only the low-level submit()/wait_idle() pair has
// pool-global semantics (wait_idle waits for ALL submitted tasks and may
// rethrow any submitted task's exception); clients sharing a pool should
// use the group-based calls.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mvs::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; tasks may run in any order on any worker.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here (subsequent tasks still ran).
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// fn must only touch state owned by index i (or be otherwise synchronized).
  /// Rethrows the first exception any invocation threw. Per-call completion
  /// group: safe to call concurrently from many threads and from inside pool
  /// tasks (the caller participates, so nesting never deadlocks).
  void parallel_for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn);

  /// Run fn(i) for i in [0, n) with the CALLING thread participating: tiles
  /// are claimed from a shared counter by the caller and by any idle
  /// workers. Safe to call from inside a pool task (nested parallelism) —
  /// the caller makes progress on its own tiles even when every worker is
  /// busy. fn must only touch state owned by index i. Rethrows the first
  /// exception any invocation threw, after all claimed tiles finished.
  void run_tiles(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct TileGroup;

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  ///< guarded by mutex_
};

}  // namespace mvs::util

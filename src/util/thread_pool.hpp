#pragma once
// Fixed-size worker pool used to run per-camera pipeline work concurrently.
// Cameras are independent (own tracker, RNG, frame buffers), so parallel
// execution is deterministic as long as each camera's work stays on its own
// state — which parallel_for_each guarantees by partitioning indices.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mvs::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; tasks may run in any order on any worker.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// fn must only touch state owned by index i (or be otherwise synchronized).
  void parallel_for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace mvs::util

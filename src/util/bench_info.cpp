#include "util/bench_info.hpp"

#include <algorithm>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

#ifdef __unix__
#include <sys/utsname.h>
#endif

namespace mvs::util {

namespace {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string trim(std::string s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  s.erase(s.begin(), std::find_if_not(s.begin(), s.end(), is_space));
  s.erase(std::find_if_not(s.rbegin(), s.rend(), is_space).base(), s.end());
  return s;
}

std::string cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) return trim(line.substr(colon + 1));
    }
  }
  return {};
}

/// Resolve a symbolic ref ("refs/heads/main") inside `git_dir`, consulting
/// loose refs first and packed-refs as fallback.
std::string resolve_ref(const std::string& git_dir, const std::string& ref) {
  const std::string loose = trim(read_text_file(git_dir + "/" + ref));
  if (!loose.empty()) return loose;
  std::ifstream packed(git_dir + "/packed-refs");
  std::string line;
  while (std::getline(packed, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '^') continue;
    const auto space = line.find(' ');
    if (space != std::string::npos && line.substr(space + 1) == ref)
      return line.substr(0, space);
  }
  return {};
}

}  // namespace

MachineInfo machine_info() {
  MachineInfo info;
#ifdef __unix__
  utsname u{};
  if (uname(&u) == 0) info.os = std::string(u.sysname) + " " + u.release;
#endif
  info.cpu = cpu_model();
  info.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  return info;
}

std::string git_revision(const std::string& start_dir) {
  std::string dir = start_dir;
  for (int depth = 0; depth < 16; ++depth) {
    const std::string head = trim(read_text_file(dir + "/.git/HEAD"));
    if (!head.empty()) {
      std::string rev = head;
      if (head.rfind("ref: ", 0) == 0)
        rev = resolve_ref(dir + "/.git", trim(head.substr(5)));
      if (rev.size() >= 12) return rev.substr(0, 12);
      return rev;
    }
    dir += "/..";
  }
  return {};
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<long>(mid), values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const double lower =
        *std::max_element(values.begin(),
                          values.begin() + static_cast<long>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

Json bench_env_json() {
  const MachineInfo info = machine_info();
  Json::Object env;
  env["os"] = Json(info.os);
  env["cpu"] = Json(info.cpu);
  env["hardware_threads"] = Json(static_cast<int>(info.hardware_threads));
#ifdef MVS_BUILD_TYPE
  env["build_type"] = Json(MVS_BUILD_TYPE);
#else
  env["build_type"] = Json("unknown");
#endif
  env["git_rev"] = Json(git_revision());
  env["generated_unix"] =
      Json(static_cast<double>(std::time(nullptr)));
  return Json(std::move(env));
}

}  // namespace mvs::util

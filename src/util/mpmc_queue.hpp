#pragma once
/// \file mpmc_queue.hpp
/// Bounded lock-free multi-producer/multi-consumer ring buffer.
///
/// This is the array-based MPMC queue due to Dmitry Vyukov: a power-of-two
/// ring of cells, each carrying a sequence number that encodes which "lap"
/// of the ring the cell belongs to.  Producers and consumers claim cells
/// with a single CAS on `tail_` / `head_` and then hand the cell over by
/// publishing a new sequence number.  No operation ever blocks: on a full
/// (or empty) ring `try_push` (`try_pop`) returns false immediately, so
/// callers can layer their own backpressure or sleep/wake protocol on top
/// (see util::ThreadPool's eventcount).
///
/// Memory-ordering contract (each access annotated at the use site):
///   * `cell.seq` is the synchronization point between the producer and the
///     consumer of one element.  A producer stores `seq = pos + 1` with
///     release after constructing the value; the consumer's acquire load of
///     `seq` therefore observes the fully-constructed value.  Symmetrically
///     the consumer stores `seq = pos + mask + 1` with release after moving
///     the value out, and the *next* producer's acquire load of `seq`
///     observes the vacated cell.
///   * `tail_` / `head_` are claim tickets only.  They are read relaxed and
///     claimed with a relaxed CAS: the CAS orders nothing by itself, all
///     happens-before edges go through `cell.seq`.
///
/// DESIGN.md §11 documents how this pairs with the thread-pool eventcount.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace mvs::util {

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// latter varies with tuning flags (and warns under GCC); 64 is correct for
// every target we build (x86-64, aarch64 — the padding is a perf hint only).
inline constexpr std::size_t kCacheLineSize = 64;

/// Spin-wait hint for busy loops (PAUSE on x86, YIELD on arm).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2) so the
  /// ring index is a mask, not a modulo.
  explicit MpmcQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    // Initial lap: cell i is writable when tail reaches i.  Relaxed is fine,
    // the queue is published to other threads by the caller (constructor
    // happens-before any use).
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  ~MpmcQueue() {
    // Drain leftover elements so non-trivial T destructors run.
    T scratch;
    while (try_pop(scratch)) {
    }
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Non-blocking push; returns false when the ring is full.
  bool try_push(T value) noexcept {
    Cell* cell;
    // Relaxed: this is only a claim ticket; the CAS retry loop re-reads it.
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      // Acquire: pairs with the consumer's release store of seq after it
      // vacated this cell; guarantees the old value's move-out is complete
      // before we construct over it.
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // Cell is writable this lap; claim it.  Relaxed: the claim itself
        // publishes nothing — the release store of seq below does.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
        // CAS failed: pos was reloaded, retry.
      } else if (dif < 0) {
        return false;  // cell still holds last lap's element: ring is full
      } else {
        // Another producer claimed this pos; reload the ticket.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    // Release: publishes the constructed value to the consumer whose
    // acquire-load of seq will see `pos + 1`.
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop; returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    Cell* cell;
    // Relaxed claim ticket, same as try_push.
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      // Acquire: pairs with the producer's release store of `pos + 1`;
      // makes the element's construction visible before we move it out.
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        // Element ready; claim it.  Relaxed: see try_push.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // producer hasn't filled this cell yet: ring is empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    // Release: hands the vacated cell to the producer one lap ahead
    // (its acquire-load of seq will see `pos + mask_ + 1`).
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate — racy by nature; only for stats/asserts, never for
  /// synchronization decisions.
  bool approx_empty() const noexcept {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  // Producers and consumers hammer different tickets; keep them on
  // separate cache lines to avoid false sharing.
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};  // enqueue ticket
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};  // dequeue ticket
  alignas(kCacheLineSize) std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
};

}  // namespace mvs::util

#pragma once
// Tiny leveled logger. Off by default in tests/benches; examples enable INFO.

#include <sstream>
#include <string>

namespace mvs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace mvs::util

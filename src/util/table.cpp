#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace mvs::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c])) << row[c]
          << " | ";
    }
    out << '\n';
  };
  emit(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << std::string(width[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

}  // namespace mvs::util

#pragma once
// Minimal JSON value + recursive-descent parser + serializer.
//
// Backs the runtime configuration files (runtime/config.hpp) and keeps the
// repository dependency-free. Supports the full JSON value grammar with
// standard escapes; numbers are stored as double.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mvs::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), num_(n) {}
  Json(int n) : type_(Type::kNumber), num_(n) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; precondition: matching type.
  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return arr_; }
  const Object& as_object() const { return obj_; }
  Array& as_array() { return arr_; }
  Object& as_object() { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Convenience typed getters with defaults (object members).
  double number_or(const std::string& key, double fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key, std::string fallback) const;

  /// Parse a JSON document; nullopt (with *error filled) on malformed input.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

  /// Compact serialization (round-trips through parse()).
  std::string dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace mvs::util

#pragma once
// Wall-clock stopwatch for measuring real overheads (Table II of the paper).
// Simulated GPU time is never measured with this; it comes from
// gpu::DeviceProfile tables.

#include <chrono>

namespace mvs::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or last reset().
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mvs::util

#pragma once
// Minimal ASCII table printer used by the bench binaries to emit the
// rows/series of each paper table and figure in a readable form.

#include <string>
#include <vector>

namespace mvs::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; it is padded or truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Render with aligned columns.
  std::string to_string() const;

  /// Render as CSV (for piping into plotting tools).
  std::string to_csv() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mvs::util

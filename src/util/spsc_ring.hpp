#pragma once
/// \file spsc_ring.hpp
/// Bounded wait-free single-producer/single-consumer ring buffer.
///
/// Classic Lamport queue with cached indices: the producer owns `tail_`,
/// the consumer owns `head_`, and each side keeps a *cached* copy of the
/// other's index so the common case touches only its own cache line.
/// Used by obs::SpanTracer: each pipeline thread is the single producer of
/// its own ring, the async exporter thread is the single consumer of all
/// rings — `MVS_SPAN` never takes a lock.
///
/// Memory-ordering contract:
///   * producer: release-store `tail_` after writing the slot; pairs with
///     the consumer's acquire-load of `tail_` (element visible before the
///     index that announces it).
///   * consumer: release-store `head_` after reading the slot; pairs with
///     the producer's acquire-load of `head_` (slot is reusable only once
///     the read is done).

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "util/mpmc_queue.hpp"  // kCacheLineSize, cpu_relax

namespace mvs::util {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side only.  Returns false when the ring is full.
  bool try_push(const T& value) noexcept {
    // Relaxed: tail_ is only ever written by this thread.
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      // Looks full against the cached head; refresh.  Acquire pairs with
      // the consumer's release-store of head_: once we see the new head,
      // the consumer is done reading the slots we are about to overwrite.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;  // genuinely full
    }
    slots_[tail & mask_] = value;
    // Release: publishes the slot write above to the consumer's
    // acquire-load of tail_.
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side only.  Returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    // Relaxed: head_ is only ever written by this thread.
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      // Looks empty against the cached tail; refresh.  Acquire pairs with
      // the producer's release-store of tail_.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // genuinely empty
    }
    out = std::move(slots_[head & mask_]);
    // Release: tells the producer this slot may be overwritten.
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy; stats only.
  std::size_t approx_size() const noexcept {
    return tail_.load(std::memory_order_relaxed) -
           head_.load(std::memory_order_relaxed);
  }

 private:
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};  // producer-owned
  std::size_t head_cache_ = 0;  // producer-local copy of head_
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};  // consumer-owned
  std::size_t tail_cache_ = 0;  // consumer-local copy of tail_
  alignas(kCacheLineSize) std::unique_ptr<T[]> slots_;
  std::size_t mask_ = 0;
};

}  // namespace mvs::util

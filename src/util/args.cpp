#include "util/args.hpp"

#include <algorithm>
#include <cstdlib>

namespace mvs::util {

Args Args::parse(int argc, const char* const* argv,
                 const std::vector<std::string>& flags) {
  Args out;
  if (argc > 0) out.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      out.positional_.push_back(std::move(token));
      continue;
    }
    token = token.substr(2);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      out.options_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    const bool is_flag =
        std::find(flags.begin(), flags.end(), token) != flags.end();
    if (is_flag || i + 1 >= argc) {
      out.options_[token] = "";
    } else {
      out.options_[token] = argv[++i];
    }
  }
  return out;
}

bool Args::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::optional<std::string> Args::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& name, std::string fallback) const {
  const auto v = get(name);
  return v ? *v : fallback;
}

double Args::number_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

int Args::int_or(const std::string& name, int fallback) const {
  return static_cast<int>(number_or(name, fallback));
}

}  // namespace mvs::util

#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace mvs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  // Delegates to the per-call tile group: the caller participates (nested
  // calls from pool tasks make progress even when every worker is busy) and
  // completion/exception state is private to this call, so concurrent
  // sessions sharing the pool never cross-talk through wait_idle().
  run_tiles(n, fn);
}

/// Shared state of one run_tiles() call. Kept alive by shared_ptr because
/// helper tasks may be dequeued after the call returned (they then find no
/// tiles left and exit without touching `fn`).
struct ThreadPool::TileGroup {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex m;
  std::condition_variable done_cv;
  std::size_t done = 0;        ///< guarded by m
  std::exception_ptr error;    ///< guarded by m

  void work() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      std::exception_ptr err;
      try {
        (*fn)(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard lock(m);
      if (err && !error) error = err;
      if (++done == n) done_cv.notify_all();
    }
  }
};

void ThreadPool::run_tiles(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto group = std::make_shared<TileGroup>();
  group->n = n;
  group->fn = &fn;
  // One helper per worker (bounded by the tile count the caller won't take
  // alone anyway); helpers that arrive late exit immediately.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h)
    submit([group] { group->work(); });
  group->work();
  std::unique_lock lock(group->m);
  group->done_cv.wait(lock, [&] { return group->done == group->n; });
  if (group->error) {
    std::exception_ptr error = group->error;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      if (err && !first_error_) first_error_ = err;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace mvs::util

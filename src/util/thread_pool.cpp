#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace mvs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::submit(std::function<void()> task) {
  // Cold path by contract (see header): box the callable once.
  auto* holder = new std::function<void()>(std::move(task));
  // Relaxed: the queue push below publishes; this counter only needs to be
  // incremented before the matching finish_task() decrement can run, which
  // the push ordering guarantees.
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  push_task(Task{&run_submitted, holder});
}

void ThreadPool::run_submitted(void* arg) {
  std::unique_ptr<std::function<void()>> fn(
      static_cast<std::function<void()>*>(arg));
  (*fn)();  // may throw: worker_loop captures into first_error_
}

void ThreadPool::wait_idle() {
  for (;;) {
    // Acquire: pairs with finish_task()'s release decrement, making every
    // completed task's writes visible to the waiter.
    const std::size_t in_flight = in_flight_.load(std::memory_order_acquire);
    if (in_flight == 0) break;
    in_flight_.wait(in_flight, std::memory_order_acquire);
  }
  std::exception_ptr error;
  {
    std::lock_guard lock(error_mu_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

/// Shared state of one run_tiles() call. Recycled through tile_groups_; a
/// reference count (caller + every successfully enqueued helper) keeps the
/// group out of the free list until the last late-dequeued helper — which
/// then finds no tiles left and exits without touching `fn` — has let go.
struct ThreadPool::TileGroup {
  std::atomic<std::size_t> next{0};       ///< tile claim ticket
  std::atomic<std::size_t> completed{0};  ///< tiles fully finished
  std::atomic<std::uint32_t> done{0};     ///< caller's atomic-wait target
  std::atomic<std::uint32_t> refs{0};     ///< recycle gate
  std::size_t n = 0;
  void (*invoke)(void*, std::size_t) = nullptr;
  void* fn = nullptr;
  ThreadPool* pool = nullptr;

  std::mutex error_mu;        ///< cold: taken only when a tile throws
  std::exception_ptr error;   ///< guarded by error_mu

  void work() noexcept {
    for (;;) {
      // Relaxed: the ticket only partitions indices; fn(i) touches state
      // owned by i, and completion ordering goes through `completed`.
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        invoke(fn, i);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!error) error = std::current_exception();
      }
      // Acq_rel: release publishes fn(i)'s writes to whichever thread
      // observes this tile as completed; acquire makes the final increment
      // see every earlier tile's writes before flipping `done`.
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        // Release pairs with the caller's acquire load/wait on `done`.
        done.store(1, std::memory_order_release);
        done.notify_all();
      }
    }
  }
};

// Defined after TileGroup so Pool<TileGroup>'s `delete` sees a complete type.
ThreadPool::~ThreadPool() {
  // Release: pairs with the workers' acquire loads of stopping_; everything
  // pushed before this point is drained before any worker exits.
  stopping_.store(true, std::memory_order_release);
  wake_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::release_group(TileGroup* group) {
  // Acq_rel: the final decrement must observe every other participant's use
  // of the group before the slot is handed back for reuse.
  if (group->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
    tile_groups_.release(group);
}

void ThreadPool::run_helper(void* arg) {
  auto* group = static_cast<TileGroup*>(arg);
  group->work();  // late arrival past the group's end: claims nothing, returns
  group->pool->release_group(group);
}

void ThreadPool::run_tiles_erased(std::size_t n,
                                  void (*invoke)(void*, std::size_t),
                                  void* fn) {
  if (n == 0) return;
  TileGroup* group = tile_groups_.acquire();
  // Relaxed init: the ring push below release-publishes the whole group to
  // helpers (their pop acquire-loads the cell), and the caller reads its own
  // writes; no other thread can hold this group (refs reached 0).
  group->next.store(0, std::memory_order_relaxed);
  group->completed.store(0, std::memory_order_relaxed);
  group->done.store(0, std::memory_order_relaxed);
  group->n = n;
  group->invoke = invoke;
  group->fn = fn;
  group->pool = this;
  group->error = nullptr;
  group->refs.store(1, std::memory_order_relaxed);  // caller's reference

  // One helper per worker (bounded by the tile count the caller won't take
  // alone anyway); helpers that arrive late exit immediately. On a full
  // ring the helper is simply skipped — the caller and the already-enqueued
  // helpers cover every tile, so this only sheds parallelism, not work.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    group->refs.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    if (!queue_.try_push(Task{&run_helper, group})) {
      group->refs.fetch_sub(1, std::memory_order_relaxed);
      finish_task();
      break;
    }
    wake_one();
  }

  group->work();
  // The caller ran out of tiles, but helpers may still be finishing theirs.
  for (;;) {
    // Acquire pairs with the finisher's release store of done.
    if (group->done.load(std::memory_order_acquire) != 0) break;
    group->done.wait(0, std::memory_order_acquire);
  }
  std::exception_ptr error;
  {
    std::lock_guard lock(group->error_mu);
    error = std::exchange(group->error, nullptr);
  }
  release_group(group);  // after this the group may be recycled — no access
  if (error) std::rethrow_exception(error);
}

void ThreadPool::push_task(const Task& task) {
  // Backpressure: the ring is bounded; spin briefly, then yield, until a
  // slot frees up. Only submit() reaches this (helpers use try_push).
  int spins = 0;
  while (!queue_.try_push(task)) {
    if (++spins < 64)
      cpu_relax();
    else
      std::this_thread::yield();
  }
  wake_one();
}

bool ThreadPool::pop_task(Task& out) {
  for (;;) {
    // Fast path: spin briefly before committing to sleep.
    for (int spin = 0; spin < 64; ++spin) {
      if (queue_.try_pop(out)) return true;
      cpu_relax();
    }
    // Acquire: pairs with the destructor's release store.
    if (stopping_.load(std::memory_order_acquire)) {
      if (queue_.try_pop(out)) return true;  // drain before exiting
      // Acquire: pairs with finish_task's release decrement. in_flight_ > 0
      // means a task is mid-push or mid-run; keep draining so no queued
      // work is abandoned (matches the old mutex queue's semantics).
      if (in_flight_.load(std::memory_order_acquire) == 0) return false;
      std::this_thread::yield();
      continue;
    }
    // ---- eventcount sleep (see header + DESIGN.md §11) ----
    // Snapshot the epoch BEFORE announcing sleep: any wake issued after the
    // announcement bumps the epoch and the wait below returns immediately.
    const std::uint32_t epoch = wake_epoch_.load(std::memory_order_acquire);
    sleepers_.fetch_add(1, std::memory_order_relaxed);
    // Seq_cst fence: Dekker pairing with the producer's fence in wake_one().
    // Either our re-poll below sees the producer's push, or the producer's
    // sleeper check sees our announcement — never neither.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (queue_.try_pop(out)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      continue;  // re-enter the drain path above
    }
    // Futex slow path: returns when wake_epoch_ != epoch (or spuriously;
    // the outer loop re-polls either way).
    wake_epoch_.wait(epoch, std::memory_order_acquire);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::wake_one() {
  // Seq_cst fence: Dekker pairing with the sleeper's fence in pop_task()
  // (see there). The push that preceded this call is already published by
  // the ring's release store; this fence orders it against the sleeper read.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) != 0) {
    // Release: the woken worker's acquire epoch load orders its re-poll
    // after the push.
    wake_epoch_.fetch_add(1, std::memory_order_release);
    wake_epoch_.notify_one();
  }
}

void ThreadPool::wake_all() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  wake_epoch_.fetch_add(1, std::memory_order_release);
  wake_epoch_.notify_all();
}

void ThreadPool::finish_task() {
  // Acq_rel: release publishes the finished task's writes to wait_idle()'s
  // acquire load; acquire orders the notify against prior decrements.
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1)
    in_flight_.notify_all();
}

void ThreadPool::worker_loop() {
  Task task;
  while (pop_task(task)) {
    try {
      task.fn(task.arg);
    } catch (...) {
      // Only submit() tasks can throw (tile helpers capture per-group).
      std::lock_guard lock(error_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    finish_task();
  }
}

}  // namespace mvs::util

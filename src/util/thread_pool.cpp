#include "util/thread_pool.hpp"

#include <algorithm>

namespace mvs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) submit([&fn, i] { fn(i); });
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace mvs::util

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mvs::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double SampleSet::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  std::vector<double> s = xs_;
  std::sort(s.begin(), s.end());
  if (s.size() == 1) return s.front();
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double SampleSet::min() const {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double SampleSet::max() const {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

}  // namespace mvs::util

#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mvs::util {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(gen_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(gen_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(gen_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution d(p);
  return d(gen_);
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  std::exponential_distribution<double> d(rate);
  return d(gen_);
}

int Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  std::poisson_distribution<int> d(mean);
  return d(gen_);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  std::uniform_int_distribution<std::size_t> d(0, n - 1);
  return d(gen_);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), gen_);
  return p;
}

Rng Rng::fork() {
  // Draw two words to decorrelate the child stream from the parent.
  const std::uint64_t a = gen_();
  const std::uint64_t b = gen_();
  return Rng(a ^ (b << 1) ^ 0xD1B54A32D192ED03ULL);
}

}  // namespace mvs::util

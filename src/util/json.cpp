#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mvs::util {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    auto value = parse_value();
    skip_ws();
    if (value && pos_ != text_.size()) {
      fail("trailing characters");
      value = std::nullopt;
    }
    if (!value && error) *error = error_ + " at offset " + std::to_string(pos_);
    return value;
  }

 private:
  void fail(const std::string& msg) {
    if (error_.empty()) error_ = msg;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    return parse_number();
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    Json::Object obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) {
        fail("expected object key");
        return std::nullopt;
      }
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      auto value = parse_value();
      if (!value) return std::nullopt;
      obj.emplace(std::move(*key), std::move(*value));
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(obj));
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    Json::Array arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      arr.push_back(std::move(*value));
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(arr));
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("bad \\u escape");
              return std::nullopt;
            }
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("bad escape");
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      eat_digits();
    }
    if (!digits) {
      fail("invalid number");
      return std::nullopt;
    }
    return Json(std::strtod(text_.substr(start, pos_ - start).c_str(),
                            nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void escape_into(const std::string& s, std::ostringstream& out) {
  static const char* hex = "0123456789abcdef";
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default: {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          // Remaining control characters must be \u-escaped per RFC 8259.
          out << "\\u00" << hex[(u >> 4) & 0xF] << hex[u & 0xF];
        } else {
          out << c;
        }
      }
    }
  }
  out << '"';
}

}  // namespace

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return (v && v->is_number()) ? v->as_number() : fallback;
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return (v && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Json::string_or(const std::string& key,
                            std::string fallback) const {
  const Json* v = find(key);
  return (v && v->is_string()) ? v->as_string() : fallback;
}

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  return Parser(text).run(error);
}

std::string Json::dump() const {
  std::ostringstream out;
  switch (type_) {
    case Type::kNull: out << "null"; break;
    case Type::kBool: out << (bool_ ? "true" : "false"); break;
    case Type::kNumber: {
      if (num_ == static_cast<long long>(num_) && std::abs(num_) < 1e15) {
        out << static_cast<long long>(num_);
      } else {
        // Shortest decimal that round-trips to the same double: exported
        // documents (bench baselines, postmortems) must re-parse to
        // bit-identical numbers, not to a 6-digit approximation.
        char buf[32];
        for (int prec = 15; prec <= 17; ++prec) {
          std::snprintf(buf, sizeof buf, "%.*g", prec, num_);
          if (std::strtod(buf, nullptr) == num_) break;
        }
        out << buf;
      }
      break;
    }
    case Type::kString: escape_into(str_, out); break;
    case Type::kArray: {
      out << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out << ',';
        out << arr_[i].dump();
      }
      out << ']';
      break;
    }
    case Type::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : obj_) {
        if (!first) out << ',';
        first = false;
        escape_into(key, out);
        out << ':' << value.dump();
      }
      out << '}';
      break;
    }
  }
  return out.str();
}

}  // namespace mvs::util

#pragma once
/// \file alloc_track.hpp
/// Cooperation point between the allocation-guard test and library threads
/// that are deliberately outside the zero-allocation invariant.
///
/// The guard test (tests/test_alloc_guard.cpp) replaces global operator new
/// with a counting hook and asserts that steady-state ticks allocate
/// nothing.  Threads that are off the frame path by construction — today
/// only the obs span exporter, which drains per-thread rings asynchronously
/// and grows its collection buffers amortized — set `t_exempt` once at
/// startup so their allocations do not count against the hot path.
/// DESIGN.md §11 documents the invariant and this escape hatch.

namespace mvs::util::alloc_track {

/// Set to true by threads whose allocations are exempt from the
/// zero-allocation guard (never on the frame path).
inline thread_local bool t_exempt = false;

}  // namespace mvs::util::alloc_track

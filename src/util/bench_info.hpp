#pragma once
// Environment metadata and small statistics helpers for the perf-regression
// harness (bench/bench_pipeline, tools/bench_report). BENCH_*.json files
// embed this metadata so numbers from different machines/revisions are
// comparable across the project's performance trajectory.

#include <string>
#include <vector>

#include "util/json.hpp"

namespace mvs::util {

struct MachineInfo {
  std::string os;        ///< kernel name + release (uname)
  std::string cpu;       ///< CPU model string (/proc/cpuinfo), if available
  unsigned hardware_threads = 0;
};

MachineInfo machine_info();

/// Current git revision (12 hex chars), resolved by walking up from `start_dir`
/// to the repository root and reading .git/HEAD (+ refs or packed-refs).
/// Empty string when no repository is found.
std::string git_revision(const std::string& start_dir = ".");

/// Median of `values` (by copy; empty input yields 0).
double median(std::vector<double> values);

/// JSON object with os/cpu/threads/build_type/git_rev/generated_unix —
/// the common envelope of every BENCH_*.json.
Json bench_env_json();

}  // namespace mvs::util

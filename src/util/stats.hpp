#pragma once
// Streaming statistics accumulators used by the metrics module and benches.

#include <cstddef>
#include <vector>

namespace mvs::util {

/// Constant-memory accumulator for count/mean/variance/min/max
/// (Welford's online algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Keeps all samples; supports exact percentiles. Use for per-frame latency
/// traces where sample counts are modest (thousands).
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double percentile(double p) const;  ///< p in [0,100], linear interpolation
  double min() const;
  double max() const;
  const std::vector<double>& samples() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace mvs::util

#pragma once
// Deterministic synthetic frame renderer.
//
// Stands in for the camera sensor: draws each visible object as a textured
// rectangle over a static textured background, plus per-frame sensor noise.
// Textures are hash-based so they are (a) deterministic, (b) unique per
// object, and (c) rich enough for block-matching optical flow to lock onto.

#include <cstdint>
#include <vector>

#include "geometry/bbox.hpp"
#include "vision/image.hpp"

namespace mvs::vision {

struct RenderObject {
  std::uint64_t id = 0;   ///< stable object identity; drives the texture
  geom::BBox box;          ///< pixel box in the render frame
};

class Renderer {
 public:
  struct Config {
    int width = 320;
    int height = 176;
    int noise_amplitude = 3;  ///< uniform per-pixel sensor noise, +/- range
  };

  Renderer() = default;
  explicit Renderer(Config cfg);

  /// Render the frame at time index `frame` (the index seeds sensor noise so
  /// consecutive frames differ realistically). `camera_seed` decorrelates
  /// background textures across cameras.
  Image render(const std::vector<RenderObject>& objects, long frame,
               std::uint64_t camera_seed) const;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_{};
};

}  // namespace mvs::vision

#pragma once
// Deterministic synthetic frame renderer.
//
// Stands in for the camera sensor: draws each visible object as a textured
// rectangle over a static textured background, plus per-frame sensor noise.
// Textures are hash-based so they are (a) deterministic, (b) unique per
// object, and (c) rich enough for block-matching optical flow to lock onto.
//
// The background depends only on the camera seed, so it is rendered once and
// cached; per-frame work is a memcpy of the cached background plus the
// object rectangles and the noise pass. The cache makes render() non-reentrant
// for a single Renderer instance (one renderer per camera in the pipeline),
// while distinct instances stay independent.

#include <cstdint>
#include <vector>

#include "geometry/bbox.hpp"
#include "vision/image.hpp"

namespace mvs::vision {

struct RenderObject {
  std::uint64_t id = 0;   ///< stable object identity; drives the texture
  geom::BBox box;          ///< pixel box in the render frame
};

class Renderer {
 public:
  struct Config {
    int width = 320;
    int height = 176;
    int noise_amplitude = 3;  ///< uniform per-pixel sensor noise, +/- range
  };

  Renderer() = default;
  explicit Renderer(Config cfg);

  /// Render the frame at time index `frame` (the index seeds sensor noise so
  /// consecutive frames differ realistically). `camera_seed` decorrelates
  /// background textures across cameras.
  Image render(const std::vector<RenderObject>& objects, long frame,
               std::uint64_t camera_seed) const;

  /// Same, writing into `out` (resized as needed). Reuses `out`'s buffer and
  /// the cached background, so steady-state rendering allocates nothing.
  void render_into(const std::vector<RenderObject>& objects, long frame,
                   std::uint64_t camera_seed, Image& out) const;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_{};
  // Lazily built per camera_seed; rebuilt only when the seed changes.
  mutable Image background_;
  mutable std::uint64_t background_seed_ = 0;
  mutable bool background_valid_ = false;
};

}  // namespace mvs::vision

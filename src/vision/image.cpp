#include "vision/image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mvs::vision {

Image::Image(int width, int height, std::uint8_t fill)
    : width_(width),
      height_(height),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
            fill) {
  assert(width >= 0 && height >= 0);
}

std::uint8_t Image::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

Image Image::downsampled() const {
  const int w = std::max(1, width_ / 2);
  const int h = std::max(1, height_ / 2);
  Image out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int sx = std::min(2 * x, width_ - 1);
      const int sy = std::min(2 * y, height_ - 1);
      const int sum = at(sx, sy) + at_clamped(sx + 1, sy) +
                      at_clamped(sx, sy + 1) + at_clamped(sx + 1, sy + 1);
      out.set(x, y, static_cast<std::uint8_t>(sum / 4));
    }
  }
  return out;
}

double mean_abs_diff(const Image& a, const Image& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    acc += std::abs(static_cast<int>(a.data()[i]) - static_cast<int>(b.data()[i]));
  return acc / static_cast<double>(a.data().size());
}

}  // namespace mvs::vision

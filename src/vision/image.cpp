#include "vision/image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace mvs::vision {

Image::Image(int width, int height, std::uint8_t fill)
    : width_(width),
      height_(height),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
            fill) {
  assert(width >= 0 && height >= 0);
}

std::uint8_t Image::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

void Image::resize(int width, int height) {
  assert(width >= 0 && height >= 0);
  width_ = width;
  height_ = height;
  data_.resize(static_cast<std::size_t>(width) *
               static_cast<std::size_t>(height));
}

Image Image::downsampled() const {
  Image out;
  downsample_into(out);
  return out;
}

void Image::downsample_into(Image& out) const {
  assert(this != &out);
  const int w = std::max(1, width_ / 2);
  const int h = std::max(1, height_ / 2);
  out.resize(w, h);
  for (int y = 0; y < h; ++y) {
    const int sy = std::min(2 * y, height_ - 1);
    const int sy1 = std::min(sy + 1, height_ - 1);
    const std::uint8_t* r0 = row(sy);
    const std::uint8_t* r1 = row(sy1);
    std::uint8_t* dst = out.row(y);
    for (int x = 0; x < w; ++x) {
      const int sx = std::min(2 * x, width_ - 1);
      const int sx1 = std::min(sx + 1, width_ - 1);
      const int sum = r0[sx] + r0[sx1] + r1[sx] + r1[sx1];
      dst[x] = static_cast<std::uint8_t>(sum / 4);
    }
  }
}

void PaddedImage::assign(const Image& src, int pad) {
  assert(!src.empty() && pad >= 0);
  width_ = src.width();
  height_ = src.height();
  pad_ = pad;
  stride_ = width_ + 2 * pad;
  data_.resize(static_cast<std::size_t>(stride_) *
               static_cast<std::size_t>(height_ + 2 * pad));

  // Interior rows: left/right border replicates the row's edge pixels.
  for (int y = 0; y < height_; ++y) {
    std::uint8_t* dst =
        data_.data() + static_cast<std::size_t>(y + pad) *
                           static_cast<std::size_t>(stride_);
    const std::uint8_t* s = src.row(y);
    std::memset(dst, s[0], static_cast<std::size_t>(pad));
    std::memcpy(dst + pad, s, static_cast<std::size_t>(width_));
    std::memset(dst + pad + width_, s[width_ - 1],
                static_cast<std::size_t>(pad));
  }
  // Top/bottom borders replicate the first/last padded row wholesale.
  const std::uint8_t* top =
      data_.data() + static_cast<std::size_t>(pad) *
                         static_cast<std::size_t>(stride_);
  const std::uint8_t* bottom =
      data_.data() + static_cast<std::size_t>(pad + height_ - 1) *
                         static_cast<std::size_t>(stride_);
  for (int y = 0; y < pad; ++y) {
    std::memcpy(data_.data() + static_cast<std::size_t>(y) *
                                   static_cast<std::size_t>(stride_),
                top, static_cast<std::size_t>(stride_));
    std::memcpy(data_.data() + static_cast<std::size_t>(pad + height_ + y) *
                                   static_cast<std::size_t>(stride_),
                bottom, static_cast<std::size_t>(stride_));
  }
}

double mean_abs_diff(const Image& a, const Image& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    acc += std::abs(static_cast<int>(a.data()[i]) - static_cast<int>(b.data()[i]));
  return acc / static_cast<double>(a.data().size());
}

}  // namespace mvs::vision

#pragma once
// Coarse-to-fine pyramidal block-matching optical flow.
//
// Plays the role of the DIS flow estimator in the paper (Kroeger et al.,
// ECCV'16): it predicts per-block pixel motion between consecutive frames.
// The tracker uses it to (a) project tracked boxes forward and (b) find
// "new regions" — clusters of moving pixels not explained by any tracked
// object — where new objects may have appeared (paper Sec. II-B).
//
// Performance engineering (DESIGN.md §7): matching runs on edge-replicated
// PaddedImage rows with an integer SAD and per-row early exit; per-camera
// FlowScratch state carries the previous frame's pyramid across frames so
// each regular frame builds exactly one pyramid and reallocates nothing.
// Outputs are bit-identical to the straight-line reference implementation
// (kept in tests/test_vision.cpp as the golden oracle).

#include <cstdint>
#include <vector>

#include "geometry/bbox.hpp"
#include "vision/image.hpp"

namespace mvs::util {
class ThreadPool;
}

namespace mvs::vision {

/// Per-block motion field at the finest pyramid level.
struct FlowField {
  int block_size = 8;
  int cols = 0;
  int rows = 0;
  std::vector<geom::Vec2> flow;     ///< row-major block motions (pixels)
  std::vector<double> residual;     ///< matching SAD residual per block

  const geom::Vec2& at(int col, int row) const {
    return flow[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(col)];
  }
  double residual_at(int col, int row) const {
    return residual[static_cast<std::size_t>(row) *
                        static_cast<std::size_t>(cols) +
                    static_cast<std::size_t>(col)];
  }
};

/// Integer sum of absolute differences between the size x size block of `a`
/// at (ax, ay) and the block of `b` at (bx, by). Reads may run into the
/// replicated borders, which reproduces Image::at_clamped semantics as long
/// as every coordinate stays within the images' pad.
std::uint32_t padded_block_sad(const PaddedImage& a, int ax, int ay,
                               const PaddedImage& b, int bx, int by, int size);

/// Per-camera scratch state for incremental flow computation: the current
/// frame to render into, both frames' pyramids (image + padded levels), and
/// the per-level match buffers. advance() promotes the current frame's
/// pyramid to "previous" in O(1) (buffer swaps), so consecutive frames build
/// one pyramid each instead of two.
class FlowScratch {
 public:
  /// Level-0 frame the caller renders the new frame into.
  Image& cur_frame() { return cur_img_; }
  const Image& cur_frame() const { return cur_img_; }

  /// True once a previous-frame pyramid is in place (i.e. compute() may run).
  bool ready() const { return ready_; }

  /// Promote the current frame (pyramid built by OpticalFlow::compute or
  /// OpticalFlow::rebase) to the previous frame. Buffer swaps only.
  void advance();

  /// Forget the previous frame (e.g. after a camera rejoins).
  void reset() {
    ready_ = false;
    built_ = false;
  }

 private:
  friend class OpticalFlow;
  Image prev_img_, cur_img_;
  std::vector<Image> prev_lv_, cur_lv_;         ///< levels 1.. (0 = *_img_)
  std::vector<PaddedImage> prev_pad_, cur_pad_; ///< padded levels 0..
  std::vector<geom::Vec2> est_, coarse_;        ///< per-level match buffers
  bool built_ = false;  ///< cur pyramid valid (set by the builder)
  bool ready_ = false;  ///< prev pyramid valid (set by advance)
};

class OpticalFlow {
 public:
  struct Config {
    int block_size = 8;     ///< block side at the finest level
    int pyramid_levels = 3; ///< >= 1
    int search_radius = 3;  ///< +/- pixels searched at each level
  };

  OpticalFlow() = default;
  explicit OpticalFlow(Config cfg) : cfg_(cfg) {}

  /// Compute block motion from `prev` to `cur` (same dimensions, non-empty).
  /// Convenience path: copies both frames into a throwaway FlowScratch.
  FlowField compute(const Image& prev, const Image& cur) const;

  /// Incremental path: compute block motion from the scratch's previous
  /// frame to scratch.cur_frame(), reusing every buffer. Requires
  /// scratch.ready(). When `pool` is non-null, block rows are tiled across
  /// its workers (bit-identical output regardless of tiling: tiles write
  /// disjoint row ranges and read only the finished coarser level). Call
  /// scratch.advance() afterwards to make the current frame the reference.
  void compute(FlowScratch& scratch, FlowField& out,
               util::ThreadPool* pool = nullptr) const;

  /// Build the pyramid for scratch.cur_frame() and promote it to the
  /// previous frame without matching (key frames: establish the flow
  /// reference for the next regular frame).
  void rebase(FlowScratch& scratch) const;

  const Config& config() const { return cfg_; }

 private:
  /// Build pyramid + padded levels for the current frame; returns level count.
  int build_cur_pyramid(FlowScratch& scratch) const;

  void match_level(const PaddedImage& pa, const PaddedImage& pb,
                   const geom::Vec2* coarse, int ccols, int crows,
                   geom::Vec2* est, double* res, int cols, int rows,
                   util::ThreadPool* pool) const;

  Config cfg_{};
};

/// Robust (median) motion of the blocks whose centers fall inside `box`.
/// Returns {0,0} when the box covers no block center.
geom::Vec2 median_flow_in(const FlowField& field, const geom::BBox& box);

/// Mean motion magnitude over all blocks (activity level of the scene).
double mean_flow_magnitude(const FlowField& field);

}  // namespace mvs::vision

#pragma once
// Coarse-to-fine pyramidal block-matching optical flow.
//
// Plays the role of the DIS flow estimator in the paper (Kroeger et al.,
// ECCV'16): it predicts per-block pixel motion between consecutive frames.
// The tracker uses it to (a) project tracked boxes forward and (b) find
// "new regions" — clusters of moving pixels not explained by any tracked
// object — where new objects may have appeared (paper Sec. II-B).

#include <vector>

#include "geometry/bbox.hpp"
#include "vision/image.hpp"

namespace mvs::vision {

/// Per-block motion field at the finest pyramid level.
struct FlowField {
  int block_size = 8;
  int cols = 0;
  int rows = 0;
  std::vector<geom::Vec2> flow;     ///< row-major block motions (pixels)
  std::vector<double> residual;     ///< matching SAD residual per block

  const geom::Vec2& at(int col, int row) const {
    return flow[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(col)];
  }
  double residual_at(int col, int row) const {
    return residual[static_cast<std::size_t>(row) *
                        static_cast<std::size_t>(cols) +
                    static_cast<std::size_t>(col)];
  }
};

class OpticalFlow {
 public:
  struct Config {
    int block_size = 8;     ///< block side at the finest level
    int pyramid_levels = 3; ///< >= 1
    int search_radius = 3;  ///< +/- pixels searched at each level
  };

  OpticalFlow() = default;
  explicit OpticalFlow(Config cfg) : cfg_(cfg) {}

  /// Compute block motion from `prev` to `cur` (same dimensions, non-empty).
  FlowField compute(const Image& prev, const Image& cur) const;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_{};
};

/// Robust (median) motion of the blocks whose centers fall inside `box`.
/// Returns {0,0} when the box covers no block center.
geom::Vec2 median_flow_in(const FlowField& field, const geom::BBox& box);

/// Mean motion magnitude over all blocks (activity level of the scene).
double mean_flow_magnitude(const FlowField& field);

}  // namespace mvs::vision

#include "vision/optical_flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mvs::vision {

namespace {

/// Sum of absolute differences between a block in `a` at (ax, ay) and a block
/// in `b` at (bx, by), clamped reads at the borders.
double block_sad(const Image& a, int ax, int ay, const Image& b, int bx,
                 int by, int size) {
  double sad = 0.0;
  for (int dy = 0; dy < size; ++dy)
    for (int dx = 0; dx < size; ++dx)
      sad += std::abs(static_cast<int>(a.at_clamped(ax + dx, ay + dy)) -
                      static_cast<int>(b.at_clamped(bx + dx, by + dy)));
  return sad;
}

}  // namespace

FlowField OpticalFlow::compute(const Image& prev, const Image& cur) const {
  assert(!prev.empty() && prev.width() == cur.width() &&
         prev.height() == cur.height());

  // Build pyramids (level 0 = finest).
  std::vector<Image> pa{prev}, pb{cur};
  for (int l = 1; l < cfg_.pyramid_levels; ++l) {
    if (pa.back().width() < 2 * cfg_.block_size ||
        pa.back().height() < 2 * cfg_.block_size)
      break;
    pa.push_back(pa.back().downsampled());
    pb.push_back(pb.back().downsampled());
  }
  const int levels = static_cast<int>(pa.size());

  FlowField field;
  field.block_size = cfg_.block_size;
  field.cols = std::max(1, prev.width() / cfg_.block_size);
  field.rows = std::max(1, prev.height() / cfg_.block_size);
  field.flow.assign(static_cast<std::size_t>(field.cols) *
                        static_cast<std::size_t>(field.rows),
                    {0.0, 0.0});
  field.residual.assign(field.flow.size(), 0.0);

  // Coarse-to-fine: the estimate from the coarser level (scaled 2x) seeds the
  // search window at the finer level.
  std::vector<geom::Vec2> coarse;  // previous (coarser) level estimates
  int ccols = 0, crows = 0;
  for (int l = levels - 1; l >= 0; --l) {
    const Image& ia = pa[static_cast<std::size_t>(l)];
    const Image& ib = pb[static_cast<std::size_t>(l)];
    const int cols = std::max(1, ia.width() / cfg_.block_size);
    const int rows = std::max(1, ia.height() / cfg_.block_size);
    std::vector<geom::Vec2> est(static_cast<std::size_t>(cols) *
                                static_cast<std::size_t>(rows));
    std::vector<double> res(est.size(), 0.0);

    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const int bx = c * cfg_.block_size;
        const int by = r * cfg_.block_size;
        geom::Vec2 seed{0.0, 0.0};
        if (!coarse.empty()) {
          const int pc = std::min(c / 2, ccols - 1);
          const int pr = std::min(r / 2, crows - 1);
          const geom::Vec2& s =
              coarse[static_cast<std::size_t>(pr) *
                         static_cast<std::size_t>(ccols) +
                     static_cast<std::size_t>(pc)];
          seed = {s.x * 2.0, s.y * 2.0};
        }
        const int sx = static_cast<int>(std::lround(seed.x));
        const int sy = static_cast<int>(std::lround(seed.y));

        double best = std::numeric_limits<double>::infinity();
        int best_dx = sx, best_dy = sy;
        for (int dy = sy - cfg_.search_radius; dy <= sy + cfg_.search_radius;
             ++dy) {
          for (int dx = sx - cfg_.search_radius; dx <= sx + cfg_.search_radius;
               ++dx) {
            const double sad =
                block_sad(ia, bx, by, ib, bx + dx, by + dy, cfg_.block_size);
            // Slight zero-motion bias resolves flat-texture ties toward rest.
            const double penalty = 0.1 * (std::abs(dx) + std::abs(dy));
            if (sad + penalty < best) {
              best = sad + penalty;
              best_dx = dx;
              best_dy = dy;
            }
          }
        }
        est[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
            static_cast<std::size_t>(c)] = {static_cast<double>(best_dx),
                                            static_cast<double>(best_dy)};
        res[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
            static_cast<std::size_t>(c)] =
            best / static_cast<double>(cfg_.block_size * cfg_.block_size);
      }
    }
    coarse = std::move(est);
    ccols = cols;
    crows = rows;
    if (l == 0) {
      field.cols = cols;
      field.rows = rows;
      field.flow = coarse;
      field.residual = std::move(res);
    }
  }
  return field;
}

geom::Vec2 median_flow_in(const FlowField& field, const geom::BBox& box) {
  std::vector<double> xs, ys;
  for (int r = 0; r < field.rows; ++r) {
    for (int c = 0; c < field.cols; ++c) {
      const geom::Vec2 center{(c + 0.5) * field.block_size,
                              (r + 0.5) * field.block_size};
      if (!box.contains(center)) continue;
      xs.push_back(field.at(c, r).x);
      ys.push_back(field.at(c, r).y);
    }
  }
  if (xs.empty()) return {0.0, 0.0};
  auto median = [](std::vector<double>& v) {
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
    return v[mid];
  };
  return {median(xs), median(ys)};
}

double mean_flow_magnitude(const FlowField& field) {
  if (field.flow.empty()) return 0.0;
  double acc = 0.0;
  for (const geom::Vec2& v : field.flow) acc += v.norm();
  return acc / static_cast<double>(field.flow.size());
}

}  // namespace mvs::vision

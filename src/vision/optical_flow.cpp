#include "vision/optical_flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/thread_pool.hpp"

namespace mvs::vision {

std::uint32_t padded_block_sad(const PaddedImage& a, int ax, int ay,
                               const PaddedImage& b, int bx, int by,
                               int size) {
  std::uint32_t sad = 0;
  for (int dy = 0; dy < size; ++dy) {
    const std::uint8_t* ra = a.row(ay + dy) + ax;
    const std::uint8_t* rb = b.row(by + dy) + bx;
    std::uint32_t acc = 0;
    for (int dx = 0; dx < size; ++dx) {
      const int d = static_cast<int>(ra[dx]) - static_cast<int>(rb[dx]);
      acc += static_cast<std::uint32_t>(d < 0 ? -d : d);
    }
    sad += acc;
  }
  return sad;
}

void FlowScratch::advance() {
  std::swap(prev_img_, cur_img_);
  std::swap(prev_lv_, cur_lv_);
  std::swap(prev_pad_, cur_pad_);
  ready_ = built_;
  built_ = false;
}

int OpticalFlow::build_cur_pyramid(FlowScratch& s) const {
  const Image& base = s.cur_img_;
  assert(!base.empty());

  // Same stopping rule as the reference: level l exists iff level l-1 is at
  // least 2 blocks wide and tall.
  int levels = 1;
  {
    int w = base.width(), h = base.height();
    while (levels < cfg_.pyramid_levels && w >= 2 * cfg_.block_size &&
           h >= 2 * cfg_.block_size) {
      w = std::max(1, w / 2);
      h = std::max(1, h / 2);
      ++levels;
    }
  }

  s.cur_lv_.resize(static_cast<std::size_t>(levels - 1));
  s.cur_pad_.resize(static_cast<std::size_t>(levels));
  for (int l = 1; l < levels; ++l) {
    const Image& src = (l == 1) ? base : s.cur_lv_[static_cast<std::size_t>(l - 2)];
    src.downsample_into(s.cur_lv_[static_cast<std::size_t>(l - 1)]);
  }
  // Pad covers the worst-case block read at each level: the seed chain bounds
  // the displacement at level l by r * (2^(levels-l) - 1), and the block
  // itself extends block_size pixels past its origin.
  for (int l = 0; l < levels; ++l) {
    const int pad =
        cfg_.search_radius * ((1 << (levels - l)) - 1) + cfg_.block_size;
    const Image& img = (l == 0) ? base : s.cur_lv_[static_cast<std::size_t>(l - 1)];
    s.cur_pad_[static_cast<std::size_t>(l)].assign(img, pad);
  }
  s.built_ = true;
  return levels;
}

void OpticalFlow::rebase(FlowScratch& scratch) const {
  build_cur_pyramid(scratch);
  scratch.advance();
}

void OpticalFlow::match_level(const PaddedImage& pa, const PaddedImage& pb,
                              const geom::Vec2* coarse, int ccols, int crows,
                              geom::Vec2* est, double* res, int cols, int rows,
                              util::ThreadPool* pool) const {
  const int bs = cfg_.block_size;
  const int radius = cfg_.search_radius;

  auto match_row = [&](std::size_t row_index) {
    const int r = static_cast<int>(row_index);
    for (int c = 0; c < cols; ++c) {
      const int bx = c * bs;
      const int by = r * bs;
      int sx = 0, sy = 0;
      if (coarse != nullptr) {
        const int pc = std::min(c / 2, ccols - 1);
        const int pr = std::min(r / 2, crows - 1);
        const geom::Vec2& s =
            coarse[static_cast<std::size_t>(pr) *
                       static_cast<std::size_t>(ccols) +
                   static_cast<std::size_t>(pc)];
        sx = static_cast<int>(std::lround(s.x * 2.0));
        sy = static_cast<int>(std::lround(s.y * 2.0));
      }

      double best = std::numeric_limits<double>::infinity();
      int best_dx = sx, best_dy = sy;
      for (int dy = sy - radius; dy <= sy + radius; ++dy) {
        for (int dx = sx - radius; dx <= sx + radius; ++dx) {
          // Slight zero-motion bias resolves flat-texture ties toward rest.
          const double penalty = 0.1 * (std::abs(dx) + std::abs(dy));
          // Integer SAD over padded rows, abandoning the candidate as soon
          // as the partial sum already loses to the incumbent: double
          // addition is monotone, so a partial sum failing the acceptance
          // test guarantees the full sum would fail it too.
          std::uint32_t sad = 0;
          bool rejected = false;
          for (int yy = 0; yy < bs; ++yy) {
            const std::uint8_t* ra = pa.row(by + yy) + bx;
            const std::uint8_t* rb = pb.row(by + dy + yy) + bx + dx;
            std::uint32_t acc = 0;
            for (int xx = 0; xx < bs; ++xx) {
              const int d = static_cast<int>(ra[xx]) - static_cast<int>(rb[xx]);
              acc += static_cast<std::uint32_t>(d < 0 ? -d : d);
            }
            sad += acc;
            if (static_cast<double>(sad) + penalty >= best) {
              rejected = true;
              break;
            }
          }
          if (!rejected) {
            best = static_cast<double>(sad) + penalty;
            best_dx = dx;
            best_dy = dy;
          }
        }
      }
      const std::size_t idx = static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(cols) +
                              static_cast<std::size_t>(c);
      est[idx] = {static_cast<double>(best_dx), static_cast<double>(best_dy)};
      if (res != nullptr)
        res[idx] = best / static_cast<double>(cfg_.block_size * cfg_.block_size);
    }
  };

  if (pool != nullptr && rows >= 4) {
    // Tiles (rows) write disjoint est/res ranges and read only `coarse`,
    // which is complete before this level starts — deterministic under any
    // tile-to-worker mapping.
    pool->run_tiles(static_cast<std::size_t>(rows), match_row);
  } else {
    for (int r = 0; r < rows; ++r) match_row(static_cast<std::size_t>(r));
  }
}

void OpticalFlow::compute(FlowScratch& scratch, FlowField& out,
                          util::ThreadPool* pool) const {
  assert(scratch.ready());
  assert(!scratch.cur_img_.empty() &&
         scratch.cur_img_.width() == scratch.prev_img_.width() &&
         scratch.cur_img_.height() == scratch.prev_img_.height());

  const int levels = build_cur_pyramid(scratch);
  assert(static_cast<int>(scratch.prev_pad_.size()) == levels);

  out.block_size = cfg_.block_size;

  // Coarse-to-fine: the estimate from the coarser level (scaled 2x) seeds the
  // search window at the finer level. The finest level writes straight into
  // the caller's FlowField buffers.
  const geom::Vec2* coarse = nullptr;
  int ccols = 0, crows = 0;
  for (int l = levels - 1; l >= 0; --l) {
    const PaddedImage& pa = scratch.prev_pad_[static_cast<std::size_t>(l)];
    const PaddedImage& pb = scratch.cur_pad_[static_cast<std::size_t>(l)];
    const int cols = std::max(1, pa.width() / cfg_.block_size);
    const int rows = std::max(1, pa.height() / cfg_.block_size);
    const std::size_t cells =
        static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows);
    if (l == 0) {
      out.cols = cols;
      out.rows = rows;
      out.flow.resize(cells);
      out.residual.resize(cells);
      match_level(pa, pb, coarse, ccols, crows, out.flow.data(),
                  out.residual.data(), cols, rows, pool);
    } else {
      scratch.est_.resize(cells);
      match_level(pa, pb, coarse, ccols, crows, scratch.est_.data(), nullptr,
                  cols, rows, pool);
      std::swap(scratch.est_, scratch.coarse_);
      coarse = scratch.coarse_.data();
      ccols = cols;
      crows = rows;
    }
  }
}

FlowField OpticalFlow::compute(const Image& prev, const Image& cur) const {
  assert(!prev.empty() && prev.width() == cur.width() &&
         prev.height() == cur.height());
  FlowScratch scratch;
  scratch.cur_frame() = prev;
  rebase(scratch);
  scratch.cur_frame() = cur;
  FlowField out;
  compute(scratch, out, nullptr);
  return out;
}

geom::Vec2 median_flow_in(const FlowField& field, const geom::BBox& box) {
  // Per-thread scratch: this runs per track per frame on pool workers, and
  // the zero-allocation steady-tick invariant (DESIGN.md §11) forbids a
  // fresh vector pair here. Capacity persists per thread.
  thread_local std::vector<double> xs, ys;
  xs.clear();
  ys.clear();
  for (int r = 0; r < field.rows; ++r) {
    for (int c = 0; c < field.cols; ++c) {
      const geom::Vec2 center{(c + 0.5) * field.block_size,
                              (r + 0.5) * field.block_size};
      if (!box.contains(center)) continue;
      xs.push_back(field.at(c, r).x);
      ys.push_back(field.at(c, r).y);
    }
  }
  if (xs.empty()) return {0.0, 0.0};
  auto median = [](std::vector<double>& v) {
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
    return v[mid];
  };
  return {median(xs), median(ys)};
}

double mean_flow_magnitude(const FlowField& field) {
  if (field.flow.empty()) return 0.0;
  double acc = 0.0;
  for (const geom::Vec2& v : field.flow) acc += v.norm();
  return acc / static_cast<double>(field.flow.size());
}

}  // namespace mvs::vision

#include "vision/renderer.hpp"

#include <algorithm>
#include <cmath>

namespace mvs::vision {

namespace {

/// SplitMix64 hash: fast, deterministic, well-mixed.
std::uint64_t hash64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint8_t texture_pixel(std::uint64_t seed, int x, int y) {
  const std::uint64_t h = hash64(seed ^ (static_cast<std::uint64_t>(
                                             static_cast<std::uint32_t>(x))
                                         << 32) ^
                                 static_cast<std::uint32_t>(y));
  return static_cast<std::uint8_t>(h & 0xFF);
}

}  // namespace

Renderer::Renderer(Config cfg) : cfg_(cfg) {}

Image Renderer::render(const std::vector<RenderObject>& objects, long frame,
                       std::uint64_t camera_seed) const {
  Image img;
  render_into(objects, frame, camera_seed, img);
  return img;
}

void Renderer::render_into(const std::vector<RenderObject>& objects,
                           long frame, std::uint64_t camera_seed,
                           Image& out) const {
  // Static background texture, smoothed to mid-gray contrast so objects
  // stand out. Coarse 4x4 texels keep the background locally flat, which is
  // what block matching sees from asphalt/grass.
  if (!background_valid_ || background_seed_ != camera_seed) {
    background_.resize(cfg_.width, cfg_.height);
    for (int y = 0; y < cfg_.height; ++y) {
      std::uint8_t* row = background_.row(y);
      for (int x = 0; x < cfg_.width; ++x) {
        const std::uint8_t t = texture_pixel(camera_seed, x / 4, y / 4);
        row[x] = static_cast<std::uint8_t>(96 + (t % 48));
      }
    }
    background_seed_ = camera_seed;
    background_valid_ = true;
  }
  out = background_;

  // Objects: texture anchored to the object's own frame so pixels translate
  // rigidly with the object (pure translation locally, as real flow assumes).
  for (const RenderObject& obj : objects) {
    const int x0 = std::max(0, static_cast<int>(std::floor(obj.box.x)));
    const int y0 = std::max(0, static_cast<int>(std::floor(obj.box.y)));
    const int x1 = std::min(cfg_.width, static_cast<int>(std::ceil(obj.box.x2())));
    const int y1 = std::min(cfg_.height, static_cast<int>(std::ceil(obj.box.y2())));
    const int ox = static_cast<int>(std::floor(obj.box.x));
    const int oy = static_cast<int>(std::floor(obj.box.y));
    const std::uint64_t obj_seed = hash64(obj.id + 1);
    for (int y = y0; y < y1; ++y) {
      std::uint8_t* row = out.row(y);
      for (int x = x0; x < x1; ++x) {
        const std::uint8_t t =
            texture_pixel(obj_seed, (x - ox) / 2, (y - oy) / 2);
        row[x] = static_cast<std::uint8_t>(160 + (t % 80));
      }
    }
  }

  // Per-frame sensor noise.
  if (cfg_.noise_amplitude > 0) {
    const std::uint64_t frame_seed =
        hash64(camera_seed ^ (static_cast<std::uint64_t>(frame) << 20));
    const int span = 2 * cfg_.noise_amplitude + 1;
    for (int y = 0; y < cfg_.height; ++y) {
      std::uint8_t* row = out.row(y);
      for (int x = 0; x < cfg_.width; ++x) {
        const int n = static_cast<int>(
                          texture_pixel(frame_seed, x, y) % span) -
                      cfg_.noise_amplitude;
        const int v = static_cast<int>(row[x]) + n;
        row[x] = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
      }
    }
  }
}

}  // namespace mvs::vision

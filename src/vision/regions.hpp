#pragma once
// Moving-region extraction and ROI slicing.
//
// With statically mounted cameras, flow-field motion comes only from object
// movement (paper Sec. II-B). Blocks with significant motion that are not
// inside any predicted object box are clustered into "new regions" and fed
// to the detector so new objects are found at first appearance instead of at
// the next key frame.

#include <vector>

#include "geometry/bbox.hpp"
#include "geometry/size_class.hpp"
#include "vision/optical_flow.hpp"

namespace mvs::vision {

struct NewRegionConfig {
  double motion_threshold = 1.5;  ///< min block |flow| in pixels
  double min_area = 64.0;         ///< drop tiny noise clusters (px^2)
  double merge_margin = 4.0;      ///< grow boxes before reporting
};

/// Connected components (4-connectivity over flow blocks) of moving blocks
/// whose centers are outside every `predicted` box, merged into bounding
/// boxes scaled by `scale` (rendered frames may be a downscaled view of the
/// logical frame; scale maps block coordinates back to logical pixels).
std::vector<geom::BBox> extract_new_regions(
    const FlowField& field, const std::vector<geom::BBox>& predicted,
    double scale = 1.0, const NewRegionConfig& cfg = {});

/// Reusable working memory for extract_new_regions_into: the moving/seen
/// block masks and the connected-component frontier (DESIGN.md §11).
struct RegionScratch {
  std::vector<char> moving, seen;
  std::vector<std::pair<int, int>> frontier;
};

/// extract_new_regions with caller-owned scratch and output (cleared first).
/// Bit-identical regions; allocation-free once the scratch is warm.
void extract_new_regions_into(const FlowField& field,
                              const std::vector<geom::BBox>& predicted,
                              double scale, const NewRegionConfig& cfg,
                              RegionScratch& scratch,
                              std::vector<geom::BBox>& out);

/// A partial-frame inspection region: the quantized square ROI around one
/// predicted object location plus its size class (the GPU batching key).
struct SliceRegion {
  geom::BBox roi;
  geom::SizeClassId size_class = 0;
  long track_id = -1;  ///< the tracked object this slice searches for
};

/// Build quantized slice regions for the given predicted boxes (paper's
/// "tracking-based image slicing"). Regions are clamped to the frame.
std::vector<SliceRegion> slice_regions(
    const std::vector<std::pair<long, geom::BBox>>& predicted,
    const geom::SizeClassSet& sizes, double frame_w, double frame_h,
    double margin = 8.0);

/// slice_regions into a caller-owned vector (cleared first).
void slice_regions_into(
    const std::vector<std::pair<long, geom::BBox>>& predicted,
    const geom::SizeClassSet& sizes, double frame_w, double frame_h,
    double margin, std::vector<SliceRegion>& out);

}  // namespace mvs::vision

#include "vision/regions.hpp"

#include <algorithm>
#include <queue>

namespace mvs::vision {

std::vector<geom::BBox> extract_new_regions(
    const FlowField& field, const std::vector<geom::BBox>& predicted,
    double scale, const NewRegionConfig& cfg) {
  const int cols = field.cols, rows = field.rows;
  std::vector<char> moving(static_cast<std::size_t>(cols) *
                               static_cast<std::size_t>(rows),
                           0);
  auto idx = [cols](int c, int r) {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
           static_cast<std::size_t>(c);
  };

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (field.at(c, r).norm() < cfg.motion_threshold) continue;
      const geom::Vec2 center{(c + 0.5) * field.block_size,
                              (r + 0.5) * field.block_size};
      bool explained = false;
      for (const geom::BBox& box : predicted) {
        // Predicted boxes are in logical-frame pixels; compare in flow space.
        const geom::BBox flow_box{box.x / scale, box.y / scale, box.w / scale,
                                  box.h / scale};
        if (flow_box.expanded(field.block_size).contains(center)) {
          explained = true;
          break;
        }
      }
      if (!explained) moving[idx(c, r)] = 1;
    }
  }

  // 4-connected components over moving blocks -> merged boxes.
  std::vector<geom::BBox> regions;
  std::vector<char> seen(moving.size(), 0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (!moving[idx(c, r)] || seen[idx(c, r)]) continue;
      int min_c = c, max_c = c, min_r = r, max_r = r;
      std::queue<std::pair<int, int>> frontier;
      frontier.push({c, r});
      seen[idx(c, r)] = 1;
      while (!frontier.empty()) {
        const auto [cc, cr] = frontier.front();
        frontier.pop();
        min_c = std::min(min_c, cc);
        max_c = std::max(max_c, cc);
        min_r = std::min(min_r, cr);
        max_r = std::max(max_r, cr);
        const int d4[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
        for (const auto& d : d4) {
          const int nc = cc + d[0], nr = cr + d[1];
          if (nc < 0 || nr < 0 || nc >= cols || nr >= rows) continue;
          if (!moving[idx(nc, nr)] || seen[idx(nc, nr)]) continue;
          seen[idx(nc, nr)] = 1;
          frontier.push({nc, nr});
        }
      }
      const double bs = field.block_size;
      geom::BBox box = geom::BBox::from_corners(
          min_c * bs, min_r * bs, (max_c + 1) * bs, (max_r + 1) * bs);
      box = box.expanded(cfg.merge_margin);
      // Map from flow space back to logical-frame pixels.
      box = geom::BBox{box.x * scale, box.y * scale, box.w * scale,
                       box.h * scale};
      if (box.area() >= cfg.min_area) regions.push_back(box);
    }
  }
  return regions;
}

std::vector<SliceRegion> slice_regions(
    const std::vector<std::pair<long, geom::BBox>>& predicted,
    const geom::SizeClassSet& sizes, double frame_w, double frame_h,
    double margin) {
  std::vector<SliceRegion> out;
  out.reserve(predicted.size());
  for (const auto& [track_id, box] : predicted) {
    SliceRegion region;
    region.track_id = track_id;
    region.size_class = sizes.quantize(box, margin);
    region.roi =
        sizes.expand_to_class(box, region.size_class).clamped(frame_w, frame_h);
    out.push_back(region);
  }
  return out;
}

}  // namespace mvs::vision

#include "vision/regions.hpp"

#include <algorithm>

namespace mvs::vision {

void extract_new_regions_into(const FlowField& field,
                              const std::vector<geom::BBox>& predicted,
                              double scale, const NewRegionConfig& cfg,
                              RegionScratch& scratch,
                              std::vector<geom::BBox>& out) {
  out.clear();
  const int cols = field.cols, rows = field.rows;
  scratch.moving.assign(static_cast<std::size_t>(cols) *
                            static_cast<std::size_t>(rows),
                        0);
  std::vector<char>& moving = scratch.moving;
  auto idx = [cols](int c, int r) {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
           static_cast<std::size_t>(c);
  };

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (field.at(c, r).norm() < cfg.motion_threshold) continue;
      const geom::Vec2 center{(c + 0.5) * field.block_size,
                              (r + 0.5) * field.block_size};
      bool explained = false;
      for (const geom::BBox& box : predicted) {
        // Predicted boxes are in logical-frame pixels; compare in flow space.
        const geom::BBox flow_box{box.x / scale, box.y / scale, box.w / scale,
                                  box.h / scale};
        if (flow_box.expanded(field.block_size).contains(center)) {
          explained = true;
          break;
        }
      }
      if (!explained) moving[idx(c, r)] = 1;
    }
  }

  // 4-connected components over moving blocks -> merged boxes. The frontier
  // is a LIFO stack; traversal order differs from a BFS queue but the
  // component membership (and therefore every output box) is identical, and
  // regions are still emitted in first-seen scan order.
  scratch.seen.assign(moving.size(), 0);
  std::vector<char>& seen = scratch.seen;
  std::vector<std::pair<int, int>>& frontier = scratch.frontier;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (!moving[idx(c, r)] || seen[idx(c, r)]) continue;
      int min_c = c, max_c = c, min_r = r, max_r = r;
      frontier.clear();
      frontier.push_back({c, r});
      seen[idx(c, r)] = 1;
      while (!frontier.empty()) {
        const auto [cc, cr] = frontier.back();
        frontier.pop_back();
        min_c = std::min(min_c, cc);
        max_c = std::max(max_c, cc);
        min_r = std::min(min_r, cr);
        max_r = std::max(max_r, cr);
        const int d4[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
        for (const auto& d : d4) {
          const int nc = cc + d[0], nr = cr + d[1];
          if (nc < 0 || nr < 0 || nc >= cols || nr >= rows) continue;
          if (!moving[idx(nc, nr)] || seen[idx(nc, nr)]) continue;
          seen[idx(nc, nr)] = 1;
          frontier.push_back({nc, nr});
        }
      }
      const double bs = field.block_size;
      geom::BBox box = geom::BBox::from_corners(
          min_c * bs, min_r * bs, (max_c + 1) * bs, (max_r + 1) * bs);
      box = box.expanded(cfg.merge_margin);
      // Map from flow space back to logical-frame pixels.
      box = geom::BBox{box.x * scale, box.y * scale, box.w * scale,
                       box.h * scale};
      if (box.area() >= cfg.min_area) out.push_back(box);
    }
  }
}

std::vector<geom::BBox> extract_new_regions(
    const FlowField& field, const std::vector<geom::BBox>& predicted,
    double scale, const NewRegionConfig& cfg) {
  RegionScratch scratch;
  std::vector<geom::BBox> out;
  extract_new_regions_into(field, predicted, scale, cfg, scratch, out);
  return out;
}

void slice_regions_into(
    const std::vector<std::pair<long, geom::BBox>>& predicted,
    const geom::SizeClassSet& sizes, double frame_w, double frame_h,
    double margin, std::vector<SliceRegion>& out) {
  out.clear();
  out.reserve(predicted.size());
  for (const auto& [track_id, box] : predicted) {
    SliceRegion region;
    region.track_id = track_id;
    region.size_class = sizes.quantize(box, margin);
    region.roi =
        sizes.expand_to_class(box, region.size_class).clamped(frame_w, frame_h);
    out.push_back(region);
  }
}

std::vector<SliceRegion> slice_regions(
    const std::vector<std::pair<long, geom::BBox>>& predicted,
    const geom::SizeClassSet& sizes, double frame_w, double frame_h,
    double margin) {
  std::vector<SliceRegion> out;
  slice_regions_into(predicted, sizes, frame_w, frame_h, margin, out);
  return out;
}

}  // namespace mvs::vision

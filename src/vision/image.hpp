#pragma once
// Grayscale raster image. The optical-flow tracker operates on real pixels
// rendered by vision::Renderer, so the motion-estimation code path matches a
// deployment that feeds camera frames into a DIS-style flow estimator.

#include <cstdint>
#include <vector>

namespace mvs::vision {

class Image {
 public:
  Image() = default;
  Image(int width, int height, std::uint8_t fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  std::uint8_t at(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  void set(int x, int y, std::uint8_t v) {
    data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = v;
  }

  /// Clamped read: out-of-bounds coordinates return the nearest edge pixel.
  std::uint8_t at_clamped(int x, int y) const;

  /// 2x box-filter downsample (floor dimensions, minimum 1x1).
  Image downsampled() const;

  const std::vector<std::uint8_t>& data() const { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Mean absolute pixel difference over the whole frame (test helper).
double mean_abs_diff(const Image& a, const Image& b);

}  // namespace mvs::vision

#pragma once
// Grayscale raster image. The optical-flow tracker operates on real pixels
// rendered by vision::Renderer, so the motion-estimation code path matches a
// deployment that feeds camera frames into a DIS-style flow estimator.

#include <cstdint>
#include <vector>

namespace mvs::vision {

class Image {
 public:
  Image() = default;
  Image(int width, int height, std::uint8_t fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  std::uint8_t at(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  void set(int x, int y, std::uint8_t v) {
    data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = v;
  }

  /// Raw row pointer (y in [0, height)); hot kernels index columns directly.
  const std::uint8_t* row(int y) const {
    return data_.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(width_);
  }
  std::uint8_t* row(int y) {
    return data_.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(width_);
  }

  /// Clamped read: out-of-bounds coordinates return the nearest edge pixel.
  std::uint8_t at_clamped(int x, int y) const;

  /// Reshape to width x height. Pixel contents are unspecified afterwards;
  /// no reallocation when the new size fits the existing capacity.
  void resize(int width, int height);

  /// 2x box-filter downsample (floor dimensions, minimum 1x1).
  Image downsampled() const;

  /// Same as downsampled() but writes into `out`, reusing its storage. One
  /// pass: every output pixel is written exactly once (no fill-then-overwrite)
  /// and nothing allocates once `out` has reached the target capacity.
  void downsample_into(Image& out) const;

  const std::vector<std::uint8_t>& data() const { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Edge-replicated padded copy of an Image. Reads at x in [-pad, width+pad)
/// and y in [-pad, height+pad) hit real storage that replicates the nearest
/// edge pixel, so hot kernels (block SAD) can walk raw row pointers with
/// Image::at_clamped semantics and zero per-pixel bounds logic.
class PaddedImage {
 public:
  PaddedImage() = default;

  /// (Re)fill from `src` with `pad` pixels of replicated border on every
  /// side. Reuses the internal buffer when the padded size is unchanged.
  void assign(const Image& src, int pad);

  int width() const { return width_; }
  int height() const { return height_; }
  int pad() const { return pad_; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  /// Row pointer for y in [-pad, height+pad); valid column offsets are
  /// [-pad, width+pad).
  const std::uint8_t* row(int y) const {
    return data_.data() +
           static_cast<std::size_t>(y + pad_) * static_cast<std::size_t>(stride_) +
           static_cast<std::size_t>(pad_);
  }

  /// Clamped-equivalent read (for tests; kernels use row()).
  std::uint8_t at(int x, int y) const { return row(y)[x]; }

 private:
  int width_ = 0;
  int height_ = 0;
  int pad_ = 0;
  int stride_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Mean absolute pixel difference over the whole frame (test helper).
double mean_abs_diff(const Image& a, const Image& b);

}  // namespace mvs::vision

#pragma once
// Greedy per-size batching (paper Sec. III-B): given the set of partial-frame
// inspection tasks assigned to one camera for one frame, group same-size
// tasks into batches up to the device's batch limit. Greedy filling per size
// class minimizes the number of batches, so a feasible assignment uniquely
// determines the optimal camera latency.

#include <vector>

#include "geometry/size_class.hpp"
#include "gpu/device_profile.hpp"

namespace mvs::gpu {

struct Batch {
  geom::SizeClassId size_class = 0;
  int count = 0;  ///< images in this batch (1 <= count <= batch limit)
};

struct BatchPlan {
  std::vector<Batch> batches;
  /// Scheduler-facing latency: number of batches x t_i^s per size class.
  double planned_latency_ms = 0.0;
  /// Simulated execution latency with the sub-linear fill model.
  double actual_latency_ms = 0.0;
};

/// Plan batches for `tasks` (one entry per partial region, value = size
/// class) on the given device.
BatchPlan plan_batches(const std::vector<geom::SizeClassId>& tasks,
                       const DeviceProfile& device);

/// plan_batches with caller-owned output and counting scratch: `plan` is
/// cleared in place (its batch vector keeps capacity) and `counts_scratch`
/// is resized to the device's class count. Bit-identical plan;
/// allocation-free once warm (DESIGN.md §11).
void plan_batches_into(const std::vector<geom::SizeClassId>& tasks,
                       const DeviceProfile& device,
                       std::vector<int>& counts_scratch, BatchPlan& plan);

/// plan_batch_counts with a caller-owned output plan (cleared first).
void plan_batch_counts_into(const std::vector<int>& counts,
                            const DeviceProfile& device, BatchPlan& plan);

/// Plan batches from per-size-class task COUNTS (counts.size() must equal
/// device.size_class_count()). This is the primitive behind plan_batches and
/// the fleet arbiter's cross-session merge: task multisets from any number
/// of sessions collapse to summed counts, and greedy filling over the merged
/// counts yields the minimal shared batch schedule.
BatchPlan plan_batch_counts(const std::vector<int>& counts,
                            const DeviceProfile& device);

/// Batch plan latency per size class of `plan` (indexed by size class id,
/// length device.size_class_count()): the actual (fill-model) latency of
/// every batch of that class summed. Used for proportional per-session
/// latency attribution of shared batches.
std::vector<double> per_class_actual_ms(const BatchPlan& plan,
                                        const DeviceProfile& device);

/// Latency of adding one more task of size class `s` given `existing` counts
/// per size class (the marginal cost used in BALB central stage): zero if an
/// incomplete batch exists, else one more t_i^s.
double marginal_latency_ms(const std::vector<int>& per_size_counts,
                           geom::SizeClassId s, const DeviceProfile& device);

}  // namespace mvs::gpu

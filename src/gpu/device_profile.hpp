#pragma once
// GPU execution model (paper Sec. III-A).
//
// The scheduler treats the detection DNN as a black box characterized by an
// offline latency profile: for each quantized input size s, a batch limit
// B_i^s (how many same-size regions can run in one batch) and a batch
// execution latency t_i^s (the time of a batch at the limit; the paper
// operates in the regime where latency varies only slightly with batch fill,
// before the inflection point). Full-frame inspection has its own latency
// t_i^full. Profiles for Jetson Nano / TX2 / Xavier are calibrated to public
// YOLOv5 numbers; see DESIGN.md for the substitution note.

#include <string>
#include <vector>

#include "geometry/size_class.hpp"

namespace mvs::gpu {

struct SizeProfile {
  int batch_limit = 1;      ///< B_i^s, >= 1
  double latency_ms = 0.0;  ///< t_i^s: batch execution time at the limit
};

class DeviceProfile {
 public:
  DeviceProfile() = default;
  DeviceProfile(std::string name, double full_frame_ms,
                std::vector<SizeProfile> per_size);

  const std::string& name() const { return name_; }
  double full_frame_ms() const { return full_frame_ms_; }
  std::size_t size_class_count() const { return per_size_.size(); }

  int batch_limit(geom::SizeClassId s) const;
  /// t_i^s — the scheduler's (conservative) per-batch cost.
  double batch_latency_ms(geom::SizeClassId s) const;

  /// Simulated actual latency of a batch with `count` images
  /// (1 <= count <= batch_limit): sub-linear in fill, equal to t_i^s at the
  /// limit. This is what the runtime charges; the scheduler plans with the
  /// conservative t_i^s, exactly as the paper does.
  double actual_batch_latency_ms(geom::SizeClassId s, int count) const;

  /// Processing power proxy used by the Static Partitioning baseline:
  /// reciprocal of full-frame latency.
  double relative_power() const { return 1.0 / full_frame_ms_; }

 private:
  std::string name_;
  double full_frame_ms_ = 1.0;
  std::vector<SizeProfile> per_size_;
};

/// Calibrated profiles for the paper's testbed boards, indexed by the default
/// SizeClassSet {64, 128, 256, 512}.
DeviceProfile jetson_xavier();
DeviceProfile jetson_tx2();
DeviceProfile jetson_nano();

}  // namespace mvs::gpu

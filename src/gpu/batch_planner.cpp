#include "gpu/batch_planner.hpp"

#include <cassert>

namespace mvs::gpu {

void plan_batches_into(const std::vector<geom::SizeClassId>& tasks,
                       const DeviceProfile& device,
                       std::vector<int>& counts_scratch, BatchPlan& plan) {
  counts_scratch.assign(device.size_class_count(), 0);
  for (geom::SizeClassId s : tasks) {
    assert(s >= 0 && static_cast<std::size_t>(s) < counts_scratch.size());
    ++counts_scratch[static_cast<std::size_t>(s)];
  }
  plan_batch_counts_into(counts_scratch, device, plan);
}

BatchPlan plan_batches(const std::vector<geom::SizeClassId>& tasks,
                       const DeviceProfile& device) {
  std::vector<int> counts;
  BatchPlan plan;
  plan_batches_into(tasks, device, counts, plan);
  return plan;
}

BatchPlan plan_batch_counts(const std::vector<int>& counts,
                            const DeviceProfile& device) {
  BatchPlan plan;
  plan_batch_counts_into(counts, device, plan);
  return plan;
}

void plan_batch_counts_into(const std::vector<int>& counts,
                            const DeviceProfile& device, BatchPlan& plan) {
  assert(counts.size() == device.size_class_count());
  plan.batches.clear();
  plan.planned_latency_ms = 0.0;
  plan.actual_latency_ms = 0.0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    int remaining = counts[s];
    const auto cls = static_cast<geom::SizeClassId>(s);
    const int limit = device.batch_limit(cls);
    while (remaining > 0) {
      const int take = remaining < limit ? remaining : limit;
      plan.batches.push_back({cls, take});
      plan.planned_latency_ms += device.batch_latency_ms(cls);
      plan.actual_latency_ms += device.actual_batch_latency_ms(cls, take);
      remaining -= take;
    }
  }
}

std::vector<double> per_class_actual_ms(const BatchPlan& plan,
                                        const DeviceProfile& device) {
  std::vector<double> per_class(device.size_class_count(), 0.0);
  for (const Batch& b : plan.batches)
    per_class[static_cast<std::size_t>(b.size_class)] +=
        device.actual_batch_latency_ms(b.size_class, b.count);
  return per_class;
}

double marginal_latency_ms(const std::vector<int>& per_size_counts,
                           geom::SizeClassId s, const DeviceProfile& device) {
  assert(s >= 0 && static_cast<std::size_t>(s) < per_size_counts.size());
  const int count = per_size_counts[static_cast<std::size_t>(s)];
  const int limit = device.batch_limit(s);
  // An incomplete batch exists iff count is not a multiple of the limit.
  if (count % limit != 0) return 0.0;
  return device.batch_latency_ms(s);
}

}  // namespace mvs::gpu

#include "gpu/device_profile.hpp"

#include <cassert>

namespace mvs::gpu {

DeviceProfile::DeviceProfile(std::string name, double full_frame_ms,
                             std::vector<SizeProfile> per_size)
    : name_(std::move(name)),
      full_frame_ms_(full_frame_ms),
      per_size_(std::move(per_size)) {
  assert(full_frame_ms_ > 0.0);
  for (const SizeProfile& p : per_size_) {
    assert(p.batch_limit >= 1);
    assert(p.latency_ms > 0.0);
    (void)p;
  }
}

int DeviceProfile::batch_limit(geom::SizeClassId s) const {
  return per_size_.at(static_cast<std::size_t>(s)).batch_limit;
}

double DeviceProfile::batch_latency_ms(geom::SizeClassId s) const {
  return per_size_.at(static_cast<std::size_t>(s)).latency_ms;
}

double DeviceProfile::actual_batch_latency_ms(geom::SizeClassId s,
                                              int count) const {
  const SizeProfile& p = per_size_.at(static_cast<std::size_t>(s));
  assert(count >= 1 && count <= p.batch_limit);
  // Sub-linear fill model: a 60% fixed kernel-launch/readback floor plus a
  // per-image component, reaching exactly t_i^s at the batch limit.
  constexpr double kFloor = 0.6;
  const double fill =
      static_cast<double>(count) / static_cast<double>(p.batch_limit);
  return p.latency_ms * (kFloor + (1.0 - kFloor) * fill);
}

// Profiles follow the shape of public YOLOv5s measurements on the three
// boards: Xavier : TX2 : Nano full-frame ratios of roughly 1 : 2.7 : 6.2,
// batch limits shrinking with input size and with device memory.
DeviceProfile jetson_xavier() {
  return DeviceProfile("xavier", 45.0,
                       {{32, 6.0}, {16, 8.0}, {8, 12.0}, {4, 20.0}});
}

DeviceProfile jetson_tx2() {
  return DeviceProfile("tx2", 120.0,
                       {{16, 12.0}, {8, 16.0}, {4, 25.0}, {2, 45.0}});
}

DeviceProfile jetson_nano() {
  return DeviceProfile("nano", 280.0,
                       {{8, 25.0}, {4, 35.0}, {2, 55.0}, {1, 95.0}});
}

}  // namespace mvs::gpu

#include "net/messages.hpp"

namespace mvs::net {

std::vector<std::uint8_t> DetectionListMsg::encode() const {
  ByteWriter w;
  w.u32(camera_id);
  w.u64(frame_index);
  w.u32(static_cast<std::uint32_t>(detections.size()));
  for (const detect::Detection& d : detections) {
    w.bbox(d.box);
    w.i32(static_cast<std::int32_t>(d.cls));
    w.f64(d.score);
    w.u64(d.truth_id);
  }
  return w.bytes();
}

std::optional<DetectionListMsg> DetectionListMsg::decode(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  DetectionListMsg msg;
  const auto cam = r.u32();
  const auto frame = r.u64();
  const auto count = r.u32();
  if (!cam || !frame || !count) return std::nullopt;
  msg.camera_id = *cam;
  msg.frame_index = *frame;
  // Each detection occupies 52 bytes on the wire; a count that cannot fit in
  // the remaining payload is a malformed (or hostile) message — reject it
  // before allocating anything.
  constexpr std::size_t kDetectionWireBytes = 4 * 8 + 4 + 8 + 8;
  if (static_cast<std::size_t>(*count) * kDetectionWireBytes > r.remaining())
    return std::nullopt;
  msg.detections.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    detect::Detection d;
    const auto box = r.bbox();
    const auto cls = r.i32();
    const auto score = r.f64();
    const auto truth = r.u64();
    if (!box || !cls || !score || !truth) return std::nullopt;
    d.box = *box;
    d.cls = static_cast<detect::ObjectClass>(*cls);
    d.score = *score;
    d.truth_id = *truth;
    msg.detections.push_back(d);
  }
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

std::vector<std::uint8_t> AssignmentMsg::encode() const {
  ByteWriter w;
  w.u32(camera_id);
  w.u64(frame_index);
  w.u32(static_cast<std::uint32_t>(assigned_keys.size()));
  for (std::uint64_t k : assigned_keys) w.u64(k);
  w.u32(static_cast<std::uint32_t>(priority_order.size()));
  for (std::uint32_t c : priority_order) w.u32(c);
  return w.bytes();
}

std::optional<AssignmentMsg> AssignmentMsg::decode(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  AssignmentMsg msg;
  const auto cam = r.u32();
  const auto frame = r.u64();
  if (!cam || !frame) return std::nullopt;
  msg.camera_id = *cam;
  msg.frame_index = *frame;
  const auto nk = r.u32();
  if (!nk) return std::nullopt;
  for (std::uint32_t i = 0; i < *nk; ++i) {
    const auto k = r.u64();
    if (!k) return std::nullopt;
    msg.assigned_keys.push_back(*k);
  }
  const auto np = r.u32();
  if (!np) return std::nullopt;
  for (std::uint32_t i = 0; i < *np; ++i) {
    const auto c = r.u32();
    if (!c) return std::nullopt;
    msg.priority_order.push_back(*c);
  }
  if (!r.exhausted()) return std::nullopt;
  return msg;
}

}  // namespace mvs::net

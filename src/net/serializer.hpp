#pragma once
// Byte-level message serialization. The paper's testbed moves detection
// lists and scheduling decisions over TCP between cameras and the central
// scheduler; we serialize to the same wire shape and charge transfer time
// through net::LinkModel, so message sizes are real even though transport
// is in-process.

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "geometry/bbox.hpp"

namespace mvs::net {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void str(const std::string& s);
  void bbox(const geom::BBox& b);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reader over a byte span; all getters return nullopt past the end, so a
/// truncated message fails loudly instead of yielding garbage.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int32_t> i32();
  std::optional<double> f64();
  std::optional<std::string> str();
  std::optional<geom::BBox> bbox();

  bool exhausted() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  bool need(std::size_t n) const { return pos_ + n <= buf_.size(); }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace mvs::net

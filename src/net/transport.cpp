#include "net/transport.hpp"

#include <algorithm>
#include <cctype>

namespace mvs::net {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kIdeal: return "ideal";
    case TransportKind::kLossy: return "lossy";
  }
  return "?";
}

std::optional<TransportKind> parse_transport(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (name == "ideal") return TransportKind::kIdeal;
  if (name == "lossy" || name == "netsim") return TransportKind::kLossy;
  return std::nullopt;
}

IdealTransport::IdealTransport(std::size_t cameras, LinkModel link)
    : link_(link),
      cameras_(cameras),
      up_sent_(cameras, 0),
      down_sent_(cameras, 0) {}

bool IdealTransport::camera_online(int /*camera*/, long /*frame*/) {
  return true;  // the clean wired link never loses a camera
}

void IdealTransport::send_uplink(long /*frame*/, int camera,
                                 std::size_t bytes) {
  up_bytes_ += bytes;
  up_sent_[static_cast<std::size_t>(camera)] = 1;
}

UplinkReport IdealTransport::run_uplinks(long /*frame*/) {
  UplinkReport report;
  report.elapsed_ms = up_bytes_ > 0 ? link_.upload_ms(up_bytes_) : 0.0;
  report.delivered = up_sent_;
  return report;
}

void IdealTransport::send_downlink(long /*frame*/, int camera,
                                   std::size_t bytes) {
  down_bytes_ += bytes;
  down_sent_[static_cast<std::size_t>(camera)] = 1;
}

CycleReport IdealTransport::finish_cycle(long /*frame*/) {
  CycleReport report;
  // The historical closed form: one shared-medium transfer per direction.
  report.comm_ms =
      link_.upload_ms(up_bytes_) + link_.download_ms(down_bytes_);
  report.downlink_delivered = down_sent_;
  up_bytes_ = down_bytes_ = 0;
  up_sent_.assign(cameras_, 0);
  down_sent_.assign(cameras_, 0);
  return report;
}

}  // namespace mvs::net

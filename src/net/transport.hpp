#pragma once
// Camera <-> scheduler transport abstraction for the key-frame cycle.
//
// The pipeline drives one cycle per key frame:
//   1. every online camera submits its detection-list uplink (send_uplink);
//   2. run_uplinks() resolves which uplinks reached the scheduler — the
//      central stage then plans over exactly those cameras;
//   3. the scheduler submits per-camera assignment downlinks
//      (send_downlink);
//   4. finish_cycle() resolves the downlinks and reports the cycle's
//      communication time plus loss/retry/queueing accounting.
//
// Two implementations exist: IdealTransport (below) reproduces the
// closed-form net::LinkModel arithmetic bit-exactly — a clean wired link
// with no queueing, loss or faults — and netsim::SimTransport, the
// discrete-event lossy transport.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "net/link.hpp"

namespace mvs::net {

enum class TransportKind {
  kIdeal,  ///< closed-form LinkModel; bit-exact with the analytic numbers
  kLossy,  ///< netsim discrete-event queues with loss/jitter/dropout
};

const char* to_string(TransportKind kind);
/// Parse "ideal" / "lossy" (case-insensitive); nullopt on unknown names.
std::optional<TransportKind> parse_transport(std::string name);

/// Something noteworthy that happened to one message during a cycle.
struct MessageEvent {
  enum class Kind {
    kRetry,  ///< sender retransmitted after a silent retry timeout
    kDrop,   ///< message lost for good (retry budget exhausted)
  };
  Kind kind = Kind::kRetry;
  int camera = -1;
  bool uplink = true;     ///< direction of the affected message
  double time_ms = 0.0;   ///< cycle-relative time of the event
};

/// Result of the uplink half of a cycle.
struct UplinkReport {
  double elapsed_ms = 0.0;
  /// delivered[i] != 0 iff camera i's detection list reached the scheduler.
  std::vector<char> delivered;
};

/// Full-cycle accounting returned by finish_cycle().
struct CycleReport {
  double comm_ms = 0.0;   ///< end-to-end communication time of the cycle
  double queue_ms = 0.0;  ///< total time messages waited in FIFO queues
  int retries = 0;        ///< retransmissions across both directions
  int dropped_msgs = 0;   ///< messages lost after exhausting retries
  /// downlink_delivered[i] != 0 iff camera i received its assignment.
  std::vector<char> downlink_delivered;
  std::vector<MessageEvent> events;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Is `camera` connected at evaluation frame `frame`? Offline cameras
  /// neither detect nor communicate until they rejoin.
  virtual bool camera_online(int camera, long frame) = 0;

  /// Queue camera `camera`'s key-frame uplink of `bytes` payload.
  virtual void send_uplink(long frame, int camera, std::size_t bytes) = 0;

  /// Resolve all queued uplinks; the central stage must only consume
  /// detection lists whose report entry says delivered.
  virtual UplinkReport run_uplinks(long frame) = 0;

  /// Queue the scheduler's downlink of `bytes` payload to camera `camera`.
  virtual void send_downlink(long frame, int camera, std::size_t bytes) = 0;

  /// Resolve the downlinks, return the cycle accounting, reset for the
  /// next key frame.
  virtual CycleReport finish_cycle(long frame) = 0;
};

/// The pre-netsim behaviour behind the Transport interface: accumulates the
/// cycle's byte totals and charges LinkModel::upload_ms / download_ms on the
/// sums — the exact expression the pipeline used to evaluate inline, so
/// per-frame comm_ms is bit-identical to the closed-form numbers.
class IdealTransport final : public Transport {
 public:
  explicit IdealTransport(std::size_t cameras, LinkModel link = LinkModel{});

  bool camera_online(int camera, long frame) override;
  void send_uplink(long frame, int camera, std::size_t bytes) override;
  UplinkReport run_uplinks(long frame) override;
  void send_downlink(long frame, int camera, std::size_t bytes) override;
  CycleReport finish_cycle(long frame) override;

  const LinkModel& link() const { return link_; }

 private:
  LinkModel link_;
  std::size_t cameras_ = 0;
  std::size_t up_bytes_ = 0, down_bytes_ = 0;
  std::vector<char> up_sent_, down_sent_;
};

}  // namespace mvs::net

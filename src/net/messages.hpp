#pragma once
// Typed camera <-> central-scheduler messages with round-trip serialization.

#include <optional>

#include "detect/detection.hpp"
#include "net/serializer.hpp"

namespace mvs::net {

/// Camera -> scheduler after a key-frame full inspection.
struct DetectionListMsg {
  std::uint32_t camera_id = 0;
  std::uint64_t frame_index = 0;
  std::vector<detect::Detection> detections;

  std::vector<std::uint8_t> encode() const;
  static std::optional<DetectionListMsg> decode(
      const std::vector<std::uint8_t>& bytes);
};

/// Scheduler -> camera: this camera's slice of the central-stage assignment
/// plus the horizon-wide priority order (needed by the distributed stage).
struct AssignmentMsg {
  std::uint32_t camera_id = 0;
  std::uint64_t frame_index = 0;
  /// Keys of the objects this camera must track.
  std::vector<std::uint64_t> assigned_keys;
  /// Cameras from highest to lowest distributed-stage priority.
  std::vector<std::uint32_t> priority_order;

  std::vector<std::uint8_t> encode() const;
  static std::optional<AssignmentMsg> decode(
      const std::vector<std::uint8_t>& bytes);
};

}  // namespace mvs::net

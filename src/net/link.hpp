#pragma once
// Bandwidth/latency link model for the camera <-> scheduler network
// (paper Sec. IV-A1: wired, 100 Mbps downlink / 20 Mbps uplink).

#include <cstddef>

namespace mvs::net {

class LinkModel {
 public:
  struct Config {
    double uplink_mbps = 20.0;     ///< camera -> scheduler
    double downlink_mbps = 100.0;  ///< scheduler -> camera
    double base_latency_ms = 1.0;  ///< per-message propagation + stack cost
  };

  LinkModel() = default;
  explicit LinkModel(Config cfg) : cfg_(cfg) {}

  /// Transfer time of an uplink message of `bytes` payload.
  double upload_ms(std::size_t bytes) const;
  /// Transfer time of a downlink message of `bytes` payload.
  double download_ms(std::size_t bytes) const;

  /// Round trip: uplink `up_bytes`, processing `processing_ms`, downlink
  /// `down_bytes` — the key-frame central-stage cycle.
  double round_trip_ms(std::size_t up_bytes, double processing_ms,
                       std::size_t down_bytes) const;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_{};
};

}  // namespace mvs::net

#include "net/link.hpp"

namespace mvs::net {

namespace {
double transfer_ms(std::size_t bytes, double mbps, double base_ms) {
  const double bits = static_cast<double>(bytes) * 8.0;
  return base_ms + bits / (mbps * 1e6) * 1e3;
}
}  // namespace

double LinkModel::upload_ms(std::size_t bytes) const {
  return transfer_ms(bytes, cfg_.uplink_mbps, cfg_.base_latency_ms);
}

double LinkModel::download_ms(std::size_t bytes) const {
  return transfer_ms(bytes, cfg_.downlink_mbps, cfg_.base_latency_ms);
}

double LinkModel::round_trip_ms(std::size_t up_bytes, double processing_ms,
                                std::size_t down_bytes) const {
  return upload_ms(up_bytes) + processing_ms + download_ms(down_bytes);
}

}  // namespace mvs::net

#include "net/serializer.hpp"

namespace mvs::net {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::bbox(const geom::BBox& b) {
  f64(b.x);
  f64(b.y);
  f64(b.w);
  f64(b.h);
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return std::nullopt;
  return buf_[pos_++];
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::int32_t> ByteReader::i32() {
  const auto v = u32();
  if (!v) return std::nullopt;
  return static_cast<std::int32_t>(*v);
}

std::optional<double> ByteReader::f64() {
  const auto bits = u64();
  if (!bits) return std::nullopt;
  double v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

std::optional<std::string> ByteReader::str() {
  const auto len = u32();
  if (!len || !need(*len)) return std::nullopt;
  std::string s(buf_.begin() + static_cast<long>(pos_),
                buf_.begin() + static_cast<long>(pos_ + *len));
  pos_ += *len;
  return s;
}

std::optional<geom::BBox> ByteReader::bbox() {
  const auto x = f64();
  const auto y = f64();
  const auto w = f64();
  const auto h = f64();
  if (!x || !y || !w || !h) return std::nullopt;
  return geom::BBox{*x, *y, *w, *h};
}

}  // namespace mvs::net

#pragma once
// Full-perspective pinhole camera projecting world objects into per-camera
// pixel bounding boxes.
//
// Because objects have 3-D extent (length/width/height) and cameras have
// arbitrary yaw/pitch, the induced mapping between two cameras' 2-D boxes is
// NOT a plane homography — exactly the property the paper exploits to show
// KNN beating homography on cross-camera box regression (Fig. 11).

#include <optional>

#include "detect/detection.hpp"
#include "geometry/bbox.hpp"
#include "sim/world.hpp"

namespace mvs::sim {

class CameraModel {
 public:
  struct Config {
    Vec3 position{0.0, 0.0, 6.0};  ///< meters; z is mounting height
    double yaw_deg = 0.0;    ///< 0 = +x, counter-clockwise about z
    double pitch_deg = -20.0;  ///< negative looks down
    double focal_px = 1000.0;
    int width = 1280;
    int height = 704;
    double min_depth_m = 2.0;
    double max_depth_m = 120.0;
    /// Minimum projected box area (px^2) for the object to count as visible.
    double min_box_area_px = 80.0;
    /// Fraction of the projected box that must lie inside the frame.
    double min_frame_coverage = 0.35;
  };

  CameraModel() = default;
  explicit CameraModel(Config cfg);

  const Config& config() const { return cfg_; }
  int width() const { return cfg_.width; }
  int height() const { return cfg_.height; }

  /// Project a world point; nullopt when behind the camera or outside the
  /// depth range.
  std::optional<geom::Vec2> project(const Vec3& world) const;

  /// Depth (meters along the optical axis) of a world point; negative when
  /// behind the camera.
  double depth_of(const Vec3& world) const;

  /// Project a world object's 3-D box (8 corners) into the clamped 2-D pixel
  /// AABB; nullopt when the object is not visible from this camera under the
  /// config thresholds.
  std::optional<detect::GroundTruthObject> observe(const WorldObject& obj) const;

 private:
  Config cfg_{};
  Vec3 forward_, right_, up_;
};

}  // namespace mvs::sim

#pragma once
// Dynamic inter-object occlusion (paper Sec. V, "Dynamic occlusion").
//
// An object can be hidden from a camera by a closer object whose projected
// box covers most of it. Occlusion is per-camera: an object occluded on its
// assigned camera may remain visible elsewhere — the failure mode that
// motivates redundant (K-coverage) assignment in core/redundancy.hpp.

#include <vector>

#include "detect/detection.hpp"

namespace mvs::sim {

struct OcclusionConfig {
  /// Fraction of an object's box that must be covered by a strictly closer
  /// object for it to count as occluded.
  double cover_threshold = 0.6;
  bool enabled = true;
};

/// Filter a camera's ground-truth list: drop objects whose box is covered by
/// a closer (smaller distance_m) object's box beyond the threshold.
/// Preserves the relative order of the survivors.
std::vector<detect::GroundTruthObject> apply_occlusion(
    std::vector<detect::GroundTruthObject> objects,
    const OcclusionConfig& cfg = {});

/// apply_occlusion in place (same filter, no return copy). A disabled
/// config is a strict no-op, which keeps the default pipeline path
/// allocation-free (DESIGN.md §11).
void apply_occlusion_inplace(std::vector<detect::GroundTruthObject>& objects,
                             const OcclusionConfig& cfg = {});

/// Occlusion report for diagnostics / metrics: ids dropped per camera.
struct OcclusionEvent {
  std::uint64_t occluded_id = 0;
  std::uint64_t occluder_id = 0;
  double covered_fraction = 0.0;
};

std::vector<OcclusionEvent> occlusion_events(
    const std::vector<detect::GroundTruthObject>& objects,
    const OcclusionConfig& cfg = {});

}  // namespace mvs::sim

#include "sim/occlusion.hpp"

#include <algorithm>

#include "geometry/bbox.hpp"

namespace mvs::sim {

std::vector<OcclusionEvent> occlusion_events(
    const std::vector<detect::GroundTruthObject>& objects,
    const OcclusionConfig& cfg) {
  std::vector<OcclusionEvent> events;
  if (!cfg.enabled) return events;
  for (const detect::GroundTruthObject& victim : objects) {
    double covered = 0.0;
    const detect::GroundTruthObject* occluder = nullptr;
    for (const detect::GroundTruthObject& other : objects) {
      if (other.id == victim.id) continue;
      if (other.distance_m >= victim.distance_m) continue;  // not closer
      const double c = geom::coverage(victim.box, other.box);
      if (c > covered) {
        covered = c;
        occluder = &other;
      }
    }
    if (occluder && covered >= cfg.cover_threshold)
      events.push_back({victim.id, occluder->id, covered});
  }
  return events;
}

void apply_occlusion_inplace(std::vector<detect::GroundTruthObject>& objects,
                             const OcclusionConfig& cfg) {
  if (!cfg.enabled) return;
  const std::vector<OcclusionEvent> events = occlusion_events(objects, cfg);
  std::erase_if(objects, [&](const detect::GroundTruthObject& obj) {
    return std::any_of(
        events.begin(), events.end(),
        [&](const OcclusionEvent& e) { return e.occluded_id == obj.id; });
  });
}

std::vector<detect::GroundTruthObject> apply_occlusion(
    std::vector<detect::GroundTruthObject> objects,
    const OcclusionConfig& cfg) {
  apply_occlusion_inplace(objects, cfg);
  return objects;
}

}  // namespace mvs::sim

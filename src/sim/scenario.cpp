#include "sim/scenario.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mvs::sim {

bool QualitySchedule::is_night(double t) const {
  if (!enabled || period_s <= 0.0) return false;
  return std::fmod(t, 2.0 * period_s) >= period_s;
}

namespace {

CameraModel make_camera(Vec3 pos, double yaw_deg, double pitch_deg,
                        double focal = 900.0, double max_depth = 120.0) {
  CameraModel::Config cfg;
  cfg.position = pos;
  cfg.yaw_deg = yaw_deg;
  cfg.pitch_deg = pitch_deg;
  cfg.focal_px = focal;
  cfg.max_depth_m = max_depth;
  return CameraModel(cfg);
}

}  // namespace

Scenario make_s1(std::uint64_t seed) {
  // Signalized intersection at the origin; approaches along +/-x and +/-y.
  // Phase group 0 = east-west green, group 1 = north-south green.
  std::vector<Route> routes;
  auto add_road = [&](geom::Vec2 from, geom::Vec2 to, int phase) {
    Route r({from, to}, 11.0);
    r.stop_line_s = 68.0;  // 12 m before the 80 m mark (the crossing)
    r.phase_group = phase;
    routes.push_back(std::move(r));
  };
  add_road({-80.0, -2.0}, {80.0, -2.0}, 0);   // eastbound
  add_road({80.0, 2.0}, {-80.0, 2.0}, 0);     // westbound
  add_road({2.0, -80.0}, {2.0, 80.0}, 1);     // northbound
  add_road({-2.0, 80.0}, {-2.0, -80.0}, 1);   // southbound

  std::vector<TrafficStream> streams;
  for (int r = 0; r < 4; ++r) streams.push_back({r, 0.22, {0.8, 0.92, 0.97, 1.0}});

  LightSchedule lights;
  lights.green_s = 12.0;
  lights.all_red_s = 2.0;

  Scenario s;
  s.name = "S1";
  s.world = std::make_unique<World>(std::move(routes), std::move(streams),
                                    lights, seed);
  // Five cameras: four corner poles facing the intersection diagonally and
  // one overview pole. View angles differ by 90/180 degrees as in Fig. 1.
  // Poles are set back from the roads so projected boxes stay in the
  // 64-256 px range typical of pole-mounted traffic cameras.
  s.cameras.push_back({"c1", make_camera({22, 22, 9}, 225, -16, 750.0, 70.0), gpu::jetson_xavier()});
  s.cameras.push_back({"c2", make_camera({-22, 22, 9}, -45, -16, 750.0, 70.0), gpu::jetson_xavier()});
  s.cameras.push_back({"c3", make_camera({-22, -22, 9}, 45, -16, 750.0, 70.0), gpu::jetson_tx2()});
  s.cameras.push_back({"c4", make_camera({22, -22, 9}, 135, -16, 750.0, 70.0), gpu::jetson_tx2()});
  s.cameras.push_back({"c5", make_camera({-30, -30, 12}, 45, -18, 650.0, 65.0), gpu::jetson_nano()});
  return s;
}

Scenario make_s2(std::uint64_t seed) {
  // Straight residential road with sparse two-way traffic.
  std::vector<Route> routes;
  routes.emplace_back(std::vector<geom::Vec2>{{-90.0, -2.0}, {90.0, -2.0}}, 9.0);
  routes.emplace_back(std::vector<geom::Vec2>{{90.0, 2.0}, {-90.0, 2.0}}, 9.0);
  // Occasional pedestrians on a sidewalk path.
  routes.emplace_back(std::vector<geom::Vec2>{{-60.0, 6.0}, {60.0, 6.0}}, 1.4);

  std::vector<TrafficStream> streams = {
      {0, 0.05, {0.85, 0.95, 0.98, 1.0}},
      {1, 0.05, {0.85, 0.95, 0.98, 1.0}},
      {2, 0.02, {0.0, 0.0, 0.0, 1.0}},  // persons only
  };

  Scenario s;
  s.name = "S2";
  s.world = std::make_unique<World>(std::move(routes), std::move(streams),
                                    LightSchedule{}, seed);
  // Two roadside poles with strongly overlapping views of the mid segment,
  // set back enough that vehicles stay small (the Nano rarely needs the
  // expensive large input sizes).
  s.cameras.push_back({"c1", make_camera({-15, -22, 9}, 60, -16, 520.0), gpu::jetson_xavier()});
  s.cameras.push_back({"c2", make_camera({15, -22, 9}, 120, -16, 520.0), gpu::jetson_nano()});
  return s;
}

Scenario make_s3(std::uint64_t seed) {
  // Busy fork road: a trunk from the west splits into NE and SE branches;
  // a third roadside path crosses near the SE branch.
  std::vector<Route> routes;
  routes.emplace_back(
      std::vector<geom::Vec2>{{-80.0, -1.5}, {0.0, -1.5}, {55.0, 35.0}}, 10.0);
  routes.emplace_back(
      std::vector<geom::Vec2>{{-80.0, 1.5}, {0.0, 1.5}, {55.0, -35.0}}, 10.0);
  routes.emplace_back(std::vector<geom::Vec2>{{30.0, -55.0}, {30.0, 55.0}}, 8.0);

  std::vector<TrafficStream> streams = {
      {0, 0.75, {0.75, 0.9, 0.97, 1.0}},
      {1, 0.75, {0.75, 0.9, 0.97, 1.0}},
      {2, 0.4, {0.8, 0.95, 0.98, 1.0}},
  };

  Scenario s;
  s.name = "S3";
  s.world = std::make_unique<World>(std::move(routes), std::move(streams),
                                    LightSchedule{}, seed);
  // Two fork monitors with partially overlapping views + one roadside camera
  // whose overlap with the fork pair is small (the paper notes S3 has the
  // smallest cross-camera overlap).
  s.cameras.push_back({"c1", make_camera({28, 33, 9}, -155, -16, 700.0, 62.0), gpu::jetson_xavier()});
  s.cameras.push_back({"c2", make_camera({28, -33, 9}, 155, -16, 700.0, 62.0), gpu::jetson_tx2()});
  s.cameras.push_back({"c3", make_camera({55, 0, 9}, 180, -16, 650.0, 75.0), gpu::jetson_nano()});
  return s;
}

Scenario make_city(const CityConfig& config, std::uint64_t seed) {
  if (config.cameras < 1 || config.block_m <= 0.0 ||
      config.camera_depth_m <= 0.0 || config.rate_per_s < 0.0)
    throw std::invalid_argument("city config out of range");
  const int cols = std::max(
      1, static_cast<int>(std::ceil(std::sqrt(double(config.cameras)))));
  const int rows = (config.cameras + cols - 1) / cols;
  // Corridor span: one block of approach before the first pole and enough
  // road past the last pole that departures happen off-camera.
  const double x0 = -config.block_m;
  const double x1 = cols * config.block_m + config.camera_depth_m;
  const double corridor_gap = 4.0 * config.block_m;  // rows can't see each other

  std::vector<Route> routes;
  std::vector<TrafficStream> streams;
  const std::array<double, 4> vehicle_cdf = {0.85, 0.95, 1.0, 1.0};
  for (int r = 0; r < rows; ++r) {
    const double y = r * corridor_gap;
    routes.emplace_back(std::vector<geom::Vec2>{{x0, y - 2.0}, {x1, y - 2.0}},
                        10.0);
    streams.push_back(
        {static_cast<int>(routes.size()) - 1, config.rate_per_s, vehicle_cdf});
    routes.emplace_back(std::vector<geom::Vec2>{{x1, y + 2.0}, {x0, y + 2.0}},
                        10.0);
    streams.push_back(
        {static_cast<int>(routes.size()) - 1, config.rate_per_s, vehicle_cdf});
  }

  Scenario s;
  s.name = city_scenario_name(config);
  s.world = std::make_unique<World>(std::move(routes), std::move(streams),
                                    LightSchedule{}, seed);
  // Long corridors need time to fill with through traffic before frame 0.
  const double corridor_m = x1 - x0;
  s.warmup_s = 45.0 + corridor_m / 8.0;

  if (config.flash_at_s >= 0.0 && config.flash_duration_s > 0.0) {
    // flash_at_s is evaluation time; the world clock includes the warmup.
    const double from = s.warmup_s + config.flash_at_s;
    s.world->add_rate_burst(
        {from, from + config.flash_duration_s, config.flash_multiplier});
  }
  if (config.day_night) {
    s.quality.enabled = true;
    s.quality.period_s = config.night_period_s;
    s.quality.night_miss_boost = config.night_miss_boost;
  }

  // One pole per block, all facing east from the south side of the road, so
  // each covers roughly [pole - 7 m, pole + 0.95 * depth] of its corridor:
  // consecutive footprints share only a few meters and non-adjacent cameras
  // share nothing (the sparse pairwise overlap of a real avenue deployment).
  const std::array<gpu::DeviceProfile, 3> device_cycle = {
      gpu::jetson_xavier(), gpu::jetson_tx2(), gpu::jetson_nano()};
  for (int k = 0; k < config.cameras; ++k) {
    const int r = k / cols;
    const int c = k % cols;
    const double px = c * config.block_m;
    const double py = r * corridor_gap - 20.0;
    char name[32];
    std::snprintf(name, sizeof name, "g%02d_%02d", r, c);
    s.cameras.push_back({name,
                         make_camera({px, py, 9.0}, 60.0, -16.0, 520.0,
                                     config.camera_depth_m),
                         device_cycle[static_cast<std::size_t>(k % 3)]});
  }
  return s;
}

std::string city_scenario_name(const CityConfig& c) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "city:cams=%d;block=%.17g;rate=%.17g;depth=%.17g;"
      "flash=%.17g,%.17g,%.17g;night=%d,%.17g,%.17g",
      c.cameras, c.block_m, c.rate_per_s, c.camera_depth_m, c.flash_at_s,
      c.flash_duration_s, c.flash_multiplier, c.day_night ? 1 : 0,
      c.night_period_s, c.night_miss_boost);
  return buf;
}

std::optional<CityConfig> parse_city_name(const std::string& name) {
  CityConfig c;
  if (name == "city") return c;
  int night = 0;
  const int n = std::sscanf(
      name.c_str(),
      "city:cams=%d;block=%lf;rate=%lf;depth=%lf;"
      "flash=%lf,%lf,%lf;night=%d,%lf,%lf",
      &c.cameras, &c.block_m, &c.rate_per_s, &c.camera_depth_m, &c.flash_at_s,
      &c.flash_duration_s, &c.flash_multiplier, &night, &c.night_period_s,
      &c.night_miss_boost);
  if (n != 10) return std::nullopt;
  if (c.cameras < 1 || c.cameras > 1000 || c.block_m <= 0.0 ||
      c.camera_depth_m <= 0.0 || c.rate_per_s < 0.0)
    return std::nullopt;
  c.day_night = night != 0;
  return c;
}

Scenario make_scenario(const std::string& name, std::uint64_t seed) {
  if (name == "S1") return make_s1(seed);
  if (name == "S2") return make_s2(seed);
  if (name == "S3") return make_s3(seed);
  if (name.rfind("city", 0) == 0) {
    if (const auto city = parse_city_name(name)) return make_city(*city, seed);
  }
  throw std::invalid_argument("unknown scenario: " + name);
}

}  // namespace mvs::sim

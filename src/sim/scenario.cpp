#include "sim/scenario.hpp"

#include <cassert>
#include <stdexcept>

namespace mvs::sim {

namespace {

CameraModel make_camera(Vec3 pos, double yaw_deg, double pitch_deg,
                        double focal = 900.0, double max_depth = 120.0) {
  CameraModel::Config cfg;
  cfg.position = pos;
  cfg.yaw_deg = yaw_deg;
  cfg.pitch_deg = pitch_deg;
  cfg.focal_px = focal;
  cfg.max_depth_m = max_depth;
  return CameraModel(cfg);
}

}  // namespace

Scenario make_s1(std::uint64_t seed) {
  // Signalized intersection at the origin; approaches along +/-x and +/-y.
  // Phase group 0 = east-west green, group 1 = north-south green.
  std::vector<Route> routes;
  auto add_road = [&](geom::Vec2 from, geom::Vec2 to, int phase) {
    Route r({from, to}, 11.0);
    r.stop_line_s = 68.0;  // 12 m before the 80 m mark (the crossing)
    r.phase_group = phase;
    routes.push_back(std::move(r));
  };
  add_road({-80.0, -2.0}, {80.0, -2.0}, 0);   // eastbound
  add_road({80.0, 2.0}, {-80.0, 2.0}, 0);     // westbound
  add_road({2.0, -80.0}, {2.0, 80.0}, 1);     // northbound
  add_road({-2.0, 80.0}, {-2.0, -80.0}, 1);   // southbound

  std::vector<TrafficStream> streams;
  for (int r = 0; r < 4; ++r) streams.push_back({r, 0.22, {0.8, 0.92, 0.97, 1.0}});

  LightSchedule lights;
  lights.green_s = 12.0;
  lights.all_red_s = 2.0;

  Scenario s;
  s.name = "S1";
  s.world = std::make_unique<World>(std::move(routes), std::move(streams),
                                    lights, seed);
  // Five cameras: four corner poles facing the intersection diagonally and
  // one overview pole. View angles differ by 90/180 degrees as in Fig. 1.
  // Poles are set back from the roads so projected boxes stay in the
  // 64-256 px range typical of pole-mounted traffic cameras.
  s.cameras.push_back({"c1", make_camera({22, 22, 9}, 225, -16, 750.0, 70.0), gpu::jetson_xavier()});
  s.cameras.push_back({"c2", make_camera({-22, 22, 9}, -45, -16, 750.0, 70.0), gpu::jetson_xavier()});
  s.cameras.push_back({"c3", make_camera({-22, -22, 9}, 45, -16, 750.0, 70.0), gpu::jetson_tx2()});
  s.cameras.push_back({"c4", make_camera({22, -22, 9}, 135, -16, 750.0, 70.0), gpu::jetson_tx2()});
  s.cameras.push_back({"c5", make_camera({-30, -30, 12}, 45, -18, 650.0, 65.0), gpu::jetson_nano()});
  return s;
}

Scenario make_s2(std::uint64_t seed) {
  // Straight residential road with sparse two-way traffic.
  std::vector<Route> routes;
  routes.emplace_back(std::vector<geom::Vec2>{{-90.0, -2.0}, {90.0, -2.0}}, 9.0);
  routes.emplace_back(std::vector<geom::Vec2>{{90.0, 2.0}, {-90.0, 2.0}}, 9.0);
  // Occasional pedestrians on a sidewalk path.
  routes.emplace_back(std::vector<geom::Vec2>{{-60.0, 6.0}, {60.0, 6.0}}, 1.4);

  std::vector<TrafficStream> streams = {
      {0, 0.05, {0.85, 0.95, 0.98, 1.0}},
      {1, 0.05, {0.85, 0.95, 0.98, 1.0}},
      {2, 0.02, {0.0, 0.0, 0.0, 1.0}},  // persons only
  };

  Scenario s;
  s.name = "S2";
  s.world = std::make_unique<World>(std::move(routes), std::move(streams),
                                    LightSchedule{}, seed);
  // Two roadside poles with strongly overlapping views of the mid segment,
  // set back enough that vehicles stay small (the Nano rarely needs the
  // expensive large input sizes).
  s.cameras.push_back({"c1", make_camera({-15, -22, 9}, 60, -16, 520.0), gpu::jetson_xavier()});
  s.cameras.push_back({"c2", make_camera({15, -22, 9}, 120, -16, 520.0), gpu::jetson_nano()});
  return s;
}

Scenario make_s3(std::uint64_t seed) {
  // Busy fork road: a trunk from the west splits into NE and SE branches;
  // a third roadside path crosses near the SE branch.
  std::vector<Route> routes;
  routes.emplace_back(
      std::vector<geom::Vec2>{{-80.0, -1.5}, {0.0, -1.5}, {55.0, 35.0}}, 10.0);
  routes.emplace_back(
      std::vector<geom::Vec2>{{-80.0, 1.5}, {0.0, 1.5}, {55.0, -35.0}}, 10.0);
  routes.emplace_back(std::vector<geom::Vec2>{{30.0, -55.0}, {30.0, 55.0}}, 8.0);

  std::vector<TrafficStream> streams = {
      {0, 0.75, {0.75, 0.9, 0.97, 1.0}},
      {1, 0.75, {0.75, 0.9, 0.97, 1.0}},
      {2, 0.4, {0.8, 0.95, 0.98, 1.0}},
  };

  Scenario s;
  s.name = "S3";
  s.world = std::make_unique<World>(std::move(routes), std::move(streams),
                                    LightSchedule{}, seed);
  // Two fork monitors with partially overlapping views + one roadside camera
  // whose overlap with the fork pair is small (the paper notes S3 has the
  // smallest cross-camera overlap).
  s.cameras.push_back({"c1", make_camera({28, 33, 9}, -155, -16, 700.0, 62.0), gpu::jetson_xavier()});
  s.cameras.push_back({"c2", make_camera({28, -33, 9}, 155, -16, 700.0, 62.0), gpu::jetson_tx2()});
  s.cameras.push_back({"c3", make_camera({55, 0, 9}, 180, -16, 650.0, 75.0), gpu::jetson_nano()});
  return s;
}

Scenario make_scenario(const std::string& name, std::uint64_t seed) {
  if (name == "S1") return make_s1(seed);
  if (name == "S2") return make_s2(seed);
  if (name == "S3") return make_s3(seed);
  throw std::invalid_argument("unknown scenario: " + name);
}

}  // namespace mvs::sim

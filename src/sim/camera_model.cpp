#include "sim/camera_model.hpp"

#include <algorithm>
#include <cmath>

namespace mvs::sim {

namespace {
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}

CameraModel::CameraModel(Config cfg) : cfg_(cfg) {
  const double yaw = cfg_.yaw_deg * kDegToRad;
  const double pitch = cfg_.pitch_deg * kDegToRad;
  forward_ = {std::cos(yaw) * std::cos(pitch), std::sin(yaw) * std::cos(pitch),
              std::sin(pitch)};
  right_ = {std::sin(yaw), -std::cos(yaw), 0.0};
  // up = right x forward (right-handed, z-up world).
  up_ = {right_.y * forward_.z - right_.z * forward_.y,
         right_.z * forward_.x - right_.x * forward_.z,
         right_.x * forward_.y - right_.y * forward_.x};
}

double CameraModel::depth_of(const Vec3& world) const {
  return (world - cfg_.position).dot(forward_);
}

std::optional<geom::Vec2> CameraModel::project(const Vec3& world) const {
  const Vec3 rel = world - cfg_.position;
  const double depth = rel.dot(forward_);
  if (depth < cfg_.min_depth_m || depth > cfg_.max_depth_m)
    return std::nullopt;
  const double px = cfg_.width / 2.0 + cfg_.focal_px * rel.dot(right_) / depth;
  const double py = cfg_.height / 2.0 - cfg_.focal_px * rel.dot(up_) / depth;
  return geom::Vec2{px, py};
}

std::optional<detect::GroundTruthObject> CameraModel::observe(
    const WorldObject& obj) const {
  // 3-D box corners from footprint center, heading and dims.
  const geom::Vec2 fwd = obj.heading;
  const geom::Vec2 side{-fwd.y, fwd.x};
  const double hl = obj.dims.length / 2.0;
  const double hw = obj.dims.width / 2.0;

  double min_x = 1e18, min_y = 1e18, max_x = -1e18, max_y = -1e18;
  int projected = 0;
  for (int dz = 0; dz <= 1; ++dz) {
    for (int i = 0; i < 4; ++i) {
      const double sl = (i & 1) ? hl : -hl;
      const double sw = (i & 2) ? hw : -hw;
      const Vec3 corner{obj.position.x + fwd.x * sl + side.x * sw,
                        obj.position.y + fwd.y * sl + side.y * sw,
                        dz ? obj.dims.height : 0.0};
      const auto px = project(corner);
      if (!px) continue;
      ++projected;
      min_x = std::min(min_x, px->x);
      min_y = std::min(min_y, px->y);
      max_x = std::max(max_x, px->x);
      max_y = std::max(max_y, px->y);
    }
  }
  if (projected < 8) return std::nullopt;  // partially behind the camera

  const geom::BBox raw = geom::BBox::from_corners(min_x, min_y, max_x, max_y);
  const geom::BBox clipped = raw.clamped(static_cast<double>(cfg_.width),
                                         static_cast<double>(cfg_.height));
  if (clipped.area() < cfg_.min_box_area_px) return std::nullopt;
  if (raw.area() > 0.0 && clipped.area() / raw.area() < cfg_.min_frame_coverage)
    return std::nullopt;

  detect::GroundTruthObject gt;
  gt.id = obj.id;
  gt.box = clipped;
  gt.cls = obj.cls;
  gt.distance_m =
      (Vec3{obj.position.x, obj.position.y, 0.0} - cfg_.position).norm();
  return gt;
}

}  // namespace mvs::sim

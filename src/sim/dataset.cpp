#include "sim/dataset.hpp"

#include <cassert>

namespace mvs::sim {

ScenarioPlayer::ScenarioPlayer(Scenario scenario, double warmup_s)
    : scenario_(std::move(scenario)) {
  assert(scenario_.world);
  // A scenario that declares its own warmup (city grids: long corridors
  // need time to fill) overrides the caller's default.
  if (scenario_.warmup_s >= 0.0) warmup_s = scenario_.warmup_s;
  const double dt = 1.0 / scenario_.fps;
  for (double t = 0.0; t < warmup_s; t += dt) scenario_.world->step(dt);
}

MultiFrame ScenarioPlayer::next() {
  MultiFrame frame;
  next_into(frame);
  return frame;
}

void ScenarioPlayer::next_into(MultiFrame& frame) {
  const double dt = 1.0 / scenario_.fps;
  scenario_.world->step(dt);

  frame.frame_index = frame_index_++;
  frame.time_s = scenario_.world->time();
  // Copy-assignments below reuse the destination vectors' capacity, so a
  // frame object recycled across calls stops allocating once warm.
  frame.world_objects = scenario_.world->objects();
  frame.per_camera.resize(scenario_.cameras.size());
  for (std::size_t c = 0; c < scenario_.cameras.size(); ++c) {
    frame.per_camera[c].clear();
    for (const WorldObject& obj : frame.world_objects) {
      if (auto gt = scenario_.cameras[c].model.observe(obj))
        frame.per_camera[c].push_back(*gt);
    }
    apply_occlusion_inplace(frame.per_camera[c], scenario_.occlusion);
  }
}

std::vector<MultiFrame> ScenarioPlayer::take(int n) {
  std::vector<MultiFrame> frames;
  frames.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) frames.push_back(next());
  return frames;
}

}  // namespace mvs::sim

#include "sim/world.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mvs::sim {

double Vec3::norm() const { return std::sqrt(x * x + y * y + z * z); }

ObjectDims dims_for(detect::ObjectClass cls) {
  switch (cls) {
    case detect::ObjectClass::kCar: return {4.5, 1.8, 1.5};
    case detect::ObjectClass::kTruck: return {8.0, 2.5, 3.0};
    case detect::ObjectClass::kBus: return {12.0, 2.5, 3.2};
    case detect::ObjectClass::kPerson: return {0.5, 0.5, 1.7};
  }
  return {4.5, 1.8, 1.5};
}

Route::Route(std::vector<geom::Vec2> waypoints, double speed_limit_mps)
    : pts_(std::move(waypoints)), speed_limit_(speed_limit_mps) {
  assert(pts_.size() >= 2);
  cum_.resize(pts_.size(), 0.0);
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    cum_[i] = cum_[i - 1] + (pts_[i] - pts_[i - 1]).norm();
  }
  total_length_ = cum_.back();
}

geom::Vec2 Route::position_at(double s) const {
  s = std::clamp(s, 0.0, total_length_);
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), s);
  const std::size_t hi =
      std::min(static_cast<std::size_t>(it - cum_.begin()), pts_.size() - 1);
  const std::size_t lo = hi == 0 ? 0 : hi - 1;
  const double seg = cum_[hi] - cum_[lo];
  const double frac = seg > 1e-12 ? (s - cum_[lo]) / seg : 0.0;
  return pts_[lo] + (pts_[hi] - pts_[lo]) * frac;
}

geom::Vec2 Route::heading_at(double s) const {
  s = std::clamp(s, 0.0, total_length_);
  auto it = std::upper_bound(cum_.begin(), cum_.end(), s);
  std::size_t hi =
      std::min(static_cast<std::size_t>(it - cum_.begin()), pts_.size() - 1);
  if (hi == 0) hi = 1;
  const geom::Vec2 d = pts_[hi] - pts_[hi - 1];
  const double n = d.norm();
  return n > 1e-12 ? geom::Vec2{d.x / n, d.y / n} : geom::Vec2{1.0, 0.0};
}

bool LightSchedule::is_green(int group, double t) const {
  if (group < 0) return true;
  const double cycle = static_cast<double>(phase_count) * (green_s + all_red_s);
  const double phase_time = std::fmod(t, cycle);
  const int active = static_cast<int>(phase_time / (green_s + all_red_s));
  const double within = phase_time - active * (green_s + all_red_s);
  return active == group % phase_count && within < green_s;
}

World::World(std::vector<Route> routes, std::vector<TrafficStream> streams,
             LightSchedule lights, std::uint64_t seed)
    : routes_(std::move(routes)),
      streams_(std::move(streams)),
      lights_(lights),
      rng_(seed) {}

void World::step(double dt) {
  assert(dt > 0.0);
  spawn_arrivals(dt);
  move_objects(dt);
  time_ += dt;
}

double World::rate_multiplier(double t) const {
  double k = 1.0;
  for (const RateBurst& b : bursts_)
    if (t >= b.from_s && t < b.to_s) k *= b.multiplier;
  return k;
}

void World::spawn_arrivals(double dt) {
  const double burst = rate_multiplier(time_);
  for (const TrafficStream& stream : streams_) {
    const int arrivals = rng_.poisson(stream.rate_per_s * burst * dt);
    for (int a = 0; a < arrivals; ++a) {
      const Route& route = routes_[static_cast<std::size_t>(stream.route_index)];
      // Keep a spawn gap: skip the arrival if another object occupies the
      // route entrance (it re-arrives via the Poisson stream later).
      bool blocked = false;
      for (const WorldObject& other : objects_) {
        if (other.route_index == stream.route_index && other.s < 10.0) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;

      WorldObject obj;
      obj.id = next_id_++;
      obj.route_index = stream.route_index;
      obj.s = 0.0;
      const double u = rng_.uniform();
      int cls = 0;
      while (cls < 3 && u > stream.class_cdf[static_cast<std::size_t>(cls)])
        ++cls;
      obj.cls = static_cast<detect::ObjectClass>(cls);
      obj.dims = dims_for(obj.cls);
      const double limit = obj.cls == detect::ObjectClass::kPerson
                               ? 1.4
                               : route.speed_limit();
      obj.speed = limit * rng_.uniform(0.8, 1.0);
      obj.position = route.position_at(0.0);
      obj.heading = route.heading_at(0.0);
      objects_.push_back(obj);
    }
  }
}

double World::free_distance_ahead(const WorldObject& obj) const {
  const Route& route = routes_[static_cast<std::size_t>(obj.route_index)];
  double free = 1e9;

  // Leader on the same route.
  for (const WorldObject& other : objects_) {
    if (other.id == obj.id || other.route_index != obj.route_index) continue;
    if (other.s > obj.s) {
      const double gap =
          other.s - obj.s - (other.dims.length + obj.dims.length) / 2.0;
      free = std::min(free, gap);
    }
  }

  // Red light stop line ahead.
  if (route.stop_line_s >= 0.0 && obj.s < route.stop_line_s &&
      !lights_.is_green(route.phase_group, time_)) {
    free = std::min(free, route.stop_line_s - obj.s);
  }
  return free;
}

void World::move_objects(double dt) {
  // Sort by route position so leaders are processed consistently.
  std::vector<WorldObject>& next = survivors_scratch_;
  next.clear();
  next.reserve(objects_.size());

  for (WorldObject& obj : objects_) {
    const Route& route = routes_[static_cast<std::size_t>(obj.route_index)];
    const double limit = obj.cls == detect::ObjectClass::kPerson
                             ? 1.4
                             : route.speed_limit();
    const double free = free_distance_ahead(obj);

    // Simple smooth controller: target speed scales with free distance,
    // full speed when > 15 m of free road, stop when < 2 m.
    double target = limit;
    if (free < 15.0) target = limit * std::max(0.0, (free - 2.0) / 13.0);
    const double accel = 3.0;  // m/s^2 accel/brake capability
    if (obj.speed < target)
      obj.speed = std::min(target, obj.speed + accel * dt);
    else
      obj.speed = std::max(target, obj.speed - 2.0 * accel * dt);

    obj.s += obj.speed * dt;
    if (obj.s >= route.length()) continue;  // departed the scene

    obj.position = route.position_at(obj.s);
    obj.heading = route.heading_at(obj.s);
    next.push_back(obj);
  }
  // Swap, don't move: the retired buffer becomes next step's scratch.
  objects_.swap(next);
}

}  // namespace mvs::sim

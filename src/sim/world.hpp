#pragma once
// 3-D ground-plane traffic world (AIC21 dataset stand-in, see DESIGN.md).
//
// Vehicles and pedestrians move along polyline routes with simple
// car-following and traffic-light behaviour; Poisson arrival streams feed
// the routes. The world produces, per simulation step, the set of physical
// objects with their 3-D pose — which the pinhole CameraModel then projects
// into per-camera 2-D ground truth. The three scenario factories
// (scenario.hpp) reproduce the workload character of the paper's S1/S2/S3.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "detect/detection.hpp"
#include "geometry/bbox.hpp"
#include "util/rng.hpp"

namespace mvs::sim {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double k) const { return {x * k, y * k, z * k}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const;
};

/// Physical footprint of an object class, in meters.
struct ObjectDims {
  double length = 4.5;
  double width = 1.8;
  double height = 1.5;
};

ObjectDims dims_for(detect::ObjectClass cls);

/// A polyline path on the ground plane, parameterized by arc length.
class Route {
 public:
  Route(std::vector<geom::Vec2> waypoints, double speed_limit_mps);

  double length() const { return total_length_; }
  double speed_limit() const { return speed_limit_; }

  /// Position at arc length s (clamped to [0, length]).
  geom::Vec2 position_at(double s) const;
  /// Unit tangent (heading) at arc length s.
  geom::Vec2 heading_at(double s) const;

  /// Optional stop line (traffic light) at this arc length; < 0 = none.
  double stop_line_s = -1.0;
  /// Traffic-light phase group controlling the stop line (index into the
  /// world's phase table); -1 = uncontrolled.
  int phase_group = -1;

 private:
  std::vector<geom::Vec2> pts_;
  std::vector<double> cum_;  ///< cumulative arc length per waypoint
  double total_length_ = 0.0;
  double speed_limit_ = 10.0;
};

/// A moving physical object.
struct WorldObject {
  std::uint64_t id = 0;
  int route_index = -1;
  double s = 0.0;        ///< arc-length position along the route
  double speed = 0.0;    ///< m/s
  detect::ObjectClass cls = detect::ObjectClass::kCar;
  ObjectDims dims;

  geom::Vec2 position;   ///< derived each step
  geom::Vec2 heading;    ///< unit tangent, derived each step
};

/// Poisson arrival stream that spawns objects onto a route.
struct TrafficStream {
  int route_index = -1;
  double rate_per_s = 0.1;  ///< mean arrivals per second
  /// Class mix sampled per arrival (cumulative probabilities over
  /// {car, truck, bus, person} in that order).
  std::array<double, 4> class_cdf = {0.80, 0.92, 0.97, 1.0};
};

/// A temporary arrival-rate surge (flash crowd): every stream's Poisson rate
/// is multiplied by `multiplier` while world time is in [from_s, to_s).
struct RateBurst {
  double from_s = 0.0;
  double to_s = 0.0;
  double multiplier = 1.0;
};

/// Two-phase traffic-light controller (e.g. NS green vs EW green).
struct LightSchedule {
  double green_s = 12.0;   ///< green duration per phase
  double all_red_s = 2.0;  ///< clearance between phases
  int phase_count = 2;

  /// Is `group` green at absolute time t?
  bool is_green(int group, double t) const;
};

class World {
 public:
  World(std::vector<Route> routes, std::vector<TrafficStream> streams,
        LightSchedule lights, std::uint64_t seed);

  /// Advance the simulation by dt seconds: traffic lights, arrivals,
  /// car-following motion, departures.
  void step(double dt);

  double time() const { return time_; }
  const std::vector<WorldObject>& objects() const { return objects_; }
  const std::vector<Route>& routes() const { return routes_; }

  /// Total objects ever spawned (ids are dense from 1).
  std::uint64_t spawned_count() const { return next_id_ - 1; }

  /// Register a flash-crowd window (may be called multiple times;
  /// overlapping bursts multiply). Applies from the next step().
  void add_rate_burst(const RateBurst& burst) { bursts_.push_back(burst); }

  /// Combined rate multiplier at world time t (1.0 outside all bursts).
  double rate_multiplier(double t) const;

 private:
  void spawn_arrivals(double dt);
  void move_objects(double dt);
  /// Distance to the nearest blocking constraint ahead of `obj` (leader gap
  /// or red stop line), or a large number when the road ahead is free.
  double free_distance_ahead(const WorldObject& obj) const;

  std::vector<Route> routes_;
  std::vector<TrafficStream> streams_;
  std::vector<RateBurst> bursts_;
  LightSchedule lights_;
  util::Rng rng_;
  std::vector<WorldObject> objects_;
  /// move_objects survivor buffer, swapped with objects_ each step so a
  /// warm step allocates nothing (DESIGN.md §11).
  std::vector<WorldObject> survivors_scratch_;
  double time_ = 0.0;
  std::uint64_t next_id_ = 1;
};

}  // namespace mvs::sim

#pragma once
// Frame playback: steps the scenario world at the camera frame rate and
// produces synchronized per-camera ground truth — the interface the rest of
// the system consumes in place of the AIC21 video + label files.

#include <vector>

#include "detect/detection.hpp"
#include "sim/scenario.hpp"

namespace mvs::sim {

/// Ground truth for all cameras at one synchronized timestamp.
struct MultiFrame {
  long frame_index = 0;
  double time_s = 0.0;
  /// per_camera[i] = objects visible from scenario camera i.
  std::vector<std::vector<detect::GroundTruthObject>> per_camera;
  /// World objects present anywhere in the scene (for recall accounting:
  /// an object counts toward ground truth only if at least one camera can
  /// see it, matching the paper's object-recall definition).
  std::vector<WorldObject> world_objects;
};

class ScenarioPlayer {
 public:
  /// Takes ownership of the scenario. `warmup_s` seconds are simulated
  /// before the first frame so traffic is already flowing.
  explicit ScenarioPlayer(Scenario scenario, double warmup_s = 60.0);

  /// Advance one frame interval and capture all cameras.
  MultiFrame next();

  /// next() into a caller-owned frame whose vectors are reused across calls
  /// (cleared, capacity kept). Bit-identical to next(); a warmed-up player
  /// produces frames without heap allocation (DESIGN.md §11).
  void next_into(MultiFrame& frame);

  /// Capture `n` consecutive frames.
  std::vector<MultiFrame> take(int n);

  const Scenario& scenario() const { return scenario_; }
  std::size_t camera_count() const { return scenario_.cameras.size(); }

 private:
  Scenario scenario_;
  long frame_index_ = 0;
};

}  // namespace mvs::sim

#pragma once
// Deployment scenarios mirroring the paper's three AIC21 configurations
// (Sec. IV-A2, Table I):
//   S1 — 5 cameras around a signalized traffic intersection (regular,
//        light-induced traffic patterns); 2x Xavier, 2x TX2, 1x Nano.
//   S2 — 2 cameras at a residential roadside with sparse vehicles;
//        1x Xavier, 1x Nano.
//   S3 — 3 cameras: 2 on a busy fork road, 1 facing a roadside;
//        1x Xavier, 1x TX2, 1x Nano.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gpu/device_profile.hpp"
#include "sim/camera_model.hpp"
#include "sim/occlusion.hpp"
#include "sim/world.hpp"

namespace mvs::sim {

struct ScenarioCamera {
  std::string name;
  CameraModel model;
  gpu::DeviceProfile device;
};

/// Day/night detection-quality shift: a square wave on world time with
/// `period_s` of day followed by `period_s` of night. During the night
/// phase the simulated detector's base miss rate is raised by
/// `night_miss_boost` and its mean score lowered by `night_score_drop`
/// (the pipeline swaps detector configs at phase flips). Off by default —
/// the schedule never perturbs existing scenarios.
struct QualitySchedule {
  bool enabled = false;
  double period_s = 120.0;
  double night_miss_boost = 0.25;
  double night_score_drop = 0.15;

  /// Is world time t in the night half of the cycle?
  bool is_night(double t) const;
};

struct Scenario {
  std::string name;
  double fps = 10.0;
  /// Logical frame size is CameraModel::width/height (1280 x 704, as the
  /// paper uses); pixel rendering and optical flow run at logical/render_scale
  /// resolution, as real deployments compute flow on downscaled frames.
  double render_scale = 4.0;
  std::vector<ScenarioCamera> cameras;
  std::unique_ptr<World> world;
  /// Dynamic inter-object occlusion (paper Sec. V). Off by default so the
  /// headline reproductions match the paper's setup; the occlusion
  /// extension bench turns it on.
  OcclusionConfig occlusion{0.6, false};
  /// Day/night detection-quality schedule (city scenarios; off elsewhere).
  QualitySchedule quality;
  /// Scenario-required warmup override (seconds of world simulation before
  /// the first frame). Negative = no opinion: the consumer's own default
  /// applies (ScenarioPlayer 60 s, the pipeline 45 s). City grids set this —
  /// their corridors are hundreds of meters long and need the extra time to
  /// fill with through traffic.
  double warmup_s = -1.0;
};

Scenario make_s1(std::uint64_t seed = 1);
Scenario make_s2(std::uint64_t seed = 2);
Scenario make_s3(std::uint64_t seed = 3);

/// City-scale camera grid (ISSUE: 50-100 cameras with sparse pairwise
/// overlap). The scene is a boulevard grid: parallel east-west corridors
/// with two-way through traffic, one camera pole per block all facing east,
/// so consecutive cameras' road coverage barely touches (coverage ~half the
/// block, then a blind gap until the next pole). Optional flash-crowd
/// arrival bursts and a day/night detection-quality schedule ride along.
struct CityConfig {
  int cameras = 50;             ///< total cameras (row-major over the grid)
  double block_m = 80.0;        ///< pole spacing along a corridor
  double rate_per_s = 0.03;     ///< Poisson arrivals per corridor direction
  double camera_depth_m = 85.0; ///< per-camera max view depth
  /// Flash crowd: all arrival rates multiply by `flash_multiplier` during
  /// [flash_at_s, flash_at_s + flash_duration_s) of EVALUATION time
  /// (warmup excluded). flash_at_s < 0 disables.
  double flash_at_s = -1.0;
  double flash_duration_s = 30.0;
  double flash_multiplier = 4.0;
  /// Day/night quality shift (see QualitySchedule).
  bool day_night = false;
  double night_period_s = 120.0;
  double night_miss_boost = 0.25;
};

Scenario make_city(const CityConfig& config, std::uint64_t seed);

/// Canonical scenario-name encoding of a city config ("city:cams=50;...").
/// Round-trips exactly through parse_city_name, so the whole string-named
/// scenario plumbing (pipeline, fleet sessions, CLI) works unchanged for
/// city grids.
std::string city_scenario_name(const CityConfig& config);

/// Decode a city scenario name; nullopt when `name` is not a city name or
/// is malformed. The bare name "city" yields the default CityConfig.
std::optional<CityConfig> parse_city_name(const std::string& name);

/// Scenario factory by name ("S1" | "S2" | "S3" | "city[:...]").
Scenario make_scenario(const std::string& name, std::uint64_t seed);

}  // namespace mvs::sim

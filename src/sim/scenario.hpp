#pragma once
// Deployment scenarios mirroring the paper's three AIC21 configurations
// (Sec. IV-A2, Table I):
//   S1 — 5 cameras around a signalized traffic intersection (regular,
//        light-induced traffic patterns); 2x Xavier, 2x TX2, 1x Nano.
//   S2 — 2 cameras at a residential roadside with sparse vehicles;
//        1x Xavier, 1x Nano.
//   S3 — 3 cameras: 2 on a busy fork road, 1 facing a roadside;
//        1x Xavier, 1x TX2, 1x Nano.

#include <memory>
#include <string>
#include <vector>

#include "gpu/device_profile.hpp"
#include "sim/camera_model.hpp"
#include "sim/occlusion.hpp"
#include "sim/world.hpp"

namespace mvs::sim {

struct ScenarioCamera {
  std::string name;
  CameraModel model;
  gpu::DeviceProfile device;
};

struct Scenario {
  std::string name;
  double fps = 10.0;
  /// Logical frame size is CameraModel::width/height (1280 x 704, as the
  /// paper uses); pixel rendering and optical flow run at logical/render_scale
  /// resolution, as real deployments compute flow on downscaled frames.
  double render_scale = 4.0;
  std::vector<ScenarioCamera> cameras;
  std::unique_ptr<World> world;
  /// Dynamic inter-object occlusion (paper Sec. V). Off by default so the
  /// headline reproductions match the paper's setup; the occlusion
  /// extension bench turns it on.
  OcclusionConfig occlusion{0.6, false};
};

Scenario make_s1(std::uint64_t seed = 1);
Scenario make_s2(std::uint64_t seed = 2);
Scenario make_s3(std::uint64_t seed = 3);

/// Scenario factory by name ("S1" | "S2" | "S3").
Scenario make_scenario(const std::string& name, std::uint64_t seed);

}  // namespace mvs::sim

#include "assoc/association.hpp"

#include <cassert>
#include <numeric>

#include "matching/hungarian.hpp"

namespace mvs::assoc {

ml::Feature box_feature(const geom::BBox& box, double frame_w,
                        double frame_h) {
  ml::Feature out;
  box_feature_into(box, frame_w, frame_h, out);
  return out;
}

void box_feature_into(const geom::BBox& box, double frame_w, double frame_h,
                      ml::Feature& out) {
  const geom::Vec2 c = box.center();
  out.resize(4);
  out[0] = c.x / frame_w;
  out[1] = c.y / frame_h;
  out[2] = box.w / frame_w;
  out[3] = box.h / frame_h;
}

geom::BBox feature_box(const ml::Feature& f, double frame_w, double frame_h) {
  assert(f.size() == 4);
  return geom::BBox::from_center({f[0] * frame_w, f[1] * frame_h},
                                 f[2] * frame_w, f[3] * frame_h);
}

PairDataset build_pair_dataset(const std::vector<sim::MultiFrame>& frames,
                               std::size_t src_cam, std::size_t dst_cam,
                               double src_w, double src_h, double dst_w,
                               double dst_h) {
  PairDataset ds;
  for (const sim::MultiFrame& frame : frames) {
    const auto& src = frame.per_camera[src_cam];
    const auto& dst = frame.per_camera[dst_cam];
    for (const detect::GroundTruthObject& obj : src) {
      ds.x.push_back(box_feature(obj.box, src_w, src_h));
      const detect::GroundTruthObject* match = nullptr;
      for (const detect::GroundTruthObject& cand : dst) {
        if (cand.id == obj.id) {
          match = &cand;
          break;
        }
      }
      ds.present.push_back(match ? 1 : 0);
      if (match) {
        ds.x_pos.push_back(ds.x.back());
        ds.y_pos.push_back(box_feature(match->box, dst_w, dst_h));
      }
    }
  }
  return ds;
}

CrossCameraAssociator::CrossCameraAssociator(
    std::vector<std::pair<double, double>> frame_sizes)
    : CrossCameraAssociator(std::move(frame_sizes), Config{}) {}

CrossCameraAssociator::CrossCameraAssociator(
    std::vector<std::pair<double, double>> frame_sizes, Config cfg)
    : cfg_(cfg), sizes_(std::move(frame_sizes)) {
  assert(!sizes_.empty());
  pairs_.resize(sizes_.size() * sizes_.size());
}

void CrossCameraAssociator::train(const std::vector<sim::MultiFrame>& frames) {
  const std::size_t m = sizes_.size();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const PairDataset ds =
          build_pair_dataset(frames, i, j, sizes_[i].first, sizes_[i].second,
                             sizes_[j].first, sizes_[j].second);
      PairModels& models = pairs_[pair_index(i, j)];
      if (ds.x.empty()) continue;
      models.cls = std::make_unique<ml::KnnClassifier>(cfg_.knn_k);
      models.cls->fit(ds.x, ds.present);
      if (ds.x_pos.size() >= 3) {
        models.reg = std::make_unique<ml::KnnRegressor>(cfg_.knn_k);
        models.reg->fit(ds.x_pos, ds.y_pos);
        models.has_positives = true;
      }
    }
  }
  trained_ = true;
}

bool CrossCameraAssociator::predict_present(std::size_t src, std::size_t dst,
                                            const geom::BBox& box) const {
  const PairModels& models = pairs_[pair_index(src, dst)];
  if (!models.cls || !models.has_positives) return false;
  // Per-thread scratch: called per ghost per frame from pool workers
  // (takeover pass); must stay allocation-free once warm (DESIGN.md §11).
  thread_local ml::Feature feat;
  box_feature_into(box, sizes_[src].first, sizes_[src].second, feat);
  return models.cls->predict(feat);
}

geom::BBox CrossCameraAssociator::predict_box(std::size_t src, std::size_t dst,
                                              const geom::BBox& box) const {
  const PairModels& models = pairs_[pair_index(src, dst)];
  assert(models.reg);
  const ml::Feature pred = models.reg->predict(
      box_feature(box, sizes_[src].first, sizes_[src].second));
  return feature_box(pred, sizes_[dst].first, sizes_[dst].second);
}

std::vector<AssociatedObject> CrossCameraAssociator::associate(
    const std::vector<std::vector<detect::Detection>>& detections) const {
  const std::size_t m = sizes_.size();
  assert(detections.size() == m);

  // Union-find over all (camera, detection) nodes.
  std::vector<std::size_t> offset(m + 1, 0);
  for (std::size_t i = 0; i < m; ++i)
    offset[i + 1] = offset[i] + detections[i].size();
  std::vector<std::size_t> parent(offset[m]);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[b] = a;
  };

  // Pairwise matching, camera i against every camera behind it in the list.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const PairModels& models = pairs_[pair_index(i, j)];
      if (!models.cls || !models.has_positives || !trained_) continue;
      const auto& src = detections[i];
      const auto& dst = detections[j];
      if (src.empty() || dst.empty()) continue;

      std::vector<double> cost(src.size() * dst.size(),
                               matching::kForbiddenCost);
      for (std::size_t a = 0; a < src.size(); ++a) {
        if (!predict_present(i, j, src[a].box)) continue;
        const geom::BBox predicted = predict_box(i, j, src[a].box);
        for (std::size_t b = 0; b < dst.size(); ++b) {
          const double v = geom::iou(predicted, dst[b].box);
          if (v >= cfg_.min_match_iou) cost[a * dst.size() + b] = 1.0 - v;
        }
      }
      const matching::AssignmentResult res =
          matching::solve_assignment(cost, src.size(), dst.size());
      for (std::size_t a = 0; a < src.size(); ++a) {
        if (res.row_to_col[a] >= 0)
          unite(offset[i] + a,
                offset[j] + static_cast<std::size_t>(res.row_to_col[a]));
      }
    }
  }

  // Collect components. A component may legitimately contain at most one
  // detection per camera; if matching merged two (rare model error), keep
  // the first and leave the other as its own object.
  std::vector<AssociatedObject> objects;
  std::vector<int> component_of(offset[m], -1);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t d = 0; d < detections[i].size(); ++d) {
      const std::size_t node = offset[i] + d;
      const std::size_t root = find(node);
      int comp = component_of[root];
      if (comp < 0 ||
          objects[static_cast<std::size_t>(comp)].det_index[i] >= 0) {
        comp = static_cast<int>(objects.size());
        if (component_of[root] < 0) component_of[root] = comp;
        objects.push_back(AssociatedObject{
            std::vector<int>(m, -1), std::vector<geom::BBox>(m)});
      }
      AssociatedObject& obj = objects[static_cast<std::size_t>(comp)];
      obj.det_index[i] = static_cast<int>(d);
      obj.boxes[i] = detections[i][d].box;
    }
  }
  return objects;
}

}  // namespace mvs::assoc

#pragma once
// Cross-camera object association (paper Sec. II-C).
//
// For every ordered camera pair (i, i') a KNN *classification* model decides
// whether an object detected on camera i also appears on camera i', and a
// KNN *regression* model predicts where. Predicted locations are matched to
// the actual detections on i' with the Hungarian algorithm on IoU
// proximity; matches above a threshold merge into one physical object.
// Both models are trained offline from labelled synchronized frames — in
// this reproduction, ground truth from the world simulator plays the role
// of the human association labels.

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/detection.hpp"
#include "geometry/bbox.hpp"
#include "ml/knn.hpp"
#include "sim/dataset.hpp"

namespace mvs::assoc {

/// Training/evaluation dataset for one ordered camera pair.
struct PairDataset {
  std::vector<ml::Feature> x;       ///< source box features (all samples)
  std::vector<int> present;         ///< 1 iff the object appears on dst
  std::vector<ml::Feature> x_pos;   ///< subset of x where present == 1
  std::vector<ml::Feature> y_pos;   ///< dst box features for that subset
};

/// Normalized box feature [cx/W, cy/H, w/W, h/H].
ml::Feature box_feature(const geom::BBox& box, double frame_w, double frame_h);

/// box_feature into a caller-owned feature (resized in place) — the
/// per-frame predict_present path reuses one scratch feature per thread.
void box_feature_into(const geom::BBox& box, double frame_w, double frame_h,
                      ml::Feature& out);

/// Invert box_feature.
geom::BBox feature_box(const ml::Feature& f, double frame_w, double frame_h);

/// Extract the (src -> dst) supervision pairs from synchronized ground-truth
/// frames.
PairDataset build_pair_dataset(const std::vector<sim::MultiFrame>& frames,
                               std::size_t src_cam, std::size_t dst_cam,
                               double src_w, double src_h, double dst_w,
                               double dst_h);

/// One physical object as seen by the camera set.
struct AssociatedObject {
  /// det_index[i] = index into camera i's detection list, or -1 when the
  /// object is not detected there. Cameras with det_index >= 0 form the
  /// observed coverage set.
  std::vector<int> det_index;
  std::vector<geom::BBox> boxes;  ///< valid where det_index[i] >= 0
};

class CrossCameraAssociator {
 public:
  struct Config {
    int knn_k = 5;
    double min_match_iou = 0.15;  ///< proximity threshold for Hungarian match
  };

  /// frame_sizes[i] = {width, height} of camera i.
  explicit CrossCameraAssociator(
      std::vector<std::pair<double, double>> frame_sizes);
  CrossCameraAssociator(std::vector<std::pair<double, double>> frame_sizes,
                        Config cfg);

  /// Train all ordered-pair models from labelled frames.
  void train(const std::vector<sim::MultiFrame>& frames);
  bool trained() const { return trained_; }

  std::size_t camera_count() const { return sizes_.size(); }

  /// Does an object at `box` on camera src (probably) appear on camera dst?
  bool predict_present(std::size_t src, std::size_t dst,
                       const geom::BBox& box) const;

  /// Predicted box of the object on camera dst.
  geom::BBox predict_box(std::size_t src, std::size_t dst,
                         const geom::BBox& box) const;

  /// Associate per-camera detection lists into physical objects
  /// (union-find over pairwise Hungarian matches).
  std::vector<AssociatedObject> associate(
      const std::vector<std::vector<detect::Detection>>& detections) const;

  const Config& config() const { return cfg_; }

 private:
  struct PairModels {
    std::unique_ptr<ml::KnnClassifier> cls;
    std::unique_ptr<ml::KnnRegressor> reg;
    bool has_positives = false;
  };

  std::size_t pair_index(std::size_t src, std::size_t dst) const {
    return src * sizes_.size() + dst;
  }

  Config cfg_{};
  std::vector<std::pair<double, double>> sizes_;
  std::vector<PairModels> pairs_;  ///< dense M x M (diagonal unused)
  bool trained_ = false;
};

}  // namespace mvs::assoc

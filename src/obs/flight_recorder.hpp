#pragma once
// Deadline-miss flight recorder (mvs::obs v2, DESIGN.md §14).
//
// A fixed-size lock-free ring of recent frame attributions plus a smaller
// ring of noteworthy scheduler events. Producers (the paced runtime, the
// fleet rollup loop, shard steps running concurrently) append with a ticket
// counter + per-slot sequence number — every slot field is a relaxed
// atomic bracketed by an odd/even seq, so appends never lock, never
// allocate, and concurrent dump snapshots simply skip slots caught
// mid-write.
//
// On a deadline-miss burst (>= miss_threshold misses inside the last
// miss_window frames), a session eviction, or an explicit request_dump(),
// the recorder freezes a self-contained postmortem JSON document
// ("mvs-postmortem-v1"): the recent frames with their segment
// decompositions, the recent events, the CriticalPath attribution table,
// and a full metrics snapshot. With a postmortem directory configured the
// document is also written to postmortem-<n>.json; the latest document is
// always retrievable in-process (last_dump()) so tests need no filesystem.
// Automatic triggers are rate-limited to one dump per ring generation.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/critical_path.hpp"

namespace mvs::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kFrameCapacity = 512;
  static constexpr std::size_t kEventCapacity = 256;
  static constexpr int kMissWindowMax = 128;

  struct Config {
    /// Postmortem output directory; empty = in-memory documents only.
    std::string dir;
    /// Deadline-miss burst trigger: >= miss_threshold misses within the
    /// last miss_window recorded frames auto-dump. threshold <= 0 disables
    /// automatic burst dumps.
    int miss_window = 32;
    int miss_threshold = 8;
    /// Shard identity stamped into the document (-1 = standalone).
    int shard = -1;
  };

  /// Cold path; not safe concurrently with note_frame/note_event.
  void configure(const Config& config);
  const Config& config() const { return cfg_; }

  /// Append one frame attribution (lock-free, allocation-free) and run the
  /// miss-burst trigger.
  void note_frame(const FrameAttribution& frame);

  /// Append one scheduler event. `type` must be a static string (trace
  /// event names from runtime::to_string); the recorder stores the pointer.
  void note_event(long tick, const char* type, int session, double value);

  /// Build a postmortem document now and (when a directory is configured)
  /// write it to disk. Returns the document.
  std::string request_dump(const std::string& reason);

  long long frames_seen() const {
    return frame_head_.load(std::memory_order_relaxed);
  }
  long long dumps() const { return dumps_.load(std::memory_order_relaxed); }
  /// Most recent postmortem document ("" before the first dump).
  std::string last_dump() const;
  /// Path of the most recent on-disk postmortem ("" when none written).
  std::string last_dump_path() const;

  void reset();

 private:
  struct FrameSlot {
    std::atomic<std::uint32_t> seq{0};  ///< odd while a writer is inside
    std::atomic<std::uint64_t> id{0};
    std::atomic<double> total_ms{0.0};
    std::array<std::atomic<double>, kSegmentCount> segment_ms{};
    std::atomic<bool> miss{false};
  };
  struct EventSlot {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<long> tick{0};
    std::atomic<const char*> type{nullptr};
    std::atomic<int> session{-1};
    std::atomic<double> value{0.0};
  };

  std::string build_document(const std::string& reason) const;
  void store_dump(const std::string& reason);

  Config cfg_;
  std::array<FrameSlot, kFrameCapacity> frames_;
  std::array<EventSlot, kEventCapacity> events_;
  std::atomic<long long> frame_head_{0};
  std::atomic<long long> event_head_{0};

  // Miss-burst window: ring of miss flags + running count.
  std::array<std::atomic<std::uint8_t>, kMissWindowMax> miss_ring_{};
  std::atomic<long long> miss_head_{0};
  std::atomic<int> miss_count_{0};
  /// Ticket of the last automatic dump (rate limit: one per ring
  /// generation); -kFrameCapacity so the first burst always fires.
  std::atomic<long long> last_auto_dump_{
      -static_cast<long long>(kFrameCapacity)};

  std::atomic<long long> dumps_{0};
  mutable std::mutex dump_mu_;  ///< guards the dump strings (cold path)
  std::string last_dump_;
  std::string last_dump_path_;
};

}  // namespace mvs::obs

#include "obs/obs.hpp"

#include "util/json.hpp"

namespace mvs::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_attribution{false};
}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_attribution_enabled(bool on) {
  detail::g_attribution.store(on, std::memory_order_relaxed);
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

SpanTracer& tracer() {
  static SpanTracer t;
  return t;
}

CriticalPath& critical_path() {
  static CriticalPath cp;
  return cp;
}

FlightRecorder& recorder() {
  static FlightRecorder r;
  return r;
}

std::string export_json() {
  auto doc = util::Json::parse(metrics().to_json());
  if (!doc || !doc->is_object()) return metrics().to_json();
  if (attribution_enabled())
    doc->as_object().emplace("attribution", critical_path().attribution_json());
  return doc->dump();
}

void reset() {
  metrics().reset();
  tracer().reset();
  critical_path().reset();
  recorder().reset();
}

void Span::begin(const char* name) {
  name_ = name;
  SpanTracer& t = tracer();
  buffer_ = t.local();  // nullptr only when the slot table is exhausted
  if (buffer_ == nullptr) return;
  depth_ = buffer_->depth++;
  start_us_ = t.now_us();
}

void Span::end() {
  SpanTracer& t = tracer();
  const std::uint64_t end_us = t.now_us();
  SpanTracer::ThreadSlot& slot = *buffer_;
  --slot.depth;
  t.record(slot, SpanEvent{name_, slot.tid, depth_, start_us_,
                           end_us - start_us_});
}

}  // namespace mvs::obs

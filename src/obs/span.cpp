#include "obs/span.hpp"

#include <algorithm>
#include <sstream>

namespace mvs::obs {

namespace {

// Thread-local cache mapping (tracer, generation) -> buffer so local() is a
// pair of comparisons on the hot path. The shared_ptr keeps the buffer alive
// in the tracer even after the thread exits.
struct LocalCache {
  const SpanTracer* tracer = nullptr;
  std::uint64_t generation = 0;
  std::shared_ptr<SpanTracer::ThreadBuffer> buffer;
};
thread_local LocalCache t_cache;

}  // namespace

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

SpanTracer::ThreadBuffer& SpanTracer::local() {
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gen = generation_;
    if (t_cache.tracer == this && t_cache.generation == gen)
      return *t_cache.buffer;
    auto buf = std::make_shared<ThreadBuffer>();
    buf->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(buf);
    t_cache.tracer = this;
    t_cache.generation = gen;
    t_cache.buffer = std::move(buf);
  }
  return *t_cache.buffer;
}

std::uint64_t SpanTracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::vector<SpanEvent> SpanTracer::collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = buffers_;
  }
  std::vector<SpanEvent> out;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mu);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.depth < b.depth;  // parent (shallower) first on ts ties
  });
  return out;
}

std::string SpanTracer::chrome_trace_json() const {
  const auto events = collect();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  int last_tid = -1;
  for (const auto& e : events) {
    if (e.tid != last_tid) {
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << e.tid
         << ",\"args\":{\"name\":\"mvs-" << e.tid << "\"}}";
      last_tid = e.tid;
    }
    os << ",{\"name\":\"" << e.name << "\",\"cat\":\"mvs\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << e.tid << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::map<std::string, long long> SpanTracer::span_counts() const {
  std::map<std::string, long long> out;
  for (const auto& e : collect()) ++out[e.name];
  return out;
}

std::size_t SpanTracer::total_events() const { return collect().size(); }

void SpanTracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  buffers_.clear();
}

}  // namespace mvs::obs

#include "obs/span.hpp"

#include <algorithm>
#include <sstream>

#include "util/alloc_track.hpp"

namespace mvs::obs {

namespace {

constexpr std::size_t kRingCapacity = 8192;   // events per thread in flight
constexpr std::size_t kDrainReserve = 4096;   // initial drained capacity

// Thread-local cache mapping (tracer, generation) -> slot so local() is a
// pair of comparisons — no lock, no shared write — on the hot path.
struct LocalCache {
  const SpanTracer* tracer = nullptr;
  std::uint64_t generation = 0;
  SpanTracer::ThreadSlot* slot = nullptr;
};
thread_local LocalCache t_cache;

}  // namespace

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {
  exporter_ = std::thread([this] { exporter_loop(); });
}

SpanTracer::~SpanTracer() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    stop_ = true;
  }
  drain_cv_.notify_one();
  if (exporter_.joinable()) exporter_.join();
}

SpanTracer::ThreadSlot* SpanTracer::local() {
  // Acquire pairs with reset()'s release bump: a thread observing the new
  // generation also observes the cleared slot state.
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_cache.tracer == this && t_cache.generation == gen)
    return t_cache.slot;  // fast path: no lock, no allocation

  // Slow path: once per thread per generation.
  std::lock_guard<std::mutex> lock(registry_mu_);
  const std::uint64_t locked_gen =
      generation_.load(std::memory_order_relaxed);  // stable under the lock
  const int tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  t_cache.tracer = this;
  t_cache.generation = locked_gen;
  if (tid >= kMaxThreads) {
    // Slot table exhausted: park the ticket so it cannot wrap, drop spans
    // from this thread for the rest of the generation.
    next_tid_.store(kMaxThreads, std::memory_order_relaxed);
    t_cache.slot = nullptr;
    return nullptr;
  }
  ThreadSlot& slot = slots_[tid];
  if (!slot.ring) {
    // First registration of this slot EVER: the ring and the drain buffer
    // are allocated once and reused across generations, so re-enabling
    // after reset() performs no allocation.
    slot.ring = std::make_unique<util::SpscRing<SpanEvent>>(kRingCapacity);
    slot.drained.reserve(kDrainReserve);
  }
  slot.tid = tid;
  slot.depth = 0;
  // Release: the exporter's acquire load of `active` must see the
  // constructed ring before it starts consuming from it.
  slot.active.store(true, std::memory_order_release);
  t_cache.slot = &slot;
  return &slot;
}

std::uint64_t SpanTracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void SpanTracer::record(ThreadSlot& slot, const SpanEvent& event) {
  // Common case: one wait-free SPSC push, no lock, no syscall.
  while (!slot.ring->try_push(event)) {
    // Ring full — exporter is behind. Kick it (notify WITHOUT the mutex:
    // legal, and the exporter's timed wait bounds a missed wakeup at one
    // sweep period) and spin until a slot frees up; dropping would break
    // the span-count determinism guard.
    drain_cv_.notify_one();
    util::cpu_relax();
  }
}

void SpanTracer::exporter_loop() {
  // Off the frame path by construction: the exporter's amortized buffer
  // growth is exempt from the zero-allocation guard (DESIGN.md §11).
  util::alloc_track::t_exempt = true;
  std::unique_lock<std::mutex> lock(drain_mu_);
  while (!stop_) {
    drain_all_locked();
    if (flush_completed_ < flush_requested_) {
      flush_completed_ = flush_requested_;
      flushed_cv_.notify_all();
    }
    // Timed wait: the steady-state drain cadence. Producers never signal on
    // the common path; rings are sized to absorb a full period.
    drain_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  drain_all_locked();  // final sweep so no event is stranded in a ring
}

void SpanTracer::drain_all_locked() {
  for (ThreadSlot& slot : slots_) {
    // Acquire pairs with registration's release store of `active`.
    if (!slot.active.load(std::memory_order_acquire)) continue;
    SpanEvent event;
    while (slot.ring->try_pop(event)) slot.drained.push_back(event);
  }
}

void SpanTracer::flush() const {
  std::unique_lock<std::mutex> lock(drain_mu_);
  const std::uint64_t ticket = ++flush_requested_;
  drain_cv_.notify_one();
  flushed_cv_.wait(lock, [&] { return flush_completed_ >= ticket; });
}

std::vector<SpanEvent> SpanTracer::collect() const {
  flush();  // pull every ring's contents into the drained vectors
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    for (const ThreadSlot& slot : slots_)
      out.insert(out.end(), slot.drained.begin(), slot.drained.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.depth < b.depth;  // parent (shallower) first on ts ties
  });
  return out;
}

std::string SpanTracer::chrome_trace_json() const {
  const auto events = collect();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  int last_tid = -1;
  for (const auto& e : events) {
    if (e.tid != last_tid) {
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << e.tid
         << ",\"args\":{\"name\":\"mvs-" << e.tid << "\"}}";
      last_tid = e.tid;
    }
    os << ",{\"name\":\"" << e.name << "\",\"cat\":\"mvs\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << e.tid << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::map<std::string, long long> SpanTracer::span_counts() const {
  std::map<std::string, long long> out;
  for (const auto& e : collect()) ++out[e.name];
  return out;
}

std::size_t SpanTracer::total_events() const { return collect().size(); }

void SpanTracer::reset() {
  std::lock_guard<std::mutex> reg_lock(registry_mu_);
  // By contract no Span is alive across reset(), so producers are quiescent:
  // one flush moves every straggler out of the rings, then the drained
  // buffers are cleared IN PLACE (capacity kept — re-enable reallocates
  // nothing) and the slot table is detached for lazy re-registration.
  flush();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    for (ThreadSlot& slot : slots_) {
      slot.active.store(false, std::memory_order_relaxed);
      slot.drained.clear();
    }
  }
  next_tid_.store(0, std::memory_order_relaxed);
  // Release pairs with local()'s acquire load: threads seeing the new
  // generation re-register against the cleared table.
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace mvs::obs

#include "obs/critical_path.hpp"

#include <cmath>
#include <sstream>

#include "util/json.hpp"

namespace mvs::obs {

const char* to_string(Segment segment) {
  switch (segment) {
    case Segment::kCaptureWait: return "capture_wait";
    case Segment::kNet: return "net";
    case Segment::kSchedQueue: return "sched_queue";
    case Segment::kBatchWait: return "batch_wait";
    case Segment::kGpu: return "gpu";
    case Segment::kTracking: return "tracking";
    case Segment::kEmit: return "emit";
  }
  return "?";
}

Segment FrameAttribution::dominant() const {
  int best = 0;
  for (int i = 1; i < kSegmentCount; ++i)
    if (segment_ms[static_cast<std::size_t>(i)] >
        segment_ms[static_cast<std::size_t>(best)])
      best = i;
  return static_cast<Segment>(best);
}

namespace {

// Atomic max fold (same CAS shape as metrics.cpp's atomic_fold).
void fold_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

util::Json histogram_summary(const Histogram& h, long long dominant_frames,
                             long long total_frames, bool with_dominant) {
  using util::Json;
  const bool empty = h.count() == 0;
  Json::Object entry;
  entry.emplace("count", Json(static_cast<double>(h.count())));
  entry.emplace("sum_ms", Json(h.sum()));
  entry.emplace("p50", Json(empty ? 0.0 : h.percentile(50.0)));
  entry.emplace("p95", Json(empty ? 0.0 : h.percentile(95.0)));
  entry.emplace("p99", Json(empty ? 0.0 : h.percentile(99.0)));
  entry.emplace("max", Json(empty ? 0.0 : h.max()));
  if (with_dominant) {
    entry.emplace("dominant_frames",
                  Json(static_cast<double>(dominant_frames)));
    entry.emplace("dominant_frac",
                  Json(total_frames > 0
                           ? static_cast<double>(dominant_frames) /
                                 static_cast<double>(total_frames)
                           : 0.0));
  }
  return Json(std::move(entry));
}

}  // namespace

void CriticalPath::record(const FrameAttribution& frame) {
  for (int i = 0; i < kSegmentCount; ++i)
    segments_[static_cast<std::size_t>(i)].record(
        frame.segment_ms[static_cast<std::size_t>(i)]);
  total_.record(frame.total_ms);
  dominant_[static_cast<std::size_t>(frame.dominant())].fetch_add(
      1, std::memory_order_relaxed);
  frames_.fetch_add(1, std::memory_order_relaxed);
  if (frame.deadline_miss) misses_.fetch_add(1, std::memory_order_relaxed);
  fold_max(max_error_ms_, std::fabs(frame.total_ms - frame.segment_sum_ms()));
}

util::Json CriticalPath::attribution_json() const {
  using util::Json;
  const long long n = frames();
  Json::Object segments;
  long long best = -1;
  Segment best_segment = Segment::kCaptureWait;
  for (int i = 0; i < kSegmentCount; ++i) {
    const Segment seg = static_cast<Segment>(i);
    const long long dom = dominant_count(seg);
    segments.emplace(to_string(seg),
                     histogram_summary(segment_histogram(seg), dom, n,
                                       /*with_dominant=*/true));
    if (dom > best) {
      best = dom;
      best_segment = seg;
    }
  }
  Json::Object root;
  root.emplace("frames", Json(static_cast<double>(n)));
  root.emplace("deadline_misses", Json(static_cast<double>(misses())));
  root.emplace("max_conservation_error_ms",
               Json(max_conservation_error_ms()));
  root.emplace("dominant", Json(n > 0 ? to_string(best_segment) : ""));
  root.emplace("segments", Json(std::move(segments)));
  root.emplace("total", histogram_summary(total_, 0, 0,
                                          /*with_dominant=*/false));
  return Json(std::move(root));
}

std::string CriticalPath::fingerprint() const {
  std::ostringstream os;
  os.precision(17);
  os << "cp n=" << frames() << " miss=" << misses() << '\n';
  for (int i = 0; i < kSegmentCount; ++i) {
    const Segment seg = static_cast<Segment>(i);
    const Histogram& h = segment_histogram(seg);
    os << "s " << to_string(seg) << " n=" << h.count()
       << " dom=" << dominant_count(seg);
    if (h.count() > 0) {
      os << " min=" << h.min() << " max=" << h.max() << " b=[";
      for (long long b : h.bucket_counts()) os << b << ',';
      os << ']';
    }
    os << '\n';
  }
  return os.str();
}

void CriticalPath::reset() {
  for (auto& h : segments_) h.reset();
  total_.reset();
  for (auto& d : dominant_) d.store(0, std::memory_order_relaxed);
  frames_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  max_error_ms_.store(0.0, std::memory_order_relaxed);
}

}  // namespace mvs::obs

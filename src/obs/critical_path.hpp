#pragma once
// Critical-path latency attribution (mvs::obs v2, DESIGN.md §14).
//
// Every processed frame carries a causal id and a decomposition of its
// end-to-end latency into named segments (capture-wait, net, sched-queue,
// batch-wait, gpu, tracking, emit). The CriticalPath accumulator owns a
// FIXED array of per-segment Histograms plus per-segment dominant-frame
// counters — no registry lookups, no string building — so recording an
// attribution on the steady-state tick path performs zero heap allocations
// (guarded by test_alloc_guard).
//
// Conservation contract: a producer fills FrameAttribution::segment_ms so
// the segments sum to total_ms exactly (within FP re-association, << 1e-6
// ms). record() folds the worst observed |total - Σ segments| into
// max_conservation_error_ms(), which the conservation tests assert on.
//
// All inputs are simulated/deterministic quantities, so bucket counts,
// dominant counters and the fingerprint are bit-identical across thread
// counts (the ring of recent frames is interleaving-dependent and is
// excluded from the fingerprint).

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mvs::util {
class Json;
}

namespace mvs::obs {

/// Where a frame's end-to-end latency was spent. Taxonomy is shared by the
/// paced runtime (rt::RtRunner) and the serving plane (fleet::Fleet):
///   kCaptureWait  capture -> arrival (sensor readout + transport pacing)
///   kNet          modeled transport comm + per-message queueing
///   kSchedQueue   arrival -> processing start (scheduler/processor queue)
///   kBatchWait    device-pool queueing behind other sessions' batches
///   kGpu          attributed inference busy (slowest camera / merged share)
///   kTracking     tracker update (structurally 0 on the virtual-clock
///                 paths: measured wall-clock never enters the schedule)
///   kEmit         fixed emission/decode overhead past inference
enum class Segment {
  kCaptureWait = 0,
  kNet,
  kSchedQueue,
  kBatchWait,
  kGpu,
  kTracking,
  kEmit,
};
inline constexpr int kSegmentCount = 7;

const char* to_string(Segment segment);

/// Causal frame id: a 32-bit stream (session/shard encoding, 0 for a
/// standalone runner) in the high word, the frame index in the low word.
inline std::uint64_t causal_id(std::uint32_t stream, std::uint64_t frame) {
  return (static_cast<std::uint64_t>(stream) << 32) |
         (frame & 0xffffffffULL);
}
inline std::uint32_t causal_stream(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> 32);
}
inline std::uint32_t causal_frame(std::uint64_t id) {
  return static_cast<std::uint32_t>(id & 0xffffffffULL);
}

/// One frame's latency decomposition. POD: producers fill it on the stack.
struct FrameAttribution {
  std::uint64_t id = 0;  ///< causal_id()
  double total_ms = 0.0;
  std::array<double, kSegmentCount> segment_ms{};
  bool deadline_miss = false;

  double segment_sum_ms() const {
    double s = 0.0;
    for (double v : segment_ms) s += v;
    return s;
  }
  /// Largest segment (ties: first in enum order).
  Segment dominant() const;
};

/// Process-wide attribution accumulator (obs::critical_path()). record() is
/// thread-safe, lock-free and allocation-free.
class CriticalPath {
 public:
  void record(const FrameAttribution& frame);

  long long frames() const {
    return frames_.load(std::memory_order_relaxed);
  }
  long long misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  long long dominant_count(Segment segment) const {
    return dominant_[static_cast<std::size_t>(segment)].load(
        std::memory_order_relaxed);
  }
  const Histogram& segment_histogram(Segment segment) const {
    return segments_[static_cast<std::size_t>(segment)];
  }
  const Histogram& total_histogram() const { return total_; }

  /// Worst |total_ms - Σ segment_ms| seen so far (the conservation bound).
  double max_conservation_error_ms() const {
    return max_error_ms_.load(std::memory_order_relaxed);
  }

  /// The per-run attribution table exported inside the metrics JSON:
  /// {frames, misses, max_conservation_error_ms, dominant,
  ///  segments: {name: {count,sum_ms,p50,p95,p99,max,dominant_frames,
  ///                    dominant_frac}},
  ///  total: {count,sum_ms,p50,p95,p99,max}}
  util::Json attribution_json() const;

  /// Deterministic identity (histogram bucket counts + dominant counters);
  /// excludes the FP sums, like MetricsRegistry::fingerprint().
  std::string fingerprint() const;

  void reset();

 private:
  std::array<Histogram, kSegmentCount> segments_;
  Histogram total_;
  std::array<std::atomic<long long>, kSegmentCount> dominant_{};
  std::atomic<long long> frames_{0};
  std::atomic<long long> misses_{0};
  std::atomic<double> max_error_ms_{0.0};
};

}  // namespace mvs::obs

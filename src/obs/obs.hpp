#pragma once
// mvs::obs — process-wide observability: MetricsRegistry + SpanTracer behind
// a single atomic enable flag (null-sink mode).
//
// All instrumentation macros compile down to a relaxed load of one
// std::atomic<bool> when observability is disabled (the default), so
// instrumented hot paths cost one predictable branch (<1% on bench_pipeline;
// see bench/bench_obs.cpp and DESIGN.md §9).
//
// Usage:
//   obs::set_enabled(true);
//   { MVS_SPAN("pipeline.frame"); ... }        // RAII wall-clock scope
//   MVS_COUNT("net.retries", outcome.retries); // counter add
//   MVS_HIST("pipeline.comm_ms", stats.comm_ms);
//   MVS_GAUGE("fleet.queue_depth", depth);
//   obs::metrics().to_json(); obs::tracer().chrome_trace_json();

#include <atomic>
#include <string>

#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace mvs::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_attribution;
}

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Critical-path attribution gate (DESIGN.md §14). Independent of the main
// flag so attribution can stay always-on (it is zero-alloc and lock-free)
// while the span/metrics instrumentation stays off, and vice versa.
inline bool attribution_enabled() {
  return detail::g_attribution.load(std::memory_order_relaxed);
}
void set_attribution_enabled(bool on);

// Process-wide singletons.
MetricsRegistry& metrics();
SpanTracer& tracer();
CriticalPath& critical_path();
FlightRecorder& recorder();

// Full metrics export: the MetricsRegistry snapshot document, plus an
// "attribution" block (the CriticalPath table) when attribution is on.
std::string export_json();

// Clears all metrics, spans, attribution state and the flight recorder
// (leaves the enable flags untouched).
void reset();

// RAII span; pushes a SpanEvent onto the calling thread's SPSC ring at
// scope exit (lock-free; the async exporter drains it off the frame path).
// Inert when obs is disabled at construction time.
class Span {
 public:
  explicit Span(const char* name) {
    if (!enabled()) return;
    begin(name);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (buffer_ != nullptr) end();
  }

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  SpanTracer::ThreadSlot* buffer_ = nullptr;
  int depth_ = 0;
  std::uint64_t start_us_ = 0;
};

}  // namespace mvs::obs

#define MVS_OBS_CAT2(a, b) a##b
#define MVS_OBS_CAT(a, b) MVS_OBS_CAT2(a, b)

// RAII wall-clock span covering the rest of the enclosing scope.
#define MVS_SPAN(name) ::mvs::obs::Span MVS_OBS_CAT(mvs_obs_span_, __COUNTER__)(name)

#define MVS_COUNT(name, n)                                  \
  do {                                                      \
    if (::mvs::obs::enabled())                              \
      ::mvs::obs::metrics().counter(name).add(              \
          static_cast<long long>(n));                       \
  } while (0)

#define MVS_GAUGE(name, v)                                          \
  do {                                                              \
    if (::mvs::obs::enabled())                                      \
      ::mvs::obs::metrics().gauge(name).set(static_cast<double>(v)); \
  } while (0)

#define MVS_HIST(name, v)                                         \
  do {                                                            \
    if (::mvs::obs::enabled())                                    \
      ::mvs::obs::metrics().histogram(name).record(               \
          static_cast<double>(v));                                \
  } while (0)

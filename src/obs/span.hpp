#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mvs::obs {

// One completed RAII scope, recorded at scope exit.
struct SpanEvent {
  const char* name;       // static string supplied by the MVS_SPAN site
  int tid;                // tracer-assigned small thread id (registration order)
  int depth;              // nesting depth on that thread at scope entry
  std::uint64_t ts_us;    // start, microseconds since tracer epoch
  std::uint64_t dur_us;   // wall-clock duration, microseconds
};

// Collects SpanEvents into per-thread buffers (contention-free appends: each
// thread owns its buffer, guarded by a per-buffer mutex that is uncontended
// except during collect()). Export formats:
//  - chrome_trace_json(): Chrome trace-event JSON ("ph":"X" complete events)
//    loadable in chrome://tracing and Perfetto;
//  - span_counts(): per-name event counts, used by the determinism guard
//    (counts are thread-schedule independent; durations are not).
class SpanTracer {
 public:
  SpanTracer();

  // Per-thread buffer handle; stable for the life of the tracer generation.
  struct ThreadBuffer {
    std::mutex mu;
    int tid = 0;
    int depth = 0;  // only touched by the owning thread
    std::vector<SpanEvent> events;
  };

  // Buffer for the calling thread, registering it on first use.
  ThreadBuffer& local();

  std::uint64_t now_us() const;

  // Snapshot of all recorded events, sorted by (tid, ts, depth).
  std::vector<SpanEvent> collect() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} with per-thread metadata.
  std::string chrome_trace_json() const;

  std::map<std::string, long long> span_counts() const;

  std::size_t total_events() const;

  // Drops all events and detaches existing per-thread buffers (threads
  // re-register lazily). Span objects must not be alive across reset().
  void reset();

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::uint64_t generation_ = 1;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

}  // namespace mvs::obs

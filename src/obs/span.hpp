#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/spsc_ring.hpp"

namespace mvs::obs {

// One completed RAII scope, recorded at scope exit.
struct SpanEvent {
  const char* name;       // static string supplied by the MVS_SPAN site
  int tid;                // tracer-assigned small thread id (registration order)
  int depth;              // nesting depth on that thread at scope entry
  std::uint64_t ts_us;    // start, microseconds since tracer epoch
  std::uint64_t dur_us;   // wall-clock duration, microseconds
};

// Collects SpanEvents through per-thread SPSC rings drained by one async
// exporter thread, so recording a span on the pipeline path never takes a
// lock (async-logger pattern; DESIGN.md §11):
//  - each thread owns a fixed slot (preallocated table indexed by the
//    tracer-assigned tid) and is the single producer of that slot's ring;
//  - the exporter thread is the single consumer of every ring and parks
//    events in per-slot `drained` vectors off the frame path;
//  - collect()/reset() rendezvous with the exporter (flush ticket), which
//    is a cold path and may lock.
// Slots and their rings are allocated once on first registration and reused
// across reset() generations — re-enabling after reset() reallocates
// nothing. Export formats:
//  - chrome_trace_json(): Chrome trace-event JSON ("ph":"X" complete events)
//    loadable in chrome://tracing and Perfetto;
//  - span_counts(): per-name event counts, used by the determinism guard
//    (counts are thread-schedule independent; durations are not).
class SpanTracer {
 public:
  SpanTracer();
  ~SpanTracer();

  /// Fixed slot-table width. Threads registering beyond this (per
  /// generation) get a null slot and their spans are dropped; every
  /// workload in this repo uses far fewer concurrent instrumented threads.
  static constexpr int kMaxThreads = 64;

  // Per-thread slot; stable for the life of the tracer generation.
  struct ThreadSlot {
    std::unique_ptr<util::SpscRing<SpanEvent>> ring;  ///< allocated once ever
    int tid = 0;
    int depth = 0;  ///< only touched by the owning thread
    std::atomic<bool> active{false};  ///< registered this generation
    std::vector<SpanEvent> drained;   ///< exporter-owned; drain_mu_
  };

  // Slot for the calling thread, registering it on first use (lock-free
  // cache-hit fast path; the mutex is only taken once per thread per
  // generation). Returns nullptr when the slot table is exhausted.
  ThreadSlot* local();

  std::uint64_t now_us() const;

  // Wait-free append of one finished span to the slot's ring. If the ring
  // is full (exporter far behind) the producer kicks the exporter and spins
  // — events are never dropped, span_counts() is a determinism guard.
  void record(ThreadSlot& slot, const SpanEvent& event);

  // Snapshot of all recorded events, sorted by (tid, ts, depth).
  std::vector<SpanEvent> collect() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} with per-thread metadata.
  std::string chrome_trace_json() const;

  std::map<std::string, long long> span_counts() const;

  std::size_t total_events() const;

  // Drops all events and detaches existing per-thread slots (threads
  // re-register lazily; slot rings and vector capacity are reused). Span
  // objects must not be alive across reset().
  void reset();

 private:
  void exporter_loop();
  void drain_all_locked();  ///< exporter thread only, drain_mu_ held
  void flush() const;       ///< ticket + wait for one full exporter sweep

  std::chrono::steady_clock::time_point epoch_;
  std::array<ThreadSlot, kMaxThreads> slots_;  ///< fixed: no registration churn
  std::atomic<int> next_tid_{0};
  std::atomic<std::uint64_t> generation_{1};
  std::mutex registry_mu_;  ///< registration + reset only; never on span path

  // Exporter rendezvous state (cold path; producers only ever touch it via
  // a lock-free condvar notify when a ring fills up).
  mutable std::mutex drain_mu_;
  mutable std::condition_variable drain_cv_;    ///< exporter wakeups
  mutable std::condition_variable flushed_cv_;  ///< flush ticket acks
  mutable std::uint64_t flush_requested_ = 0;   ///< guarded by drain_mu_
  mutable std::uint64_t flush_completed_ = 0;   ///< guarded by drain_mu_
  bool stop_ = false;                           ///< guarded by drain_mu_
  std::thread exporter_;
};

}  // namespace mvs::obs

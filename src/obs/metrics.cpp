#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/json.hpp"

namespace mvs::obs {

namespace {

// Atomically fold v into slot with a monotone op (min or max).
template <typename Op>
void atomic_fold(std::atomic<double>& slot, double v, Op better) {
  double cur = slot.load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // underflow bucket: zero, negatives, NaN
  int e = std::ilogb(v);
  e = std::clamp(e, kMinExp, kMaxExp);
  return e - kMinExp + 1;
}

double Histogram::bucket_lower(int idx) {
  if (idx <= 0) return 0.0;
  return std::ldexp(1.0, kMinExp + idx - 1);
}

double Histogram::bucket_upper(int idx) {
  if (idx <= 0) return 0.0;
  if (idx >= kBucketCount - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, kMinExp + idx);
}

void Histogram::record(double v) {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_fold(min_, v, [](double a, double b) { return a < b; });
  atomic_fold(max_, v, [](double a, double b) { return a > b; });
}

double Histogram::min() const {
  if (count() == 0) return std::numeric_limits<double>::quiet_NaN();
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  if (count() == 0) return std::numeric_limits<double>::quiet_NaN();
  return max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  const long long n = count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: smallest rank r in [1, n] with r >= p/100 * n.
  long long rank = static_cast<long long>(std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::clamp(rank, 1LL, n);
  long long seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= rank) {
      const double lo = bucket_lower(i);
      double hi = bucket_upper(i);
      if (!std::isfinite(hi)) hi = lo * 2.0;
      double rep = 0.5 * (lo + hi);
      // Clamp to the observed range: exact for single-valued buckets at the
      // extremes and never worse than the midpoint elsewhere.
      rep = std::clamp(rep, min_.load(std::memory_order_relaxed),
                       max_.load(std::memory_order_relaxed));
      return rep;
    }
  }
  return max();  // unreachable when counts are consistent
}

std::vector<long long> Histogram::bucket_counts() const {
  std::vector<long long> out(kBucketCount);
  for (int i = 0; i < kBucketCount; ++i)
    out[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  util::Json::Object counters;
  for (const auto& [name, c] : counters_)
    counters.emplace(name, util::Json(static_cast<double>(c->value())));
  util::Json::Object gauges;
  for (const auto& [name, g] : gauges_) gauges.emplace(name, util::Json(g->value()));
  util::Json::Object hists;
  for (const auto& [name, h] : histograms_) {
    const bool empty = h->count() == 0;
    util::Json::Object entry;
    entry.emplace("count", util::Json(static_cast<double>(h->count())));
    entry.emplace("sum", util::Json(h->sum()));
    entry.emplace("min", util::Json(empty ? 0.0 : h->min()));
    entry.emplace("max", util::Json(empty ? 0.0 : h->max()));
    entry.emplace("p50", util::Json(empty ? 0.0 : h->percentile(50.0)));
    entry.emplace("p95", util::Json(empty ? 0.0 : h->percentile(95.0)));
    entry.emplace("p99", util::Json(empty ? 0.0 : h->percentile(99.0)));
    util::Json::Array buckets;
    const auto counts = h->bucket_counts();
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      if (counts[static_cast<std::size_t>(i)] == 0) continue;
      util::Json::Object b;
      b.emplace("lo", util::Json(Histogram::bucket_lower(i)));
      b.emplace("count", util::Json(static_cast<double>(
                             counts[static_cast<std::size_t>(i)])));
      buckets.emplace_back(std::move(b));
    }
    entry.emplace("buckets", util::Json(std::move(buckets)));
    hists.emplace(name, util::Json(std::move(entry)));
  }
  util::Json::Object root;
  root.emplace("counters", util::Json(std::move(counters)));
  root.emplace("gauges", util::Json(std::move(gauges)));
  root.emplace("histograms", util::Json(std::move(hists)));
  return util::Json(std::move(root)).dump();
}

std::string MetricsRegistry::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, c] : counters_) os << "c " << name << ' ' << c->value() << '\n';
  for (const auto& [name, g] : gauges_) os << "g " << name << ' ' << g->value() << '\n';
  for (const auto& [name, h] : histograms_) {
    os << "h " << name << " n=" << h->count();
    const bool wall = name.size() >= 8 && name.compare(name.size() - 8, 8, "_wall_ms") == 0;
    if (!wall && h->count() > 0) {
      os << " min=" << h->min() << " max=" << h->max() << " b=[";
      for (long long b : h->bucket_counts()) os << b << ',';
      os << ']';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace mvs::obs

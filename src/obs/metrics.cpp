#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/json.hpp"

namespace mvs::obs {

namespace {

// Atomically fold v into slot with a monotone op (min or max).
template <typename Op>
void atomic_fold(std::atomic<double>& slot, double v, Op better) {
  double cur = slot.load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Matches "fleet.shard.<N>.<rest>"; on success writes the shard index and
// the merged name "fleet.<rest>".
bool parse_shard_name(const std::string& name, int* shard,
                      std::string* merged) {
  constexpr std::string_view kPrefix = "fleet.shard.";
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  std::size_t i = kPrefix.size();
  std::size_t digits = 0;
  int n = 0;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    n = n * 10 + (name[i] - '0');
    ++i;
    ++digits;
  }
  if (digits == 0 || i >= name.size() || name[i] != '.') return false;
  *shard = n;
  *merged = "fleet." + name.substr(i + 1);
  return true;
}

}  // namespace

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // underflow bucket: zero, negatives, NaN
  int e = std::ilogb(v);
  e = std::clamp(e, kMinExp, kMaxExp);
  return e - kMinExp + 1;
}

double Histogram::bucket_lower(int idx) {
  if (idx <= 0) return 0.0;
  return std::ldexp(1.0, kMinExp + idx - 1);
}

double Histogram::bucket_upper(int idx) {
  if (idx <= 0) return 0.0;
  if (idx >= kBucketCount - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, kMinExp + idx);
}

void Histogram::record(double v) {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_fold(min_, v, [](double a, double b) { return a < b; });
  atomic_fold(max_, v, [](double a, double b) { return a > b; });
}

double Histogram::min() const {
  if (count() == 0) return std::numeric_limits<double>::quiet_NaN();
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  if (count() == 0) return std::numeric_limits<double>::quiet_NaN();
  return max_.load(std::memory_order_relaxed);
}

double Histogram::percentile_from_counts(const long long* counts,
                                         long long n, double p, double min,
                                         double max) {
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: smallest rank r in [1, n] with r >= p/100 * n.
  long long rank = static_cast<long long>(std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::clamp(rank, 1LL, n);
  long long seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      const double lo = bucket_lower(i);
      double hi = bucket_upper(i);
      if (!std::isfinite(hi)) hi = lo * 2.0;
      double rep = 0.5 * (lo + hi);
      // Clamp to the observed range: exact for single-valued buckets at the
      // extremes and never worse than the midpoint elsewhere.
      rep = std::clamp(rep, min, max);
      return rep;
    }
  }
  return max;  // unreachable when counts are consistent
}

double Histogram::percentile(double p) const {
  const long long n = count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  std::array<long long, kBucketCount> counts;
  for (int i = 0; i < kBucketCount; ++i)
    counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return percentile_from_counts(counts.data(), n, p,
                                min_.load(std::memory_order_relaxed),
                                max_.load(std::memory_order_relaxed));
}

std::vector<long long> Histogram::bucket_counts() const {
  std::vector<long long> out(kBucketCount);
  for (int i = 0; i < kBucketCount; ++i)
    out[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

// Snapshot of one histogram, also the accumulator for shard merging.
struct HistSnapshot {
  long long count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::array<long long, Histogram::kBucketCount> buckets{};

  void fold(const HistSnapshot& other) {
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    for (int i = 0; i < Histogram::kBucketCount; ++i)
      buckets[static_cast<std::size_t>(i)] +=
          other.buckets[static_cast<std::size_t>(i)];
  }

  util::Json to_entry(int shard) const {
    const bool empty = count == 0;
    util::Json::Object entry;
    entry.emplace("count", util::Json(static_cast<double>(count)));
    entry.emplace("sum", util::Json(sum));
    entry.emplace("min", util::Json(empty ? 0.0 : min));
    entry.emplace("max", util::Json(empty ? 0.0 : max));
    entry.emplace("p50", util::Json(empty ? 0.0 : Histogram::percentile_from_counts(
                                                      buckets.data(), count, 50.0, min, max)));
    entry.emplace("p95", util::Json(empty ? 0.0 : Histogram::percentile_from_counts(
                                                      buckets.data(), count, 95.0, min, max)));
    entry.emplace("p99", util::Json(empty ? 0.0 : Histogram::percentile_from_counts(
                                                      buckets.data(), count, 99.0, min, max)));
    if (shard >= 0) entry.emplace("shard", util::Json(shard));
    util::Json::Array out_buckets;
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      if (buckets[static_cast<std::size_t>(i)] == 0) continue;
      util::Json::Object b;
      b.emplace("lo", util::Json(Histogram::bucket_lower(i)));
      b.emplace("count", util::Json(static_cast<double>(
                             buckets[static_cast<std::size_t>(i)])));
      out_buckets.emplace_back(std::move(b));
    }
    entry.emplace("buckets", util::Json(std::move(out_buckets)));
    return util::Json(std::move(entry));
  }
};

HistSnapshot snapshot_histogram(const Histogram& h) {
  HistSnapshot s;
  s.count = h.count();
  if (s.count > 0) {
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
  }
  const auto counts = h.bucket_counts();
  for (int i = 0; i < Histogram::kBucketCount; ++i)
    s.buckets[static_cast<std::size_t>(i)] =
        counts[static_cast<std::size_t>(i)];
  return s;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  int shard = 0;
  std::string merged_name;

  // Per-shard metric names ("fleet.shard.<N>.<rest>") additionally roll up
  // into a synthesized merged entry under the flat name ("fleet.<rest>"),
  // unless that name is already registered. At shards=1 the merged entry is
  // bit-equal to what a flat Fleet would have exported (same counts, same
  // percentile algorithm via percentile_from_counts, no "shard" key); session
  // names that collide across shards simply sum (DESIGN.md §14).
  util::Json::Object counters;
  std::map<std::string, long long> merged_counters;
  for (const auto& [name, c] : counters_) {
    counters.emplace(name, util::Json(static_cast<double>(c->value())));
    if (parse_shard_name(name, &shard, &merged_name))
      merged_counters[merged_name] += c->value();
  }
  for (auto& [name, v] : merged_counters)
    if (counters_.find(name) == counters_.end())
      counters.emplace(name, util::Json(static_cast<double>(v)));

  util::Json::Object gauges;
  std::map<std::string, double> merged_gauges;
  for (const auto& [name, g] : gauges_) {
    gauges.emplace(name, util::Json(g->value()));
    if (parse_shard_name(name, &shard, &merged_name))
      merged_gauges[merged_name] += g->value();
  }
  for (auto& [name, v] : merged_gauges)
    if (gauges_.find(name) == gauges_.end()) gauges.emplace(name, util::Json(v));

  util::Json::Object hists;
  std::map<std::string, HistSnapshot> merged_hists;
  for (const auto& [name, h] : histograms_) {
    const HistSnapshot snap = snapshot_histogram(*h);
    int entry_shard = -1;
    if (parse_shard_name(name, &shard, &merged_name)) {
      entry_shard = shard;
      merged_hists[merged_name].fold(snap);
    }
    hists.emplace(name, snap.to_entry(entry_shard));
  }
  for (auto& [name, snap] : merged_hists)
    if (histograms_.find(name) == histograms_.end())
      hists.emplace(name, snap.to_entry(-1));

  util::Json::Object root;
  root.emplace("counters", util::Json(std::move(counters)));
  root.emplace("gauges", util::Json(std::move(gauges)));
  root.emplace("histograms", util::Json(std::move(hists)));
  return util::Json(std::move(root)).dump();
}

std::string MetricsRegistry::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, c] : counters_) os << "c " << name << ' ' << c->value() << '\n';
  for (const auto& [name, g] : gauges_) os << "g " << name << ' ' << g->value() << '\n';
  for (const auto& [name, h] : histograms_) {
    os << "h " << name << " n=" << h->count();
    const bool wall = name.size() >= 8 && name.compare(name.size() - 8, 8, "_wall_ms") == 0;
    if (!wall && h->count() > 0) {
      os << " min=" << h->min() << " max=" << h->max() << " b=[";
      for (long long b : h->bucket_counts()) os << b << ',';
      os << ']';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace mvs::obs

#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>

#include "obs/obs.hpp"
#include "util/json.hpp"

namespace mvs::obs {

void FlightRecorder::configure(const Config& config) {
  cfg_ = config;
  cfg_.miss_window = std::clamp(cfg_.miss_window, 1, kMissWindowMax);
}

void FlightRecorder::note_frame(const FrameAttribution& frame) {
  const long long ticket =
      frame_head_.fetch_add(1, std::memory_order_relaxed);
  FrameSlot& slot =
      frames_[static_cast<std::size_t>(ticket) % kFrameCapacity];
  // Odd/even seq brackets the payload stores; readers that catch an odd or
  // changed seq drop the slot. The ticket spacing (kFrameCapacity appends
  // between same-slot writers) keeps writers from interleaving in practice;
  // the seq keeps concurrent snapshots safe regardless.
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  slot.id.store(frame.id, std::memory_order_relaxed);
  slot.total_ms.store(frame.total_ms, std::memory_order_relaxed);
  for (int i = 0; i < kSegmentCount; ++i)
    slot.segment_ms[static_cast<std::size_t>(i)].store(
        frame.segment_ms[static_cast<std::size_t>(i)],
        std::memory_order_relaxed);
  slot.miss.store(frame.deadline_miss, std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_release);

  // Miss-burst window: O(1) ring update of the running miss count.
  const int window = cfg_.miss_window;
  const long long mh = miss_head_.fetch_add(1, std::memory_order_relaxed);
  const std::uint8_t now = frame.deadline_miss ? 1 : 0;
  const std::uint8_t was =
      miss_ring_[static_cast<std::size_t>(mh % window)].exchange(
          now, std::memory_order_relaxed);
  const int count =
      miss_count_.fetch_add(static_cast<int>(now) - static_cast<int>(was),
                            std::memory_order_relaxed) +
      static_cast<int>(now) - static_cast<int>(was);

  if (cfg_.miss_threshold > 0 && count >= cfg_.miss_threshold &&
      mh + 1 >= window) {
    // Rate limit: one automatic dump per ring generation; CAS elects a
    // single dumper when several threads cross the threshold together.
    long long last = last_auto_dump_.load(std::memory_order_relaxed);
    if (ticket - last >= static_cast<long long>(kFrameCapacity) &&
        last_auto_dump_.compare_exchange_strong(last, ticket,
                                                std::memory_order_relaxed))
      store_dump("miss-burst");
  }
}

void FlightRecorder::note_event(long tick, const char* type, int session,
                                double value) {
  const long long ticket =
      event_head_.fetch_add(1, std::memory_order_relaxed);
  EventSlot& slot =
      events_[static_cast<std::size_t>(ticket) % kEventCapacity];
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  slot.tick.store(tick, std::memory_order_relaxed);
  slot.type.store(type, std::memory_order_relaxed);
  slot.session.store(session, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_release);
}

std::string FlightRecorder::build_document(const std::string& reason) const {
  using util::Json;
  Json::Array frames;
  const long long fh = frame_head_.load(std::memory_order_acquire);
  const long long fcount =
      std::min<long long>(fh, static_cast<long long>(kFrameCapacity));
  for (long long t = fh - fcount; t < fh; ++t) {
    const FrameSlot& slot =
        frames_[static_cast<std::size_t>(t) % kFrameCapacity];
    const std::uint32_t a = slot.seq.load(std::memory_order_acquire);
    if (a & 1U) continue;  // writer inside; drop the slot
    FrameAttribution f;
    f.id = slot.id.load(std::memory_order_relaxed);
    f.total_ms = slot.total_ms.load(std::memory_order_relaxed);
    for (int i = 0; i < kSegmentCount; ++i)
      f.segment_ms[static_cast<std::size_t>(i)] =
          slot.segment_ms[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    f.deadline_miss = slot.miss.load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != a) continue;  // torn
    Json::Object segs;
    for (int i = 0; i < kSegmentCount; ++i)
      segs.emplace(to_string(static_cast<Segment>(i)),
                   Json(f.segment_ms[static_cast<std::size_t>(i)]));
    Json::Object obj;
    obj.emplace("stream", Json(static_cast<double>(causal_stream(f.id))));
    obj.emplace("frame", Json(static_cast<double>(causal_frame(f.id))));
    obj.emplace("total_ms", Json(f.total_ms));
    obj.emplace("deadline_miss", Json(f.deadline_miss));
    obj.emplace("dominant", Json(to_string(f.dominant())));
    obj.emplace("segments", Json(std::move(segs)));
    frames.emplace_back(std::move(obj));
  }

  Json::Array events;
  const long long eh = event_head_.load(std::memory_order_acquire);
  const long long ecount =
      std::min<long long>(eh, static_cast<long long>(kEventCapacity));
  for (long long t = eh - ecount; t < eh; ++t) {
    const EventSlot& slot =
        events_[static_cast<std::size_t>(t) % kEventCapacity];
    const std::uint32_t a = slot.seq.load(std::memory_order_acquire);
    if (a & 1U) continue;
    const long tick = slot.tick.load(std::memory_order_relaxed);
    const char* type = slot.type.load(std::memory_order_relaxed);
    const int session = slot.session.load(std::memory_order_relaxed);
    const double value = slot.value.load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != a) continue;
    Json::Object obj;
    obj.emplace("tick", Json(static_cast<double>(tick)));
    obj.emplace("type", Json(type ? type : "?"));
    obj.emplace("session", Json(session));
    obj.emplace("value", Json(value));
    events.emplace_back(std::move(obj));
  }

  Json::Object root;
  root.emplace("schema", Json("mvs-postmortem-v1"));
  root.emplace("reason", Json(reason));
  root.emplace("shard", Json(cfg_.shard));
  root.emplace("frames_seen", Json(static_cast<double>(fh)));
  root.emplace("frames", Json(std::move(frames)));
  root.emplace("events", Json(std::move(events)));
  root.emplace("attribution", critical_path().attribution_json());
  // Embed the full metrics snapshot so the postmortem is self-contained
  // (to_json() is authoritative; re-parsing keeps one serializer).
  if (auto metrics_doc = util::Json::parse(metrics().to_json()))
    root.emplace("metrics", std::move(*metrics_doc));
  return Json(std::move(root)).dump();
}

void FlightRecorder::store_dump(const std::string& reason) {
  const std::string doc = build_document(reason);
  const long long n = dumps_.fetch_add(1, std::memory_order_relaxed);
  std::string path;
  if (!cfg_.dir.empty()) {
    path = cfg_.dir + "/postmortem-" + std::to_string(n) + ".json";
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    if (out.is_open())
      out << doc << '\n';
    else
      path.clear();
  }
  std::scoped_lock lock(dump_mu_);
  last_dump_ = doc;
  last_dump_path_ = path;
}

std::string FlightRecorder::request_dump(const std::string& reason) {
  store_dump(reason);
  return last_dump();
}

std::string FlightRecorder::last_dump() const {
  std::scoped_lock lock(dump_mu_);
  return last_dump_;
}

std::string FlightRecorder::last_dump_path() const {
  std::scoped_lock lock(dump_mu_);
  return last_dump_path_;
}

void FlightRecorder::reset() {
  cfg_ = Config{};
  for (auto& slot : frames_) slot.seq.store(0, std::memory_order_relaxed);
  for (auto& slot : events_) slot.seq.store(0, std::memory_order_relaxed);
  frame_head_.store(0, std::memory_order_relaxed);
  event_head_.store(0, std::memory_order_relaxed);
  for (auto& m : miss_ring_) m.store(0, std::memory_order_relaxed);
  miss_head_.store(0, std::memory_order_relaxed);
  miss_count_.store(0, std::memory_order_relaxed);
  last_auto_dump_.store(-static_cast<long long>(kFrameCapacity),
                        std::memory_order_relaxed);
  dumps_.store(0, std::memory_order_relaxed);
  std::scoped_lock lock(dump_mu_);
  last_dump_.clear();
  last_dump_path_.clear();
}

}  // namespace mvs::obs

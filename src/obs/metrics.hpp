#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mvs::obs {

// Monotonically increasing event count. Thread-safe.
class Counter {
 public:
  void add(long long n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

// Last-written point-in-time value. Thread-safe, last writer wins; only set
// gauges from deterministic (single-writer) contexts if you care about the
// cross-thread-count determinism guard.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Streaming log2-bucket histogram: percentiles without storing samples.
//
// A positive value v lands in the bucket of its binary exponent e
// (2^e <= v < 2^(e+1)), clamped to [kMinExp, kMaxExp]; v <= 0 lands in a
// dedicated underflow bucket. percentile() walks buckets by nearest rank and
// reports the bucket midpoint clamped to the observed [min, max], so the
// estimate differs from the exact sorted-sample percentile by at most the
// width of the bucket holding the exact value (tested in test_obs).
//
// Bucket counts, count, min and max are bit-identical regardless of the
// thread interleaving of record() calls; `sum` is a floating-point
// accumulation whose value depends on addition order and is therefore
// excluded from determinism fingerprints.
class Histogram {
 public:
  static constexpr int kMinExp = -30;
  static constexpr int kMaxExp = 33;
  // +1 for the clamped exponent range being inclusive, +1 for underflow.
  static constexpr int kBucketCount = kMaxExp - kMinExp + 2;

  void record(double v);

  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // Smallest / largest recorded value; NaN when empty.
  double min() const;
  double max() const;
  // p in [0, 100]. Nearest-rank percentile estimate; NaN when empty.
  double percentile(double p) const;

  // The same nearest-rank estimate over explicit bucket counts (length
  // kBucketCount) — percentile() delegates here, and the shard-merged
  // rollup in MetricsRegistry::to_json() uses it on summed buckets so a
  // one-shard merge is bit-equal to the flat histogram's own percentile.
  static double percentile_from_counts(const long long* counts, long long n,
                                       double p, double min, double max);

  std::vector<long long> bucket_counts() const;
  void reset();

  // Bucket index for a value (0 = underflow bucket for v <= 0).
  static int bucket_index(double v);
  // Inclusive lower / exclusive upper bound of a bucket. The underflow
  // bucket reports [0, 0]; the top bucket's upper bound is +inf.
  static double bucket_lower(int idx);
  static double bucket_upper(int idx);

  Histogram() { reset(); }

 private:
  std::array<std::atomic<long long>, kBucketCount> buckets_{};
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // +inf when empty, set by reset()
  std::atomic<double> max_{0.0};  // -inf when empty, set by reset()
};

// Named metric store. Lookup returns a reference that stays valid until
// reset() destroys the registry contents; hot paths may cache the reference.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Destroys all registered metrics. Do not hold references across reset().
  void reset();

  // Full snapshot exposition:
  // { "counters": {name: n}, "gauges": {name: v},
  //   "histograms": {name: {count,sum,min,max,p50,p95,p99,buckets:[...]}} }
  std::string to_json() const;

  // Deterministic identity for the cross-thread-count guard: counter and
  // gauge values, histogram bucket counts + count + min + max. Histogram
  // `sum` is always excluded (FP addition order); histograms whose name ends
  // in "_wall_ms" carry wall-clock durations and are fingerprinted by count
  // only.
  std::string fingerprint() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mvs::obs

#pragma once
// Structured event trace of scheduler activity.
//
// Attach a TraceRecorder to a Pipeline to capture every scheduling decision
// — central-stage assignments, distributed-stage adoptions and takeovers,
// track drops — with frame/camera attribution. The recorder is
// thread-safe (camera steps run on a pool) and exports JSON for offline
// inspection of *why* the schedule looked the way it did.

#include <array>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace mvs::runtime {

enum class TraceEventType {
  kKeyFrame,      ///< central stage ran; value = system latency estimate (ms)
  kAssignment,    ///< object assigned to camera at a key frame
  kAdoptNew,      ///< distributed stage adopted a new object
  kTakeover,      ///< camera took over an object that left its tracker's view
  kTrackDrop,     ///< track lost (missed too long or left the frame)
  kCameraDown,    ///< camera dropped out (netsim fault injection)
  kCameraRejoin,  ///< camera came back online and re-entered the schedule
  kNetRetry,      ///< key-frame message retransmitted; value = cycle time (ms)
  kNetDrop,       ///< key-frame message lost for good; value = cycle time (ms)
  // Fleet-level session lifecycle events (mvs::fleet). For these, `frame` is
  // the fleet tick, `camera` the session id, and `value` the projected or
  // attributed per-frame latency (ms) at the decision point.
  kSessionAdmit,   ///< session admitted (possibly degraded; see fleet stats)
  kSessionReject,  ///< admission refused: projected latency exceeds the SLO
  kSessionEvict,   ///< session evicted from the fleet
  kSessionPause,   ///< session paused (stops consuming ticks)
  kSessionResume,  ///< paused session resumed
  kSessionDefer,   ///< dispatch deferred the session's frame by one tick
  kSessionReadmit, ///< re-admission restored a degrade rung (rate or masks)
  kDeviceScale,    ///< device pool grown/shrunk; value = new device count
  kBatchSplit,     ///< arbiter split an over-full batch; value = deferred tasks
  kSessionRedegrade,  ///< sustained pressure re-applied a degrade rung
  kSessionMigrate,    ///< session moved between shards; value = target shard
  // Streaming-perception runtime events (mvs::rt). `frame` is the arrival's
  // evaluation-frame index and `value` the frame's age (ms past capture) at
  // the decision point.
  kRtDrop,          ///< paced runtime dropped a frame stale past its deadline
  kRtSupersede,     ///< a newer arrival displaced a still-queued stale frame
  kRtDeadlineMiss,  ///< a frame's result landed (or would land) past deadline
  // SLO burn-rate alerting (DESIGN.md §14). `value` = fast-window burn rate
  // at the edge; `camera` the session id (-1 for a shard-level alert).
  kSloAlertRaise,   ///< fast AND slow burn crossed the raise threshold
  kSloAlertClear,   ///< fast burn fell below the clear threshold
  kTraceEventTypeCount_,  ///< sentinel: number of event types (not an event)
};

const char* to_string(TraceEventType type);

struct TraceEvent {
  long frame = 0;
  int camera = -1;  ///< -1 = central scheduler
  TraceEventType type = TraceEventType::kKeyFrame;
  std::uint64_t object_key = 0;  ///< object/track identity where applicable
  double value = 0.0;            ///< type-specific payload
  int shard = -1;          ///< owning shard at the time of the event, -1 = n/a
  int migrated_from = -1;  ///< source shard for post-migration session events
};

class TraceRecorder {
 public:
  /// Attach a streaming file sink: every record() appends one JSON object
  /// line (JSONL) to `path` as it happens, bounding recorder memory on long
  /// runs. With `stream_only` the in-memory event vector is not grown —
  /// count()/total() stay exact (served from per-type counters) but
  /// events()/to_json() only cover events recorded before the sink opened.
  /// Without `stream_only` the in-memory snapshot path is unchanged
  /// (bit-identical to a recorder with no sink). Returns false if the file
  /// cannot be opened for writing.
  bool open_stream(const std::string& path, bool stream_only = false);

  /// Flushes and closes the streaming sink (no-op when none is open).
  void close_stream();

  bool streaming() const;

  void record(const TraceEvent& event);

  /// Snapshot of all events so far (copy; safe while recording continues).
  std::vector<TraceEvent> events() const;

  std::size_t count(TraceEventType type) const;
  std::size_t total() const;
  void clear();

  /// JSON array of event objects.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::array<std::size_t,
             static_cast<std::size_t>(TraceEventType::kTraceEventTypeCount_)>
      counts_{};
  std::size_t total_ = 0;
  std::ofstream stream_;
  bool stream_only_ = false;
};

}  // namespace mvs::runtime

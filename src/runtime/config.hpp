#pragma once
// JSON run configuration for the pipeline — what a deployment would ship in
// /etc: scenario, policy, horizon, seeds. Round-trips through util::Json.
//
// Example document:
//   {
//     "scenario": "S1",
//     "frames": 200,
//     "pipeline": {
//       "policy": "balb", "horizon_frames": 10,
//       "training_frames": 200, "seed": 42
//     }
//   }

#include <optional>
#include <string>

#include "runtime/pipeline.hpp"

namespace mvs::runtime {

struct RunConfig {
  std::string scenario = "S1";
  int frames = 200;
  PipelineConfig pipeline;
};

/// Parse a policy name ("full", "balb-ind", "balb-cen", "balb", "sp"),
/// case-insensitive. nullopt on unknown names.
std::optional<Policy> parse_policy(std::string name);

/// Parse a config document; nullopt (with *error filled) on malformed JSON,
/// unknown policy or unknown scenario name.
std::optional<RunConfig> parse_run_config(const std::string& json_text,
                                          std::string* error = nullptr);

/// Serialize back to JSON (round-trips through parse_run_config).
std::string dump_run_config(const RunConfig& config);

}  // namespace mvs::runtime

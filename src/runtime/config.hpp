#pragma once
// JSON run configuration for the pipeline and the fleet — what a deployment
// would ship in /etc: scenario, policy, horizon, seeds, and (optionally) a
// whole multi-session fleet. Round-trips through util::Json.
//
// Example document:
//   {
//     "scenario": "S1",
//     "frames": 200,
//     "pipeline": {
//       "policy": "balb", "horizon_frames": 10,
//       "training_frames": 200, "seed": 42
//     },
//     "policy": {"mode": "heuristic", "staleness_limit": 8},
//     "fleet": {
//       "slo_ms": 120, "dispatch": "weighted", "readmit_interval": 10,
//       "allow_split": true,
//       "device_scale": [{"class": "jetson-nano", "delta": 1}],
//       "sessions": [
//         {"name": "cam-east", "scenario": "S2", "weight": 2, "fps": 15,
//          "slo_ms": 90, "faults": {"loss_rate": 0.05}}
//       ]
//     }
//   }
//
// Session entries inherit the document's top-level scenario and pipeline
// unless they override them; a session "faults" object builds a per-session
// netsim::FaultConfig and implies the lossy transport (the self-contained
// session API — prefer it over reaching into pipeline.faults).

#include <optional>
#include <string>
#include <vector>

#include "runtime/pipeline.hpp"

namespace mvs::runtime {

/// Self-contained per-session serving spec. mvs::fleet aliases this as
/// fleet::SessionSpec; everything a hosted session needs lives here —
/// deployment, QoS declaration (fps + SLO override), dispatch weight, and
/// an optional private transport fault profile.
struct FleetSessionSpec {
  std::string name;
  std::string scenario = "S2";
  PipelineConfig pipeline;
  /// Weighted-priority dispatch share; higher = deferred later, and batch
  /// splits shed lower-weight tasks first.
  double weight = 1.0;
  /// Native frame rate (fps). 0 = the fleet's base rate
  /// (1000 / frame_period_ms). Rates that do not divide the current tick
  /// wheel grow it to the least common multiple.
  int fps = 0;
  /// Per-session latency SLO override (ms) for violation accounting;
  /// < 0 = the fleet-wide SLO.
  double slo_ms = -1.0;
  /// Per-session transport fault profile. When set it replaces
  /// pipeline.faults and, unless fault-free, implies the lossy transport.
  /// Preferred over mutating pipeline.faults directly (deprecated for
  /// hosted sessions).
  std::optional<netsim::FaultConfig> faults;
  /// Serve a deterministic synthetic GPU-load generator instead of a real
  /// pipeline: the session submits seeded partial-frame task multisets on
  /// the scenario's device classes but runs no vision stack (no scenario
  /// playback, no association training). This is what makes 1k-10k-session
  /// fleets constructible; scheduling, batching, and attribution behave
  /// exactly as for real sessions (see fleet::SyntheticSource).
  bool synthetic = false;
};

/// Runtime device-pool adjustment applied after admission
/// (Fleet::scale_devices).
struct FleetDeviceScale {
  std::string device_class;
  int delta = 0;
};

/// The "fleet" block of a run config: fleet-wide knobs plus the session
/// roster. `dispatch` stays a string here (validated by
/// fleet::make_fleet_config) so this layer has no dependency on mvs::fleet.
struct FleetRunConfig {
  double slo_ms = 0.0;
  double frame_period_ms = 100.0;
  std::string dispatch = "round-robin";
  int threads = 0;
  bool allow_degrade = true;
  double assumed_tasks_per_camera = 4.0;
  /// Ticks between re-admission scans (reverse degrade ladder); 0 keeps
  /// degradation sticky for a session's lifetime.
  int readmit_interval = 10;
  /// Hysteresis band (fractions of the SLO): scan only when the windowed
  /// demand falls below low water, restore only if the projection stays
  /// below high water.
  double readmit_low_water = 0.7;
  double readmit_high_water = 0.9;
  /// Let the arbiter split an over-full merged batch across two tick slots.
  bool allow_split = false;
  /// Fixed per-batch dispatch cost (ms) charged by the device pools —
  /// models kernel-launch / DMA setup overhead serialized through one
  /// dispatcher per device class, which is what keeps wide pools from
  /// scaling linearly. 0 preserves the ideal (overhead-free) arbiter.
  double dispatch_overhead_ms = 0.0;
  /// Serving-plane width: 1 = the classic single Fleet (bit-identical to
  /// the pre-sharding runtime), > 1 = a ShardedFleet with this many
  /// shards, each with its own GPU arbiter and tick wheel.
  int shards = 1;
  /// Max live sessions per shard (sharded admission's O(1) capacity
  /// check); 0 = unbounded.
  int shard_capacity = 0;
  /// Ticks between sharded rebalance scans (live migration off hot
  /// shards); 0 disables background migration.
  int rebalance_interval = 0;
  /// Rebalance hysteresis: migrate only when the hottest shard's windowed
  /// busy exceeds this multiple (> 1) of the mean shard busy.
  double rebalance_high_water = 1.25;
  /// SLO burn-rate monitoring (DESIGN.md §14). The error budget is the
  /// tolerated per-tick SLO-violation ratio; 0 disables the monitors and all
  /// alert events. Window sizes are in ticks; raise/clear are burn-rate
  /// multiples (raise needs fast AND slow >= burn_raise, clear needs fast <
  /// burn_clear — hysteresis).
  double burn_error_budget = 0.0;
  int burn_fast_window = 16;
  int burn_slow_window = 64;
  double burn_raise = 2.0;
  double burn_clear = 1.0;
  /// Couple alerting to mitigation: a shard-level raise edge immediately
  /// applies one degrade rung to the heaviest restorable session.
  bool burn_degrade = false;
  std::vector<FleetDeviceScale> device_scale;
  std::vector<FleetSessionSpec> sessions;
};

/// The "obs" block of a run config: observability (mvs::obs) switches. When
/// `enabled`, the runner turns the global metrics/span instrumentation on and
/// exports to the given paths after the run (empty path = no file export; the
/// CLI flags --chrome-trace/--metrics-json override and imply enabled).
struct ObsConfig {
  bool enabled = false;
  std::string chrome_trace;  ///< Chrome trace-event JSON output path
  std::string metrics_json;  ///< MetricsRegistry snapshot output path
  /// Critical-path attribution (obs::critical_path(), DESIGN.md §14).
  /// Independent of `enabled`; a non-empty metrics_json implies it so the
  /// export carries the attribution block.
  bool attribution = false;
  /// Flight-recorder postmortem directory; non-empty implies attribution.
  /// Empty = dumps stay in memory only (obs::recorder().last_dump()).
  std::string postmortem_dir;
  /// Deadline-miss burst trigger: dump when >= miss_threshold of the last
  /// miss_window frames missed. threshold 0 disables automatic dumps.
  int postmortem_miss_window = 32;
  int postmortem_miss_threshold = 8;
};

/// What the paced runtime (mvs::rt) does with a frame that cannot meet its
/// deadline. Lives here (not in src/rt/) so the config layer and CLI can
/// name policies without depending on mvs_rt.
enum class LatePolicy {
  kDrop,        ///< stale frame is dropped at its would-be start (miss)
  kSupersede,   ///< newest-wins: a fresh arrival displaces queued stale work
  kFinishLate,  ///< never drop; a late emission still counts as a miss
};

/// nullopt on unknown names ("drop", "supersede", "finish-late").
std::optional<LatePolicy> parse_late_policy(std::string name);
const char* to_string(LatePolicy policy);

/// The "rt" block of a run config: streaming-perception pacing (mvs::rt).
/// Defaults leave the classic unpaced runner untouched.
struct RtConfig {
  /// Run under the paced runtime (virtual wall clock + deadlines) instead of
  /// the as-fast-as-possible stepper.
  bool paced = false;
  /// Frame arrival period (ms); <= 0 derives it from the scenario's fps.
  double frame_period_ms = 0.0;
  /// Per-frame deadline budget past capture (ms); <= 0 = infinite (with
  /// kFinishLate this makes the paced run bit-identical to the unpaced
  /// pipeline — the "rt-of-one" guard).
  double deadline_ms = 100.0;
  LatePolicy late_policy = LatePolicy::kSupersede;
  /// Mean exponential arrival jitter per camera (ms); a multi-frame arrives
  /// when its slowest camera's capture lands. 0 = jitter-free.
  double arrival_jitter_ms = 0.0;
  /// Fixed per-frame service overhead (ms) added to the simulated
  /// inference + transport time (models decode/preprocess).
  double fixed_overhead_ms = 0.0;
  /// Deadline-miss error budget (tolerated miss ratio) for the runner's SLO
  /// burn-rate monitor; 0 disables it (no alert events).
  double miss_budget = 0.0;
};

struct RunConfig {
  std::string scenario = "S1";
  int frames = 200;
  PipelineConfig pipeline;
  ObsConfig obs;
  /// Streaming-perception pacing; rt.paced == false (default) means the
  /// block is inert and the classic runner is used.
  RtConfig rt;
  /// Present when the document carries a "fleet" block: run a multi-session
  /// fleet instead of a standalone pipeline.
  std::optional<FleetRunConfig> fleet;
};

/// Parse a policy name ("full", "balb-ind", "balb-cen", "balb", "sp"),
/// case-insensitive. nullopt on unknown names.
std::optional<Policy> parse_policy(std::string name);

/// Parse a config document; nullopt (with *error filled) on malformed JSON,
/// unknown policy or unknown scenario name.
std::optional<RunConfig> parse_run_config(const std::string& json_text,
                                          std::string* error = nullptr);

/// Serialize back to JSON (round-trips through parse_run_config, fleet
/// block included).
std::string dump_run_config(const RunConfig& config);

}  // namespace mvs::runtime

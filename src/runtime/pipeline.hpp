#pragma once
// End-to-end live-analytics pipeline (paper Fig. 5).
//
// Drives a scenario at its frame rate through the key-frame / regular-frame
// loop: full-frame inspection + cross-camera association + central BALB at
// key frames; optical-flow tracking, ROI slicing, GPU batching, partial
// inspection and the distributed BALB stage at regular frames. All five
// scheduling policies of the evaluation section are selectable.
//
// Time accounting (see DESIGN.md): GPU inference time is SIMULATED from the
// device latency profiles; scheduler / tracker / association overheads
// (Table II) are MEASURED wall-clock. The two are reported separately.

#include <memory>
#include <string>
#include <vector>

#include "geometry/size_class.hpp"
#include "gpu/device_profile.hpp"
#include "net/transport.hpp"
#include "netsim/fault.hpp"
#include "policy/policy.hpp"
#include "runtime/policy.hpp"
#include "runtime/trace.hpp"
#include "util/stats.hpp"

namespace mvs::util {
class ThreadPool;
}

namespace mvs::sim {
struct MultiFrame;
struct Scenario;
}

namespace mvs::runtime {

struct PipelineConfig {
  Policy policy = Policy::kBalb;
  int horizon_frames = 10;      ///< T: frames per scheduling horizon
  int training_frames = 250;    ///< frames used to train association models
  int mask_cell_px = 64;        ///< distributed-stage grid cell size
  double recall_iou = 0.4;      ///< IoU for the object-recall metric
  std::uint64_t seed = 42;
  bool verbose = false;
  /// Worker threads for per-camera (and tiled-flow) parallelism; 0 selects
  /// hardware concurrency. Results are identical for any thread count.
  int threads = 0;
  /// When the camera fleet is smaller than the pool, tile optical-flow rows
  /// of each camera across the idle workers. Output-identical either way
  /// (tiles write disjoint row ranges); off only for A/B latency studies.
  bool tile_flow = true;
  /// kIdeal charges the closed-form LinkModel numbers (bit-exact with the
  /// pre-netsim pipeline); kLossy runs the discrete-event netsim transport.
  net::TransportKind transport = net::TransportKind::kIdeal;
  /// Loss/jitter/retry/dropout knobs; only consulted when transport==kLossy.
  netsim::FaultConfig faults;
  /// Degraded serving mode (fleet admission control): the distributed stage
  /// only adopts NEW objects whose cell no other camera covers
  /// (solo-coverage cells). Shared-coverage discoveries wait for the next
  /// key frame's central plan, shedding regular-frame GPU load at a small
  /// recall cost. Off (full masks) by default.
  bool tight_masks = false;
  /// Detect-or-track layer (mvs::policy): decides per camera per REGULAR
  /// frame whether to run partial-frame detection or coast on optical-flow
  /// tracking alone (zero GPU slices that frame). The default fixed kind
  /// detects every regular frame and is bit-identical to the pre-policy
  /// pipeline; key frames always run the full inspection regardless.
  policy::PolicyConfig frame_policy;
  /// Common-random-numbers mode for policy A/B studies: re-seed every
  /// camera's RNG from (seed, camera, frame) at each frame start, so two
  /// runs that differ only in WHICH frames they inspect draw identical
  /// detector outcomes whenever they inspect the same thing (key frames
  /// resynchronize the sample paths every horizon). Off by default — the
  /// default sequential streams are part of the bit-identity contract.
  bool paired_rng = false;
  /// Retain every frame's FrameStats for result()/run() snapshots. Long-
  /// running embeddings (fleet serving, the allocation guard) that only
  /// consume run_frame_ref() can turn this off so steady-state ticks do not
  /// grow — or allocate — the history vector. With history off, result()
  /// and run() return empty frame lists (the aggregate recall remains
  /// valid).
  bool keep_history = true;
};

/// Per-frame record.
struct FrameStats {
  long frame = 0;
  bool key_frame = false;
  std::vector<double> camera_infer_ms;  ///< simulated GPU time per camera
  double slowest_infer_ms = 0.0;        ///< max over cameras
  double frame_recall = 1.0;
  std::size_t gt_objects = 0;
  std::size_t tracked_objects = 0;  ///< sum of active tracks over cameras
  // Measured wall-clock overheads (ms).
  double central_ms = 0.0;      ///< association + central BALB (key frames)
  double tracking_ms = 0.0;     ///< max per-camera flow + predict + slice
  double distributed_ms = 0.0;  ///< max per-camera distributed stage
  double batching_ms = 0.0;     ///< max per-camera batch plan + assembly
  double comm_ms = 0.0;         ///< modeled link transfer (key frames)
  // Transport accounting (non-zero only on key frames; always zero with the
  // ideal transport).
  double queue_ms = 0.0;   ///< time key-frame messages waited in FIFO queues
  int retries = 0;         ///< key-frame message retransmissions
  int dropped_msgs = 0;    ///< key-frame messages lost after all retries
  int cameras_online = 0;  ///< cameras participating in this frame
};

struct PipelineResult {
  std::string scenario;
  Policy policy = Policy::kBalb;
  std::vector<FrameStats> frames;
  double object_recall = 0.0;  ///< aggregate paper-style object recall

  /// Fig. 13 statistic: mean over frames of the slowest camera's simulated
  /// inference time (key frames averaged in).
  double mean_slowest_infer_ms() const;

  /// Table II statistics: mean per-frame overheads (central amortized over
  /// the horizon by construction — it is only non-zero on key frames).
  double mean_central_ms() const;
  double mean_tracking_ms() const;
  double mean_distributed_ms() const;
  double mean_batching_ms() const;
  double mean_comm_ms() const;
  double mean_queue_ms() const;

  /// Transport fault totals over the run (lossy transport only).
  long total_retries() const;
  long total_dropped_msgs() const;
};

/// One camera's simulated-GPU demand for the most recent frame, exposed so
/// an embedding runtime (mvs::fleet) can merge partial-frame tasks across
/// sessions into shared batches. `tasks` lists the size class of every
/// partial region the camera inspected; `full_frame` marks a full-frame
/// inspection (key frames / Full policy), which is never batch-merged.
struct CameraGpuWork {
  bool full_frame = false;
  std::vector<geom::SizeClassId> tasks;
};

class Pipeline {
 public:
  /// Builds the scenario, trains the association models on the first
  /// `training_frames` frames (when the policy needs them), and leaves the
  /// player positioned at the start of the evaluation split.
  ///
  /// `shared_pool` (optional) makes the pipeline embeddable: when non-null,
  /// all per-camera parallelism runs on the caller's pool (which may serve
  /// many pipelines at once — see util::ThreadPool shareability) instead of
  /// a pool owned by this instance; config.threads is then ignored. The
  /// pool must outlive the pipeline. Results are identical either way.
  Pipeline(const std::string& scenario_name, const PipelineConfig& config,
           util::ThreadPool* shared_pool = nullptr);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Run `frames` evaluation frames and return the collected statistics.
  /// Equivalent to calling run_frame() `frames` times; the returned result
  /// covers exactly the frames of THIS call.
  PipelineResult run(int frames);

  /// Stepwise entry point: advance exactly one evaluation frame and return
  /// its statistics. Interleavable with other sessions by an embedding
  /// runtime; run_frame x N is bit-identical to run(N).
  FrameStats run_frame();

  /// Allocation-free variant of run_frame(): advances one frame and returns
  /// a reference to an internal FrameStats that is overwritten by the next
  /// run_frame()/run_frame_ref()/run() call. The hot path for embeddings
  /// (fleet serving) that poll stats every tick and must not copy the
  /// per-camera vector.
  const FrameStats& run_frame_ref();

  /// Advance one evaluation frame WITHOUT processing it: the scenario
  /// player steps, the frame counter (and with it the key-frame cadence and
  /// dropout schedules) advances, but no camera renders, detects or tracks
  /// — zero GPU demand, no recall sample. The paced runtime (mvs::rt) uses
  /// this for frames its late policy drops or supersedes; tracking flow
  /// simply spans the gap at the next processed frame. Allocation-free once
  /// warm.
  void skip_frame();

  /// Ground truth of the most recently advanced frame (run_frame OR
  /// skip_frame). Valid until the next advance; undefined before the first.
  const sim::MultiFrame& current_frame() const;

  /// Per-camera boxes reported by the most recent PROCESSED frame (what
  /// run_frame scored against recall). Not updated by skip_frame.
  const std::vector<std::vector<geom::BBox>>& last_reported() const;

  /// Snapshot of everything run so far (all frames since construction, with
  /// the aggregate recall over them).
  PipelineResult result() const;

  /// Per-camera simulated-GPU demand of the most recent frame (empty before
  /// the first frame). Valid until the next run_frame()/run() call.
  const std::vector<CameraGpuWork>& last_gpu_work() const;

  std::size_t camera_count() const;
  /// Per-camera device profiles of the deployment (scenario order).
  std::vector<gpu::DeviceProfile> devices() const;
  /// Scenario being driven (fps, camera layout, quality schedule).
  const sim::Scenario& scenario() const;

  /// Flip the tight_masks degraded mode at a frame boundary (fleet
  /// re-admission un-tightens a session's masks without rebuilding it).
  /// Takes effect from the next run_frame(); a no-op when unchanged.
  void set_tight_masks(bool tight);

  /// Optionally record every scheduling decision (assignments, adoptions,
  /// takeovers, drops) into `trace`. The recorder must outlive the
  /// pipeline; pass nullptr to detach.
  void attach_trace(TraceRecorder* trace);

  const PipelineConfig& config() const { return config_; }

 private:
  struct Impl;
  PipelineConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mvs::runtime

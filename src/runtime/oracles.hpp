#pragma once
// Adapters wiring the data-driven cross-camera models (assoc) into the
// mask-construction oracles the core scheduler consumes (paper Sec. III-C2:
// "the computation of the coverage set for each cell relies on the
// cross-camera classification and regression models").

#include <cstdint>
#include <vector>

#include "assoc/association.hpp"
#include "core/masks.hpp"

namespace mvs::runtime {

/// Side of the nominal probe box placed at a cell center when querying the
/// pair models about that cell's coverage.
inline constexpr double kProbeBoxSide = 64.0;

/// Coverage oracle: cameras able to see the world region behind a pixel
/// cell, per the trained classification models.
core::CellCoverageFn make_coverage_oracle(
    const assoc::CrossCameraAssociator& associator);

/// Deterministic world-region key: the probe location mapped to the
/// lowest-index covering camera (the canonical view) and quantized, so all
/// cameras derive the same key for the same region. Used by the Static
/// Partitioning masks.
core::RegionKeyFn make_region_key_oracle(
    const assoc::CrossCameraAssociator& associator);

}  // namespace mvs::runtime

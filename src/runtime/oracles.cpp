#include "runtime/oracles.hpp"

#include <algorithm>

namespace mvs::runtime {

namespace {

geom::BBox probe_box(geom::Vec2 center) {
  return geom::BBox::from_center(center, kProbeBoxSide, kProbeBoxSide);
}

std::vector<int> coverage_of(const assoc::CrossCameraAssociator& associator,
                             int cam, geom::Vec2 center) {
  std::vector<int> cover{cam};
  const geom::BBox probe = probe_box(center);
  for (std::size_t other = 0; other < associator.camera_count(); ++other) {
    if (static_cast<int>(other) == cam) continue;
    if (associator.predict_present(static_cast<std::size_t>(cam), other,
                                   probe))
      cover.push_back(static_cast<int>(other));
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

}  // namespace

core::CellCoverageFn make_coverage_oracle(
    const assoc::CrossCameraAssociator& associator) {
  return [&associator](int cam, geom::Vec2 center) {
    return coverage_of(associator, cam, center);
  };
}

core::RegionKeyFn make_region_key_oracle(
    const assoc::CrossCameraAssociator& associator) {
  return [&associator](int cam, geom::Vec2 center) -> std::uint64_t {
    const std::vector<int> cover = coverage_of(associator, cam, center);
    const int canonical = cover.front();  // sorted -> lowest index
    geom::Vec2 canon_center = center;
    if (canonical != cam) {
      const geom::BBox mapped =
          associator.predict_box(static_cast<std::size_t>(cam),
                                 static_cast<std::size_t>(canonical),
                                 probe_box(center));
      canon_center = mapped.center();
    }
    // Quantize to 64-px world cells on the canonical camera.
    const auto qx = static_cast<std::int64_t>(canon_center.x / 64.0);
    const auto qy = static_cast<std::int64_t>(canon_center.y / 64.0);
    return static_cast<std::uint64_t>(canonical) * 0x100000000ULL ^
           (static_cast<std::uint64_t>(qy & 0xFFFF) << 16) ^
           static_cast<std::uint64_t>(qx & 0xFFFF);
  };
}

}  // namespace mvs::runtime
